//! Umbrella crate for the CLUDE reproduction workspace.
//!
//! This crate re-exports the workspace members so that the runnable examples
//! in `examples/` and the cross-crate integration tests in `tests/` can use a
//! single dependency.  The actual functionality lives in:
//!
//! * [`clude_sparse`] — sparse matrix substrate (COO/CSR/CSC, patterns,
//!   permutations, dynamic adjacency-list matrices).
//! * [`clude_graph`] — evolving graph sequences and dataset generators.
//! * [`clude_lu`] — the sparse LU engine (symbolic decomposition, Markowitz
//!   and minimum-degree orderings, Crout factorization, Bennett updates).
//! * [`clude`] — the paper's contribution: BF / INC / CINC / CLUDE solvers for
//!   the LUDEM and LUDEM-QC problems.
//! * [`clude_measures`] — PageRank / PPR / RWR / SALSA measure series over an
//!   EGS, answered through the decomposed factors.

#![forbid(unsafe_code)]

pub use clude;
pub use clude_graph;
pub use clude_lu;
pub use clude_measures;
pub use clude_sparse;
