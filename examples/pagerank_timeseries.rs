//! Example 1 / Figure 1 workflow: track a page's PageRank over an evolving
//! Wiki-like hyperlink graph and point out the key moments where the score
//! jumps or drops, then compare algorithm costs.
//!
//! Run with: `cargo run --release --example pagerank_timeseries`

// CLI tool: printing the report is its entire purpose.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use clude::{Clude, Incremental};
use clude_graph::generators::{wiki_like, WikiLikeConfig};
use clude_measures::MeasureSeries;
use clude_sparse::vector;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let config = WikiLikeConfig {
        n_pages: 400,
        initial_links: 1_200,
        final_links: 2_800,
        n_snapshots: 40,
        removals_per_snapshot: 4,
        burst_probability: 0.15,
        burst_size: 15,
    };
    let mut rng = StdRng::seed_from_u64(11);
    let egs = wiki_like::generate(&config, &mut rng);

    // Decompose once with CLUDE, then sweep the measure over every snapshot.
    let series =
        MeasureSeries::build(&egs, 0.85, &Clude::new(0.95)).expect("decomposition succeeds");

    // Pick the page whose PageRank moves the most across the sequence.
    let first = series.pagerank_at(0).unwrap();
    let last = series.pagerank_at(series.len() - 1).unwrap();
    let movement: Vec<f64> = first
        .iter()
        .zip(last.iter())
        .map(|(a, b)| (a - b).abs())
        .collect();
    let page = vector::rank_descending(&movement)[0];

    let scores = series.pagerank_series(page).unwrap();
    println!("PageRank of page {page} over {} snapshots:", series.len());
    let max_score = scores.iter().cloned().fold(f64::MIN, f64::max);
    for (t, s) in scores.iter().enumerate() {
        let bar = "#".repeat((s / max_score * 50.0).round() as usize);
        println!("{t:>3} {s:.3e} {bar}");
    }

    let moments = series.key_moments(page, 0.25).unwrap();
    println!("key moments (>=25% relative change): {moments:?}");
    println!(
        "(in the paper these correspond to link additions/removals on high-PR pages — Figure 2)"
    );

    // Cost comparison: CLUDE vs plain INC for producing the same series.
    let inc_series =
        MeasureSeries::build(&egs, 0.85, &Incremental).expect("decomposition succeeds");
    println!(
        "decomposition time: CLUDE {:.3}s vs INC {:.3}s",
        series.report().timings.total().as_secs_f64(),
        inc_series.report().timings.total().as_secs_f64()
    );
}
