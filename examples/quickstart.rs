//! Quickstart: decompose a small evolving graph sequence with CLUDE and
//! answer PageRank / RWR queries at every snapshot.
//!
//! Run with: `cargo run --release --example quickstart`

// CLI tool: printing the report is its entire purpose.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use clude::{
    evaluate_orderings, Clude, EvolvingMatrixSequence, LudemSolver, MarkowitzReference,
    SolverConfig,
};
use clude_graph::generators::{wiki_like, WikiLikeConfig};
use clude_graph::MatrixKind;
use clude_measures::{pagerank, rwr};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. Build (or load) an evolving graph sequence.  Here: a small Wiki-like
    //    hyperlink EGS with 200 pages and 20 daily snapshots.
    let config = WikiLikeConfig::tiny();
    let mut rng = StdRng::seed_from_u64(7);
    let egs = wiki_like::generate(&config, &mut rng);
    println!(
        "EGS: {} snapshots over {} nodes, {} -> {} edges, successive similarity {:.2}%",
        egs.len(),
        egs.n_nodes(),
        egs.first_last_edge_counts().0,
        egs.first_last_edge_counts().1,
        100.0 * egs.average_successive_similarity()
    );

    // 2. Derive the evolving matrix sequence A_i = I - d*W_i.
    let damping = 0.85;
    let ems = EvolvingMatrixSequence::from_egs(&egs, MatrixKind::RandomWalk { damping });

    // 3. Decompose the whole sequence with CLUDE (alpha = 0.95).
    let solver = Clude::new(0.95);
    let solution = solver
        .solve(&ems, &SolverConfig::default())
        .expect("decomposition succeeds");
    let report = &solution.report;
    println!(
        "CLUDE: {} clusters, total time {:.3}s (ordering {:.3}s, full LU {:.3}s, Bennett {:.3}s)",
        report.cluster_count(),
        report.timings.total().as_secs_f64(),
        report.timings.ordering.as_secs_f64(),
        report.timings.full_decomposition.as_secs_f64(),
        report.timings.incremental.as_secs_f64(),
    );

    // 4. Evaluate ordering quality against the Markowitz reference.
    let reference = MarkowitzReference::compute(&ems);
    let quality = evaluate_orderings(&ems, &report.orderings, &reference);
    println!(
        "ordering quality-loss: average {:.4}, max {:.4}",
        quality.average(),
        quality.max()
    );

    // 5. Answer measure queries from the factors: PageRank at the last
    //    snapshot and RWR proximity from node 0.
    let last = ems.len() - 1;
    let pr = pagerank(&solution.decomposed[last], ems.order(), damping).expect("solve succeeds");
    let top_page = pr
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .map(|(i, _)| i)
        .unwrap();
    println!(
        "top PageRank page at the last snapshot: {top_page} (score {:.4e})",
        pr[top_page]
    );

    let proximity =
        rwr(&solution.decomposed[last], ems.order(), 0, damping).expect("solve succeeds");
    let closest = proximity
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != 0)
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .map(|(i, _)| i)
        .unwrap();
    println!(
        "node closest to page 0 under RWR: {closest} (score {:.4e})",
        proximity[closest]
    );
}
