//! The §7 case study: how strongly do other companies' patents couple to a
//! subject company's patents over the years, measured by personalised
//! PageRank proximity and reported as ranks (Figure 11).
//!
//! Run with: `cargo run --release --example patent_case_study`

// CLI tool: printing the report is its entire purpose.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use clude::Clude;
use clude_graph::generators::{patent_like, PatentLikeConfig};
use clude_measures::MeasureSeries;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let config = PatentLikeConfig::default();
    let mut rng = StdRng::seed_from_u64(2);
    let patent = patent_like::generate(&config, &mut rng);
    println!(
        "patent citation EGS: {} yearly snapshots, {} patents, {} companies",
        patent.egs.len(),
        patent.company_of_patent.len(),
        patent.company_names.len()
    );

    let series =
        MeasureSeries::build(&patent.egs, 0.85, &Clude::default()).expect("decomposition succeeds");

    // Seed set: the subject company's patents; groups: every other company.
    let last = patent.egs.len() - 1;
    let seeds = patent.patents_of(config.subject_company, last);
    let companies: Vec<usize> = (0..config.n_companies)
        .filter(|&c| c != config.subject_company)
        .collect();
    let groups: Vec<Vec<usize>> = companies
        .iter()
        .map(|&c| patent.patents_of(c, last))
        .collect();

    let ranks = series
        .group_rank_series(&seeds, &groups)
        .expect("solve succeeds");

    println!("\nproximity rank (1 = closest to SUBJECT) per snapshot:");
    print!("year");
    for &c in &companies {
        print!("\t{}", patent.company_names[c]);
    }
    println!();
    for t in 0..series.len() {
        print!("{t:>4}");
        for r in &ranks {
            print!("\t{}", r[t]);
        }
        println!();
    }

    let rising_idx = companies
        .iter()
        .position(|&c| c == config.rising_company)
        .unwrap();
    println!(
        "\nRISING company's rank: {} at year 0 -> {} at year {} — the steady climb the paper observed for Harris \
         before the 1992 IBM alliance announcement.",
        ranks[rising_idx][0],
        ranks[rising_idx][series.len() - 1],
        series.len() - 1
    );
}
