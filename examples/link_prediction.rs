//! Example 3 workflow: time series of RWR proximities as a signal for link
//! prediction.
//!
//! The paper argues (Example 3) that having a proximity measure as a *time
//! series* — rather than a single-snapshot value — lets trends feed a link
//! predictor.  This example decomposes an evolving co-authorship-like graph,
//! computes RWR proximities from a query node at every snapshot, fits a
//! linear trend to each candidate's series, and ranks unlinked candidates by
//! projected proximity.
//!
//! Run with: `cargo run --release --example link_prediction`

// CLI tool: printing the report is its entire purpose.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use clude::{Clude, EvolvingMatrixSequence, LudemSolver, SolverConfig};
use clude_graph::generators::{dblp_like, DblpLikeConfig};
use clude_graph::MatrixKind;
use clude_measures::rwr;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Least-squares slope of a series.
fn slope(series: &[f64]) -> f64 {
    let n = series.len() as f64;
    let sx: f64 = (0..series.len()).map(|i| i as f64).sum();
    let sy: f64 = series.iter().sum();
    let sxx: f64 = (0..series.len()).map(|i| (i * i) as f64).sum();
    let sxy: f64 = series.iter().enumerate().map(|(i, &y)| i as f64 * y).sum();
    let denom = n * sxx - sx * sx;
    if denom == 0.0 {
        0.0
    } else {
        (n * sxy - sx * sy) / denom
    }
}

fn main() {
    let config = DblpLikeConfig {
        n_authors: 400,
        initial_papers: 500,
        papers_per_snapshot: 10,
        max_authors_per_paper: 4,
        n_snapshots: 30,
    };
    let mut rng = StdRng::seed_from_u64(5);
    let egs = dblp_like::generate(&config, &mut rng);
    let damping = 0.85;
    let ems = EvolvingMatrixSequence::from_egs(&egs, MatrixKind::RandomWalk { damping });

    // Decompose the whole sequence once.
    let solution = Clude::new(0.95)
        .solve(&ems, &SolverConfig::default())
        .expect("decomposition succeeds");

    // Query author: the most prolific one in the last snapshot.
    let last_graph = egs.snapshot(egs.len() - 1);
    let query = (0..last_graph.n_nodes())
        .max_by_key(|&u| last_graph.out_degree(u))
        .unwrap();

    // RWR proximity series of every author from the query author.
    let t_len = ems.len();
    let mut proximity_series = vec![Vec::with_capacity(t_len); ems.order()];
    for t in 0..t_len {
        let scores = rwr(&solution.decomposed[t], ems.order(), query, damping).unwrap();
        for (node, series) in proximity_series.iter_mut().enumerate() {
            series.push(scores[node]);
        }
    }

    // Rank candidates that are not yet co-authors by current proximity plus
    // projected growth (slope over the series).
    let horizon = 5.0;
    let mut candidates: Vec<(usize, f64, f64)> = (0..ems.order())
        .filter(|&v| v != query && !last_graph.has_edge(query, v))
        .map(|v| {
            let series = &proximity_series[v];
            let current = *series.last().unwrap();
            let projected = current + horizon * slope(series);
            (v, current, projected)
        })
        .collect();
    candidates.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap());

    println!("link prediction for author {query} (not-yet-co-authors, ranked by projected RWR proximity):");
    println!("rank\tauthor\tcurrent_proximity\tprojected_proximity");
    for (rank, (v, current, projected)) in candidates.iter().take(10).enumerate() {
        println!("{}\t{v}\t{current:.4e}\t{projected:.4e}", rank + 1);
    }
    println!(
        "(decomposing once with CLUDE took {:.3}s for {} snapshots — each proximity sweep is just substitutions)",
        solution.report.timings.total().as_secs_f64(),
        t_len
    );
}
