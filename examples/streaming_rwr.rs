//! Streaming RWR over an evolving graph, served by `clude-engine`.
//!
//! The batch examples decompose a *finished* sequence; this one replays a
//! Wiki-like evolving graph as a live stream of edge operations and asks the
//! engine for random-walk-with-restart scores between batches — the paper's
//! "one decomposition, many cheap queries" promise in its online form.
//!
//! Run with:
//! ```text
//! cargo run --release --example streaming_rwr
//! ```

// CLI tool: printing the report is its entire purpose.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use clude_engine::{BatchPolicy, CludeEngine, EngineConfig, RefreshPolicy};
use clude_graph::generators::wiki_like::{self, WikiLikeConfig};
use clude_measures::MeasureQuery;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let damping = 0.85;
    // A small Wiki-like sequence: 200 pages, 20 daily snapshots.
    let config = WikiLikeConfig::tiny();
    let egs = wiki_like::generate(&config, &mut StdRng::seed_from_u64(42));
    let n = egs.n_nodes();
    println!(
        "wiki-like stream: {} pages, {} snapshots, {} -> {} links",
        n,
        egs.len(),
        egs.first_last_edge_counts().0,
        egs.first_last_edge_counts().1
    );

    // Bring up the engine on the first snapshot; cut batches CLUDE-style
    // when the pending churn would push similarity below 98 %.
    let engine = CludeEngine::new(
        egs.snapshot(0),
        EngineConfig {
            batch: BatchPolicy::by_similarity(256, 0.98),
            refresh: RefreshPolicy::QualityTriggered {
                max_quality_loss: 0.5,
            },
            ..EngineConfig::default()
        },
    )
    .expect("base snapshot factorizes");

    // The page we track: the one with the most in-links at the start.
    let tracked = (0..n)
        .max_by_key(|&u| egs.snapshot(0).in_degree(u))
        .unwrap();
    let query = MeasureQuery::Rwr {
        seed: tracked,
        damping,
    };

    // Replay every archived delta as single edge operations.
    for step in 0..egs.len() - 1 {
        let delta = egs.delta(step);
        for &(u, v) in &delta.removed {
            engine.remove_edge(u, v).expect("valid removal");
        }
        for &(u, v) in &delta.added {
            engine.insert_edge(u, v).expect("valid insertion");
        }
        // Close the day: apply whatever is still pending.
        engine.flush().expect("batch applies");

        let scores = engine.query(&query).expect("RWR query succeeds");
        let best_neighbour = (0..n)
            .filter(|&u| u != tracked)
            .max_by(|&a, &b| scores[a].partial_cmp(&scores[b]).unwrap())
            .unwrap();
        println!(
            "day {:>3} | snapshot {:>3} | rwr(self) {:.5} | closest page {:>4} ({:.5})",
            step + 1,
            engine.current_snapshot_id(),
            scores[tracked],
            best_neighbour,
            scores[best_neighbour]
        );
    }

    println!("\nengine counters:\n{}", engine.stats());
    println!(
        "retained snapshots for time travel: {:?}",
        engine.retained_snapshot_ids()
    );
}
