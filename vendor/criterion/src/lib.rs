//! Offline drop-in subset of the `criterion` API.
//!
//! The build environment is hermetic (no crates.io access), so this vendored
//! crate implements the bench surface the workspace uses — benchmark groups
//! with `sample_size` / `warm_up_time` / `measurement_time`, `bench_function`,
//! `bench_with_input`, [`BenchmarkId`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.  Measurement is simple wall-clock sampling
//! (median over `sample_size` samples) printed to stdout; there is no
//! statistical analysis, HTML report, or baseline comparison.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id made of a parameter value only.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark name.
pub trait IntoBenchmarkId {
    /// The rendered name.
    fn into_name(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_name(self) -> String {
        self.name
    }
}

impl IntoBenchmarkId for &str {
    fn into_name(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_name(self) -> String {
        self
    }
}

/// Passed to bench closures; `iter` runs and times the workload.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Bencher {
    /// Times `routine`, collecting `sample_size` samples after a warm-up.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let warm_up_end = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_up_end {
            black_box(routine());
        }
        let measurement_end = Instant::now() + self.measurement_time;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
            if Instant::now() > measurement_end {
                break;
            }
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the measurement-time budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full_name = format!("{}/{}", self.name, id.into_name());
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
        };
        f(&mut bencher);
        self.criterion.report(&full_name, &bencher.samples);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id.into_name(), |b| f(b, input))
    }

    /// Ends the group (kept for API compatibility; reporting is immediate).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
    default_warm_up: Duration,
    default_measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 20,
            default_warm_up: Duration::from_millis(300),
            default_measurement: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Sets the default sample size for subsequent benchmarks.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.default_sample_size = n.max(1);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let (sample_size, warm_up_time, measurement_time) = (
            self.default_sample_size,
            self.default_warm_up,
            self.default_measurement,
        );
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size,
            warm_up_time,
            measurement_time,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.default_sample_size,
            warm_up_time: self.default_warm_up,
            measurement_time: self.default_measurement,
        };
        f(&mut bencher);
        self.report(name, &bencher.samples);
        self
    }

    fn report(&mut self, name: &str, samples: &[Duration]) {
        if samples.is_empty() {
            println!("{name:<60} (no samples)");
            return;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2];
        let min = sorted[0];
        let max = sorted[sorted.len() - 1];
        println!(
            "{name:<60} time: [{} {} {}]",
            fmt_duration(min),
            fmt_duration(median),
            fmt_duration(max)
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Declares a benchmark group entry point, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main`, as in criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> Criterion {
        let mut c = Criterion::default().sample_size(3);
        c.default_warm_up = Duration::from_millis(1);
        c.default_measurement = Duration::from_millis(20);
        c
    }

    #[test]
    fn group_runs_benchmarks() {
        let mut c = tiny_config();
        let mut group = c.benchmark_group("g");
        group
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(10));
        let mut runs = 0usize;
        group.bench_function("f", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.bench_with_input(BenchmarkId::new("p", 7), &7usize, |b, &p| b.iter(|| p * 2));
        group.finish();
        assert!(runs >= 2);
    }

    #[test]
    fn bench_ids_render() {
        assert_eq!(BenchmarkId::new("f", 3).into_name(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").into_name(), "x");
        assert_eq!("plain".into_name(), "plain");
    }

    #[test]
    fn durations_format_by_magnitude() {
        assert!(fmt_duration(Duration::from_nanos(5)).ends_with("ns"));
        assert!(fmt_duration(Duration::from_micros(5)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(5)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(5)).ends_with(" s"));
    }
}
