//! Offline drop-in subset of the `proptest` API.
//!
//! The build environment is hermetic (no crates.io access), so this vendored
//! crate implements the surface the workspace's property tests use:
//!
//! * the [`Strategy`] trait with `prop_map`, implemented for integer and
//!   float ranges, tuples, and [`Just`];
//! * [`collection::vec`] with `usize` or `Range<usize>` size specifications;
//! * the [`proptest!`] macro (with optional `#![proptest_config(...)]`) and
//!   the [`prop_assert!`] / [`prop_assert_eq!`] assertion macros;
//! * [`ProptestConfig::with_cases`].
//!
//! Inputs are generated from a deterministic per-case RNG (SplitMix64 over
//! the case index), so failures reproduce exactly.  There is **no shrinking**:
//! a failing case reports the panic of the test body directly.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Deterministic RNG driving input generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator for one test case, derived from the case index.
    pub fn for_case(case: u64) -> Self {
        TestRng {
            state: case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03,
        }
    }

    /// The next 64 uniform bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// How many cases `proptest!` runs per property.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of test inputs.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_int_strategy!(usize, u64, u32, i64, i32);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Size specifications `vec` accepts: an exact `usize` or a `Range<usize>`.
    pub trait IntoSizeRange {
        /// Lower and (exclusive) upper bound on the length.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    /// The strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max_exclusive: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.max_exclusive - self.min).max(1) as u64;
            let len = self.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for vectors of `element` values with lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max_exclusive) = size.bounds();
        assert!(min < max_exclusive, "empty size range");
        VecStrategy {
            element,
            min,
            max_exclusive,
        }
    }
}

/// Why a test case did not pass (subset of proptest's type).
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` and should not count as a
    /// failure.
    Reject(String),
    /// The case failed.
    Fail(String),
}

/// The conventional proptest import surface.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, Just, ProptestConfig, Strategy,
        TestCaseError, TestRng,
    };
}

/// Skips the current case when the condition does not hold (the case counts
/// as rejected, not failed).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                ::std::stringify!($cond).to_string(),
            ));
        }
    };
}

/// Asserts a condition inside a property (panics with context on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Asserts equality inside a property (panics with context on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*)
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a test running the body over `config.cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($config); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr); $($(#[$meta:meta])* fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..config.cases as u64 {
                    let mut __rng = $crate::TestRng::for_case(case);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    // The body runs in a Result-returning closure so that
                    // `prop_assume!` rejections and explicit `return Ok(())`
                    // work as in real proptest.
                    #[allow(clippy::redundant_closure_call)]
                    let __result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match __result {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("property '{}' failed on case {}: {}",
                                   ::std::stringify!($name), case, msg);
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..9, f in -1.0f64..1.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_size(v in collection::vec(0usize..5, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn prop_map_applies(d in (0usize..10).prop_map(|x| x * 2)) {
            prop_assert_eq!(d % 2, 0);
            prop_assert!(d < 20);
        }
    }

    #[test]
    fn generation_is_deterministic_per_case() {
        let s = (0usize..100, -1.0f64..1.0);
        let a = crate::Strategy::generate(&s, &mut TestRng::for_case(5));
        let b = crate::Strategy::generate(&s, &mut TestRng::for_case(5));
        assert_eq!(a, b);
    }
}
