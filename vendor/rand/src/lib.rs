//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment of this repository is hermetic (no crates.io
//! access), so this vendored crate re-implements exactly the surface the
//! workspace uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] / [`Rng::gen_bool`], and [`seq::SliceRandom`]
//! (`shuffle` / `choose`).  The generator is xoshiro256** seeded through
//! SplitMix64 — deterministic across platforms, which is all the test-suite
//! and dataset simulators need.  It is **not** a cryptographic RNG.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods, as in `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples uniformly from a range (`start..end` or `start..=end`).
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "probability out of range");
        sample_unit_f64(self) < p
    }
}

impl<T: RngCore> Rng for T {}

fn sample_unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 uniform mantissa bits in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

fn sample_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0, "empty range");
    // Multiply-shift bounded sampling (Lemire); bias is < 2^-64 per draw and
    // irrelevant for the deterministic simulators this crate serves.
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

/// Ranges `gen_range` accepts.
pub trait SampleRange {
    /// Element type produced by the range.
    type Output;
    /// Draws one uniform sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(sample_below(rng, span) as $t)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as i128 - start as i128 + 1) as u64;
                start.wrapping_add(sample_below(rng, span) as $t)
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, i64, i32);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + (self.end - self.start) * sample_unit_f64(rng)
    }
}

/// Seedable construction, as in `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for `rand`'s StdRng.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, per the xoshiro reference.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Slice sampling helpers, as in `rand::seq::SliceRandom`.
pub mod seq {
    use super::{sample_below, RngCore};

    /// `shuffle` and `choose` on slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        /// A uniformly chosen element, or `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = sample_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(sample_below(rng, self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..9);
            assert!((3..9).contains(&v));
            let w = rng.gen_range(2usize..=4);
            assert!((2..=4).contains(&w));
            let f = rng.gen_range(-0.5f64..0.5);
            assert!((-0.5..0.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_and_choose() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [usize; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
