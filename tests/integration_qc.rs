//! Cross-crate integration tests for LUDEM-QC on a DBLP-like symmetric EGS
//! (the setting of the paper's Figure 10).

use clude::{
    evaluate_orderings, BruteForce, CincQc, CludeQc, EvolvingMatrixSequence, LudemSolver,
    SolverConfig,
};
use clude_graph::generators::{dblp_like, DblpLikeConfig};
use clude_graph::MatrixKind;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn dblp_symmetric_ems(seed: u64) -> EvolvingMatrixSequence {
    let mut rng = StdRng::seed_from_u64(seed);
    let egs = dblp_like::generate(&DblpLikeConfig::tiny(), &mut rng);
    EvolvingMatrixSequence::from_egs(&egs, MatrixKind::SymmetricLaplacian { shift: 1.0 })
}

#[test]
fn dblp_like_matrices_are_symmetric() {
    let ems = dblp_symmetric_ems(1);
    assert!(ems.is_symmetric());
    assert!(ems.average_successive_similarity() > 0.9);
}

#[test]
fn qc_solvers_respect_their_budget_and_answer_queries() {
    let ems = dblp_symmetric_ems(2);
    let (bf, reference) = BruteForce
        .solve_with_reference(&ems, &SolverConfig::default())
        .unwrap();
    for beta in [0.0, 0.1, 0.3] {
        for (name, solution) in [
            (
                "CINC-QC",
                CincQc::new(beta)
                    .solve(&ems, &SolverConfig::default())
                    .unwrap(),
            ),
            (
                "CLUDE-QC",
                CludeQc::new(beta)
                    .solve(&ems, &SolverConfig::default())
                    .unwrap(),
            ),
        ] {
            let eval = evaluate_orderings(&ems, &solution.report.orderings, &reference);
            assert!(
                eval.max() <= beta + 1e-9,
                "{name} at beta={beta}: max quality-loss {} exceeds the budget",
                eval.max()
            );
            // Queries agree with BF.
            let b = vec![1.0; ems.order()];
            let t = ems.len() - 1;
            let x = solution.solve(t, &b).unwrap();
            let x_ref = bf.solve(t, &b).unwrap();
            let diff = x
                .iter()
                .zip(x_ref.iter())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f64, f64::max);
            assert!(
                diff < 1e-7,
                "{name} at beta={beta}: solution deviates by {diff}"
            );
        }
    }
}

#[test]
fn looser_budget_means_fewer_clusters_and_no_worse_speed_structure() {
    let ems = dblp_symmetric_ems(3);
    let tight = CludeQc::new(0.0)
        .solve(&ems, &SolverConfig::timing_only())
        .unwrap();
    let loose = CludeQc::new(0.4)
        .solve(&ems, &SolverConfig::timing_only())
        .unwrap();
    assert!(loose.report.cluster_count() <= tight.report.cluster_count());
    // Both tile the sequence.
    assert_eq!(tight.report.cluster_sizes.iter().sum::<usize>(), ems.len());
    assert_eq!(loose.report.cluster_sizes.iter().sum::<usize>(), ems.len());
    // A looser budget means fewer full decompositions (one per cluster).
    assert!(loose.report.cluster_count() <= tight.report.cluster_count());
}
