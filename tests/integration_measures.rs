//! Cross-crate integration tests for the measure pipelines: LU-backed
//! measures against the approximate baselines, and the case-study workflow.

use clude::{BruteForce, Clude, EvolvingMatrixSequence, LudemSolver, SolverConfig};
use clude_graph::generators::{patent_like, wiki_like, PatentLikeConfig, WikiLikeConfig};
use clude_graph::{EvolvingGraphSequence, MatrixKind};
use clude_measures::{
    pagerank, pagerank_power_iteration, rwr, rwr_monte_carlo, rwr_power_iteration, MeasureSeries,
};
use clude_sparse::vector;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn lu_backed_pagerank_matches_power_iteration_on_every_snapshot() {
    let mut rng = StdRng::seed_from_u64(8);
    let egs = wiki_like::generate(&WikiLikeConfig::tiny(), &mut rng);
    let damping = 0.85;
    let ems = EvolvingMatrixSequence::from_egs(&egs, MatrixKind::RandomWalk { damping });
    let solution = Clude::new(0.95)
        .solve(&ems, &SolverConfig::default())
        .unwrap();
    for (t, graph) in egs.snapshots().enumerate() {
        let exact = pagerank(&solution.decomposed[t], ems.order(), damping).unwrap();
        let approx = pagerank_power_iteration(&graph, damping, 3000, 1e-13).scores;
        assert!(
            vector::max_abs_diff(&exact, &approx) < 1e-7,
            "snapshot {t} disagrees"
        );
    }
}

#[test]
fn lu_backed_rwr_matches_both_baselines() {
    let mut rng = StdRng::seed_from_u64(10);
    let egs = wiki_like::generate(&WikiLikeConfig::tiny(), &mut rng);
    let graph = egs.snapshot(egs.len() - 1);
    let damping = 0.85;
    let ems = EvolvingMatrixSequence::from_egs(
        &EvolvingGraphSequence::from_base(graph.clone()),
        MatrixKind::RandomWalk { damping },
    );
    let solution = BruteForce.solve(&ems, &SolverConfig::default()).unwrap();
    let seed = 5usize;
    let exact = rwr(&solution.decomposed[0], ems.order(), seed, damping).unwrap();
    let pi = rwr_power_iteration(&graph, seed, damping, 3000, 1e-13);
    assert!(vector::max_abs_diff(&exact, &pi.scores) < 1e-7);
    let mc = rwr_monte_carlo(
        &graph,
        seed,
        damping,
        3000,
        80,
        &mut StdRng::seed_from_u64(1),
    );
    // Monte Carlo is noisy; only require agreement on the top node and a
    // loose numeric bound.
    assert_eq!(
        vector::rank_descending(&exact)[0],
        vector::rank_descending(&mc.scores)[0]
    );
    assert!(vector::max_abs_diff(&exact, &mc.scores) < 0.05);
}

#[test]
fn case_study_rising_company_climbs_the_ranking() {
    let mut rng = StdRng::seed_from_u64(3);
    let config = PatentLikeConfig::tiny();
    let patent = patent_like::generate(&config, &mut rng);
    let series = MeasureSeries::build(&patent.egs, 0.85, &Clude::default()).unwrap();
    let last = patent.egs.len() - 1;
    let seeds = patent.patents_of(config.subject_company, last);
    let companies: Vec<usize> = (0..config.n_companies)
        .filter(|&c| c != config.subject_company)
        .collect();
    let groups: Vec<Vec<usize>> = companies
        .iter()
        .map(|&c| patent.patents_of(c, last))
        .collect();
    let ranks = series.group_rank_series(&seeds, &groups).unwrap();
    let rising_idx = companies
        .iter()
        .position(|&c| c == config.rising_company)
        .unwrap();
    let first_rank = ranks[rising_idx][0];
    let last_rank = ranks[rising_idx][series.len() - 1];
    // Smaller rank = closer.  The planted signal must not degrade.
    assert!(
        last_rank <= first_rank,
        "rising company went {first_rank} -> {last_rank}"
    );
}

#[test]
fn measure_series_is_consistent_across_solvers() {
    let mut rng = StdRng::seed_from_u64(21);
    let egs = wiki_like::generate(&WikiLikeConfig::tiny(), &mut rng);
    let a = MeasureSeries::build(&egs, 0.85, &Clude::new(0.9)).unwrap();
    let b = MeasureSeries::build(&egs, 0.85, &BruteForce).unwrap();
    let node = 3;
    let series_a = a.pagerank_series(node).unwrap();
    let series_b = b.pagerank_series(node).unwrap();
    assert!(vector::max_abs_diff(&series_a, &series_b) < 1e-9);
}
