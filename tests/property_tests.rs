//! Property-based tests (proptest) on the core invariants of the
//! reproduction: factorization correctness, Bennett-update equivalence with
//! refactorization, symbolic-pattern coverage, USSP coverage, similarity
//! metric properties and permutation round-trips.

// Indexed loops mirror the paper's matrix notation.
#![allow(clippy::needless_range_loop)]

use clude_lu::{
    apply_delta, factorize_fresh, markowitz_ordering, symbolic_decomposition, DynamicLuFactors,
    LuFactors, LuStructure,
};
use clude_sparse::{CooMatrix, CsrMatrix, Ordering, Permutation, SparsityPattern};
use proptest::prelude::*;

/// Strategy: a random sparse, strictly diagonally dominant matrix of order
/// `n` with `extra` off-diagonal entries (such matrices factorize without
/// pivoting, like the paper's `I − dW` matrices).
fn diag_dominant_matrix(n: usize, extra: usize) -> impl Strategy<Value = CsrMatrix> {
    let offdiag = proptest::collection::vec((0..n, 0..n, -1.0f64..1.0), 0..extra.max(1));
    offdiag.prop_map(move |entries| {
        let mut coo = CooMatrix::new(n, n);
        let mut row_sums = vec![0.0; n];
        let mut filtered = Vec::new();
        for (i, j, v) in entries {
            if i != j {
                row_sums[i] += v.abs();
                filtered.push((i, j, v));
            }
        }
        for i in 0..n {
            coo.push(i, i, row_sums[i] + 1.0).unwrap();
        }
        for (i, j, v) in filtered {
            coo.push(i, j, v).unwrap();
        }
        CsrMatrix::from_coo(&coo)
    })
}

/// Strategy: a sparse delta touching existing or new positions.
fn delta_entries(n: usize, count: usize) -> impl Strategy<Value = Vec<(usize, usize, f64)>> {
    proptest::collection::vec((0..n, 0..n, -0.4f64..0.4), 1..count.max(2))
}

fn apply_delta_to_matrix(a: &CsrMatrix, delta: &[(usize, usize, f64, f64)]) -> CsrMatrix {
    let mut coo = CooMatrix::new(a.n_rows(), a.n_cols());
    for (i, j, v) in a.iter() {
        coo.push(i, j, v).unwrap();
    }
    for &(i, j, old, new) in delta {
        coo.push(i, j, new - old).unwrap();
    }
    CsrMatrix::from_coo(&coo)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn lu_factorization_reconstructs_the_matrix(a in diag_dominant_matrix(12, 30)) {
        let f = factorize_fresh(&a).unwrap();
        let err = f.reconstruct().max_abs_diff(&a).unwrap();
        prop_assert!(err < 1e-9, "reconstruction error {err}");
    }

    #[test]
    fn lu_solve_satisfies_the_system(a in diag_dominant_matrix(10, 25), seed in 0usize..10) {
        let f = factorize_fresh(&a).unwrap();
        let mut b = vec![0.0; 10];
        b[seed] = 1.0;
        let x = f.solve(&b).unwrap();
        let ax = a.mul_vec(&x).unwrap();
        for (l, r) in ax.iter().zip(b.iter()) {
            prop_assert!((l - r).abs() < 1e-8);
        }
    }

    #[test]
    fn factor_pattern_is_covered_by_symbolic_pattern(a in diag_dominant_matrix(12, 30)) {
        let f = factorize_fresh(&a).unwrap();
        let symbolic = symbolic_decomposition(&a.pattern()).pattern;
        // Non-zero slots of L+U all lie inside s̃p(A).
        let l = f.l_matrix();
        let u = f.u_matrix();
        for (i, j, v) in l.iter().chain(u.iter()) {
            if v != 0.0 && i != j {
                prop_assert!(symbolic.contains(i, j), "({i},{j}) outside s̃p");
            }
        }
    }

    #[test]
    fn bennett_dynamic_update_matches_refactorization(
        a in diag_dominant_matrix(10, 22),
        raw_delta in delta_entries(10, 6),
    ) {
        let mut dynamic = DynamicLuFactors::factorize(&a).unwrap();
        // Build an exact (row, col, old, new) delta keeping the diagonal
        // dominant enough to stay factorizable.
        let delta: Vec<(usize, usize, f64, f64)> = raw_delta
            .into_iter()
            .filter(|&(i, j, _)| i != j)
            .map(|(i, j, v)| (i, j, a.get(i, j), a.get(i, j) + v))
            .collect();
        prop_assume!(!delta.is_empty());
        let a_new = apply_delta_to_matrix(&a, &delta);
        // The updated matrix may become singular in rare cases; skip those.
        let fresh = match factorize_fresh(&a_new) {
            Ok(f) => f,
            Err(_) => return Ok(()),
        };
        apply_delta(&mut dynamic, &delta).unwrap();
        let b: Vec<f64> = (0..10).map(|i| (i as f64 * 0.7).cos()).collect();
        let x1 = dynamic.solve(&b).unwrap();
        let x2 = fresh.solve(&b).unwrap();
        for (u, v) in x1.iter().zip(x2.iter()) {
            prop_assert!((u - v).abs() < 1e-7, "{u} vs {v}");
        }
    }

    #[test]
    fn bennett_static_update_matches_refactorization_within_union_structure(
        a in diag_dominant_matrix(10, 22),
        raw_delta in delta_entries(10, 5),
    ) {
        let delta: Vec<(usize, usize, f64, f64)> = raw_delta
            .into_iter()
            .filter(|&(i, j, _)| i != j)
            .map(|(i, j, v)| (i, j, a.get(i, j), a.get(i, j) + v))
            .collect();
        prop_assume!(!delta.is_empty());
        let a_new = apply_delta_to_matrix(&a, &delta);
        let union = a.pattern().union(&a_new.pattern()).unwrap();
        let structure = LuStructure::from_pattern(&union).unwrap().into_shared();
        let mut factors = LuFactors::factorize(structure.clone(), &a).unwrap();
        let fresh = match LuFactors::factorize(structure, &a_new) {
            Ok(f) => f,
            Err(_) => return Ok(()),
        };
        apply_delta(&mut factors, &delta).unwrap();
        for i in 0..10 {
            for j in 0..10 {
                prop_assert!((factors.l(i, j) - fresh.l(i, j)).abs() < 1e-7);
                prop_assert!((factors.u(i, j) - fresh.u(i, j)).abs() < 1e-7);
            }
        }
    }

    #[test]
    fn markowitz_never_loses_to_natural_order(a in diag_dominant_matrix(14, 40)) {
        let pattern = a.pattern();
        let natural = symbolic_decomposition(&pattern).size();
        let markowitz = markowitz_ordering(&pattern).symbolic_size;
        prop_assert!(markowitz <= natural, "markowitz {markowitz} vs natural {natural}");
    }

    #[test]
    fn mes_is_symmetric_bounded_and_reflexive(
        entries_a in proptest::collection::vec((0usize..8, 0usize..8), 0..20),
        entries_b in proptest::collection::vec((0usize..8, 0usize..8), 0..20),
    ) {
        let a = SparsityPattern::from_entries(8, 8, entries_a).unwrap();
        let b = SparsityPattern::from_entries(8, 8, entries_b).unwrap();
        let ab = a.mes(&b).unwrap();
        let ba = b.mes(&a).unwrap();
        prop_assert!((ab - ba).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&ab));
        prop_assert!((a.mes(&a).unwrap() - 1.0).abs() < 1e-12);
        // Monotonicity of the union/intersection bounds.
        let union = a.union(&b).unwrap();
        let inter = a.intersection(&b).unwrap();
        prop_assert!(inter.is_subset_of(&a) && inter.is_subset_of(&b));
        prop_assert!(a.is_subset_of(&union) && b.is_subset_of(&union));
    }

    #[test]
    fn symbolic_pattern_is_monotone_in_the_input(
        entries in proptest::collection::vec((0usize..8, 0usize..8), 0..18),
        extra in proptest::collection::vec((0usize..8, 0usize..8), 0..6),
    ) {
        // Lemma 1 of the paper.
        let small = SparsityPattern::from_entries(8, 8, entries.clone()).unwrap();
        let big = SparsityPattern::from_entries(8, 8, entries.into_iter().chain(extra)).unwrap();
        let s_small = symbolic_decomposition(&small).pattern;
        let s_big = symbolic_decomposition(&big).pattern;
        prop_assert!(s_small.is_subset_of(&s_big));
    }

    #[test]
    fn permutation_roundtrip_and_reorder_preserve_values(
        a in diag_dominant_matrix(9, 20),
        perm_seed in proptest::collection::vec(0u64..1000, 9),
    ) {
        // Build a permutation by sorting the seed values.
        let mut idx: Vec<usize> = (0..9).collect();
        idx.sort_by_key(|&i| perm_seed[i]);
        let p = Permutation::from_new_to_old(idx).unwrap();
        let o = Ordering::symmetric(p.clone());
        let reordered = a.reorder(&o).unwrap();
        prop_assert_eq!(reordered.nnz(), a.nnz());
        for (i, j, v) in reordered.iter() {
            prop_assert_eq!(a.get(p.new_to_old(i), p.new_to_old(j)), v);
        }
        // Vector gather/scatter round-trip.
        let x: Vec<f64> = (0..9).map(|i| i as f64).collect();
        let y = p.apply_vec(&x).unwrap();
        let back = p.apply_inverse_vec(&y).unwrap();
        prop_assert_eq!(back, x);
    }
}
