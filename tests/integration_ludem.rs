//! Cross-crate integration tests: from an evolving graph sequence all the way
//! to per-snapshot factors, for every LUDEM algorithm.

use clude::{
    evaluate_orderings, BruteForce, Clude, ClusterIncremental, EvolvingMatrixSequence, Incremental,
    LudemSolver, SolverConfig,
};
use clude_graph::generators::{wiki_like, WikiLikeConfig};
use clude_graph::MatrixKind;
use clude_sparse::vector;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn wiki_ems(seed: u64) -> EvolvingMatrixSequence {
    let mut rng = StdRng::seed_from_u64(seed);
    let egs = wiki_like::generate(&WikiLikeConfig::tiny(), &mut rng);
    EvolvingMatrixSequence::from_egs(&egs, MatrixKind::RandomWalk { damping: 0.85 })
}

#[test]
fn all_algorithms_agree_on_query_answers() {
    let ems = wiki_ems(1);
    let config = SolverConfig::default();
    let bf = BruteForce.solve(&ems, &config).unwrap();
    let inc = Incremental.solve(&ems, &config).unwrap();
    let cinc = ClusterIncremental::new(0.95).solve(&ems, &config).unwrap();
    let clude = Clude::new(0.95).solve(&ems, &config).unwrap();

    let n = ems.order();
    let mut b = vec![0.0; n];
    b[3] = 0.15;
    for t in [0usize, ems.len() / 2, ems.len() - 1] {
        let reference = bf.solve(t, &b).unwrap();
        for (name, solution) in [("INC", &inc), ("CINC", &cinc), ("CLUDE", &clude)] {
            let x = solution.solve(t, &b).unwrap();
            let diff = vector::max_abs_diff(&x, &reference);
            assert!(diff < 1e-8, "{name} deviates by {diff} at snapshot {t}");
        }
        // The solution actually satisfies A x = b.
        let ax = ems.matrix(t).mul_vec(&reference).unwrap();
        assert!(vector::max_abs_diff(&ax, &b) < 1e-8);
    }
}

#[test]
fn quality_ordering_matches_the_paper() {
    // The paper's headline quality result: CLUDE <= CINC <= INC in average
    // quality-loss, with BF at exactly zero.
    let ems = wiki_ems(2);
    let (bf, reference) = BruteForce
        .solve_with_reference(&ems, &SolverConfig::timing_only())
        .unwrap();
    let bf_eval = evaluate_orderings(&ems, &bf.report.orderings, &reference);
    assert!(bf_eval.max() < 1e-12);

    let inc = Incremental
        .solve(&ems, &SolverConfig::timing_only())
        .unwrap();
    let cinc = ClusterIncremental::new(0.95)
        .solve(&ems, &SolverConfig::timing_only())
        .unwrap();
    let clude = Clude::new(0.95)
        .solve(&ems, &SolverConfig::timing_only())
        .unwrap();

    let q_inc = evaluate_orderings(&ems, &inc.report.orderings, &reference).average();
    let q_cinc = evaluate_orderings(&ems, &cinc.report.orderings, &reference).average();
    let q_clude = evaluate_orderings(&ems, &clude.report.orderings, &reference).average();

    assert!(q_clude <= q_cinc + 1e-9, "CLUDE {q_clude} vs CINC {q_cinc}");
    assert!(q_cinc <= q_inc + 1e-9, "CINC {q_cinc} vs INC {q_inc}");
    assert!(q_inc >= 0.0);
}

#[test]
fn factor_sizes_reflect_ordering_quality() {
    // INC's factors (built for A_1's ordering) must eventually be at least as
    // large as CLUDE's universal structures on the same snapshots.
    let ems = wiki_ems(3);
    let inc = Incremental
        .solve(&ems, &SolverConfig::timing_only())
        .unwrap();
    let clude = Clude::new(0.95)
        .solve(&ems, &SolverConfig::timing_only())
        .unwrap();
    let last = ems.len() - 1;
    assert!(
        inc.report.factor_nnz[last] as f64 >= 0.9 * clude.report.factor_nnz[last] as f64,
        "INC {} vs CLUDE {}",
        inc.report.factor_nnz[last],
        clude.report.factor_nnz[last]
    );
    // CLUDE does zero structural maintenance, INC does plenty.
    assert_eq!(clude.report.structural.inserts, 0);
    assert!(inc.report.structural.probes > 0);
}

#[test]
fn alpha_controls_cluster_granularity() {
    let ems = wiki_ems(4);
    let coarse = Clude::new(0.90)
        .solve(&ems, &SolverConfig::timing_only())
        .unwrap();
    let fine = Clude::new(0.995)
        .solve(&ems, &SolverConfig::timing_only())
        .unwrap();
    assert!(fine.report.cluster_count() >= coarse.report.cluster_count());
    // Every clustering tiles the sequence exactly.
    assert_eq!(coarse.report.cluster_sizes.iter().sum::<usize>(), ems.len());
    assert_eq!(fine.report.cluster_sizes.iter().sum::<usize>(), ems.len());
}
