//! Cross-crate integration tests of the streaming engine: equivalence with
//! the batch CLUDE solver, and property tests over random ingest/query
//! interleavings.

use clude::algorithms::{Clude, LudemSolver, SolverConfig};
use clude::ems::EvolvingMatrixSequence;
use clude_engine::{
    BatchPolicy, CludeEngine, EngineConfig, FactorStore, RefreshPolicy, ShardedFactorStore,
};
use clude_graph::generators::wiki_like::{self, WikiLikeConfig};
use clude_graph::{DiGraph, GraphDelta, MatrixKind, NodePartition};
use clude_measures::MeasureQuery;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const DAMPING: f64 = 0.85;

/// Streaming the archived deltas of an EGS through the engine must produce,
/// snapshot for snapshot, the same RWR scores as decomposing the equivalent
/// matrix sequence with the batch CLUDE solver.
#[test]
fn streaming_rwr_matches_batch_clude() {
    let egs = wiki_like::generate(&WikiLikeConfig::tiny(), &mut StdRng::seed_from_u64(99));
    let n = egs.n_nodes();

    // Batch side: decompose the whole sequence at once.
    let ems = EvolvingMatrixSequence::from_egs(&egs, MatrixKind::RandomWalk { damping: DAMPING });
    let batch = Clude::new(0.9)
        .solve(&ems, &SolverConfig::default())
        .expect("batch CLUDE decomposition succeeds");

    // Streaming side: replay the same deltas; one flush per snapshot keeps
    // engine snapshot ids aligned with sequence indices.
    let engine = CludeEngine::new(
        egs.snapshot(0),
        EngineConfig {
            batch: BatchPolicy::by_count(usize::MAX),
            refresh: RefreshPolicy::QualityTriggered {
                max_quality_loss: 1.0,
            },
            ring_capacity: 4,
            ..EngineConfig::default()
        },
    )
    .expect("base snapshot factorizes");

    let seeds = [0usize, 7, 42, n - 1];
    for i in 0..egs.len() {
        if i > 0 {
            let delta = egs.delta(i - 1);
            for &(u, v) in &delta.removed {
                engine.remove_edge(u, v).expect("removal accepted");
            }
            for &(u, v) in &delta.added {
                engine.insert_edge(u, v).expect("insertion accepted");
            }
            assert_eq!(engine.flush().expect("batch applies"), Some(i as u64));
        }
        for &seed in &seeds {
            let streamed = engine
                .query(&MeasureQuery::Rwr {
                    seed,
                    damping: DAMPING,
                })
                .expect("engine answers");
            let batched =
                clude_measures::rwr(&batch.decomposed[i], n, seed, DAMPING).expect("batch answers");
            for (a, b) in streamed.iter().zip(batched.iter()) {
                assert!(
                    (a - b).abs() <= 1e-9,
                    "snapshot {i}, seed {seed}: streamed {a} vs batch {b}"
                );
            }
        }
    }
    let stats = engine.stats();
    assert_eq!(stats.batches_applied, (egs.len() - 1) as u64);
}

/// The pending-batch coalescing must not change what the snapshots see:
/// add/remove churn inside one batch collapses to the net delta.
#[test]
fn coalesced_churn_matches_direct_construction() {
    let base = DiGraph::from_edges(8, (0..8).map(|i| (i, (i + 1) % 8)).collect::<Vec<_>>());
    let engine = CludeEngine::new(
        base.clone(),
        EngineConfig {
            batch: BatchPolicy::by_count(usize::MAX),
            ..EngineConfig::default()
        },
    )
    .unwrap();
    // Churn: add, remove again, re-add, plus one real change.
    engine.insert_edge(0, 4).unwrap();
    engine.remove_edge(0, 4).unwrap();
    engine.insert_edge(2, 6).unwrap();
    engine.remove_edge(3, 4).unwrap();
    engine.insert_edge(3, 4).unwrap();
    engine.flush().unwrap();

    let mut expected_graph = base;
    expected_graph.add_edge(2, 6);
    let oracle = CludeEngine::new(expected_graph, EngineConfig::default()).unwrap();

    let q = MeasureQuery::PageRank { damping: DAMPING };
    let streamed = engine.query(&q).unwrap();
    let direct = oracle.query(&q).unwrap();
    for (a, b) in streamed.iter().zip(direct.iter()) {
        assert!((a - b).abs() <= 1e-9, "{a} vs {b}");
    }
}

fn ring_base(n: usize) -> DiGraph {
    let mut g = DiGraph::from_edges(n, (0..n).map(|i| (i, (i + 1) % n)).collect::<Vec<_>>());
    g.add_edge(2, 0);
    g.add_edge(n / 2, 0);
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random interleavings of inserts, removes, flushes and queries never
    /// panic, and every answered distribution is sane.
    #[test]
    fn random_interleavings_never_panic(
        ops in proptest::collection::vec((0usize..6, 0usize..12, 0usize..12), 1..60),
    ) {
        let n = 12;
        let engine = CludeEngine::new(
            ring_base(n),
            EngineConfig {
                batch: BatchPolicy::by_count(5),
                ring_capacity: 3,
                ..EngineConfig::default()
            },
        )
        .unwrap();
        for (kind, a, b) in ops {
            match kind {
                0 | 1 => {
                    engine.insert_edge(a, b).unwrap();
                }
                2 => {
                    engine.remove_edge(a, b).unwrap();
                }
                3 => {
                    engine.flush().unwrap();
                }
                4 => {
                    let scores = engine
                        .query(&MeasureQuery::Rwr { seed: a, damping: DAMPING })
                        .unwrap();
                    let sum: f64 = scores.iter().sum();
                    prop_assert!((sum - 1.0).abs() < 1e-6, "RWR mass {sum}");
                }
                _ => {
                    let ids = engine.retained_snapshot_ids();
                    let id = ids[a % ids.len()];
                    let scores = engine
                        .query_at(id, &MeasureQuery::PageRank { damping: DAMPING })
                        .unwrap();
                    prop_assert!(scores.iter().all(|s| s.is_finite()));
                }
            }
        }
    }

    /// The sharded factor store and the monolithic store must agree on every
    /// measure query to 1e-9 over random edge-op streams — intra-shard edges,
    /// cross-shard edges and removals alike, at every snapshot along the way.
    #[test]
    fn sharded_store_matches_monolithic_on_random_streams(
        ops in proptest::collection::vec((0usize..2, 0usize..18, 0usize..18), 1..40),
        n_shards in 2usize..5,
    ) {
        let n = 18;
        let base = ring_base(n);
        let kind = MatrixKind::RandomWalk { damping: DAMPING };
        let policy = RefreshPolicy::QualityTriggered { max_quality_loss: 0.5 };
        let mut mono = FactorStore::new(base.clone(), kind, policy).unwrap();
        let mut sharded = ShardedFactorStore::new(
            base.clone(),
            kind,
            policy,
            NodePartition::contiguous(n, n_shards),
        )
        .unwrap();

        // Replay in small batches of net-effective changes (the stores take
        // deltas, so mirror the ingestor's no-op dropping against a shadow
        // graph).
        let mut shadow = base;
        let queries = [
            MeasureQuery::PageRank { damping: DAMPING },
            MeasureQuery::Rwr { seed: 0, damping: DAMPING },
            MeasureQuery::Rwr { seed: n - 1, damping: DAMPING },
            MeasureQuery::PprSeedSet { seeds: vec![2, 11], damping: DAMPING },
            MeasureQuery::HittingTime { target: 1, damping: 0.9 },
        ];
        for chunk in ops.chunks(4) {
            let mut delta = GraphDelta::empty();
            for &(op, u, v) in chunk {
                let insert = op == 0;
                if u == v {
                    continue;
                }
                // Mirror the ingestor's cancellation: opposite operations on
                // one edge inside a chunk annihilate, so the delta stays a
                // valid net change against the stores' graphs.
                if insert && !shadow.has_edge(u, v) {
                    shadow.add_edge(u, v);
                    if let Some(pos) = delta.removed.iter().position(|&e| e == (u, v)) {
                        delta.removed.swap_remove(pos);
                    } else {
                        delta.added.push((u, v));
                    }
                } else if !insert && shadow.has_edge(u, v) {
                    shadow.remove_edge(u, v);
                    if let Some(pos) = delta.added.iter().position(|&e| e == (u, v)) {
                        delta.added.swap_remove(pos);
                    } else {
                        delta.removed.push((u, v));
                    }
                }
            }
            if delta.is_empty() {
                continue;
            }
            let report = sharded.advance(&delta).unwrap();
            mono.advance(&delta).unwrap();
            prop_assert_eq!(report.snapshot_id, mono.snapshot_id());
            let snap_s = sharded.snapshot();
            let snap_m = mono.snapshot();
            for q in &queries {
                let a = snap_s.query(q).unwrap();
                let b = snap_m.query(q).unwrap();
                for (x, y) in a.iter().zip(b.iter()) {
                    prop_assert!(
                        (x - y).abs() <= 1e-9,
                        "{:?} diverged: sharded {} vs monolithic {}", q, x, y
                    );
                }
            }
        }
    }

    /// A cache hit returns exactly what the uncached solve produced.
    #[test]
    fn cache_hits_equal_uncached_solves(
        churn in proptest::collection::vec((0usize..12, 0usize..12), 1..12),
        seed in 0usize..12,
    ) {
        let engine = CludeEngine::new(ring_base(12), EngineConfig::default()).unwrap();
        for &(u, v) in &churn {
            engine.insert_edge(u, v).unwrap();
        }
        engine.flush().unwrap();
        let q = MeasureQuery::Rwr { seed, damping: DAMPING };
        let miss = engine.query(&q).unwrap();    // uncached solve
        let hit = engine.query(&q).unwrap();     // served from cache
        prop_assert_eq!(&*miss, &*hit);
        prop_assert!(engine.stats().cache_hits >= 1);
        // A control engine replaying the same stream solves the same system
        // from scratch; its uncached answer must be bit-identical to the
        // first engine's cached one.
        let control = CludeEngine::new(ring_base(12), EngineConfig::default()).unwrap();
        for &(u, v) in &churn {
            control.insert_edge(u, v).unwrap();
        }
        control.flush().unwrap();
        let uncached = control.query(&q).unwrap();
        prop_assert_eq!(&*uncached, &*hit);
    }
}
