//! Cross-crate integration tests of the streaming engine: equivalence with
//! the batch CLUDE solver, and property tests over random ingest/query
//! interleavings.

use clude::algorithms::{Clude, LudemSolver, SolverConfig};
use clude::ems::EvolvingMatrixSequence;
use clude_engine::{
    BatchPolicy, CludeEngine, CouplingConfig, CouplingSolver, EngineConfig, FactorStore,
    RefreshPolicy, ShardedFactorStore,
};
use clude_graph::generators::wiki_like::{self, WikiLikeConfig};
use clude_graph::{DiGraph, GraphDelta, MatrixKind, NodePartition};
use clude_measures::MeasureQuery;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const DAMPING: f64 = 0.85;

/// Streaming the archived deltas of an EGS through the engine must produce,
/// snapshot for snapshot, the same RWR scores as decomposing the equivalent
/// matrix sequence with the batch CLUDE solver.
#[test]
fn streaming_rwr_matches_batch_clude() {
    let egs = wiki_like::generate(&WikiLikeConfig::tiny(), &mut StdRng::seed_from_u64(99));
    let n = egs.n_nodes();

    // Batch side: decompose the whole sequence at once.
    let ems = EvolvingMatrixSequence::from_egs(&egs, MatrixKind::RandomWalk { damping: DAMPING });
    let batch = Clude::new(0.9)
        .solve(&ems, &SolverConfig::default())
        .expect("batch CLUDE decomposition succeeds");

    // Streaming side: replay the same deltas; one flush per snapshot keeps
    // engine snapshot ids aligned with sequence indices.
    let engine = CludeEngine::new(
        egs.snapshot(0),
        EngineConfig {
            batch: BatchPolicy::by_count(usize::MAX),
            refresh: RefreshPolicy::QualityTriggered {
                max_quality_loss: 1.0,
            },
            ring_capacity: 4,
            ..EngineConfig::default()
        },
    )
    .expect("base snapshot factorizes");

    let seeds = [0usize, 7, 42, n - 1];
    for i in 0..egs.len() {
        if i > 0 {
            let delta = egs.delta(i - 1);
            for &(u, v) in &delta.removed {
                engine.remove_edge(u, v).expect("removal accepted");
            }
            for &(u, v) in &delta.added {
                engine.insert_edge(u, v).expect("insertion accepted");
            }
            assert_eq!(engine.flush().expect("batch applies"), Some(i as u64));
        }
        for &seed in &seeds {
            let streamed = engine
                .query(&MeasureQuery::Rwr {
                    seed,
                    damping: DAMPING,
                })
                .expect("engine answers");
            let batched =
                clude_measures::rwr(&batch.decomposed[i], n, seed, DAMPING).expect("batch answers");
            for (a, b) in streamed.iter().zip(batched.iter()) {
                assert!(
                    (a - b).abs() <= 1e-9,
                    "snapshot {i}, seed {seed}: streamed {a} vs batch {b}"
                );
            }
        }
    }
    let stats = engine.stats();
    assert_eq!(stats.batches_applied, (egs.len() - 1) as u64);
}

/// The pending-batch coalescing must not change what the snapshots see:
/// add/remove churn inside one batch collapses to the net delta.
#[test]
fn coalesced_churn_matches_direct_construction() {
    let base = DiGraph::from_edges(8, (0..8).map(|i| (i, (i + 1) % 8)).collect::<Vec<_>>());
    let engine = CludeEngine::new(
        base.clone(),
        EngineConfig {
            batch: BatchPolicy::by_count(usize::MAX),
            ..EngineConfig::default()
        },
    )
    .unwrap();
    // Churn: add, remove again, re-add, plus one real change.
    engine.insert_edge(0, 4).unwrap();
    engine.remove_edge(0, 4).unwrap();
    engine.insert_edge(2, 6).unwrap();
    engine.remove_edge(3, 4).unwrap();
    engine.insert_edge(3, 4).unwrap();
    engine.flush().unwrap();

    let mut expected_graph = base;
    expected_graph.add_edge(2, 6);
    let oracle = CludeEngine::new(expected_graph, EngineConfig::default()).unwrap();

    let q = MeasureQuery::PageRank { damping: DAMPING };
    let streamed = engine.query(&q).unwrap();
    let direct = oracle.query(&q).unwrap();
    for (a, b) in streamed.iter().zip(direct.iter()) {
        assert!((a - b).abs() <= 1e-9, "{a} vs {b}");
    }
}

fn ring_base(n: usize) -> DiGraph {
    let mut g = DiGraph::from_edges(n, (0..n).map(|i| (i, (i + 1) % n)).collect::<Vec<_>>());
    g.add_edge(2, 0);
    g.add_edge(n / 2, 0);
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random interleavings of inserts, removes, flushes and queries never
    /// panic, and every answered distribution is sane.
    #[test]
    fn random_interleavings_never_panic(
        ops in proptest::collection::vec((0usize..6, 0usize..12, 0usize..12), 1..60),
    ) {
        let n = 12;
        let engine = CludeEngine::new(
            ring_base(n),
            EngineConfig {
                batch: BatchPolicy::by_count(5),
                ring_capacity: 3,
                ..EngineConfig::default()
            },
        )
        .unwrap();
        for (kind, a, b) in ops {
            match kind {
                0 | 1 => {
                    engine.insert_edge(a, b).unwrap();
                }
                2 => {
                    engine.remove_edge(a, b).unwrap();
                }
                3 => {
                    engine.flush().unwrap();
                }
                4 => {
                    let scores = engine
                        .query(&MeasureQuery::Rwr { seed: a, damping: DAMPING })
                        .unwrap();
                    let sum: f64 = scores.iter().sum();
                    prop_assert!((sum - 1.0).abs() < 1e-6, "RWR mass {sum}");
                }
                _ => {
                    let ids = engine.retained_snapshot_ids();
                    let id = ids[a % ids.len()];
                    let scores = engine
                        .query_at(id, &MeasureQuery::PageRank { damping: DAMPING })
                        .unwrap();
                    prop_assert!(scores.iter().all(|s| s.is_finite()));
                }
            }
        }
    }

    /// Every coupling-solver strategy — block-Jacobi, block Gauss–Seidel,
    /// the full-capture Woodbury correction and a rank-starved Woodbury that
    /// must iterate over its remainder — must agree with the monolithic
    /// store on every measure query to 1e-9 over random edge-op streams:
    /// intra-shard edges, cross-shard edges and removals alike, at every
    /// snapshot along the way.
    #[test]
    fn all_coupling_solvers_match_monolithic_on_random_streams(
        ops in proptest::collection::vec((0usize..2, 0usize..18, 0usize..18), 1..40),
        n_shards in 2usize..5,
    ) {
        let n = 18;
        let base = ring_base(n);
        let kind = MatrixKind::RandomWalk { damping: DAMPING };
        let policy = RefreshPolicy::QualityTriggered { max_quality_loss: 0.5 };
        let mut mono = FactorStore::new(base.clone(), kind, policy).unwrap();
        let solvers = [
            CouplingSolver::Jacobi,
            CouplingSolver::GaussSeidel,
            CouplingSolver::woodbury(),
            CouplingSolver::Woodbury { max_rank: 2 },
        ];
        let mut stores: Vec<ShardedFactorStore> = solvers
            .iter()
            .map(|&solver| {
                ShardedFactorStore::new(
                    base.clone(),
                    kind,
                    policy,
                    NodePartition::contiguous(n, n_shards),
                )
                .unwrap()
                .with_coupling_config(CouplingConfig { solver, ..CouplingConfig::default() })
                .unwrap()
            })
            .collect();

        // Replay in small batches of net-effective changes (the stores take
        // deltas, so mirror the ingestor's no-op dropping against a shadow
        // graph).
        let mut shadow = base;
        let queries = [
            MeasureQuery::PageRank { damping: DAMPING },
            MeasureQuery::Rwr { seed: 0, damping: DAMPING },
            MeasureQuery::Rwr { seed: n - 1, damping: DAMPING },
            MeasureQuery::PprSeedSet { seeds: vec![2, 11], damping: DAMPING },
            MeasureQuery::HittingTime { target: 1, damping: 0.9 },
        ];
        for chunk in ops.chunks(4) {
            let mut delta = GraphDelta::empty();
            for &(op, u, v) in chunk {
                let insert = op == 0;
                if u == v {
                    continue;
                }
                // Mirror the ingestor's cancellation: opposite operations on
                // one edge inside a chunk annihilate, so the delta stays a
                // valid net change against the stores' graphs.
                if insert && !shadow.has_edge(u, v) {
                    shadow.add_edge(u, v);
                    if let Some(pos) = delta.removed.iter().position(|&e| e == (u, v)) {
                        delta.removed.swap_remove(pos);
                    } else {
                        delta.added.push((u, v));
                    }
                } else if !insert && shadow.has_edge(u, v) {
                    shadow.remove_edge(u, v);
                    if let Some(pos) = delta.added.iter().position(|&e| e == (u, v)) {
                        delta.added.swap_remove(pos);
                    } else {
                        delta.removed.push((u, v));
                    }
                }
            }
            if delta.is_empty() {
                continue;
            }
            mono.advance(&delta).unwrap();
            let snap_m = mono.snapshot();
            for (store, solver) in stores.iter_mut().zip(solvers.iter()) {
                let report = store.advance(&delta).unwrap();
                prop_assert_eq!(report.snapshot_id, mono.snapshot_id());
                let snap_s = store.snapshot();
                prop_assert_eq!(snap_s.solver(), *solver);
                for q in &queries {
                    let a = snap_s.query(q).unwrap();
                    let b = snap_m.query(q).unwrap();
                    for (x, y) in a.iter().zip(b.iter()) {
                        prop_assert!(
                            (x - y).abs() <= 1e-9,
                            "{:?} under {} diverged: sharded {} vs monolithic {}",
                            q, solver.name(), x, y
                        );
                    }
                }
            }
        }
    }

    /// The copy-on-write snapshot ring must be observationally identical to
    /// the old full-clone snapshots: under a random mixed intra/cross delta
    /// stream, every retained snapshot answers every query *bit-identically*
    /// to the answer computed the moment it was published (which is what a
    /// deep-cloned snapshot would keep returning), no matter how much the
    /// store mutates afterwards.  Along the way, the structural-sharing
    /// invariant is checked batch by batch: a shard's handle is re-frozen
    /// exactly when the batch touched that shard, and the frozen coupling
    /// exactly when a cross-shard entry changed.
    #[test]
    fn cow_ring_answers_bit_identically_to_full_clone_snapshots(
        ops in proptest::collection::vec((0usize..2, 0usize..18, 0usize..18), 1..32),
        n_shards in 2usize..5,
    ) {
        let n = 18;
        let base = ring_base(n);
        let kind = MatrixKind::RandomWalk { damping: DAMPING };
        let mut store = ShardedFactorStore::new(
            base.clone(),
            kind,
            RefreshPolicy::QualityTriggered { max_quality_loss: 0.5 },
            NodePartition::contiguous(n, n_shards),
        )
        .unwrap();
        let queries = [
            MeasureQuery::PageRank { damping: DAMPING },
            MeasureQuery::Rwr { seed: 3, damping: DAMPING },
            MeasureQuery::PprSeedSet { seeds: vec![0, 17], damping: DAMPING },
        ];
        // The "ring": every published snapshot plus its answers recorded at
        // publish time — exactly what full-clone snapshots would serve.
        let mut ring = Vec::new();
        let snap0 = store.snapshot();
        let immediate: Vec<Vec<f64>> = queries.iter().map(|q| snap0.query(q).unwrap()).collect();
        ring.push((snap0, immediate));

        let mut shadow = base;
        for chunk in ops.chunks(3) {
            let mut delta = GraphDelta::empty();
            for &(op, u, v) in chunk {
                if u == v {
                    continue;
                }
                // Opposite operations on one edge inside a chunk annihilate
                // (as the engine's ingestor would coalesce them), keeping the
                // delta a valid net change against the store's graph.
                if op == 0 && !shadow.has_edge(u, v) {
                    shadow.add_edge(u, v);
                    if let Some(pos) = delta.removed.iter().position(|&e| e == (u, v)) {
                        delta.removed.swap_remove(pos);
                    } else {
                        delta.added.push((u, v));
                    }
                } else if op == 1 && shadow.has_edge(u, v) {
                    shadow.remove_edge(u, v);
                    if let Some(pos) = delta.added.iter().position(|&e| e == (u, v)) {
                        delta.added.swap_remove(pos);
                    } else {
                        delta.removed.push((u, v));
                    }
                }
            }
            if delta.is_empty() {
                continue;
            }
            let report = store.advance(&delta).unwrap();
            let snap = store.snapshot();
            // Sharing invariant against the previous ring entry: untouched
            // shards are pointer-shared, touched shards re-frozen.
            let (prev, _) = ring.last().unwrap();
            for s in 0..n_shards {
                let shared = std::sync::Arc::ptr_eq(
                    prev.shards()[s].shared(),
                    snap.shards()[s].shared(),
                );
                let touched = report.per_shard[s].entries_applied > 0;
                prop_assert_eq!(
                    shared, !touched,
                    "shard {} sharing ({}) disagrees with touched ({})", s, shared, touched
                );
            }
            prop_assert_eq!(
                std::sync::Arc::ptr_eq(prev.shared_coupling(), snap.shared_coupling()),
                !report.coupling_republished
            );
            // The frozen coupling plan follows the coupling: under the
            // default Gauss–Seidel strategy (no cached correction) it is
            // re-frozen exactly when the coupling changed.
            prop_assert_eq!(
                std::sync::Arc::ptr_eq(prev.coupling_plan(), snap.coupling_plan()),
                !report.coupling_republished
            );
            let immediate: Vec<Vec<f64>> =
                queries.iter().map(|q| snap.query(q).unwrap()).collect();
            ring.push((snap, immediate));
        }

        // Time travel over the whole ring: bit-identical replies.
        for (snap, immediate) in &ring {
            for (q, expected) in queries.iter().zip(immediate.iter()) {
                let got = snap.query(q).unwrap();
                prop_assert_eq!(&got, expected, "snapshot {} drifted on {:?}", snap.id(), q);
            }
        }
    }

    /// A cache hit returns exactly what the uncached solve produced.
    #[test]
    fn cache_hits_equal_uncached_solves(
        churn in proptest::collection::vec((0usize..12, 0usize..12), 1..12),
        seed in 0usize..12,
    ) {
        let engine = CludeEngine::new(ring_base(12), EngineConfig::default()).unwrap();
        for &(u, v) in &churn {
            engine.insert_edge(u, v).unwrap();
        }
        engine.flush().unwrap();
        let q = MeasureQuery::Rwr { seed, damping: DAMPING };
        let miss = engine.query(&q).unwrap();    // uncached solve
        let hit = engine.query(&q).unwrap();     // served from cache
        prop_assert_eq!(&*miss, &*hit);
        prop_assert!(engine.stats().cache_hits >= 1);
        // A control engine replaying the same stream solves the same system
        // from scratch; its uncached answer must be bit-identical to the
        // first engine's cached one.
        let control = CludeEngine::new(ring_base(12), EngineConfig::default()).unwrap();
        for &(u, v) in &churn {
            control.insert_edge(u, v).unwrap();
        }
        control.flush().unwrap();
        let uncached = control.query(&q).unwrap();
        prop_assert_eq!(&*uncached, &*hit);
    }
}
