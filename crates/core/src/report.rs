//! Run reports: timing breakdowns and per-matrix statistics.
//!
//! The paper evaluates algorithms by (1) ordering quality and (2) speed, and
//! explains CLUDE's advantage with a breakdown of its running time into
//! clustering, Markowitz, full LU and Bennett components (Figure 8).  The
//! types here capture exactly those quantities so the benchmark harness can
//! print the same rows.

use clude_lu::BennettStats;
use clude_sparse::{Ordering, StructuralStats};
use std::time::Duration;

/// Wall-clock time spent in each phase of a LUDEM algorithm.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TimingBreakdown {
    /// Time spent clustering the sequence (α- or β-clustering), including the
    /// maintenance of `A_∩` / `A_∪`.
    pub clustering: Duration,
    /// Time spent computing Markowitz / minimum-degree orderings.
    pub ordering: Duration,
    /// Time spent in symbolic decomposition and building (static or dynamic)
    /// factor structures.
    pub symbolic: Duration,
    /// Time spent in full numeric LU decompositions.
    pub full_decomposition: Duration,
    /// Time spent in Bennett incremental updates (including forming the
    /// per-step matrix deltas).
    pub incremental: Duration,
}

impl TimingBreakdown {
    /// Total time across all phases.
    pub fn total(&self) -> Duration {
        self.clustering + self.ordering + self.symbolic + self.full_decomposition + self.incremental
    }

    /// Adds another breakdown into this one.
    pub fn merge(&mut self, other: &TimingBreakdown) {
        self.clustering += other.clustering;
        self.ordering += other.ordering;
        self.symbolic += other.symbolic;
        self.full_decomposition += other.full_decomposition;
        self.incremental += other.incremental;
    }
}

/// Everything an algorithm run reports besides the factors themselves.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Algorithm name ("BF", "INC", "CINC", "CLUDE", …).
    pub algorithm: String,
    /// Wall-clock breakdown.
    pub timings: TimingBreakdown,
    /// Sizes of the clusters used (a single `T`-sized cluster for INC, `T`
    /// singleton clusters for BF).
    pub cluster_sizes: Vec<usize>,
    /// The ordering `O_i` chosen for every matrix, for quality evaluation.
    pub orderings: Vec<Ordering>,
    /// The number of slots of the decomposed representation `Â_i` of every
    /// matrix (structure size for static storage, list nodes for dynamic).
    pub factor_nnz: Vec<usize>,
    /// Bennett work counters accumulated over the run.
    pub bennett: BennettStats,
    /// Structural-maintenance counters accumulated over the run (dynamic
    /// storage only; zero for CLUDE and BF).
    pub structural: StructuralStats,
}

impl RunReport {
    /// Creates an empty report for the given algorithm.
    pub fn new(algorithm: impl Into<String>) -> Self {
        RunReport {
            algorithm: algorithm.into(),
            timings: TimingBreakdown::default(),
            cluster_sizes: Vec::new(),
            orderings: Vec::new(),
            factor_nnz: Vec::new(),
            bennett: BennettStats::default(),
            structural: StructuralStats::default(),
        }
    }

    /// Number of clusters used by the run.
    pub fn cluster_count(&self) -> usize {
        self.cluster_sizes.len()
    }

    /// Average size of the decomposed representation across the sequence.
    pub fn average_factor_nnz(&self) -> f64 {
        if self.factor_nnz.is_empty() {
            return 0.0;
        }
        self.factor_nnz.iter().sum::<usize>() as f64 / self.factor_nnz.len() as f64
    }

    /// Speed-up of this run relative to a baseline total time (the paper
    /// reports every algorithm's time as a speed-up factor over BF).
    pub fn speedup_over(&self, baseline_total: Duration) -> f64 {
        let own = self.timings.total().as_secs_f64();
        if own == 0.0 {
            return f64::INFINITY;
        }
        baseline_total.as_secs_f64() / own
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_and_merge() {
        let mut a = TimingBreakdown {
            clustering: Duration::from_millis(1),
            ordering: Duration::from_millis(2),
            symbolic: Duration::from_millis(3),
            full_decomposition: Duration::from_millis(4),
            incremental: Duration::from_millis(5),
        };
        assert_eq!(a.total(), Duration::from_millis(15));
        let b = a;
        a.merge(&b);
        assert_eq!(a.total(), Duration::from_millis(30));
    }

    #[test]
    fn report_accessors() {
        let mut r = RunReport::new("CLUDE");
        assert_eq!(r.algorithm, "CLUDE");
        assert_eq!(r.cluster_count(), 0);
        assert_eq!(r.average_factor_nnz(), 0.0);
        r.cluster_sizes = vec![3, 4];
        r.factor_nnz = vec![10, 20, 30];
        assert_eq!(r.cluster_count(), 2);
        assert_eq!(r.average_factor_nnz(), 20.0);
    }

    #[test]
    fn speedup_is_relative_to_baseline() {
        let mut r = RunReport::new("X");
        r.timings.incremental = Duration::from_millis(10);
        assert!((r.speedup_over(Duration::from_millis(100)) - 10.0).abs() < 1e-9);
        let zero = RunReport::new("Y");
        assert!(zero.speedup_over(Duration::from_millis(5)).is_infinite());
    }
}
