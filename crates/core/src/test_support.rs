//! Small EMS generators used by this crate's unit tests.
//!
//! These build tiny but non-trivial evolving matrix sequences quickly, so the
//! algorithm tests exercise realistic drift without pulling in the full
//! dataset simulators of `clude-graph::generators` (which the integration
//! tests and benches use instead).

use crate::ems::EvolvingMatrixSequence;
use clude_graph::{DiGraph, EvolvingGraphSequence, MatrixKind};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// A small random-walk (`A = I − dW`) EMS over a drifting directed graph.
pub fn small_random_walk_ems(
    n_nodes: usize,
    n_snapshots: usize,
    seed: u64,
) -> EvolvingMatrixSequence {
    let egs = small_directed_egs(n_nodes, n_snapshots, seed);
    EvolvingMatrixSequence::from_egs(&egs, MatrixKind::RandomWalk { damping: 0.85 })
}

/// A small symmetric (shifted-Laplacian) EMS over a growing undirected graph,
/// suitable for the LUDEM-QC tests.
pub fn small_symmetric_ems(
    n_nodes: usize,
    n_snapshots: usize,
    seed: u64,
) -> EvolvingMatrixSequence {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = DiGraph::new(n_nodes);
    // Sparse random undirected base graph.
    for _ in 0..(2 * n_nodes) {
        let u = rng.gen_range(0..n_nodes);
        let v = rng.gen_range(0..n_nodes);
        if u != v {
            g.add_undirected_edge(u, v);
        }
    }
    let mut snapshots = vec![g.clone()];
    for _ in 1..n_snapshots {
        // Growing co-authorship-like drift: only additions.
        for _ in 0..3 {
            let u = rng.gen_range(0..n_nodes);
            let v = rng.gen_range(0..n_nodes);
            if u != v {
                g.add_undirected_edge(u, v);
            }
        }
        snapshots.push(g.clone());
    }
    let egs = EvolvingGraphSequence::from_snapshots(snapshots);
    EvolvingMatrixSequence::from_egs(&egs, MatrixKind::SymmetricLaplacian { shift: 1.0 })
}

/// A small drifting directed EGS (additions dominate, a few removals).
pub fn small_directed_egs(n_nodes: usize, n_snapshots: usize, seed: u64) -> EvolvingGraphSequence {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = DiGraph::new(n_nodes);
    for _ in 0..(3 * n_nodes) {
        let u = rng.gen_range(0..n_nodes);
        let v = rng.gen_range(0..n_nodes);
        if u != v {
            g.add_edge(u, v);
        }
    }
    let mut snapshots = vec![g.clone()];
    for _ in 1..n_snapshots {
        // A few removals...
        let edges: Vec<(usize, usize)> = g.edges().collect();
        for _ in 0..2 {
            if let Some(&(u, v)) = edges.get(rng.gen_range(0..edges.len())) {
                g.remove_edge(u, v);
            }
        }
        // ...and a few more additions.
        for _ in 0..5 {
            let u = rng.gen_range(0..n_nodes);
            let v = rng.gen_range(0..n_nodes);
            if u != v {
                g.add_edge(u, v);
            }
        }
        snapshots.push(g.clone());
    }
    EvolvingGraphSequence::from_snapshots(snapshots)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_walk_ems_is_well_formed() {
        let ems = small_random_walk_ems(20, 5, 1);
        assert_eq!(ems.len(), 5);
        assert_eq!(ems.order(), 20);
        assert!(ems.average_successive_similarity() > 0.8);
    }

    #[test]
    fn symmetric_ems_is_symmetric() {
        let ems = small_symmetric_ems(15, 4, 2);
        assert!(ems.is_symmetric());
        assert_eq!(ems.len(), 4);
    }

    #[test]
    fn generators_are_deterministic() {
        let a = small_random_walk_ems(10, 3, 9);
        let b = small_random_walk_ems(10, 3, 9);
        assert_eq!(a.matrix(2), b.matrix(2));
    }
}
