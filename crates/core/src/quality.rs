//! Ordering quality (Definition 4 of the paper).
//!
//! The quality-loss of an ordering `O` on a matrix `A` compares the size of
//! the symbolic sparsity pattern it induces against the Markowitz-ordered
//! reference:
//!
//! `ql(O, A) = (|s̃p(A^O)| − |s̃p(A*)|) / |s̃p(A*)|`
//!
//! A loss of 0 means the ordering is as good as Markowitz on that matrix; a
//! loss of 2 means the factors carry twice as many extra entries as the
//! reference (the figure the paper reports for INC on Wiki).

use crate::ems::EvolvingMatrixSequence;
use clude_lu::{markowitz_ordering, symbolic_size_under};
use clude_sparse::{Ordering, SparsityPattern};

/// Cached `|s̃p(A_i*)|` values for every matrix of an EMS.
///
/// Computing them requires one Markowitz ordering per matrix — exactly what
/// the brute-force baseline does — so the benchmark harness computes this
/// once and shares it across every evaluated algorithm.
#[derive(Debug, Clone)]
pub struct MarkowitzReference {
    sizes: Vec<usize>,
}

impl MarkowitzReference {
    /// Computes the reference for the whole sequence.
    pub fn compute(ems: &EvolvingMatrixSequence) -> Self {
        let sizes = ems
            .iter()
            .map(|a| markowitz_ordering(&a.pattern()).symbolic_size)
            .collect();
        MarkowitzReference { sizes }
    }

    /// Builds a reference from precomputed sizes (used by the BF solver,
    /// which produces them as a by-product).
    pub fn from_sizes(sizes: Vec<usize>) -> Self {
        MarkowitzReference { sizes }
    }

    /// `|s̃p(A_i*)|`.
    pub fn size(&self, i: usize) -> usize {
        self.sizes[i]
    }

    /// Number of matrices covered.
    pub fn len(&self) -> usize {
        self.sizes.len()
    }

    /// Returns `true` when the reference is empty.
    pub fn is_empty(&self) -> bool {
        self.sizes.is_empty()
    }

    /// All reference sizes.
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }
}

/// Quality-loss of an ordering on one matrix given the reference size.
pub fn quality_loss_with_reference(
    pattern: &SparsityPattern,
    ordering: &Ordering,
    reference_size: usize,
) -> f64 {
    let size = symbolic_size_under(pattern, ordering);
    quality_loss_from_sizes(size, reference_size)
}

/// Quality-loss computed directly from the two symbolic sizes.
pub fn quality_loss_from_sizes(size_under_ordering: usize, reference_size: usize) -> f64 {
    assert!(reference_size > 0, "reference size must be positive");
    (size_under_ordering as f64 - reference_size as f64) / reference_size as f64
}

/// The outcome of a factor-store refresh check (used by the streaming
/// engine's `Clude`-style policy).
///
/// A long-lived ordering degrades as the graph drifts away from the matrix it
/// was computed for: the factors accumulate fill-in that a fresh Markowitz
/// ordering would avoid.  This hook turns the paper's quality-loss metric
/// (Definition 4) into a refresh decision by comparing the current factor
/// size against the reference size recorded at the last (re-)factorization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefreshDecision {
    /// `ql` of the current factors against the recorded reference.
    pub quality_loss: f64,
    /// `true` when the loss exceeded the configured budget and the factors
    /// should be rebuilt under a fresh ordering.
    pub should_refresh: bool,
}

/// Decides whether incrementally maintained factors have degraded past the
/// quality budget `max_quality_loss` and should be re-clustered/refreshed.
///
/// `current_size` is the present `|s̃p(Â)|` (factor nnz); `reference_size` is
/// the size recorded when the ordering was last recomputed.
///
/// # Panics
/// Panics when `reference_size` is zero or `max_quality_loss` is negative.
pub fn refresh_decision(
    current_size: usize,
    reference_size: usize,
    max_quality_loss: f64,
) -> RefreshDecision {
    assert!(
        max_quality_loss >= 0.0,
        "the quality-loss budget must be non-negative"
    );
    let quality_loss = quality_loss_from_sizes(current_size, reference_size);
    RefreshDecision {
        quality_loss,
        should_refresh: quality_loss > max_quality_loss,
    }
}

/// The per-matrix and average quality-loss of a sequence of orderings
/// (one per matrix of the EMS).
#[derive(Debug, Clone)]
pub struct QualityEvaluation {
    /// `ql(O_i, A_i)` for every matrix.
    pub per_matrix: Vec<f64>,
    /// `|s̃p(A_i^{O_i})|` for every matrix.
    pub symbolic_sizes: Vec<usize>,
}

impl QualityEvaluation {
    /// Average quality-loss over the sequence.
    pub fn average(&self) -> f64 {
        if self.per_matrix.is_empty() {
            return 0.0;
        }
        self.per_matrix.iter().sum::<f64>() / self.per_matrix.len() as f64
    }

    /// Maximum quality-loss over the sequence.
    pub fn max(&self) -> f64 {
        self.per_matrix.iter().copied().fold(0.0, f64::max)
    }
}

/// Evaluates the quality-loss of the orderings an algorithm produced.
///
/// # Panics
/// Panics when the number of orderings differs from the sequence length or
/// from the reference length.
pub fn evaluate_orderings(
    ems: &EvolvingMatrixSequence,
    orderings: &[Ordering],
    reference: &MarkowitzReference,
) -> QualityEvaluation {
    assert_eq!(
        orderings.len(),
        ems.len(),
        "one ordering per matrix required"
    );
    assert_eq!(
        reference.len(),
        ems.len(),
        "reference must cover the sequence"
    );
    let mut per_matrix = Vec::with_capacity(ems.len());
    let mut symbolic_sizes = Vec::with_capacity(ems.len());
    for (i, ordering) in orderings.iter().enumerate() {
        let size = symbolic_size_under(&ems.pattern(i), ordering);
        symbolic_sizes.push(size);
        per_matrix.push(quality_loss_from_sizes(size, reference.size(i)));
    }
    QualityEvaluation {
        per_matrix,
        symbolic_sizes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clude_sparse::{CooMatrix, CsrMatrix};

    fn arrowhead_matrix(n: usize) -> CsrMatrix {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 4.0).unwrap();
            if i > 0 {
                coo.push(0, i, -1.0).unwrap();
                coo.push(i, 0, -1.0).unwrap();
            }
        }
        CsrMatrix::from_coo(&coo)
    }

    #[test]
    fn markowitz_ordering_has_zero_loss() {
        let a = arrowhead_matrix(6);
        let ems = EvolvingMatrixSequence::new(vec![a.clone()]).unwrap();
        let reference = MarkowitzReference::compute(&ems);
        let best = markowitz_ordering(&a.pattern()).ordering;
        let eval = evaluate_orderings(&ems, &[best], &reference);
        assert!(eval.average().abs() < 1e-12);
        assert_eq!(eval.symbolic_sizes[0], reference.size(0));
    }

    #[test]
    fn identity_ordering_on_arrowhead_has_large_loss() {
        let n = 8;
        let a = arrowhead_matrix(n);
        let ems = EvolvingMatrixSequence::new(vec![a]).unwrap();
        let reference = MarkowitzReference::compute(&ems);
        let eval = evaluate_orderings(&ems, &[Ordering::identity(n)], &reference);
        // Natural order fills the matrix: n^2 vs 3n-2.
        let expected = (n * n) as f64 / (3 * n - 2) as f64 - 1.0;
        assert!((eval.per_matrix[0] - expected).abs() < 1e-12);
        assert!(eval.max() > 1.0);
    }

    #[test]
    fn quality_loss_from_sizes_formula() {
        assert_eq!(quality_loss_from_sizes(30, 10), 2.0);
        assert_eq!(quality_loss_from_sizes(10, 10), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_reference_panics() {
        quality_loss_from_sizes(5, 0);
    }

    #[test]
    fn reference_accessors() {
        let r = MarkowitzReference::from_sizes(vec![3, 4, 5]);
        assert_eq!(r.len(), 3);
        assert!(!r.is_empty());
        assert_eq!(r.size(1), 4);
        assert_eq!(r.sizes(), &[3, 4, 5]);
    }

    #[test]
    #[should_panic(expected = "one ordering per matrix")]
    fn mismatched_ordering_count_panics() {
        let a = arrowhead_matrix(3);
        let ems = EvolvingMatrixSequence::new(vec![a]).unwrap();
        let reference = MarkowitzReference::compute(&ems);
        evaluate_orderings(&ems, &[], &reference);
    }

    #[test]
    fn refresh_decision_thresholds() {
        // 20 % degradation against a 0.5 budget: keep going.
        let keep = refresh_decision(12, 10, 0.5);
        assert!(!keep.should_refresh);
        assert!((keep.quality_loss - 0.2).abs() < 1e-12);
        // 100 % degradation against the same budget: refresh.
        let refresh = refresh_decision(20, 10, 0.5);
        assert!(refresh.should_refresh);
        assert!((refresh.quality_loss - 1.0).abs() < 1e-12);
        // A zero budget refreshes on any degradation but not at parity.
        assert!(!refresh_decision(10, 10, 0.0).should_refresh);
        assert!(refresh_decision(11, 10, 0.0).should_refresh);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn refresh_decision_rejects_negative_budget() {
        refresh_decision(10, 10, -0.1);
    }

    #[test]
    fn average_of_empty_evaluation_is_zero() {
        let e = QualityEvaluation {
            per_matrix: vec![],
            symbolic_sizes: vec![],
        };
        assert_eq!(e.average(), 0.0);
    }
}
