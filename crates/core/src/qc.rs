//! LUDEM-QC: LU decomposition with a quality constraint (§5).
//!
//! For symmetric matrices the Markowitz reference `|s̃p(A*)|` can be obtained
//! without a numeric decomposition, so an algorithm can *guarantee* that
//! every ordering it emits has quality-loss at most `β` (Definition 5).  Both
//! cluster-based algorithms are extended by replacing the α-boundedness test
//! with the β quality test during cluster construction:
//!
//! * [`CincQc`] (Algorithm 4) — the candidate matrix is checked against the
//!   ordering of the cluster's first matrix;
//! * [`CludeQc`] (Algorithm 5) — the cluster's union ordering is recomputed
//!   for every candidate and checked, using the shortcut
//!   `|s̃p(A_∪^{O_∪})| ≤ (1 + β)·|s̃p(A_l*)|  ⇒  ql(O_∪, A_l) ≤ β`.

use crate::algorithms::common::{
    decompose_cluster_incremental, decompose_cluster_universal, LudemSolution, LudemSolver,
    SolverConfig,
};
use crate::cluster::{Cluster, Clustering};
use crate::ems::EvolvingMatrixSequence;
use crate::quality::MarkowitzReference;
use crate::report::RunReport;
use clude_lu::{markowitz_ordering, symbolic_size_under, LuResult};
use clude_sparse::Ordering;
use std::time::Instant;

/// Checks the LUDEM-QC precondition and the β value.
fn validate(ems: &EvolvingMatrixSequence, beta: f64) {
    assert!(beta >= 0.0, "the quality requirement must be non-negative");
    debug_assert!(
        ems.is_symmetric(),
        "LUDEM-QC is defined for symmetric matrices (the fast Markowitz reference requires it)"
    );
}

/// Result of a β-clustering pass: the clusters together with the shared
/// ordering chosen for each of them during construction.
#[derive(Debug, Clone)]
pub struct BetaClustering {
    /// The clusters, tiling `0..T`.
    pub clustering: Clustering,
    /// The ordering selected for each cluster while it was being built.
    pub orderings: Vec<Ordering>,
    /// The Markowitz reference sizes computed along the way (one per matrix).
    pub reference: MarkowitzReference,
}

/// Algorithm 4: β-clustering, CINC version.
pub fn beta_clustering_cinc(ems: &EvolvingMatrixSequence, beta: f64) -> BetaClustering {
    validate(ems, beta);
    let reference: Vec<usize> = ems
        .iter()
        .map(|a| markowitz_ordering(&a.pattern()).symbolic_size)
        .collect();
    let mut clusters = Vec::new();
    let mut orderings = Vec::new();
    let mut start = 0usize;
    let mut current = markowitz_ordering(&ems.pattern(0)).ordering;
    for i in 1..ems.len() {
        let size_under = symbolic_size_under(&ems.pattern(i), &current);
        let reference_size = reference[i];
        let within_budget =
            size_under as f64 - reference_size as f64 <= beta * reference_size as f64;
        if !within_budget {
            clusters.push(Cluster { start, end: i });
            orderings.push(current.clone());
            start = i;
            current = markowitz_ordering(&ems.pattern(i)).ordering;
        }
    }
    clusters.push(Cluster {
        start,
        end: ems.len(),
    });
    orderings.push(current);
    BetaClustering {
        clustering: Clustering::new(clusters),
        orderings,
        reference: MarkowitzReference::from_sizes(reference),
    }
}

/// Algorithm 5: β-clustering, CLUDE version.
pub fn beta_clustering_clude(ems: &EvolvingMatrixSequence, beta: f64) -> BetaClustering {
    validate(ems, beta);
    let reference: Vec<usize> = ems
        .iter()
        .map(|a| markowitz_ordering(&a.pattern()).symbolic_size)
        .collect();
    let mut clusters = Vec::new();
    let mut orderings = Vec::new();

    let mut start = 0usize;
    let mut union = ems.pattern(0);
    let mut accepted = markowitz_ordering(&union);
    // The shortcut check only needs the smallest reference among members.
    let mut min_reference = reference[0];

    for i in 1..ems.len() {
        let candidate_union = union.union(&ems.pattern(i)).expect("shapes agree");
        let candidate = markowitz_ordering(&candidate_union);
        let candidate_min_reference = min_reference.min(reference[i]);
        // φ_∪ of the paper: |s̃p(A_∪^{O_∪})| − |s̃p(A_l*)| ≤ β·|s̃p(A_l*)|
        // for every member l, which is implied by the check on the smallest
        // reference.
        let within_budget = candidate.symbolic_size as f64 - candidate_min_reference as f64
            <= beta * candidate_min_reference as f64;
        if within_budget {
            union = candidate_union;
            accepted = candidate;
            min_reference = candidate_min_reference;
        } else {
            clusters.push(Cluster { start, end: i });
            orderings.push(accepted.ordering.clone());
            start = i;
            union = ems.pattern(i);
            accepted = markowitz_ordering(&union);
            min_reference = reference[i];
        }
    }
    clusters.push(Cluster {
        start,
        end: ems.len(),
    });
    orderings.push(accepted.ordering);
    BetaClustering {
        clustering: Clustering::new(clusters),
        orderings,
        reference: MarkowitzReference::from_sizes(reference),
    }
}

/// The CINC solver for LUDEM-QC.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CincQc {
    /// Quality requirement `β ≥ 0` of Definition 5.
    pub beta: f64,
}

impl CincQc {
    /// Creates a solver with the given quality requirement.
    pub fn new(beta: f64) -> Self {
        CincQc { beta }
    }
}

impl LudemSolver for CincQc {
    fn name(&self) -> &'static str {
        "CINC-QC"
    }

    fn solve(
        &self,
        ems: &EvolvingMatrixSequence,
        config: &SolverConfig,
    ) -> LuResult<LudemSolution> {
        let mut report = RunReport::new(self.name());
        let mut decomposed = Vec::with_capacity(ems.len());
        let t = Instant::now();
        let beta_clusters = beta_clustering_cinc(ems, self.beta);
        report.timings.clustering += t.elapsed();
        for (cluster, ordering) in beta_clusters
            .clustering
            .clusters()
            .iter()
            .zip(beta_clusters.orderings.iter())
        {
            decompose_cluster_incremental(
                ems,
                cluster,
                Some(ordering.clone()),
                config,
                &mut report,
                &mut decomposed,
            )?;
        }
        Ok(LudemSolution { decomposed, report })
    }
}

/// The CLUDE solver for LUDEM-QC.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CludeQc {
    /// Quality requirement `β ≥ 0` of Definition 5.
    pub beta: f64,
}

impl CludeQc {
    /// Creates a solver with the given quality requirement.
    pub fn new(beta: f64) -> Self {
        CludeQc { beta }
    }
}

impl LudemSolver for CludeQc {
    fn name(&self) -> &'static str {
        "CLUDE-QC"
    }

    fn solve(
        &self,
        ems: &EvolvingMatrixSequence,
        config: &SolverConfig,
    ) -> LuResult<LudemSolution> {
        let mut report = RunReport::new(self.name());
        let mut decomposed = Vec::with_capacity(ems.len());
        let t = Instant::now();
        let beta_clusters = beta_clustering_clude(ems, self.beta);
        report.timings.clustering += t.elapsed();
        for (cluster, ordering) in beta_clusters
            .clustering
            .clusters()
            .iter()
            .zip(beta_clusters.orderings.iter())
        {
            decompose_cluster_universal(
                ems,
                cluster,
                Some(ordering.clone()),
                config,
                &mut report,
                &mut decomposed,
            )?;
        }
        Ok(LudemSolution { decomposed, report })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::common::max_reconstruction_error;
    use crate::quality::evaluate_orderings;
    use crate::test_support::small_symmetric_ems;

    #[test]
    fn beta_zero_forces_markowitz_quality() {
        let ems = small_symmetric_ems(25, 8, 11);
        for solver_orderings in [
            beta_clustering_cinc(&ems, 0.0),
            beta_clustering_clude(&ems, 0.0),
        ] {
            // Every matrix's quality-loss under its cluster's ordering is 0
            // within the β = 0 budget.
            let mut per_matrix_orderings = Vec::new();
            for (cluster, ordering) in solver_orderings
                .clustering
                .clusters()
                .iter()
                .zip(solver_orderings.orderings.iter())
            {
                for _ in cluster.range() {
                    per_matrix_orderings.push(ordering.clone());
                }
            }
            let eval = evaluate_orderings(&ems, &per_matrix_orderings, &solver_orderings.reference);
            assert!(eval.max() <= 1e-12, "max loss {}", eval.max());
        }
    }

    #[test]
    fn quality_constraint_is_respected_for_positive_beta() {
        let ems = small_symmetric_ems(30, 10, 3);
        for beta in [0.05, 0.15, 0.3] {
            let cinc = CincQc::new(beta)
                .solve(&ems, &SolverConfig::timing_only())
                .unwrap();
            let clude = CludeQc::new(beta)
                .solve(&ems, &SolverConfig::timing_only())
                .unwrap();
            let reference = MarkowitzReference::compute(&ems);
            for solution in [&cinc, &clude] {
                let eval = evaluate_orderings(&ems, &solution.report.orderings, &reference);
                assert!(
                    eval.max() <= beta + 1e-9,
                    "{}: max loss {} exceeds beta {beta}",
                    solution.report.algorithm,
                    eval.max()
                );
            }
        }
    }

    #[test]
    fn larger_beta_allows_fewer_clusters() {
        let ems = small_symmetric_ems(30, 12, 7);
        let tight = beta_clustering_clude(&ems, 0.0).clustering.len();
        let loose = beta_clustering_clude(&ems, 0.5).clustering.len();
        assert!(loose <= tight);
        let tight_cinc = beta_clustering_cinc(&ems, 0.0).clustering.len();
        let loose_cinc = beta_clustering_cinc(&ems, 0.5).clustering.len();
        assert!(loose_cinc <= tight_cinc);
    }

    #[test]
    fn qc_solvers_reproduce_matrices() {
        let ems = small_symmetric_ems(20, 6, 19);
        for beta in [0.0, 0.2] {
            let cinc = CincQc::new(beta)
                .solve(&ems, &SolverConfig::default())
                .unwrap();
            let clude = CludeQc::new(beta)
                .solve(&ems, &SolverConfig::default())
                .unwrap();
            assert!(max_reconstruction_error(&ems, &cinc).unwrap() < 1e-8);
            assert!(max_reconstruction_error(&ems, &clude).unwrap() < 1e-8);
            assert_eq!(cinc.decomposed.len(), ems.len());
            assert_eq!(clude.decomposed.len(), ems.len());
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_beta_is_rejected() {
        let ems = small_symmetric_ems(10, 3, 1);
        beta_clustering_cinc(&ems, -0.5);
    }
}
