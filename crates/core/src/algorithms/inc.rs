//! The straightforwardly incremental algorithm (INC).
//!
//! INC computes the Markowitz ordering of the *first* matrix only, applies it
//! to the whole sequence, fully decomposes `A_1` once, and obtains every
//! subsequent factorization with Bennett's algorithm over dynamic adjacency
//! lists.  Its weakness, which the paper quantifies in Figures 5 and 7, is
//! that `O*(A_1)` fits later matrices progressively worse, so the factors
//! grow and every incremental step slows down.

use crate::algorithms::common::{
    decompose_cluster_incremental, LudemSolution, LudemSolver, SolverConfig,
};
use crate::cluster::Cluster;
use crate::ems::EvolvingMatrixSequence;
use crate::report::RunReport;
use clude_lu::LuResult;

/// The INC solver: one ordering, one full decomposition, `T − 1` Bennett
/// updates over the whole sequence.
#[derive(Debug, Clone, Copy, Default)]
pub struct Incremental;

impl LudemSolver for Incremental {
    fn name(&self) -> &'static str {
        "INC"
    }

    fn solve(
        &self,
        ems: &EvolvingMatrixSequence,
        config: &SolverConfig,
    ) -> LuResult<LudemSolution> {
        let mut report = RunReport::new(self.name());
        let mut decomposed = Vec::with_capacity(ems.len());
        let whole = Cluster {
            start: 0,
            end: ems.len(),
        };
        decompose_cluster_incremental(ems, &whole, None, config, &mut report, &mut decomposed)?;
        Ok(LudemSolution { decomposed, report })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::common::max_reconstruction_error;
    use crate::test_support::small_random_walk_ems;

    #[test]
    fn inc_reproduces_every_matrix() {
        let ems = small_random_walk_ems(25, 10, 5);
        let solution = Incremental.solve(&ems, &SolverConfig::default()).unwrap();
        assert_eq!(solution.decomposed.len(), ems.len());
        assert!(max_reconstruction_error(&ems, &solution).unwrap() < 1e-8);
        // INC uses a single cluster spanning the sequence.
        assert_eq!(solution.report.cluster_sizes, vec![ems.len()]);
        // All matrices share the first matrix's ordering.
        let first = &solution.decomposed[0].ordering;
        assert!(solution.decomposed.iter().all(|d| &d.ordering == first));
    }

    #[test]
    fn inc_answers_queries_on_every_snapshot() {
        let ems = small_random_walk_ems(20, 6, 9);
        let solution = Incremental.solve(&ems, &SolverConfig::default()).unwrap();
        let b = vec![0.15 / ems.order() as f64; ems.order()];
        for i in 0..ems.len() {
            let x = solution.solve(i, &b).unwrap();
            let ax = ems.matrix(i).mul_vec(&x).unwrap();
            for (l, r) in ax.iter().zip(b.iter()) {
                assert!((l - r).abs() < 1e-8, "snapshot {i}");
            }
        }
    }

    #[test]
    fn inc_performs_structural_maintenance() {
        // Over a drifting sequence the dynamic storage must insert fill
        // nodes — the cost the paper attributes ~70 % of Bennett time to.
        let ems = small_random_walk_ems(40, 12, 21);
        let solution = Incremental
            .solve(&ems, &SolverConfig::timing_only())
            .unwrap();
        assert!(solution.report.bennett.rank_one_updates > 0);
        assert!(solution.report.structural.inserts > 0);
        // Factor size is non-decreasing under INC (entries are only added).
        let nnz = &solution.report.factor_nnz;
        assert!(nnz.windows(2).all(|w| w[1] >= w[0]));
    }
}
