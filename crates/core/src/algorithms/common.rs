//! Shared machinery of the LUDEM solvers.
//!
//! All four algorithms of the paper (BF, INC, CINC, CLUDE) produce the same
//! kind of output — an ordering and the LU factors of every matrix of the
//! sequence — and differ only in how they group matrices, which ordering they
//! share, and which storage they update incrementally.  This module holds the
//! shared output types, the solver trait, and the two per-cluster
//! decomposition routines the concrete algorithms are built from:
//!
//! * [`decompose_cluster_incremental`] — one ordering per cluster, dynamic
//!   adjacency-list storage, Bennett updates with insertion-on-demand
//!   (Algorithm 2, used by INC and CINC);
//! * [`decompose_cluster_universal`] — ordering and static structure derived
//!   from the cluster's union matrix (Algorithm 3, used by CLUDE).

use crate::cluster::{cluster_union_pattern, Cluster};
use crate::ems::EvolvingMatrixSequence;
use crate::report::{RunReport, TimingBreakdown};
use clude_lu::{
    apply_delta_with, markowitz_ordering, solve_original_into, solve_original_many_into,
    BennettWorkspace, DynamicLuFactors, LuError, LuFactors, LuResult, LuStructure, PanelScratch,
    SolveScratch,
};
use clude_sparse::{CsrMatrix, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Tuning knobs shared by all solvers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolverConfig {
    /// When `true` (default), a snapshot of the factors of every matrix is
    /// kept in the solution so queries can be answered per snapshot.  Speed
    /// benchmarks disable this so the measured time contains only the work
    /// the paper's algorithms perform.
    pub keep_factors: bool,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig { keep_factors: true }
    }
}

impl SolverConfig {
    /// Configuration used by the speed benchmarks: factors are not retained.
    pub fn timing_only() -> Self {
        SolverConfig {
            keep_factors: false,
        }
    }
}

/// The factors of one matrix, in whichever storage the algorithm used.
#[derive(Debug, Clone)]
pub enum MatrixFactors {
    /// Statically structured factors (BF, CLUDE).
    Static(LuFactors),
    /// Dynamically structured factors (INC, CINC).
    Dynamic(DynamicLuFactors),
}

impl MatrixFactors {
    /// Number of slots of the decomposed representation.
    pub fn nnz(&self) -> usize {
        match self {
            MatrixFactors::Static(f) => f.nnz(),
            MatrixFactors::Dynamic(f) => f.nnz(),
        }
    }

    /// Solves the factored (reordered) system.
    pub fn solve_factored(&self, b: &[f64]) -> LuResult<Vec<f64>> {
        match self {
            MatrixFactors::Static(f) => f.solve(b),
            MatrixFactors::Dynamic(f) => f.solve(b),
        }
    }

    /// Rough resident size of the decomposed representation in bytes
    /// (values plus structural indices, ~24 bytes per stored slot).  Used by
    /// the engine's snapshot-ring accounting, where "approximately right and
    /// cheap" beats exact heap traversal.
    pub fn approx_bytes(&self) -> usize {
        self.nnz() * 24
    }
}

/// The decomposition of one matrix of the sequence.
#[derive(Debug, Clone)]
pub struct DecomposedMatrix {
    /// Position of the matrix in the sequence.
    pub index: usize,
    /// The ordering `O_i` applied before decomposition.
    pub ordering: Ordering,
    /// The factors of `A_i^{O_i}` (absent when the run was timing-only).
    pub factors: Option<MatrixFactors>,
}

impl DecomposedMatrix {
    /// Solves the original system `A_i x = b` through the reordered factors.
    pub fn solve(&self, b: &[f64]) -> LuResult<Vec<f64>> {
        let mut x = Vec::new();
        let mut scratch = SolveScratch::new();
        self.solve_into(b, &mut scratch, &mut x)?;
        Ok(x)
    }

    /// Allocation-free variant of [`DecomposedMatrix::solve`]: permutes and
    /// substitutes through the reused `scratch`, writing the solution into
    /// `out` (capacities are reused, previous contents discarded).  This is
    /// the per-shard solve of the engine's coupled query path, called once
    /// per shard per sweep — the reason it must not allocate.
    pub fn solve_into(
        &self,
        b: &[f64],
        scratch: &mut SolveScratch,
        out: &mut Vec<f64>,
    ) -> LuResult<()> {
        let factors = self.factors.as_ref().ok_or(LuError::DimensionMismatch {
            expected: self.ordering.row().len(),
            actual: 0,
        })?;
        match factors {
            MatrixFactors::Static(f) => solve_original_into(f, &self.ordering, b, scratch, out),
            MatrixFactors::Dynamic(f) => solve_original_into(f, &self.ordering, b, scratch, out),
        }
    }

    /// Panel variant of [`DecomposedMatrix::solve_into`]: solves `n_rhs`
    /// systems whose right-hand sides are stacked column-major in `b`, one
    /// factor traversal for the whole panel.  Every stripe of `out` is
    /// bit-identical to a sequential [`DecomposedMatrix::solve_into`] call —
    /// the contract the engine's query batcher relies on.
    pub fn solve_many_into(
        &self,
        b: &[f64],
        n_rhs: usize,
        scratch: &mut PanelScratch,
        out: &mut Vec<f64>,
    ) -> LuResult<()> {
        let factors = self.factors.as_ref().ok_or(LuError::DimensionMismatch {
            expected: self.ordering.row().len(),
            actual: 0,
        })?;
        match factors {
            MatrixFactors::Static(f) => {
                solve_original_many_into(f, &self.ordering, b, n_rhs, scratch, out)
            }
            MatrixFactors::Dynamic(f) => {
                solve_original_many_into(f, &self.ordering, b, n_rhs, scratch, out)
            }
        }
    }

    /// Rough resident size of this decomposition in bytes: the factors plus
    /// the ordering's two permutation maps.  See
    /// [`MatrixFactors::approx_bytes`] for the accounting granularity.
    pub fn approx_bytes(&self) -> usize {
        let ordering_bytes = 2 * self.ordering.row().len() * std::mem::size_of::<usize>();
        self.factors.as_ref().map_or(0, MatrixFactors::approx_bytes) + ordering_bytes
    }
}

/// The output of a LUDEM solver: one decomposition per matrix plus a report.
#[derive(Debug, Clone)]
pub struct LudemSolution {
    /// Per-matrix decompositions, in sequence order.
    pub decomposed: Vec<DecomposedMatrix>,
    /// Timing and accounting for the run.
    pub report: RunReport,
}

impl LudemSolution {
    /// Solves `A_i x = b` for snapshot `i`.
    pub fn solve(&self, i: usize, b: &[f64]) -> LuResult<Vec<f64>> {
        self.decomposed[i].solve(b)
    }
}

/// A solver for the LUDEM problem (Definition 3).
pub trait LudemSolver {
    /// Short display name ("BF", "INC", "CINC", "CLUDE", …).
    fn name(&self) -> &'static str;

    /// Determines an ordering and the LU factors for every matrix of `ems`.
    fn solve(&self, ems: &EvolvingMatrixSequence, config: &SolverConfig)
        -> LuResult<LudemSolution>;
}

/// Decomposes one cluster the INC/CINC way (Algorithm 2): the Markowitz
/// ordering of the cluster's *first* matrix is shared by every member, the
/// first matrix is fully decomposed into dynamic adjacency lists, and the
/// rest are obtained by Bennett updates with insertion-on-demand.
///
/// When `ordering` is `Some`, that ordering is used instead of computing the
/// first matrix's Markowitz ordering (β-clustering passes the ordering it
/// already computed during cluster formation).
pub fn decompose_cluster_incremental(
    ems: &EvolvingMatrixSequence,
    cluster: &Cluster,
    ordering: Option<Ordering>,
    config: &SolverConfig,
    report: &mut RunReport,
    out: &mut Vec<DecomposedMatrix>,
) -> LuResult<()> {
    let timings = &mut report.timings;
    // Ordering of the first matrix of the cluster.
    let ordering = match ordering {
        Some(o) => o,
        None => {
            let t = Instant::now();
            let o = markowitz_ordering(&ems.pattern(cluster.start)).ordering;
            timings.ordering += t.elapsed();
            o
        }
    };

    // Full decomposition of the first matrix (dynamic storage).
    let t = Instant::now();
    let first_reordered = ems
        .matrix(cluster.start)
        .reorder(&ordering)
        .expect("ordering matches the matrix order");
    timings.symbolic += t.elapsed();
    let t = Instant::now();
    let mut factors = DynamicLuFactors::factorize(&first_reordered)?;
    timings.full_decomposition += t.elapsed();
    factors.reset_structural_stats();

    report.cluster_sizes.push(cluster.len());
    report.orderings.push(ordering.clone());
    report.factor_nnz.push(factors.nnz());
    out.push(DecomposedMatrix {
        index: cluster.start,
        ordering: ordering.clone(),
        factors: config
            .keep_factors
            .then(|| MatrixFactors::Dynamic(factors.clone())),
    });

    // Bennett updates for the remaining members, all sharing one workspace
    // so the steady-state sweep never allocates.
    let mut workspace = BennettWorkspace::with_order(factors.n());
    let mut prev_reordered = first_reordered;
    for i in cluster.start + 1..cluster.end {
        let t = Instant::now();
        let current_reordered = ems
            .matrix(i)
            .reorder(&ordering)
            .expect("ordering matches the matrix order");
        let delta = prev_reordered
            .delta_to(&current_reordered, 0.0)
            .expect("matrices share a shape");
        let stats = apply_delta_with(&mut factors, &mut workspace, &delta)?;
        timings.incremental += t.elapsed();
        report.bennett.merge(&stats);
        report.orderings.push(ordering.clone());
        report.factor_nnz.push(factors.nnz());
        out.push(DecomposedMatrix {
            index: i,
            ordering: ordering.clone(),
            factors: config
                .keep_factors
                .then(|| MatrixFactors::Dynamic(factors.clone())),
        });
        prev_reordered = current_reordered;
    }
    let s = factors.structural_stats();
    report.structural.inserts += s.inserts;
    report.structural.removals += s.removals;
    report.structural.probes += s.probes;
    Ok(())
}

/// Decomposes one cluster the CLUDE way (Algorithm 3): the Markowitz ordering
/// of the cluster's union matrix `A_∪` is shared by every member, its
/// symbolic decomposition defines a universal static structure, the first
/// matrix is fully decomposed into that structure, and the rest are obtained
/// by Bennett updates that never modify the structure.
pub fn decompose_cluster_universal(
    ems: &EvolvingMatrixSequence,
    cluster: &Cluster,
    ordering: Option<Ordering>,
    config: &SolverConfig,
    report: &mut RunReport,
    out: &mut Vec<DecomposedMatrix>,
) -> LuResult<()> {
    // Union pattern of the cluster (Definition 7) — counted as clustering
    // work, as in the paper's breakdown.
    let t = Instant::now();
    let union = cluster_union_pattern(ems, cluster);
    report.timings.clustering += t.elapsed();

    // Markowitz ordering of A_∪.
    let ordering = match ordering {
        Some(o) => o,
        None => {
            let t = Instant::now();
            let o = markowitz_ordering(&union).ordering;
            report.timings.ordering += t.elapsed();
            o
        }
    };

    // Symbolic decomposition of A_∪^{O_∪} and the universal static structure.
    let t = Instant::now();
    let reordered_union = clude_lu::reorder_pattern(&union, &ordering);
    let ussp = clude_lu::symbolic_decomposition(&reordered_union).pattern;
    let structure: Arc<LuStructure> =
        LuStructure::from_closed_pattern_unchecked(&ussp).into_shared();
    report.timings.symbolic += t.elapsed();

    // Full decomposition of the first matrix over the shared structure.
    let t = Instant::now();
    let first_reordered = ems
        .matrix(cluster.start)
        .reorder(&ordering)
        .expect("ordering matches the matrix order");
    let mut factors = LuFactors::factorize(Arc::clone(&structure), &first_reordered)?;
    report.timings.full_decomposition += t.elapsed();

    report.cluster_sizes.push(cluster.len());
    report.orderings.push(ordering.clone());
    report.factor_nnz.push(factors.nnz());
    out.push(DecomposedMatrix {
        index: cluster.start,
        ordering: ordering.clone(),
        factors: config
            .keep_factors
            .then(|| MatrixFactors::Static(factors.clone())),
    });

    // Bennett updates over the static structure for the remaining members,
    // all sharing one workspace so the steady-state sweep never allocates.
    let mut workspace = BennettWorkspace::with_order(factors.n());
    let mut prev_reordered = first_reordered;
    for i in cluster.start + 1..cluster.end {
        let t = Instant::now();
        let current_reordered = ems
            .matrix(i)
            .reorder(&ordering)
            .expect("ordering matches the matrix order");
        let delta = prev_reordered
            .delta_to(&current_reordered, 0.0)
            .expect("matrices share a shape");
        let stats = apply_delta_with(&mut factors, &mut workspace, &delta)?;
        report.timings.incremental += t.elapsed();
        report.bennett.merge(&stats);
        report.orderings.push(ordering.clone());
        report.factor_nnz.push(factors.nnz());
        out.push(DecomposedMatrix {
            index: i,
            ordering: ordering.clone(),
            factors: config
                .keep_factors
                .then(|| MatrixFactors::Static(factors.clone())),
        });
        prev_reordered = current_reordered;
    }
    Ok(())
}

/// Verifies that a solution's factors reproduce the original matrices (used
/// by tests and the verification example).  Returns the largest entry-wise
/// reconstruction error across the sequence.
pub fn max_reconstruction_error(
    ems: &EvolvingMatrixSequence,
    solution: &LudemSolution,
) -> Option<f64> {
    let mut worst: f64 = 0.0;
    for d in &solution.decomposed {
        let factors = d.factors.as_ref()?;
        let reordered: CsrMatrix = ems
            .matrix(d.index)
            .reorder(&d.ordering)
            .expect("ordering matches");
        let reconstructed = match factors {
            MatrixFactors::Static(f) => f.reconstruct(),
            MatrixFactors::Dynamic(f) => f.reconstruct(),
        };
        worst = worst.max(
            reconstructed
                .max_abs_diff(&reordered)
                .expect("shapes agree"),
        );
    }
    Some(worst)
}

/// Sums a timing breakdown's total; helper for speed comparisons in tests.
pub fn total_time(t: &TimingBreakdown) -> std::time::Duration {
    t.total()
}
