//! The Brute Force baseline (BF).
//!
//! BF determines the Markowitz ordering of *every* matrix of the sequence,
//! reorders it into its best form `A_i*` and decomposes it from scratch.  It
//! is the slowest approach but attains quality-loss 0 by definition, and the
//! paper expresses every other algorithm's running time as a speed-up over
//! BF.  As a by-product BF yields the reference sizes `|s̃p(A_i*)|` that the
//! quality-loss metric needs.

use crate::algorithms::common::{
    DecomposedMatrix, LudemSolution, LudemSolver, MatrixFactors, SolverConfig,
};
use crate::ems::EvolvingMatrixSequence;
use crate::quality::MarkowitzReference;
use crate::report::RunReport;
use clude_lu::{markowitz_ordering, LuFactors, LuResult, LuStructure};
use std::time::Instant;

/// The brute-force LUDEM solver.
#[derive(Debug, Clone, Copy, Default)]
pub struct BruteForce;

impl BruteForce {
    /// Runs BF and additionally returns the Markowitz reference sizes it
    /// computed along the way (so callers do not need to recompute them for
    /// quality evaluation).
    pub fn solve_with_reference(
        &self,
        ems: &EvolvingMatrixSequence,
        config: &SolverConfig,
    ) -> LuResult<(LudemSolution, MarkowitzReference)> {
        let mut report = RunReport::new(self.name());
        let mut decomposed = Vec::with_capacity(ems.len());
        let mut reference_sizes = Vec::with_capacity(ems.len());
        for (i, a) in ems.iter().enumerate() {
            let t = Instant::now();
            let ordering_result = markowitz_ordering(&a.pattern());
            report.timings.ordering += t.elapsed();
            reference_sizes.push(ordering_result.symbolic_size);

            let ordering = ordering_result.ordering;
            let t = Instant::now();
            let reordered = a.reorder(&ordering).expect("ordering matches the matrix");
            let structure = LuStructure::from_pattern(&reordered.pattern())?.into_shared();
            report.timings.symbolic += t.elapsed();

            let t = Instant::now();
            let factors = LuFactors::factorize(structure, &reordered)?;
            report.timings.full_decomposition += t.elapsed();

            report.cluster_sizes.push(1);
            report.orderings.push(ordering.clone());
            report.factor_nnz.push(factors.nnz());
            decomposed.push(DecomposedMatrix {
                index: i,
                ordering,
                factors: config
                    .keep_factors
                    .then_some(MatrixFactors::Static(factors)),
            });
        }
        let solution = LudemSolution { decomposed, report };
        Ok((solution, MarkowitzReference::from_sizes(reference_sizes)))
    }
}

impl LudemSolver for BruteForce {
    fn name(&self) -> &'static str {
        "BF"
    }

    fn solve(
        &self,
        ems: &EvolvingMatrixSequence,
        config: &SolverConfig,
    ) -> LuResult<LudemSolution> {
        self.solve_with_reference(ems, config).map(|(s, _)| s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::common::max_reconstruction_error;
    use crate::test_support::small_random_walk_ems;

    #[test]
    fn bf_decomposes_every_matrix_exactly() {
        let ems = small_random_walk_ems(30, 8, 42);
        let (solution, reference) = BruteForce
            .solve_with_reference(&ems, &SolverConfig::default())
            .unwrap();
        assert_eq!(solution.decomposed.len(), ems.len());
        assert_eq!(reference.len(), ems.len());
        assert!(max_reconstruction_error(&ems, &solution).unwrap() < 1e-9);
        // Every cluster is a singleton.
        assert_eq!(solution.report.cluster_count(), ems.len());
        assert!(solution.report.cluster_sizes.iter().all(|&s| s == 1));
    }

    #[test]
    fn bf_factor_sizes_match_reference_sizes() {
        let ems = small_random_walk_ems(25, 5, 7);
        let (solution, reference) = BruteForce
            .solve_with_reference(&ems, &SolverConfig::default())
            .unwrap();
        // The factors BF builds have exactly |s̃p(A_i*)| slots.
        assert_eq!(solution.report.factor_nnz, reference.sizes());
    }

    #[test]
    fn bf_solves_queries_per_snapshot() {
        let ems = small_random_walk_ems(20, 4, 3);
        let solution = BruteForce.solve(&ems, &SolverConfig::default()).unwrap();
        let n = ems.order();
        let b = vec![1.0; n];
        for i in [0usize, ems.len() / 2, ems.len() - 1] {
            let x = solution.solve(i, &b).unwrap();
            let residual = ems.matrix(i).mul_vec(&x).unwrap();
            for (l, r) in residual.iter().zip(b.iter()) {
                assert!((l - r).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn timing_only_run_keeps_no_factors() {
        let ems = small_random_walk_ems(15, 4, 11);
        let solution = BruteForce
            .solve(&ems, &SolverConfig::timing_only())
            .unwrap();
        assert!(solution.decomposed.iter().all(|d| d.factors.is_none()));
        assert!(solution.solve(0, &vec![1.0; ems.order()]).is_err());
    }
}
