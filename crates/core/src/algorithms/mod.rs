//! The four LUDEM solvers of the paper (§4) plus their shared machinery.
//!
//! | Algorithm | Clustering | Ordering source | Storage | Incremental? |
//! |-----------|------------|-----------------|---------|--------------|
//! | [`BruteForce`] (BF) | none (per-matrix) | Markowitz of each `A_i` | static | no |
//! | [`Incremental`] (INC) | none (one big cluster) | Markowitz of `A_1` | dynamic | Bennett |
//! | [`ClusterIncremental`] (CINC) | α-clustering | Markowitz of each cluster's first matrix | dynamic | Bennett |
//! | [`Clude`] (CLUDE) | α-clustering | Markowitz of each cluster's `A_∪` | static (USSP) | Bennett |

pub mod bf;
pub mod cinc;
pub mod clude;
pub mod common;
pub mod inc;

pub use bf::BruteForce;
pub use cinc::ClusterIncremental;
pub use clude::Clude;
pub use common::{
    decompose_cluster_incremental, decompose_cluster_universal, max_reconstruction_error,
    DecomposedMatrix, LudemSolution, LudemSolver, MatrixFactors, SolverConfig,
};
pub use inc::Incremental;
