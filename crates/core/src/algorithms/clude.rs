//! CLUDE — the fast cluster-based LU decomposition (Algorithm 3).
//!
//! CLUDE keeps CINC's α-clustering but changes two things inside each
//! cluster:
//!
//! 1. the shared ordering is the Markowitz ordering of the cluster's *union*
//!    matrix `A_∪`, which fits every member (better quality than CINC's
//!    first-matrix ordering);
//! 2. the symbolic decomposition of `A_∪^{O_∪}` yields a *universal symbolic
//!    sparsity pattern* (Theorem 1) from which one static factor structure is
//!    built and shared by every member, so Bennett's updates never perform
//!    structural maintenance.
//!
//! Together these give the order-of-magnitude speed-ups and quality gains the
//! paper reports.

use crate::algorithms::common::{
    decompose_cluster_universal, LudemSolution, LudemSolver, SolverConfig,
};
use crate::cluster::alpha_clustering;
use crate::ems::EvolvingMatrixSequence;
use crate::report::RunReport;
use clude_lu::LuResult;
use std::time::Instant;

/// The CLUDE solver with its α-clustering similarity threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Clude {
    /// Similarity threshold `α ∈ [0, 1]` of Definition 8.
    pub alpha: f64,
}

impl Clude {
    /// Creates a CLUDE solver with the given threshold.
    pub fn new(alpha: f64) -> Self {
        Clude { alpha }
    }
}

impl Default for Clude {
    /// The paper's sweet-spot threshold of 0.95.
    fn default() -> Self {
        Clude { alpha: 0.95 }
    }
}

impl LudemSolver for Clude {
    fn name(&self) -> &'static str {
        "CLUDE"
    }

    fn solve(
        &self,
        ems: &EvolvingMatrixSequence,
        config: &SolverConfig,
    ) -> LuResult<LudemSolution> {
        let mut report = RunReport::new(self.name());
        let mut decomposed = Vec::with_capacity(ems.len());
        let t = Instant::now();
        let clustering = alpha_clustering(ems, self.alpha);
        report.timings.clustering += t.elapsed();
        for cluster in clustering.clusters() {
            decompose_cluster_universal(ems, cluster, None, config, &mut report, &mut decomposed)?;
        }
        Ok(LudemSolution { decomposed, report })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::common::max_reconstruction_error;
    use crate::algorithms::{BruteForce, ClusterIncremental, Incremental};
    use crate::quality::evaluate_orderings;
    use crate::test_support::small_random_walk_ems;

    #[test]
    fn clude_reproduces_every_matrix() {
        let ems = small_random_walk_ems(30, 12, 3);
        let solution = Clude::new(0.95)
            .solve(&ems, &SolverConfig::default())
            .unwrap();
        assert_eq!(solution.decomposed.len(), ems.len());
        assert!(max_reconstruction_error(&ems, &solution).unwrap() < 1e-8);
    }

    #[test]
    fn clude_never_touches_structure_during_updates() {
        let ems = small_random_walk_ems(35, 10, 13);
        let solution = Clude::new(0.9)
            .solve(&ems, &SolverConfig::timing_only())
            .unwrap();
        // Static storage: no structural maintenance at all.
        assert_eq!(solution.report.structural.inserts, 0);
        assert_eq!(solution.report.structural.removals, 0);
        assert!(solution.report.bennett.rank_one_updates > 0);
    }

    #[test]
    fn factors_within_a_cluster_share_their_slot_count() {
        let ems = small_random_walk_ems(30, 9, 19);
        let solution = Clude::new(0.9)
            .solve(&ems, &SolverConfig::timing_only())
            .unwrap();
        let mut index = 0;
        for &size in &solution.report.cluster_sizes {
            let first = solution.report.factor_nnz[index];
            for &nnz in &solution.report.factor_nnz[index..index + size] {
                assert_eq!(nnz, first, "universal structure is shared within a cluster");
            }
            index += size;
        }
    }

    #[test]
    fn clude_quality_is_at_least_as_good_as_inc() {
        let ems = small_random_walk_ems(40, 15, 37);
        let (_, reference) = BruteForce
            .solve_with_reference(&ems, &SolverConfig::timing_only())
            .unwrap();
        let clude = Clude::new(0.95)
            .solve(&ems, &SolverConfig::timing_only())
            .unwrap();
        let inc = Incremental
            .solve(&ems, &SolverConfig::timing_only())
            .unwrap();
        let q_clude = evaluate_orderings(&ems, &clude.report.orderings, &reference).average();
        let q_inc = evaluate_orderings(&ems, &inc.report.orderings, &reference).average();
        assert!(
            q_clude <= q_inc + 1e-9,
            "CLUDE quality-loss {q_clude} should not exceed INC's {q_inc}"
        );
    }

    #[test]
    fn clude_and_cinc_use_identical_clusterings() {
        let ems = small_random_walk_ems(30, 10, 41);
        let clude = Clude::new(0.93)
            .solve(&ems, &SolverConfig::timing_only())
            .unwrap();
        let cinc = ClusterIncremental::new(0.93)
            .solve(&ems, &SolverConfig::timing_only())
            .unwrap();
        assert_eq!(clude.report.cluster_sizes, cinc.report.cluster_sizes);
    }

    #[test]
    fn queries_match_brute_force_answers() {
        let ems = small_random_walk_ems(25, 8, 47);
        let clude = Clude::default()
            .solve(&ems, &SolverConfig::default())
            .unwrap();
        let bf = BruteForce.solve(&ems, &SolverConfig::default()).unwrap();
        let b = vec![0.15 / ems.order() as f64; ems.order()];
        for i in 0..ems.len() {
            let x1 = clude.solve(i, &b).unwrap();
            let x2 = bf.solve(i, &b).unwrap();
            for (u, v) in x1.iter().zip(x2.iter()) {
                assert!((u - v).abs() < 1e-8);
            }
        }
    }
}
