//! The cluster-based incremental algorithm (CINC, Algorithm 2).
//!
//! CINC first α-clusters the sequence, then runs INC independently inside
//! every cluster: the Markowitz ordering of the cluster's first matrix is
//! shared by its members, the first member is decomposed in full, the rest by
//! Bennett updates.  Clustering restores ordering quality (the ordering never
//! has to fit matrices outside its own cluster) at the price of one extra
//! Markowitz ordering and one extra full decomposition per cluster.

use crate::algorithms::common::{
    decompose_cluster_incremental, LudemSolution, LudemSolver, SolverConfig,
};
use crate::cluster::alpha_clustering;
use crate::ems::EvolvingMatrixSequence;
use crate::report::RunReport;
use clude_lu::LuResult;
use std::time::Instant;

/// The CINC solver with its α-clustering similarity threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterIncremental {
    /// Similarity threshold `α ∈ [0, 1]` of Definition 8.
    pub alpha: f64,
}

impl ClusterIncremental {
    /// Creates a CINC solver with the given threshold.
    pub fn new(alpha: f64) -> Self {
        ClusterIncremental { alpha }
    }
}

impl Default for ClusterIncremental {
    /// The paper's sweet-spot threshold of 0.95.
    fn default() -> Self {
        ClusterIncremental { alpha: 0.95 }
    }
}

impl LudemSolver for ClusterIncremental {
    fn name(&self) -> &'static str {
        "CINC"
    }

    fn solve(
        &self,
        ems: &EvolvingMatrixSequence,
        config: &SolverConfig,
    ) -> LuResult<LudemSolution> {
        let mut report = RunReport::new(self.name());
        let mut decomposed = Vec::with_capacity(ems.len());
        let t = Instant::now();
        let clustering = alpha_clustering(ems, self.alpha);
        report.timings.clustering += t.elapsed();
        for cluster in clustering.clusters() {
            decompose_cluster_incremental(
                ems,
                cluster,
                None,
                config,
                &mut report,
                &mut decomposed,
            )?;
        }
        Ok(LudemSolution { decomposed, report })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::common::max_reconstruction_error;
    use crate::test_support::small_random_walk_ems;

    #[test]
    fn cinc_reproduces_every_matrix() {
        let ems = small_random_walk_ems(30, 12, 17);
        let solution = ClusterIncremental::new(0.97)
            .solve(&ems, &SolverConfig::default())
            .unwrap();
        assert_eq!(solution.decomposed.len(), ems.len());
        assert!(max_reconstruction_error(&ems, &solution).unwrap() < 1e-8);
        // Cluster sizes tile the sequence.
        assert_eq!(
            solution.report.cluster_sizes.iter().sum::<usize>(),
            ems.len()
        );
    }

    #[test]
    fn alpha_one_reduces_cinc_to_bf_like_clustering() {
        let ems = small_random_walk_ems(25, 6, 23);
        let solution = ClusterIncremental::new(1.0)
            .solve(&ems, &SolverConfig::timing_only())
            .unwrap();
        // With a drifting sequence and α = 1 every cluster is (almost surely)
        // a singleton, so no Bennett updates happen.
        if solution.report.cluster_sizes.iter().all(|&s| s == 1) {
            assert_eq!(solution.report.bennett.rank_one_updates, 0);
        }
        assert_eq!(
            solution.report.cluster_sizes.iter().sum::<usize>(),
            ems.len()
        );
    }

    #[test]
    fn members_of_a_cluster_share_their_ordering() {
        let ems = small_random_walk_ems(30, 10, 29);
        let solution = ClusterIncremental::new(0.95)
            .solve(&ems, &SolverConfig::timing_only())
            .unwrap();
        let mut index = 0;
        for &size in &solution.report.cluster_sizes {
            let first = &solution.decomposed[index].ordering;
            for d in &solution.decomposed[index..index + size] {
                assert_eq!(&d.ordering, first);
            }
            index += size;
        }
    }

    #[test]
    fn queries_are_answerable_at_any_snapshot() {
        let ems = small_random_walk_ems(20, 8, 31);
        let solution = ClusterIncremental::default()
            .solve(&ems, &SolverConfig::default())
            .unwrap();
        let b = vec![1.0; ems.order()];
        let x = solution.solve(ems.len() - 1, &b).unwrap();
        let ax = ems.matrix(ems.len() - 1).mul_vec(&x).unwrap();
        for (l, r) in ax.iter().zip(b.iter()) {
            assert!((l - r).abs() < 1e-8);
        }
    }
}
