//! Universal symbolic sparsity patterns (Definition 9, Lemma 1, Theorem 1).
//!
//! A USSP of a cluster is any index set that contains the symbolic sparsity
//! pattern of *every* matrix in the cluster.  Theorem 1 shows that
//! `s̃p(A_∪)` — the symbolic pattern of the cluster's union matrix — is such a
//! set, which is what lets CLUDE build one static factor structure per
//! cluster.  This module computes that pattern and offers a checker used by
//! tests and by the verification examples.

use crate::cluster::{cluster_union_pattern, Cluster};
use crate::ems::EvolvingMatrixSequence;
use clude_lu::symbolic_decomposition;
use clude_lu::{reorder_pattern, LuStructure};
use clude_sparse::{Ordering, SparsityPattern};

/// Computes the USSP of a cluster under a shared ordering `O`:
/// `s̃p(A_∪^{O})`, as used in Algorithm 3 (lines 1–3).
pub fn universal_pattern(
    ems: &EvolvingMatrixSequence,
    cluster: &Cluster,
    ordering: &Ordering,
) -> SparsityPattern {
    let union = cluster_union_pattern(ems, cluster);
    let reordered = reorder_pattern(&union, ordering);
    symbolic_decomposition(&reordered).pattern
}

/// Builds the static LU structure shared by every matrix of the cluster.
pub fn universal_structure(
    ems: &EvolvingMatrixSequence,
    cluster: &Cluster,
    ordering: &Ordering,
) -> LuStructure {
    let pattern = universal_pattern(ems, cluster, ordering);
    LuStructure::from_closed_pattern_unchecked(&pattern)
}

/// Checks Definition 9 directly: `s̃p(A_i^O) ⊆ S` for every cluster member.
/// Returns the first violating matrix index, or `None` when `candidate` is a
/// genuine USSP.
pub fn verify_ussp(
    ems: &EvolvingMatrixSequence,
    cluster: &Cluster,
    ordering: &Ordering,
    candidate: &SparsityPattern,
) -> Option<usize> {
    for i in cluster.range() {
        let member = symbolic_decomposition(&reorder_pattern(&ems.pattern(i), ordering)).pattern;
        if !member.is_subset_of(candidate) {
            return Some(i);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use clude_lu::markowitz_ordering;
    use clude_sparse::{CooMatrix, CsrMatrix};

    fn drifting_ems() -> EvolvingMatrixSequence {
        let n = 9;
        let mut matrices = Vec::new();
        let mut extra: Vec<(usize, usize)> = vec![(0, 3), (4, 1), (7, 2)];
        for step in 0..5usize {
            let mut coo = CooMatrix::new(n, n);
            for i in 0..n {
                coo.push(i, i, 5.0).unwrap();
            }
            extra.push(((3 * step + 2) % n, (5 * step + 1) % n));
            for &(i, j) in &extra {
                if i != j {
                    coo.push(i, j, -1.0).unwrap();
                }
            }
            matrices.push(CsrMatrix::from_coo(&coo));
        }
        EvolvingMatrixSequence::new(matrices).unwrap()
    }

    #[test]
    fn union_symbolic_pattern_is_a_ussp() {
        // Theorem 1: s̃p(A_∪) covers every member's s̃p, under any shared
        // ordering.
        let ems = drifting_ems();
        let cluster = Cluster {
            start: 0,
            end: ems.len(),
        };
        let union = cluster_union_pattern(&ems, &cluster);
        let ordering = markowitz_ordering(&union).ordering;
        let ussp = universal_pattern(&ems, &cluster, &ordering);
        assert_eq!(verify_ussp(&ems, &cluster, &ordering, &ussp), None);
    }

    #[test]
    fn identity_ordering_ussp_also_valid() {
        let ems = drifting_ems();
        let cluster = Cluster { start: 1, end: 4 };
        let ordering = Ordering::identity(ems.order());
        let ussp = universal_pattern(&ems, &cluster, &ordering);
        assert_eq!(verify_ussp(&ems, &cluster, &ordering, &ussp), None);
    }

    #[test]
    fn too_small_candidate_is_rejected() {
        let ems = drifting_ems();
        let cluster = Cluster {
            start: 0,
            end: ems.len(),
        };
        let ordering = Ordering::identity(ems.order());
        // A single member's symbolic pattern is generally NOT a USSP for the
        // whole cluster (later matrices add entries).
        let small = symbolic_decomposition(&ems.pattern(0)).pattern;
        let violation = verify_ussp(&ems, &cluster, &ordering, &small);
        assert!(violation.is_some());
    }

    #[test]
    fn universal_structure_covers_every_member_matrix() {
        let ems = drifting_ems();
        let cluster = Cluster {
            start: 0,
            end: ems.len(),
        };
        let union = cluster_union_pattern(&ems, &cluster);
        let ordering = markowitz_ordering(&union).ordering;
        let structure = universal_structure(&ems, &cluster, &ordering);
        for i in cluster.range() {
            let reordered = ems.matrix(i).reorder(&ordering).unwrap();
            for (r, c, _) in reordered.iter() {
                assert!(
                    structure.contains(r, c),
                    "missing slot ({r},{c}) for matrix {i}"
                );
            }
        }
    }
}
