//! Evolving matrix sequences (EMS).
//!
//! An [`EvolvingMatrixSequence`] is the paper's `M = {A_1, …, A_T}`: one
//! square sparse matrix per graph snapshot, all of the same order.  It is the
//! input of the LUDEM and LUDEM-QC problems (Definitions 3 and 5).

use clude_graph::{evolving_matrix_sequence, EvolvingGraphSequence, MatrixKind};
use clude_sparse::{CsrMatrix, SparsityPattern};
use std::fmt;

/// Errors raised when assembling an EMS.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EmsError {
    /// The sequence contained no matrices.
    Empty,
    /// A matrix was not square.
    NotSquare {
        /// Index of the offending matrix.
        index: usize,
    },
    /// A matrix had a different order than the first one.
    OrderMismatch {
        /// Index of the offending matrix.
        index: usize,
        /// Expected order (that of the first matrix).
        expected: usize,
        /// Actual order.
        actual: usize,
    },
}

impl fmt::Display for EmsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmsError::Empty => write!(f, "an evolving matrix sequence needs at least one matrix"),
            EmsError::NotSquare { index } => write!(f, "matrix {index} is not square"),
            EmsError::OrderMismatch {
                index,
                expected,
                actual,
            } => write!(f, "matrix {index} has order {actual}, expected {expected}"),
        }
    }
}

impl std::error::Error for EmsError {}

/// The sequence of matrices derived from an evolving graph sequence.
#[derive(Debug, Clone)]
pub struct EvolvingMatrixSequence {
    matrices: Vec<CsrMatrix>,
}

impl EvolvingMatrixSequence {
    /// Builds an EMS from explicit matrices, validating shape uniformity.
    pub fn new(matrices: Vec<CsrMatrix>) -> Result<Self, EmsError> {
        if matrices.is_empty() {
            return Err(EmsError::Empty);
        }
        let n = matrices[0].n_rows();
        for (index, m) in matrices.iter().enumerate() {
            if !m.is_square() {
                return Err(EmsError::NotSquare { index });
            }
            if m.n_rows() != n {
                return Err(EmsError::OrderMismatch {
                    index,
                    expected: n,
                    actual: m.n_rows(),
                });
            }
        }
        Ok(EvolvingMatrixSequence { matrices })
    }

    /// Derives the EMS of a graph sequence for the given matrix composition.
    pub fn from_egs(egs: &EvolvingGraphSequence, kind: MatrixKind) -> Self {
        let matrices = evolving_matrix_sequence(egs, kind);
        EvolvingMatrixSequence { matrices }
    }

    /// Matrix order `n` (number of graph nodes).
    pub fn order(&self) -> usize {
        self.matrices[0].n_rows()
    }

    /// Sequence length `T`.
    pub fn len(&self) -> usize {
        self.matrices.len()
    }

    /// Always `false` (construction rejects empty sequences).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The `i`-th matrix (0-based).
    pub fn matrix(&self, i: usize) -> &CsrMatrix {
        &self.matrices[i]
    }

    /// All matrices as a slice.
    pub fn matrices(&self) -> &[CsrMatrix] {
        &self.matrices
    }

    /// Iterator over the matrices.
    pub fn iter(&self) -> impl Iterator<Item = &CsrMatrix> {
        self.matrices.iter()
    }

    /// The sparsity pattern of the `i`-th matrix.
    pub fn pattern(&self, i: usize) -> SparsityPattern {
        self.matrices[i].pattern()
    }

    /// Average `mes` similarity between successive matrices (the statistic
    /// the paper reports as >99 % on its datasets).
    pub fn average_successive_similarity(&self) -> f64 {
        if self.matrices.len() < 2 {
            return 1.0;
        }
        let mut total = 0.0;
        for w in self.matrices.windows(2) {
            total += w[0]
                .pattern()
                .mes(&w[1].pattern())
                .expect("matrices share a shape");
        }
        total / (self.matrices.len() - 1) as f64
    }

    /// Returns `true` when every matrix of the sequence is structurally and
    /// numerically symmetric (the precondition of LUDEM-QC).
    pub fn is_symmetric(&self) -> bool {
        self.matrices.iter().all(|m| {
            let p = m.pattern();
            p.is_symmetric()
                && p.iter()
                    .all(|(i, j)| (m.get(i, j) - m.get(j, i)).abs() < 1e-12)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clude_graph::{DiGraph, EvolvingGraphSequence};
    use clude_sparse::CooMatrix;

    fn small_matrix(n: usize, extra: &[(usize, usize, f64)]) -> CsrMatrix {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0).unwrap();
        }
        for &(i, j, v) in extra {
            coo.push(i, j, v).unwrap();
        }
        CsrMatrix::from_coo(&coo)
    }

    #[test]
    fn construction_validates_shapes() {
        assert_eq!(
            EvolvingMatrixSequence::new(vec![]).unwrap_err(),
            EmsError::Empty
        );
        let rect = CsrMatrix::from_coo(&CooMatrix::new(2, 3));
        assert!(matches!(
            EvolvingMatrixSequence::new(vec![rect]).unwrap_err(),
            EmsError::NotSquare { index: 0 }
        ));
        let a = small_matrix(3, &[]);
        let b = small_matrix(4, &[]);
        assert!(matches!(
            EvolvingMatrixSequence::new(vec![a.clone(), b]).unwrap_err(),
            EmsError::OrderMismatch { index: 1, .. }
        ));
        let ok = EvolvingMatrixSequence::new(vec![a.clone(), a]).unwrap();
        assert_eq!(ok.len(), 2);
        assert_eq!(ok.order(), 3);
        assert!(!ok.is_empty());
    }

    #[test]
    fn from_egs_produces_one_matrix_per_snapshot() {
        let g1 = DiGraph::from_edges(4, vec![(0, 1), (1, 2)]);
        let mut g2 = g1.clone();
        g2.add_edge(2, 3);
        let egs = EvolvingGraphSequence::from_snapshots(vec![g1, g2]);
        let ems = EvolvingMatrixSequence::from_egs(&egs, MatrixKind::random_walk_default());
        assert_eq!(ems.len(), 2);
        assert_eq!(ems.order(), 4);
        assert!(ems.matrix(1).get(3, 2) < 0.0);
        assert_eq!(ems.matrix(0).get(3, 2), 0.0);
        assert_eq!(ems.iter().count(), 2);
        assert_eq!(ems.matrices().len(), 2);
    }

    #[test]
    fn similarity_and_symmetry_checks() {
        let a = small_matrix(3, &[(0, 1, -1.0), (1, 0, -1.0)]);
        let b = small_matrix(3, &[(0, 1, -1.0), (1, 0, -1.0), (1, 2, -1.0), (2, 1, -1.0)]);
        let ems = EvolvingMatrixSequence::new(vec![a.clone(), b]).unwrap();
        assert!(ems.average_successive_similarity() > 0.7);
        assert!(ems.is_symmetric());
        let single = EvolvingMatrixSequence::new(vec![a]).unwrap();
        assert_eq!(single.average_successive_similarity(), 1.0);
        // Non-symmetric sequence detected.
        let c = small_matrix(3, &[(0, 1, -1.0)]);
        let ems2 = EvolvingMatrixSequence::new(vec![c]).unwrap();
        assert!(!ems2.is_symmetric());
        // Structurally symmetric but numerically asymmetric.
        let d = small_matrix(3, &[(0, 1, -1.0), (1, 0, -0.5)]);
        assert!(!EvolvingMatrixSequence::new(vec![d]).unwrap().is_symmetric());
    }

    #[test]
    fn error_display() {
        assert!(EmsError::Empty.to_string().contains("at least one"));
        assert!(EmsError::NotSquare { index: 2 }
            .to_string()
            .contains("matrix 2"));
        assert!(EmsError::OrderMismatch {
            index: 1,
            expected: 3,
            actual: 4
        }
        .to_string()
        .contains("expected 3"));
    }
}
