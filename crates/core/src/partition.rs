//! Graph-aware construction of node partitions.
//!
//! CLUDE's clustering (Algorithm 1) groups *consecutive snapshots* so one
//! ordering serves many matrices; the streaming engine's sharding applies the
//! same locality idea to the *node universe* of a single live snapshot:
//! updates to an evolving graph are spatially local, so grouping
//! well-connected nodes into one shard confines most Bennett work to that
//! shard's factors and keeps the cross-shard coupling small.
//!
//! [`edge_locality_partition`] is the greedy analogue of the α-clustering
//! sweep: it grows balanced regions breadth-first over the (undirected view
//! of the) graph, pulling in the neighbours of already-assigned nodes before
//! opening a new region, so each shard ends up a connected patch wherever the
//! graph allows it.

use clude_graph::{DiGraph, NodePartition};
use std::collections::VecDeque;

/// Partitions `graph`'s node universe into `k` balanced shards by greedy
/// breadth-first region growing.
///
/// Regions are grown one at a time up to their balanced target size
/// (`⌈n/k⌉` for the first `n mod k` shards, `⌊n/k⌋` after), always expanding
/// from the frontier of the current region across *either* edge direction;
/// when a region's frontier empties before the target is reached (its
/// component is exhausted), growth restarts from the smallest unassigned node
/// id.  The construction is deterministic.
///
/// # Panics
/// Panics when `k` is zero or exceeds the number of nodes of a non-empty
/// graph.
pub fn edge_locality_partition(graph: &DiGraph, k: usize) -> NodePartition {
    let n = graph.n_nodes();
    assert!(k >= 1, "need at least one shard");
    assert!(k <= n || n == 0, "cannot split {n} nodes into {k} shards");
    if n == 0 || k == 1 {
        return NodePartition::singleton(n);
    }
    let base = n / k;
    let extra = n % k;
    let mut shard_of = vec![usize::MAX; n];
    let mut next_unassigned = 0usize;
    let mut queue: VecDeque<usize> = VecDeque::new();
    for s in 0..k {
        let target = base + usize::from(s < extra);
        let mut size = 0usize;
        queue.clear();
        while size < target {
            let u = match queue.pop_front() {
                Some(u) if shard_of[u] == usize::MAX => u,
                Some(_) => continue, // claimed meanwhile (duplicate frontier entry)
                None => {
                    // Frontier exhausted: restart from the smallest free id.
                    while shard_of[next_unassigned] != usize::MAX {
                        next_unassigned += 1;
                    }
                    next_unassigned
                }
            };
            shard_of[u] = s;
            size += 1;
            // Expand across both directions so undirected locality is kept
            // even on directed snapshots.
            for v in graph.successors(u).chain(graph.predecessors(u)) {
                if shard_of[v] == usize::MAX {
                    queue.push_back(v);
                }
            }
        }
    }
    NodePartition::from_assignments(shard_of)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_cliques() -> DiGraph {
        // Nodes 0..4 densely linked, nodes 4..8 densely linked, one bridge.
        let mut g = DiGraph::new(8);
        for u in 0..4 {
            for v in 0..4 {
                if u != v {
                    g.add_edge(u, v);
                }
            }
        }
        for u in 4..8 {
            for v in 4..8 {
                if u != v {
                    g.add_edge(u, v);
                }
            }
        }
        g.add_edge(3, 4);
        g
    }

    #[test]
    fn clusters_stay_together() {
        let g = two_cliques();
        let p = edge_locality_partition(&g, 2);
        assert_eq!(p.n_shards(), 2);
        assert_eq!(p.shard_sizes(), vec![4, 4]);
        // Each clique lands in one shard.
        for u in 1..4 {
            assert!(p.is_intra(0, u));
        }
        for u in 5..8 {
            assert!(p.is_intra(4, u));
        }
        assert!(!p.is_intra(0, 4));
    }

    #[test]
    fn balanced_sizes_on_odd_split() {
        let g = DiGraph::from_edges(10, (0..10).map(|i| (i, (i + 1) % 10)).collect::<Vec<_>>());
        let p = edge_locality_partition(&g, 3);
        let mut sizes = p.shard_sizes();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![3, 3, 4]);
    }

    #[test]
    fn isolated_nodes_are_still_assigned() {
        let g = DiGraph::new(5); // no edges at all
        let p = edge_locality_partition(&g, 2);
        assert_eq!(p.n_nodes(), 5);
        assert_eq!(p.n_shards(), 2);
        let covered: usize = p.shard_sizes().iter().sum();
        assert_eq!(covered, 5);
    }

    #[test]
    fn single_shard_is_the_singleton_partition() {
        let g = two_cliques();
        assert_eq!(edge_locality_partition(&g, 1), NodePartition::singleton(8));
    }

    #[test]
    #[should_panic(expected = "cannot split")]
    fn too_many_shards_panic() {
        edge_locality_partition(&DiGraph::new(2), 5);
    }
}
