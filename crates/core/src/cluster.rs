//! α-clustering of an evolving matrix sequence (Algorithm 1).
//!
//! CLUDE's cluster-based algorithms group *consecutive* matrices of an EMS
//! into clusters so that one ordering (and, for CLUDE, one static structure)
//! can serve every matrix in a cluster.  A cluster `C` is summarised by the
//! bounding matrices `A_∩` and `A_∪` (Definition 7) and is *α-bounded* when
//! `mes(A_∩, A_∪) ≥ α` (Definition 8).  Because snapshots evolve gradually,
//! the paper partitions the sequence greedily from left to right; this module
//! implements that segmentation.

use crate::ems::EvolvingMatrixSequence;
use clude_sparse::SparsityPattern;
use std::ops::Range;

/// A contiguous cluster of matrix indices `[start, end)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cluster {
    /// Index of the first matrix of the cluster.
    pub start: usize,
    /// One past the index of the last matrix of the cluster.
    pub end: usize,
}

impl Cluster {
    /// The indices covered by this cluster.
    pub fn range(&self) -> Range<usize> {
        self.start..self.end
    }

    /// Number of matrices in the cluster.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Returns `true` for a degenerate empty cluster (never produced by the
    /// clustering routines).
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }
}

/// A partition of an EMS into consecutive clusters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clustering {
    clusters: Vec<Cluster>,
}

impl Clustering {
    /// Builds a clustering from explicit clusters (they must tile `0..T`).
    pub fn new(clusters: Vec<Cluster>) -> Self {
        debug_assert!(!clusters.is_empty());
        debug_assert!(clusters[0].start == 0);
        debug_assert!(clusters.windows(2).all(|w| w[0].end == w[1].start));
        Clustering { clusters }
    }

    /// The clusters, in sequence order.
    pub fn clusters(&self) -> &[Cluster] {
        &self.clusters
    }

    /// Number of clusters.
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// Always `false`: a clustering covers at least one matrix.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Sizes of all clusters.
    pub fn sizes(&self) -> Vec<usize> {
        self.clusters.iter().map(Cluster::len).collect()
    }

    /// Average cluster size.
    pub fn average_size(&self) -> f64 {
        let total: usize = self.sizes().iter().sum();
        total as f64 / self.clusters.len() as f64
    }
}

/// Incrementally maintained cluster bounds `A_∩` / `A_∪` (patterns only).
///
/// The clustering algorithms repeatedly ask "would adding the next matrix
/// keep the cluster α-bounded?", so the bounds are maintained incrementally
/// rather than recomputed from scratch.
#[derive(Debug, Clone)]
pub struct ClusterBounds {
    intersection: SparsityPattern,
    union: SparsityPattern,
}

impl ClusterBounds {
    /// Starts a cluster containing a single pattern.
    pub fn new(first: SparsityPattern) -> Self {
        ClusterBounds {
            intersection: first.clone(),
            union: first,
        }
    }

    /// The pattern of `A_∩`.
    pub fn intersection(&self) -> &SparsityPattern {
        &self.intersection
    }

    /// The pattern of `A_∪`.
    pub fn union(&self) -> &SparsityPattern {
        &self.union
    }

    /// The bounds that would result from adding `pattern` to the cluster.
    pub fn with(&self, pattern: &SparsityPattern) -> ClusterBounds {
        ClusterBounds {
            intersection: self
                .intersection
                .intersection(pattern)
                .expect("patterns share a shape"),
            union: self.union.union(pattern).expect("patterns share a shape"),
        }
    }

    /// `mes(A_∩, A_∪)` — the compactness of the cluster.
    pub fn compactness(&self) -> f64 {
        self.intersection
            .mes(&self.union)
            .expect("bounds share a shape")
    }

    /// Returns `true` when the cluster is α-bounded (Definition 8).
    pub fn is_alpha_bounded(&self, alpha: f64) -> bool {
        self.compactness() >= alpha
    }
}

/// Algorithm 1: greedy α-clustering of the sequence.
///
/// # Panics
/// Panics when `alpha` is not in `[0, 1]`.
pub fn alpha_clustering(ems: &EvolvingMatrixSequence, alpha: f64) -> Clustering {
    assert!((0.0..=1.0).contains(&alpha), "alpha must lie in [0, 1]");
    let mut clusters = Vec::new();
    let mut start = 0usize;
    let mut bounds = ClusterBounds::new(ems.pattern(0));
    for i in 1..ems.len() {
        let candidate = bounds.with(&ems.pattern(i));
        if candidate.is_alpha_bounded(alpha) {
            bounds = candidate;
        } else {
            clusters.push(Cluster { start, end: i });
            start = i;
            bounds = ClusterBounds::new(ems.pattern(i));
        }
    }
    clusters.push(Cluster {
        start,
        end: ems.len(),
    });
    Clustering::new(clusters)
}

/// The union pattern `sp(A_∪)` of a cluster of matrices — the input of
/// CLUDE's universal symbolic sparsity pattern (Theorem 1).
pub fn cluster_union_pattern(ems: &EvolvingMatrixSequence, cluster: &Cluster) -> SparsityPattern {
    let mut union = ems.pattern(cluster.start);
    for i in cluster.start + 1..cluster.end {
        union = union
            .union(&ems.pattern(i))
            .expect("matrices of an EMS share a shape");
    }
    union
}

#[cfg(test)]
mod tests {
    use super::*;
    use clude_sparse::{CooMatrix, CsrMatrix};

    /// Builds a sequence whose patterns drift: each matrix adds one new
    /// off-diagonal entry and keeps the previous ones.
    fn drifting_ems(t: usize, n: usize) -> EvolvingMatrixSequence {
        let mut matrices = Vec::new();
        let mut extra: Vec<(usize, usize)> = Vec::new();
        for step in 0..t {
            let mut coo = CooMatrix::new(n, n);
            for i in 0..n {
                coo.push(i, i, 3.0).unwrap();
            }
            extra.push(((step + 1) % n, (step * 2 + 3) % n));
            for &(i, j) in &extra {
                if i != j {
                    coo.push(i, j, -1.0).unwrap();
                }
            }
            matrices.push(CsrMatrix::from_coo(&coo));
        }
        EvolvingMatrixSequence::new(matrices).unwrap()
    }

    #[test]
    fn alpha_one_makes_singleton_clusters_under_drift() {
        let ems = drifting_ems(6, 10);
        let clustering = alpha_clustering(&ems, 1.0);
        // Every addition changes the pattern, so mes(A∩,A∪) < 1 as soon as a
        // second distinct matrix joins.
        assert_eq!(clustering.len(), 6);
        assert!(clustering.sizes().iter().all(|&s| s == 1));
        assert_eq!(clustering.average_size(), 1.0);
    }

    #[test]
    fn alpha_zero_yields_single_cluster() {
        let ems = drifting_ems(6, 10);
        let clustering = alpha_clustering(&ems, 0.0);
        assert_eq!(clustering.len(), 1);
        assert_eq!(clustering.clusters()[0], Cluster { start: 0, end: 6 });
        assert!(!clustering.is_empty());
    }

    #[test]
    fn intermediate_alpha_produces_contiguous_tiling() {
        let ems = drifting_ems(12, 10);
        let clustering = alpha_clustering(&ems, 0.93);
        let clusters = clustering.clusters();
        assert!(clusters.len() >= 2, "expected some segmentation");
        assert_eq!(clusters[0].start, 0);
        assert_eq!(clusters.last().unwrap().end, 12);
        for w in clusters.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
        // Every cluster is alpha-bounded by construction.
        for c in clusters {
            let mut bounds = ClusterBounds::new(ems.pattern(c.start));
            for i in c.start + 1..c.end {
                bounds = bounds.with(&ems.pattern(i));
            }
            assert!(bounds.is_alpha_bounded(0.93));
        }
    }

    #[test]
    fn larger_alpha_never_produces_fewer_clusters() {
        let ems = drifting_ems(15, 12);
        let loose = alpha_clustering(&ems, 0.90).len();
        let tight = alpha_clustering(&ems, 0.97).len();
        assert!(tight >= loose);
    }

    #[test]
    fn cluster_union_pattern_covers_members() {
        let ems = drifting_ems(5, 8);
        let cluster = Cluster { start: 1, end: 4 };
        let union = cluster_union_pattern(&ems, &cluster);
        for i in cluster.range() {
            assert!(ems.pattern(i).is_subset_of(&union));
        }
        assert_eq!(cluster.len(), 3);
        assert!(!cluster.is_empty());
    }

    #[test]
    fn bounds_track_intersection_and_union() {
        let ems = drifting_ems(3, 6);
        let bounds = ClusterBounds::new(ems.pattern(0))
            .with(&ems.pattern(1))
            .with(&ems.pattern(2));
        assert!(bounds.intersection().is_subset_of(bounds.union()));
        assert!(bounds.compactness() <= 1.0);
        assert!(bounds.compactness() > 0.0);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn invalid_alpha_panics() {
        let ems = drifting_ems(2, 4);
        alpha_clustering(&ems, 1.5);
    }
}
