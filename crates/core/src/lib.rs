//! # clude
//!
//! The core of the CLUDE (EDBT 2014) reproduction: LU decomposition over an
//! evolving matrix sequence (the **LUDEM** problem) and its quality-constrained
//! variant (**LUDEM-QC**).
//!
//! Given an evolving graph sequence, the workflow is:
//!
//! 1. derive the evolving matrix sequence ([`ems::EvolvingMatrixSequence`]),
//! 2. pick a solver — [`algorithms::BruteForce`], [`algorithms::Incremental`],
//!    [`algorithms::ClusterIncremental`] or [`algorithms::Clude`] (and for
//!    symmetric sequences [`qc::CincQc`] / [`qc::CludeQc`]),
//! 3. call [`algorithms::LudemSolver::solve`] to obtain per-snapshot LU
//!    factors and a [`report::RunReport`],
//! 4. answer linear-system queries per snapshot through
//!    [`algorithms::LudemSolution::solve`], and evaluate ordering quality with
//!    [`quality::evaluate_orderings`].
//!
//! ```
//! use clude::algorithms::{Clude, LudemSolver, SolverConfig};
//! use clude::ems::EvolvingMatrixSequence;
//! use clude_graph::{DiGraph, EvolvingGraphSequence, MatrixKind};
//!
//! // Two tiny snapshots of a directed graph.
//! let g1 = DiGraph::from_edges(4, vec![(0, 1), (1, 2), (2, 3)]);
//! let g2 = DiGraph::from_edges(4, vec![(0, 1), (1, 2), (2, 3), (3, 0)]);
//! let egs = EvolvingGraphSequence::from_snapshots(vec![g1, g2]);
//! let ems = EvolvingMatrixSequence::from_egs(&egs, MatrixKind::random_walk_default());
//!
//! let solution = Clude::new(0.9).solve(&ems, &SolverConfig::default()).unwrap();
//! // RWR scores from node 0 at the last snapshot.
//! let mut b = vec![0.0; 4];
//! b[0] = 0.15;
//! let scores = solution.solve(1, &b).unwrap();
//! assert_eq!(scores.len(), 4);
//! ```

#![forbid(unsafe_code)]
// Indexed loops mirror the paper's matrix notation throughout this crate.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]

pub mod algorithms;
pub mod cluster;
pub mod ems;
pub mod partition;
pub mod qc;
pub mod quality;
pub mod report;
pub mod ussp;

#[cfg(test)]
pub(crate) mod test_support;

pub use algorithms::{
    BruteForce, Clude, ClusterIncremental, DecomposedMatrix, Incremental, LudemSolution,
    LudemSolver, MatrixFactors, SolverConfig,
};
pub use cluster::{alpha_clustering, Cluster, Clustering};
pub use ems::EvolvingMatrixSequence;
pub use partition::edge_locality_partition;
pub use qc::{beta_clustering_cinc, beta_clustering_clude, CincQc, CludeQc};
pub use quality::{
    evaluate_orderings, quality_loss_from_sizes, quality_loss_with_reference, refresh_decision,
    MarkowitzReference, QualityEvaluation, RefreshDecision,
};
pub use report::{RunReport, TimingBreakdown};
