//! Typed measure queries.
//!
//! The serving layer (`clude-engine`) needs a single dispatchable
//! representation of "which measure, with which parameters" that can be
//! hashed into a cache key and routed to the measure implementations.
//! [`MeasureQuery`] is that representation, and [`evaluate_query`] is the
//! one entry point turning a decomposed snapshot plus a query into scores.

use crate::measures::{discounted_hitting_time, pagerank, personalized_pagerank, rwr};
use clude::DecomposedMatrix;
use clude_graph::{DiGraph, MatrixKind};
use clude_lu::LuResult;
use std::hash::{Hash, Hasher};

/// A proximity-measure query against one snapshot.
///
/// All variants carry their damping/discount factor explicitly; queries with
/// the same parameters hash equally, which is what the engine's result cache
/// keys on.  Equality and hashing both compare the damping factor *by bits*
/// (so `0.0` and `-0.0` are distinct keys, and the `Eq`/`Hash` contract
/// holds); damping factors must be finite.
#[derive(Debug, Clone)]
pub enum MeasureQuery {
    /// Global PageRank.
    PageRank {
        /// Damping factor `d ∈ (0, 1)`.
        damping: f64,
    },
    /// Random walk with restart from a single seed node.
    Rwr {
        /// The restart node.
        seed: usize,
        /// Damping factor `d ∈ (0, 1)`.
        damping: f64,
    },
    /// Personalised PageRank with a uniform restart over a seed set.
    PprSeedSet {
        /// The restart nodes.
        seeds: Vec<usize>,
        /// Damping factor `d ∈ (0, 1)`.
        damping: f64,
    },
    /// Discounted hitting time from every node to a target.
    HittingTime {
        /// The absorbing target node.
        target: usize,
        /// Discount factor `d ∈ (0, 1)`.
        damping: f64,
    },
}

impl PartialEq for MeasureQuery {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (MeasureQuery::PageRank { damping: a }, MeasureQuery::PageRank { damping: b }) => {
                a.to_bits() == b.to_bits()
            }
            (
                MeasureQuery::Rwr {
                    seed: sa,
                    damping: a,
                },
                MeasureQuery::Rwr {
                    seed: sb,
                    damping: b,
                },
            ) => sa == sb && a.to_bits() == b.to_bits(),
            (
                MeasureQuery::PprSeedSet {
                    seeds: sa,
                    damping: a,
                },
                MeasureQuery::PprSeedSet {
                    seeds: sb,
                    damping: b,
                },
            ) => sa == sb && a.to_bits() == b.to_bits(),
            (
                MeasureQuery::HittingTime {
                    target: ta,
                    damping: a,
                },
                MeasureQuery::HittingTime {
                    target: tb,
                    damping: b,
                },
            ) => ta == tb && a.to_bits() == b.to_bits(),
            _ => false,
        }
    }
}

impl Eq for MeasureQuery {}

impl Hash for MeasureQuery {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            MeasureQuery::PageRank { damping } => {
                0u8.hash(state);
                damping.to_bits().hash(state);
            }
            MeasureQuery::Rwr { seed, damping } => {
                1u8.hash(state);
                seed.hash(state);
                damping.to_bits().hash(state);
            }
            MeasureQuery::PprSeedSet { seeds, damping } => {
                2u8.hash(state);
                seeds.hash(state);
                damping.to_bits().hash(state);
            }
            MeasureQuery::HittingTime { target, damping } => {
                3u8.hash(state);
                target.hash(state);
                damping.to_bits().hash(state);
            }
        }
    }
}

impl MeasureQuery {
    /// The damping/discount factor of the query.
    pub fn damping(&self) -> f64 {
        match self {
            MeasureQuery::PageRank { damping }
            | MeasureQuery::Rwr { damping, .. }
            | MeasureQuery::PprSeedSet { damping, .. }
            | MeasureQuery::HittingTime { damping, .. } => *damping,
        }
    }

    /// The matrix composition this query needs its snapshot factors built
    /// with (`None` for queries that build their own per-query system).
    pub fn required_matrix_kind(&self) -> Option<MatrixKind> {
        match self {
            MeasureQuery::HittingTime { .. } => None,
            _ => Some(MatrixKind::RandomWalk {
                damping: self.damping(),
            }),
        }
    }

    /// Short display name for stats and logs.
    pub fn kind_name(&self) -> &'static str {
        match self {
            MeasureQuery::PageRank { .. } => "pagerank",
            MeasureQuery::Rwr { .. } => "rwr",
            MeasureQuery::PprSeedSet { .. } => "ppr",
            MeasureQuery::HittingTime { .. } => "hitting_time",
        }
    }

    /// Validates the query against a snapshot of `n` nodes.
    pub fn validate(&self, n: usize) -> Result<(), String> {
        if !self.damping().is_finite() || !(0.0..1.0).contains(&self.damping()) {
            return Err(format!("damping factor {} outside [0, 1)", self.damping()));
        }
        match self {
            MeasureQuery::PageRank { .. } => Ok(()),
            MeasureQuery::Rwr { seed, .. } if *seed >= n => {
                Err(format!("seed {seed} out of range for {n} nodes"))
            }
            MeasureQuery::PprSeedSet { seeds, .. } if seeds.is_empty() => {
                Err("empty PPR seed set".to_string())
            }
            MeasureQuery::PprSeedSet { seeds, .. } => match seeds.iter().find(|&&s| s >= n) {
                Some(s) => Err(format!("seed {s} out of range for {n} nodes")),
                None => Ok(()),
            },
            MeasureQuery::HittingTime { target, .. } if *target >= n => {
                Err(format!("target {target} out of range for {n} nodes"))
            }
            _ => Ok(()),
        }
    }
}

/// Anything that can solve the snapshot's measure system `A x = b`.
///
/// The random-walk measures only need *some* exact solver for
/// `(I − d·W) x = b`; a monolithic [`DecomposedMatrix`] answers by one pair
/// of triangular substitutions, while the engine's sharded snapshots combine
/// per-shard solves with a cross-shard coupling correction.  Implementing
/// this trait is what plugs a snapshot representation into
/// [`evaluate_query_with`].
pub trait MeasureSolver {
    /// Solves the snapshot's measure system for one right-hand side.
    fn solve_measure_system(&self, b: &[f64]) -> LuResult<Vec<f64>>;

    /// Solves the measure system for `n_rhs` right-hand sides stacked
    /// column-major in `b` (`n_rhs` contiguous stripes), returning the
    /// solutions in the same layout.
    ///
    /// Implementations must keep every stripe bit-identical to a sequential
    /// [`MeasureSolver::solve_measure_system`] call on that stripe; the
    /// default honours that trivially, while panel-capable solvers override
    /// it with a single factor traversal.
    fn solve_measure_systems(&self, b: &[f64], n_rhs: usize) -> LuResult<Vec<f64>> {
        let n = b.len().checked_div(n_rhs).unwrap_or(0);
        let mut out = Vec::with_capacity(b.len());
        for c in 0..n_rhs {
            out.extend(self.solve_measure_system(&b[c * n..(c + 1) * n])?);
        }
        Ok(out)
    }
}

impl MeasureSolver for DecomposedMatrix {
    fn solve_measure_system(&self, b: &[f64]) -> LuResult<Vec<f64>> {
        self.solve(b)
    }

    fn solve_measure_systems(&self, b: &[f64], n_rhs: usize) -> LuResult<Vec<f64>> {
        let mut scratch = clude_lu::PanelScratch::new();
        let mut out = Vec::new();
        self.solve_many_into(b, n_rhs, &mut scratch, &mut out)?;
        Ok(out)
    }
}

/// Evaluates a query through any [`MeasureSolver`].
///
/// The solver must hold (or emulate) factors of the snapshot's `I − d·W`
/// matrix with the query's damping factor; `graph` is the snapshot graph
/// itself, used by queries (hitting time) whose linear system is
/// query-specific rather than snapshot-specific.
pub fn evaluate_query_with<S: MeasureSolver + ?Sized>(
    solver: &S,
    graph: &DiGraph,
    query: &MeasureQuery,
) -> LuResult<Vec<f64>> {
    let n = graph.n_nodes();
    match query {
        MeasureQuery::PageRank { damping } => pagerank(solver, n, *damping),
        MeasureQuery::Rwr { seed, damping } => rwr(solver, n, *seed, *damping),
        MeasureQuery::PprSeedSet { seeds, damping } => {
            personalized_pagerank(solver, n, seeds, *damping)
        }
        MeasureQuery::HittingTime { target, damping } => {
            discounted_hitting_time(graph, *target, *damping)
        }
    }
}

/// The right-hand side of the query's measure system against the snapshot's
/// `I − d·W` factors, or `None` for queries (hitting time) that factorize a
/// query-specific matrix instead and therefore cannot join a shared panel.
pub fn measure_rhs(query: &MeasureQuery, n: usize) -> Option<Vec<f64>> {
    use crate::linear_system::{pagerank_rhs, ppr_rhs, rwr_rhs};
    match query {
        MeasureQuery::PageRank { damping } => Some(pagerank_rhs(n, *damping)),
        MeasureQuery::Rwr { seed, damping } => Some(rwr_rhs(n, *seed, *damping)),
        MeasureQuery::PprSeedSet { seeds, damping } => Some(ppr_rhs(n, seeds, *damping)),
        MeasureQuery::HittingTime { .. } => None,
    }
}

/// Evaluates a batch of queries through any [`MeasureSolver`], answering all
/// panel-eligible queries (those with a [`measure_rhs`]) in **one**
/// [`MeasureSolver::solve_measure_systems`] panel traversal and the rest
/// (hitting time) individually.
///
/// Result `i` is bit-identical to `evaluate_query_with(solver, graph,
/// queries[i])`: the right-hand sides, the per-stripe solve sequence, and
/// the normalisation are exactly those of the single-query path.
pub fn evaluate_queries_with<S: MeasureSolver + ?Sized>(
    solver: &S,
    graph: &DiGraph,
    queries: &[&MeasureQuery],
) -> LuResult<Vec<Vec<f64>>> {
    use crate::linear_system::normalize_scores;
    let n = graph.n_nodes();
    let mut panel = Vec::new();
    let mut panel_slots = Vec::new();
    let mut results: Vec<Option<Vec<f64>>> = queries.iter().map(|_| None).collect();
    for (i, query) in queries.iter().enumerate() {
        match measure_rhs(query, n) {
            Some(rhs) => {
                panel.extend(rhs);
                panel_slots.push(i);
            }
            None => results[i] = Some(evaluate_query_with(solver, graph, query)?),
        }
    }
    if !panel_slots.is_empty() {
        let solved = solver.solve_measure_systems(&panel, panel_slots.len())?;
        for (c, &i) in panel_slots.iter().enumerate() {
            let raw = solved[c * n..(c + 1) * n].to_vec();
            results[i] = Some(normalize_scores(raw));
        }
    }
    Ok(results.into_iter().flatten().collect())
}

/// Evaluates a query against one decomposed snapshot.
///
/// Convenience wrapper over [`evaluate_query_with`] for the monolithic
/// representation; kept as the stable entry point of the batch pipeline.
pub fn evaluate_query(
    decomposed: &DecomposedMatrix,
    graph: &DiGraph,
    query: &MeasureQuery,
) -> LuResult<Vec<f64>> {
    evaluate_query_with(decomposed, graph, query)
}

#[cfg(test)]
mod tests {
    use super::*;
    use clude::{BruteForce, EvolvingMatrixSequence, LudemSolver, SolverConfig};
    use clude_graph::EvolvingGraphSequence;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(q: &MeasureQuery) -> u64 {
        let mut h = DefaultHasher::new();
        q.hash(&mut h);
        h.finish()
    }

    fn ring() -> DiGraph {
        let mut g = DiGraph::from_edges(6, (0..6).map(|i| (i, (i + 1) % 6)).collect::<Vec<_>>());
        g.add_edge(2, 0);
        g.add_edge(4, 0);
        g
    }

    #[test]
    fn equal_queries_hash_equally_distinct_ones_differently() {
        let a = MeasureQuery::Rwr {
            seed: 3,
            damping: 0.85,
        };
        let b = MeasureQuery::Rwr {
            seed: 3,
            damping: 0.85,
        };
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
        let c = MeasureQuery::Rwr {
            seed: 4,
            damping: 0.85,
        };
        assert_ne!(a, c);
        let d = MeasureQuery::PageRank { damping: 0.85 };
        assert_ne!(hash_of(&a), hash_of(&d));
        // Eq follows the bitwise Hash: 0.0 and -0.0 are distinct keys, so
        // the Eq/Hash contract a HashMap key needs is preserved.
        let pos = MeasureQuery::PageRank { damping: 0.0 };
        let neg = MeasureQuery::PageRank { damping: -0.0 };
        assert_ne!(pos, neg);
        assert_ne!(hash_of(&pos), hash_of(&neg));
    }

    #[test]
    fn evaluate_query_dispatches_to_the_measures() {
        let g = ring();
        let egs = EvolvingGraphSequence::from_base(g.clone());
        let ems = EvolvingMatrixSequence::from_egs(&egs, MatrixKind::RandomWalk { damping: 0.85 });
        let solution = BruteForce.solve(&ems, &SolverConfig::default()).unwrap();
        let dec = &solution.decomposed[0];
        let n = g.n_nodes();

        let pr = evaluate_query(dec, &g, &MeasureQuery::PageRank { damping: 0.85 }).unwrap();
        assert_eq!(pr, pagerank(dec, n, 0.85).unwrap());

        let r = evaluate_query(
            dec,
            &g,
            &MeasureQuery::Rwr {
                seed: 2,
                damping: 0.85,
            },
        )
        .unwrap();
        assert_eq!(r, rwr(dec, n, 2, 0.85).unwrap());

        let p = evaluate_query(
            dec,
            &g,
            &MeasureQuery::PprSeedSet {
                seeds: vec![1, 5],
                damping: 0.85,
            },
        )
        .unwrap();
        assert_eq!(p, personalized_pagerank(dec, n, &[1, 5], 0.85).unwrap());

        let h = evaluate_query(
            dec,
            &g,
            &MeasureQuery::HittingTime {
                target: 0,
                damping: 0.9,
            },
        )
        .unwrap();
        assert_eq!(h, discounted_hitting_time(&g, 0, 0.9).unwrap());
        assert_eq!(h[0], 0.0);
    }

    #[test]
    fn validation_catches_bad_parameters() {
        let q = MeasureQuery::Rwr {
            seed: 9,
            damping: 0.85,
        };
        assert!(q.validate(6).is_err());
        assert!(q.validate(10).is_ok());
        assert!(MeasureQuery::PageRank { damping: 1.5 }.validate(6).is_err());
        assert!(MeasureQuery::PprSeedSet {
            seeds: vec![],
            damping: 0.85
        }
        .validate(6)
        .is_err());
        assert!(MeasureQuery::PprSeedSet {
            seeds: vec![2, 7],
            damping: 0.85
        }
        .validate(6)
        .is_err());
        assert!(MeasureQuery::HittingTime {
            target: 6,
            damping: 0.85
        }
        .validate(6)
        .is_err());
    }

    #[test]
    fn metadata_accessors() {
        let q = MeasureQuery::PprSeedSet {
            seeds: vec![0],
            damping: 0.7,
        };
        assert_eq!(q.damping(), 0.7);
        assert_eq!(q.kind_name(), "ppr");
        assert_eq!(
            q.required_matrix_kind(),
            Some(MatrixKind::RandomWalk { damping: 0.7 })
        );
        let h = MeasureQuery::HittingTime {
            target: 0,
            damping: 0.7,
        };
        assert_eq!(h.required_matrix_kind(), None);
        assert_eq!(h.kind_name(), "hitting_time");
        assert_eq!(
            MeasureQuery::PageRank { damping: 0.5 }.kind_name(),
            "pagerank"
        );
        assert_eq!(
            MeasureQuery::Rwr {
                seed: 0,
                damping: 0.5
            }
            .kind_name(),
            "rwr"
        );
    }
}
