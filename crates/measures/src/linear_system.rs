//! Composing measures as linear systems.
//!
//! Every measure in this crate is obtained by solving `A x = b` where
//! `A = I − d·W` depends only on the snapshot graph and the damping factor,
//! and `b` encodes the query (Section 1 of the paper).  The matrix work is
//! done once per snapshot by a LUDEM solver; this module only builds the
//! right-hand sides and normalises results.

use clude_sparse::vector;

/// The damping factor used throughout the paper's examples.
pub const DEFAULT_DAMPING: f64 = 0.85;

/// Right-hand side of the global PageRank system: `b = ((1 − d)/n)·1`.
pub fn pagerank_rhs(n: usize, damping: f64) -> Vec<f64> {
    assert!(n > 0, "PageRank needs at least one node");
    vec![(1.0 - damping) / n as f64; n]
}

/// Right-hand side of a single-seed RWR / personalised PageRank system:
/// `b = (1 − d)·e_u`.
pub fn rwr_rhs(n: usize, seed: usize, damping: f64) -> Vec<f64> {
    assert!(seed < n, "seed node out of range");
    let mut b = vec![0.0; n];
    b[seed] = 1.0 - damping;
    b
}

/// Right-hand side of a multi-seed personalised PageRank system with a
/// uniform restart distribution over `seeds`: `b = (1 − d)·q`, `q` uniform on
/// the seed set.  Used by the paper's §7 case study (a company's patents form
/// the seed set).
pub fn ppr_rhs(n: usize, seeds: &[usize], damping: f64) -> Vec<f64> {
    assert!(!seeds.is_empty(), "the seed set must not be empty");
    assert!(seeds.iter().all(|&s| s < n), "seed node out of range");
    let mut b = vec![0.0; n];
    let mass = (1.0 - damping) / seeds.len() as f64;
    for &s in seeds {
        b[s] += mass;
    }
    b
}

/// Normalises a raw solution into a probability distribution (the solutions
/// of the damped systems already sum to ~1, but truncation and dangling nodes
/// introduce small deviations).
pub fn normalize_scores(mut scores: Vec<f64>) -> Vec<f64> {
    vector::normalize_l1(&mut scores);
    scores
}

/// Sums the scores of a group of nodes — e.g. all patents of one company —
/// which is how the case study turns node scores into a company proximity.
pub fn group_score(scores: &[f64], members: &[usize]) -> f64 {
    members.iter().map(|&m| scores[m]).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pagerank_rhs_sums_to_one_minus_d() {
        let b = pagerank_rhs(10, 0.85);
        assert!((b.iter().sum::<f64>() - 0.15).abs() < 1e-12);
        assert!(b.iter().all(|&v| (v - 0.015).abs() < 1e-12));
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn pagerank_rhs_rejects_empty_graph() {
        pagerank_rhs(0, 0.85);
    }

    #[test]
    fn rwr_rhs_is_an_indicator() {
        let b = rwr_rhs(5, 2, 0.85);
        assert_eq!(b[2], 0.15000000000000002);
        assert_eq!(b.iter().filter(|&&v| v != 0.0).count(), 1);
    }

    #[test]
    fn ppr_rhs_spreads_mass_uniformly() {
        let b = ppr_rhs(6, &[1, 4], 0.8);
        assert!((b[1] - 0.1).abs() < 1e-12);
        assert!((b[4] - 0.1).abs() < 1e-12);
        assert!((b.iter().sum::<f64>() - 0.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "seed set")]
    fn ppr_rhs_rejects_empty_seed_set() {
        ppr_rhs(5, &[], 0.85);
    }

    #[test]
    fn normalize_and_group() {
        let scores = normalize_scores(vec![1.0, 1.0, 2.0]);
        assert!((scores.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((group_score(&scores, &[0, 2]) - 0.75).abs() < 1e-12);
    }
}
