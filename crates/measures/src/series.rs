//! Measure time series over an evolving graph sequence.
//!
//! This is the end-to-end workflow of the paper's motivating examples
//! (Figures 1 and 11): decompose the whole EMS once with a LUDEM solver, then
//! evaluate a measure at every snapshot by substitution, producing a time
//! series that can be inspected for key moments, trends and rank changes.

use crate::linear_system::group_score;
use crate::measures::{pagerank, personalized_pagerank};
use clude::{EvolvingMatrixSequence, LudemSolution, LudemSolver, SolverConfig};
use clude_graph::{EvolvingGraphSequence, MatrixKind};
use clude_lu::LuResult;
use clude_sparse::vector;

/// A decomposed EGS ready to answer measure queries at every snapshot.
#[derive(Debug)]
pub struct MeasureSeries {
    ems: EvolvingMatrixSequence,
    solution: LudemSolution,
    damping: f64,
}

impl MeasureSeries {
    /// Decomposes the sequence derived from `egs` using `solver`.
    pub fn build<S: LudemSolver>(
        egs: &EvolvingGraphSequence,
        damping: f64,
        solver: &S,
    ) -> LuResult<Self> {
        let ems = EvolvingMatrixSequence::from_egs(egs, MatrixKind::RandomWalk { damping });
        let solution = solver.solve(&ems, &SolverConfig::default())?;
        Ok(MeasureSeries {
            ems,
            solution,
            damping,
        })
    }

    /// Wraps an already-decomposed EMS.
    pub fn from_solution(
        ems: EvolvingMatrixSequence,
        solution: LudemSolution,
        damping: f64,
    ) -> Self {
        MeasureSeries {
            ems,
            solution,
            damping,
        }
    }

    /// Number of snapshots.
    pub fn len(&self) -> usize {
        self.ems.len()
    }

    /// Always `false` (an EMS has at least one matrix).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.ems.order()
    }

    /// The underlying solver report (timings, cluster sizes, …).
    pub fn report(&self) -> &clude::RunReport {
        &self.solution.report
    }

    /// PageRank scores of every node at snapshot `t`.
    pub fn pagerank_at(&self, t: usize) -> LuResult<Vec<f64>> {
        pagerank(&self.solution.decomposed[t], self.n_nodes(), self.damping)
    }

    /// The PageRank score of one node at every snapshot — the time series of
    /// the paper's Figure 1.
    pub fn pagerank_series(&self, node: usize) -> LuResult<Vec<f64>> {
        (0..self.len())
            .map(|t| self.pagerank_at(t).map(|scores| scores[node]))
            .collect()
    }

    /// Personalised-PageRank proximity of `group` from `seeds` at every
    /// snapshot (the §7 case-study series).
    pub fn group_proximity_series(&self, seeds: &[usize], group: &[usize]) -> LuResult<Vec<f64>> {
        (0..self.len())
            .map(|t| {
                personalized_pagerank(
                    &self.solution.decomposed[t],
                    self.n_nodes(),
                    seeds,
                    self.damping,
                )
                .map(|scores| group_score(&scores, group))
            })
            .collect()
    }

    /// Proximity *ranks* (1 = closest) of several groups at every snapshot —
    /// the quantity the paper plots in Figure 11.
    pub fn group_rank_series(
        &self,
        seeds: &[usize],
        groups: &[Vec<usize>],
    ) -> LuResult<Vec<Vec<usize>>> {
        let mut ranks = vec![vec![0usize; self.len()]; groups.len()];
        for t in 0..self.len() {
            let scores = personalized_pagerank(
                &self.solution.decomposed[t],
                self.n_nodes(),
                seeds,
                self.damping,
            )?;
            let group_scores: Vec<f64> = groups.iter().map(|g| group_score(&scores, g)).collect();
            let order = vector::rank_descending(&group_scores);
            for (rank, &group_idx) in order.iter().enumerate() {
                ranks[group_idx][t] = rank + 1;
            }
        }
        Ok(ranks)
    }

    /// Snapshots where a node's PageRank changes by more than
    /// `relative_threshold` compared with the previous snapshot — the "key
    /// moments" of Example 1.
    pub fn key_moments(&self, node: usize, relative_threshold: f64) -> LuResult<Vec<usize>> {
        let series = self.pagerank_series(node)?;
        let mut moments = Vec::new();
        for t in 1..series.len() {
            let prev = series[t - 1];
            if prev > 0.0 && ((series[t] - prev) / prev).abs() >= relative_threshold {
                moments.push(t);
            }
        }
        Ok(moments)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clude::Clude;
    use clude_graph::DiGraph;

    /// A small EGS where node 0 suddenly gains in-links at snapshot 2.
    fn egs_with_burst() -> EvolvingGraphSequence {
        let n = 12;
        let base: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        let g1 = DiGraph::from_edges(n, base.clone());
        let g2 = g1.clone();
        let mut g3 = g2.clone();
        for u in 3..9 {
            g3.add_edge(u, 0);
        }
        let g4 = g3.clone();
        EvolvingGraphSequence::from_snapshots(vec![g1, g2, g3, g4])
    }

    #[test]
    fn pagerank_series_reflects_link_burst() {
        let egs = egs_with_burst();
        let series = MeasureSeries::build(&egs, 0.85, &Clude::new(0.8)).unwrap();
        assert_eq!(series.len(), 4);
        let pr0 = series.pagerank_series(0).unwrap();
        // Node 0's score jumps when the burst of in-links arrives.
        assert!(pr0[2] > 1.5 * pr0[1], "burst not visible: {pr0:?}");
        let moments = series.key_moments(0, 0.5).unwrap();
        assert_eq!(moments, vec![2]);
    }

    #[test]
    fn every_snapshot_distribution_sums_to_one() {
        let egs = egs_with_burst();
        let series = MeasureSeries::build(&egs, 0.85, &Clude::default()).unwrap();
        for t in 0..series.len() {
            let scores = series.pagerank_at(t).unwrap();
            assert!((scores.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
        assert!(!series.is_empty());
        assert_eq!(series.n_nodes(), 12);
    }

    #[test]
    fn group_rank_series_orders_groups_consistently() {
        let egs = egs_with_burst();
        let series = MeasureSeries::build(&egs, 0.85, &Clude::default()).unwrap();
        let seeds = vec![1usize];
        let groups = vec![vec![0usize], vec![6usize, 7usize]];
        let ranks = series.group_rank_series(&seeds, &groups).unwrap();
        assert_eq!(ranks.len(), 2);
        assert_eq!(ranks[0].len(), series.len());
        // Ranks are a permutation of 1..=groups.len() at every snapshot.
        for t in 0..series.len() {
            let mut at_t: Vec<usize> = ranks.iter().map(|r| r[t]).collect();
            at_t.sort_unstable();
            assert_eq!(at_t, vec![1, 2]);
        }
        let prox = series.group_proximity_series(&seeds, &groups[0]).unwrap();
        assert_eq!(prox.len(), series.len());
        assert!(prox.iter().all(|&p| p > 0.0));
    }

    #[test]
    fn report_is_exposed() {
        let egs = egs_with_burst();
        let series = MeasureSeries::build(&egs, 0.85, &Clude::default()).unwrap();
        assert_eq!(series.report().algorithm, "CLUDE");
    }
}
