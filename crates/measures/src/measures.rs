//! Graph structural measures answered through decomposed factors.
//!
//! All measures here reduce to solving `(I − d·W) x = b` for a suitable `b`
//! (§1 of the paper):
//!
//! * **PageRank** — `b = ((1 − d)/n)·1`;
//! * **RWR / personalised PageRank** — `b = (1 − d)·q_u` (or a uniform
//!   distribution over a seed set);
//! * **SALSA (damped)** — PageRank-style scores on the co-citation /
//!   bibliographic-coupling structure, obtained by two solves;
//! * **Discounted hitting time** — expected discounted path length to a
//!   target, via a per-target linear system.
//!
//! The functions take a [`clude::DecomposedMatrix`] (one snapshot's factors,
//! produced by any LUDEM solver), so a whole time series costs one cheap
//! substitution per snapshot once the sequence has been decomposed.

use crate::linear_system::{group_score, normalize_scores, pagerank_rhs, ppr_rhs, rwr_rhs};
use crate::query::MeasureSolver;
use clude_graph::{DiGraph, MatrixKind};
use clude_lu::{factorize_fresh, LuResult};
use clude_sparse::{CooMatrix, CsrMatrix};

/// Global PageRank scores of a snapshot, from any solver of its measure
/// system (a decomposed matrix, a sharded engine snapshot, …).
pub fn pagerank<S: MeasureSolver + ?Sized>(
    solver: &S,
    n: usize,
    damping: f64,
) -> LuResult<Vec<f64>> {
    let b = pagerank_rhs(n, damping);
    let raw = solver.solve_measure_system(&b)?;
    Ok(normalize_scores(raw))
}

/// Random walk with restart (single-seed personalised PageRank) scores.
pub fn rwr<S: MeasureSolver + ?Sized>(
    solver: &S,
    n: usize,
    seed: usize,
    damping: f64,
) -> LuResult<Vec<f64>> {
    let b = rwr_rhs(n, seed, damping);
    let raw = solver.solve_measure_system(&b)?;
    Ok(normalize_scores(raw))
}

/// Personalised PageRank with a uniform restart over a seed set.
pub fn personalized_pagerank<S: MeasureSolver + ?Sized>(
    solver: &S,
    n: usize,
    seeds: &[usize],
    damping: f64,
) -> LuResult<Vec<f64>> {
    let b = ppr_rhs(n, seeds, damping);
    let raw = solver.solve_measure_system(&b)?;
    Ok(normalize_scores(raw))
}

/// Proximity of a group of nodes (e.g. one company's patents) from a seed
/// set, as used in the paper's §7 case study: the sum of the group's PPR
/// scores.
pub fn group_proximity<S: MeasureSolver + ?Sized>(
    solver: &S,
    n: usize,
    seeds: &[usize],
    group: &[usize],
    damping: f64,
) -> LuResult<f64> {
    let scores = personalized_pagerank(solver, n, seeds, damping)?;
    Ok(group_score(&scores, group))
}

/// Hub and authority scores in the spirit of SALSA \[18\].
///
/// SALSA's authority chain walks "backwards then forwards" along links; its
/// damped variant solves a PageRank system on that two-step chain.  The
/// matrices of the two-step chains are snapshot-specific, so this measure
/// factorizes them directly (it does not reuse the EMS factors); it exists to
/// exercise the full measure suite of §1 on single snapshots.
#[derive(Debug, Clone, PartialEq)]
pub struct SalsaScores {
    /// Authority scores per node.
    pub authorities: Vec<f64>,
    /// Hub scores per node.
    pub hubs: Vec<f64>,
}

/// Computes damped SALSA scores for a snapshot graph.
pub fn salsa(graph: &DiGraph, damping: f64) -> LuResult<SalsaScores> {
    // Row-stochastic matrices of the backward (authority) and forward (hub)
    // two-step chains, built on the fly.
    let authority_chain = two_step_chain(graph, true);
    let hub_chain = two_step_chain(graph, false);
    let authorities = damped_stationary(&authority_chain, damping)?;
    let hubs = damped_stationary(&hub_chain, damping)?;
    Ok(SalsaScores { authorities, hubs })
}

/// Builds the column-normalised two-step chain matrix of SALSA:
/// authority chain = step backwards then forwards, hub chain = the reverse.
fn two_step_chain(graph: &DiGraph, authority: bool) -> CsrMatrix {
    let n = graph.n_nodes();
    let mut coo = CooMatrix::new(n, n);
    for u in 0..n {
        // Authority chain from authority u: pick a citing page w (predecessor),
        // then one of w's cited pages v; transition u -> v.
        let first_hop: Vec<usize> = if authority {
            graph.predecessors(u).collect()
        } else {
            graph.successors(u).collect()
        };
        if first_hop.is_empty() {
            continue;
        }
        let p_first = 1.0 / first_hop.len() as f64;
        for w in first_hop {
            let second_hop: Vec<usize> = if authority {
                graph.successors(w).collect()
            } else {
                graph.predecessors(w).collect()
            };
            if second_hop.is_empty() {
                continue;
            }
            let p_second = p_first / second_hop.len() as f64;
            for v in second_hop {
                // Column-normalised convention: entry (v, u) is P(u -> v).
                coo.push(v, u, p_second).expect("indices in bounds");
            }
        }
    }
    CsrMatrix::from_coo(&coo)
}

/// Solves `(I − d·P) x = ((1 − d)/n)·1` for a column-stochastic `P`.
fn damped_stationary(p: &CsrMatrix, damping: f64) -> LuResult<Vec<f64>> {
    let n = p.n_rows();
    let identity = CsrMatrix::identity(n);
    let a = identity.add_scaled(1.0, p, -damping).expect("shapes agree");
    let factors = factorize_fresh(&a)?;
    let x = factors.solve(&pagerank_rhs(n, damping))?;
    Ok(normalize_scores(x))
}

/// Discounted hitting time \[14\] from every node to a target node.
///
/// `h(target) = 0` and for `u ≠ target`:
/// `h(u) = 1 + d·Σ_w P(u, w)·h(w)` with the walk restarted at absorption —
/// equivalently `(I − d·P̃) h = 1` off the target, where `P̃` zeroes the
/// target's outgoing transitions.  Smaller values mean the target is closer.
pub fn discounted_hitting_time(graph: &DiGraph, target: usize, damping: f64) -> LuResult<Vec<f64>> {
    let n = graph.n_nodes();
    assert!(target < n, "target node out of range");
    // Row-normalised transition matrix with the target made absorbing.
    let mut coo = CooMatrix::new(n, n);
    for i in 0..n {
        coo.push(i, i, 1.0).expect("diagonal in bounds");
        if i == target {
            continue;
        }
        let deg = graph.out_degree(i);
        if deg == 0 {
            continue;
        }
        let w = damping / deg as f64;
        for v in graph.successors(i) {
            coo.push(i, v, -w).expect("edge in bounds");
        }
    }
    let a = CsrMatrix::from_coo(&coo);
    let factors = factorize_fresh(&a)?;
    let mut b = vec![1.0; n];
    b[target] = 0.0;
    factors.solve(&b)
}

/// The matrix kind a measure needs its EMS to be built with.
pub fn required_matrix_kind(damping: f64) -> MatrixKind {
    MatrixKind::RandomWalk { damping }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clude::{BruteForce, EvolvingMatrixSequence, LudemSolver, SolverConfig};
    use clude_graph::EvolvingGraphSequence;

    fn ring_with_chord() -> DiGraph {
        // A 6-node ring plus extra links into node 0.
        let mut g = DiGraph::from_edges(6, (0..6).map(|i| (i, (i + 1) % 6)).collect::<Vec<_>>());
        g.add_edge(2, 0);
        g.add_edge(4, 0);
        g
    }

    fn decomposed_single(graph: &DiGraph, damping: f64) -> (clude::LudemSolution, usize) {
        let egs = EvolvingGraphSequence::from_base(graph.clone());
        let ems = EvolvingMatrixSequence::from_egs(&egs, MatrixKind::RandomWalk { damping });
        let solution = BruteForce.solve(&ems, &SolverConfig::default()).unwrap();
        let n = ems.order();
        (solution, n)
    }

    #[test]
    fn pagerank_favours_highly_linked_node() {
        let g = ring_with_chord();
        let (solution, n) = decomposed_single(&g, 0.85);
        let pr = pagerank(&solution.decomposed[0], n, 0.85).unwrap();
        assert!((pr.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // Node 0 has three in-links, every other node has one.
        let best = pr
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(best, 0);
    }

    #[test]
    fn pagerank_matches_power_iteration_reference() {
        let g = ring_with_chord();
        let (solution, n) = decomposed_single(&g, 0.85);
        let pr = pagerank(&solution.decomposed[0], n, 0.85).unwrap();
        let pi = crate::power_iteration::pagerank_power_iteration(&g, 0.85, 2000, 1e-14);
        for (a, b) in pr.iter().zip(pi.scores.iter()) {
            assert!((a - b).abs() < 1e-8, "{a} vs {b}");
        }
    }

    #[test]
    fn rwr_mass_concentrates_near_seed() {
        let g = ring_with_chord();
        let (solution, n) = decomposed_single(&g, 0.85);
        let scores = rwr(&solution.decomposed[0], n, 3, 0.85).unwrap();
        assert!((scores.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        let best = scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(best, 3, "the seed has the largest stationary mass");
    }

    #[test]
    fn multi_seed_ppr_and_group_proximity() {
        let g = ring_with_chord();
        let (solution, n) = decomposed_single(&g, 0.85);
        let seeds = [1usize, 2];
        let scores = personalized_pagerank(&solution.decomposed[0], n, &seeds, 0.85).unwrap();
        assert!((scores.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        let prox = group_proximity(&solution.decomposed[0], n, &seeds, &[3, 4], 0.85).unwrap();
        assert!(prox > 0.0 && prox < 1.0);
    }

    #[test]
    fn salsa_scores_are_distributions() {
        let g = ring_with_chord();
        let s = salsa(&g, 0.85).unwrap();
        assert!((s.authorities.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!((s.hubs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // Node 0 is the strongest authority (three in-links).
        let best = s
            .authorities
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(best, 0);
    }

    #[test]
    fn hitting_time_is_zero_at_target_and_monotone_with_distance() {
        // A directed chain 0 -> 1 -> 2 -> 3.
        let g = DiGraph::from_edges(4, vec![(0, 1), (1, 2), (2, 3)]);
        let h = discounted_hitting_time(&g, 3, 0.9).unwrap();
        assert_eq!(h[3], 0.0);
        assert!(h[0] > h[1] && h[1] > h[2] && h[2] > 0.0);
    }

    #[test]
    #[should_panic(expected = "target node")]
    fn hitting_time_rejects_bad_target() {
        let g = DiGraph::new(3);
        let _ = discounted_hitting_time(&g, 7, 0.9);
    }

    #[test]
    fn required_matrix_kind_is_random_walk() {
        assert_eq!(
            required_matrix_kind(0.85),
            MatrixKind::RandomWalk { damping: 0.85 }
        );
    }
}
