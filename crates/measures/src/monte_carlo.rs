//! Monte-Carlo baselines (the MC method of §8).
//!
//! MC approximates RWR / personalised PageRank by simulating random walks
//! from the seed and recording where they spend their time.  Like power
//! iteration, it has to be re-run per query, and its accuracy grows only with
//! the number of simulated walks; the paper cites it as the other common
//! alternative to exact linear-system solutions.

use clude_graph::DiGraph;
use clude_sparse::vector;
use rand::Rng;

/// Result of a Monte-Carlo estimation run.
#[derive(Debug, Clone, PartialEq)]
pub struct MonteCarloResult {
    /// Estimated (normalised) visit distribution.
    pub scores: Vec<f64>,
    /// Number of walks simulated.
    pub walks: usize,
    /// Total number of steps taken across all walks.
    pub steps: usize,
}

/// Estimates RWR scores from `seed` by simulating `walks` restart walks.
///
/// Each walk starts at the seed and, at every step, restarts with probability
/// `1 − damping`, otherwise moves to a uniformly random out-neighbour
/// (restarting when stuck at a dangling node).  Visits are counted per node
/// and normalised at the end.
pub fn rwr_monte_carlo<R: Rng>(
    graph: &DiGraph,
    seed: usize,
    damping: f64,
    walks: usize,
    max_walk_length: usize,
    rng: &mut R,
) -> MonteCarloResult {
    let n = graph.n_nodes();
    assert!(seed < n, "seed node out of range");
    assert!((0.0..1.0).contains(&damping), "damping must be in [0, 1)");
    let mut visits = vec![0u64; n];
    let mut steps = 0usize;
    for _ in 0..walks {
        let mut current = seed;
        for _ in 0..max_walk_length {
            visits[current] += 1;
            steps += 1;
            if rng.gen_bool(1.0 - damping) {
                current = seed;
                continue;
            }
            let deg = graph.out_degree(current);
            if deg == 0 {
                current = seed;
                continue;
            }
            let pick = rng.gen_range(0..deg);
            current = graph
                .successors(current)
                .nth(pick)
                .expect("pick is within the out-degree");
        }
    }
    let mut scores: Vec<f64> = visits.iter().map(|&v| v as f64).collect();
    vector::normalize_l1(&mut scores);
    MonteCarloResult {
        scores,
        walks,
        steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power_iteration::rwr_power_iteration;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ring_with_chord() -> DiGraph {
        let mut g = DiGraph::from_edges(6, (0..6).map(|i| (i, (i + 1) % 6)).collect::<Vec<_>>());
        g.add_edge(2, 0);
        g.add_edge(4, 0);
        g
    }

    #[test]
    fn monte_carlo_approximates_power_iteration() {
        let g = ring_with_chord();
        let mut rng = StdRng::seed_from_u64(99);
        let mc = rwr_monte_carlo(&g, 1, 0.85, 800, 80, &mut rng);
        let pi = rwr_power_iteration(&g, 1, 0.85, 2000, 1e-12);
        // Coarse agreement: same top node and bounded deviation.
        let top_mc = vector::rank_descending(&mc.scores)[0];
        let top_pi = vector::rank_descending(&pi.scores)[0];
        assert_eq!(top_mc, top_pi);
        assert!(vector::max_abs_diff(&mc.scores, &pi.scores) < 0.08);
        assert!(mc.steps > 0 && mc.walks == 800);
    }

    #[test]
    fn handles_dangling_nodes_by_restarting() {
        // Node 1 has no out-links.
        let g = DiGraph::from_edges(3, vec![(0, 1), (2, 0)]);
        let mut rng = StdRng::seed_from_u64(5);
        let mc = rwr_monte_carlo(&g, 0, 0.85, 200, 50, &mut rng);
        assert!((mc.scores.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(mc.scores[0] > 0.0 && mc.scores[1] > 0.0);
    }

    #[test]
    #[should_panic(expected = "damping")]
    fn rejects_invalid_damping() {
        let g = DiGraph::new(2);
        let mut rng = StdRng::seed_from_u64(1);
        rwr_monte_carlo(&g, 0, 1.5, 10, 10, &mut rng);
    }
}
