//! # clude-measures
//!
//! Graph structural measures over evolving graph sequences, answered through
//! the LU factors produced by the `clude` solvers.
//!
//! The paper's premise (§1) is that PageRank, SALSA, personalised PageRank,
//! random walk with restart and discounted hitting time all reduce to linear
//! systems `A x = b` whose matrix depends only on the snapshot graph.  Once a
//! LUDEM solver has decomposed the whole sequence, any of these measures can
//! be evaluated at any snapshot by a pair of triangular substitutions —
//! orders of magnitude cheaper than re-running Gaussian elimination, power
//! iteration or Monte-Carlo simulation per query.
//!
//! * [`measures`] — PageRank, RWR, multi-seed PPR, damped SALSA, DHT;
//! * [`series`] — time series of measures over a whole EGS (Figures 1 & 11);
//! * [`power_iteration`] / [`monte_carlo`] — the approximate baselines the
//!   paper compares against in §8;
//! * [`linear_system`] — right-hand-side builders shared by all of the above.

#![forbid(unsafe_code)]
// Indexed loops mirror the paper's matrix notation throughout this crate.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]

pub mod linear_system;
pub mod measures;
pub mod monte_carlo;
pub mod power_iteration;
pub mod query;
pub mod series;

pub use linear_system::DEFAULT_DAMPING;
pub use measures::{
    discounted_hitting_time, group_proximity, pagerank, personalized_pagerank, rwr, salsa,
    SalsaScores,
};
pub use monte_carlo::{rwr_monte_carlo, MonteCarloResult};
pub use power_iteration::{
    pagerank_power_iteration, rwr_power_iteration, solve_power_iteration, PowerIterationResult,
};
pub use query::{
    evaluate_queries_with, evaluate_query, evaluate_query_with, measure_rhs, MeasureQuery,
    MeasureSolver,
};
pub use series::MeasureSeries;
