//! Power-iteration baselines (the PI method of §8).
//!
//! PI repeatedly applies `x ← d·W·x + b` until convergence.  The paper
//! contrasts it with the LU approach: PI must be re-run for every input
//! query, whereas the decomposed factors answer any query with one cheap
//! substitution.  The benchmark reproducing that claim lives in
//! `clude-bench`.

use clude_graph::{matrix::column_normalized_adjacency, DiGraph};
use clude_sparse::vector;

/// Result of a power iteration run.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerIterationResult {
    /// The converged (normalised) scores.
    pub scores: Vec<f64>,
    /// Number of iterations performed.
    pub iterations: usize,
    /// Final infinity-norm change between successive iterates.
    pub residual: f64,
}

/// Runs the damped power iteration `x ← d·W·x + b` until the change drops
/// below `tol` or `max_iterations` is reached.
pub fn solve_power_iteration(
    w: &clude_sparse::CsrMatrix,
    b: &[f64],
    damping: f64,
    max_iterations: usize,
    tol: f64,
) -> PowerIterationResult {
    let n = b.len();
    let mut x = b.to_vec();
    let mut iterations = 0;
    let mut residual = f64::INFINITY;
    while iterations < max_iterations && residual > tol {
        let wx = w.mul_vec(&x).expect("shapes agree");
        let mut next = b.to_vec();
        vector::axpy(damping, &wx, &mut next);
        residual = vector::max_abs_diff(&next, &x);
        x = next;
        iterations += 1;
    }
    let _ = n;
    PowerIterationResult {
        scores: x,
        iterations,
        residual,
    }
}

/// PageRank by power iteration on a snapshot graph.
pub fn pagerank_power_iteration(
    graph: &DiGraph,
    damping: f64,
    max_iterations: usize,
    tol: f64,
) -> PowerIterationResult {
    let n = graph.n_nodes();
    let w = column_normalized_adjacency(graph);
    let b = vec![(1.0 - damping) / n as f64; n];
    let mut result = solve_power_iteration(&w, &b, damping, max_iterations, tol);
    vector::normalize_l1(&mut result.scores);
    result
}

/// RWR / personalised PageRank by power iteration on a snapshot graph.
pub fn rwr_power_iteration(
    graph: &DiGraph,
    seed: usize,
    damping: f64,
    max_iterations: usize,
    tol: f64,
) -> PowerIterationResult {
    let n = graph.n_nodes();
    assert!(seed < n, "seed node out of range");
    let w = column_normalized_adjacency(graph);
    let mut b = vec![0.0; n];
    b[seed] = 1.0 - damping;
    let mut result = solve_power_iteration(&w, &b, damping, max_iterations, tol);
    vector::normalize_l1(&mut result.scores);
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn star() -> DiGraph {
        // Everyone links to node 0; node 0 links back to node 1.
        let mut g = DiGraph::new(5);
        for i in 1..5 {
            g.add_edge(i, 0);
        }
        g.add_edge(0, 1);
        g
    }

    #[test]
    fn pagerank_converges_and_ranks_hub_first() {
        let result = pagerank_power_iteration(&star(), 0.85, 500, 1e-12);
        assert!(result.iterations < 500);
        assert!(result.residual <= 1e-12);
        assert!((result.scores.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        let best = result
            .scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(best, 0);
    }

    #[test]
    fn rwr_concentrates_on_seed_neighbourhood() {
        let result = rwr_power_iteration(&star(), 2, 0.85, 500, 1e-12);
        assert!(result.scores[2] > result.scores[3]);
        assert!(result.scores[0] > result.scores[4]);
    }

    #[test]
    fn iteration_cap_is_respected() {
        let result = pagerank_power_iteration(&star(), 0.85, 3, 0.0);
        assert_eq!(result.iterations, 3);
        assert!(result.residual > 0.0);
    }

    #[test]
    #[should_panic(expected = "seed node")]
    fn rwr_rejects_bad_seed() {
        rwr_power_iteration(&star(), 9, 0.85, 10, 1e-6);
    }
}
