//! Figure 1 / Example 1: PageRank score of one page over the Wiki-like EGS,
//! with the key moments (sharp rises/drops) called out.
//!
//! Usage: `cargo run -p clude-bench --release --bin fig01_pr_timeseries [tiny|default|large] [seed]`

// CLI tool: printing the report is its entire purpose.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use clude::Clude;
use clude_bench::{BenchScale, Datasets};
use clude_measures::MeasureSeries;
use clude_sparse::vector;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = args
        .get(1)
        .and_then(|s| BenchScale::parse(s))
        .unwrap_or(BenchScale::Default);
    let seed = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(42u64);
    let data = Datasets::new(scale, seed);

    eprintln!("# Figure 1: PR score of one page over the Wiki-like EGS ({scale:?}, seed {seed})");
    let egs = data.wiki_egs();
    let series = MeasureSeries::build(&egs, clude_bench::datasets::DAMPING, &Clude::default())
        .expect("decomposition succeeds");

    // Pick the page whose PR varies the most over the sequence (the paper
    // hand-picked page 152 for the same reason).
    let first = series.pagerank_at(0).expect("solve succeeds");
    let last = series
        .pagerank_at(series.len() - 1)
        .expect("solve succeeds");
    let variation: Vec<f64> = first
        .iter()
        .zip(last.iter())
        .map(|(a, b)| (a - b).abs())
        .collect();
    let page = vector::rank_descending(&variation)[0];
    let pr = series.pagerank_series(page).expect("solve succeeds");
    let moments = series.key_moments(page, 0.25).expect("solve succeeds");

    println!("# page {page}: PageRank score per snapshot");
    println!("snapshot\tpagerank");
    for (t, score) in pr.iter().enumerate() {
        println!("{t}\t{score:.6e}");
    }
    println!("# key moments (>=25% relative change): {moments:?}");
    println!(
        "# paper shape: a handful of sharp jumps/drops (e.g. snapshots #197, #247) on an otherwise smooth series"
    );
}
