//! Figure 9: quality-loss and speed-up versus ΔE on the synthetic EMS.
//!
//! Usage: `cargo run -p clude-bench --release --bin fig09_delta_e [tiny|default|large] [seed]`

// CLI tool: printing the report is its entire purpose.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use clude_bench::{delta_e_sweep, BenchScale, Datasets};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = args
        .get(1)
        .and_then(|s| BenchScale::parse(s))
        .unwrap_or(BenchScale::Default);
    let seed = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(42u64);
    let data = Datasets::new(scale, seed);
    let delta_es = [300usize, 400, 500, 600, 700];

    eprintln!("# sweeping delta_e on the synthetic EMS ({scale:?}, seed {seed}) …");
    let points = delta_e_sweep(&delta_es, 0.95, |de| data.synthetic_ems(de));

    println!("# Figure 9a: average quality-loss vs delta_e (paper axis: 300–700)");
    println!("delta_e\tinc_quality\tcinc_quality\tclude_quality");
    for p in &points {
        println!(
            "{}\t{:.3}\t{:.3}\t{:.3}",
            p.delta_e, p.inc_quality, p.cinc_quality, p.clude_quality
        );
    }
    println!("# paper shape: INC's loss grows sharply with delta_e (up to ~7); CINC and CLUDE stay flat and small");

    println!("# Figure 9b: speedup over BF vs delta_e");
    println!("delta_e\tinc_speedup\tcinc_speedup\tclude_speedup");
    for p in &points {
        println!(
            "{}\t{:.2}\t{:.2}\t{:.2}",
            p.delta_e, p.inc_speedup, p.cinc_speedup, p.clude_speedup
        );
    }
    println!("# paper shape: CLUDE 10–20x, CINC in between, INC lowest; all speedups shrink as delta_e grows");
}
