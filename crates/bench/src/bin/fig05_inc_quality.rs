//! Figure 5: INC's quality-loss versus matrix index on the Wiki-like and
//! DBLP-like sequences.
//!
//! Usage: `cargo run -p clude-bench --release --bin fig05_inc_quality [tiny|default|large] [seed]`

// CLI tool: printing the report is its entire purpose.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use clude::MarkowitzReference;
use clude_bench::{inc_quality_series, BenchScale, Datasets};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = args
        .get(1)
        .and_then(|s| BenchScale::parse(s))
        .unwrap_or(BenchScale::Default);
    let seed = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(42u64);
    let data = Datasets::new(scale, seed);

    for (name, ems) in [
        ("wiki", data.wiki_ems()),
        ("dblp", data.dblp_random_walk_ems()),
    ] {
        eprintln!("# computing Markowitz reference for {name} …");
        let reference = MarkowitzReference::compute(&ems);
        let series = inc_quality_series(&ems, &reference);
        let average: f64 = series.iter().sum::<f64>() / series.len() as f64;
        println!("# Figure 5 ({name}): quality-loss of INC per matrix index");
        println!("matrix_index\tquality_loss");
        for (i, q) in series.iter().enumerate() {
            println!("{i}\t{q:.4}");
        }
        println!("# {name}: average quality-loss = {average:.3}");
        println!("# paper shape: loss grows with the matrix index; Wiki average ≈ 2, final ≈ 2.7");
    }
}
