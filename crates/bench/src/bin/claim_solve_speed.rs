//! Reproduces the paper's headline cost claims outside the figures:
//!
//! * §1: once a matrix is LU-decomposed, solving a linear system is orders of
//!   magnitude faster than one Gaussian elimination (the paper reports ≈5000×
//!   on its 20 000-node Wiki snapshot);
//! * §8: answering a query from the factors is ~two orders of magnitude
//!   faster than running power iteration or Monte Carlo per query.
//!
//! Usage: `cargo run -p clude-bench --release --bin claim_solve_speed [tiny|default|large] [seed]`

// CLI tool: printing the report is its entire purpose.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use clude::{BruteForce, LudemSolver, SolverConfig};
use clude_bench::{BenchScale, Datasets};
use clude_measures::{rwr_monte_carlo, rwr_power_iteration};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = args
        .get(1)
        .and_then(|s| BenchScale::parse(s))
        .unwrap_or(BenchScale::Default);
    let seed = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(42u64);
    let data = Datasets::new(scale, seed);
    let damping = clude_bench::datasets::DAMPING;

    let egs = data.wiki_egs();
    let graph = egs.snapshot(egs.len() - 1);
    let ems = clude::EvolvingMatrixSequence::from_egs(
        &clude_graph::EvolvingGraphSequence::from_base(graph.clone()),
        clude_graph::MatrixKind::RandomWalk { damping },
    );
    let n = ems.order();
    eprintln!(
        "# last Wiki-like snapshot: {n} nodes, {} edges",
        graph.n_edges()
    );

    // Decompose once (BF = Markowitz + full LU on the single matrix).
    let t = Instant::now();
    let solution = BruteForce.solve(&ems, &SolverConfig::default()).unwrap();
    let decompose_time = t.elapsed();

    // LU-backed query.
    let seed_node = 0usize;
    let mut b = vec![0.0; n];
    b[seed_node] = 1.0 - damping;
    let t = Instant::now();
    let reps = 50;
    let mut x_lu = Vec::new();
    for _ in 0..reps {
        x_lu = solution.solve(0, &b).unwrap();
    }
    let lu_query = t.elapsed() / reps;

    // One dense Gaussian elimination (the per-query cost without factors).
    let dense = ems.matrix(0).to_dense();
    let t = Instant::now();
    let x_ge = dense.solve_gaussian(&b).unwrap();
    let ge_time = t.elapsed();

    // Power iteration per query.
    let t = Instant::now();
    let pi = rwr_power_iteration(&graph, seed_node, damping, 1000, 1e-12);
    let pi_time = t.elapsed();

    // Monte Carlo per query.
    let mut rng = StdRng::seed_from_u64(seed);
    let t = Instant::now();
    let _mc = rwr_monte_carlo(&graph, seed_node, damping, 2_000, 100, &mut rng);
    let mc_time = t.elapsed();

    let max_diff = x_lu
        .iter()
        .zip(x_ge.iter())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);

    println!("# Section 1 / Section 8 cost claims (times in microseconds)");
    println!("method\ttime_us\tspeedup_vs_lu_query");
    let lu_us = lu_query.as_secs_f64() * 1e6;
    for (name, time) in [
        ("lu_factorize_once", decompose_time),
        ("lu_query", lu_query),
        ("gaussian_elimination_per_query", ge_time),
        ("power_iteration_per_query", pi_time),
        ("monte_carlo_per_query", mc_time),
    ] {
        let us = time.as_secs_f64() * 1e6;
        println!("{name}\t{us:.1}\t{:.1}", us / lu_us);
    }
    println!(
        "# LU vs GE max |Δx| = {max_diff:.2e}; PI iterations = {}",
        pi.iterations
    );
    println!("# paper claims: GE ≈ 5000x slower than an LU-backed query (20k nodes); PI/MC ≈ 100x slower");
    println!("# (absolute ratios depend on n; the ordering LU-query << PI/MC << GE must hold)");
}
