//! Engine throughput: replay a Wiki-like delta stream with concurrent
//! queries and report ingest rate, queries/sec and query latency quantiles.
//!
//! Run with:
//! ```text
//! cargo run --release --bin engine_throughput -- [n_pages] [n_query_threads] \
//!     [--shards N] [--batch N] [--solver jacobi|gauss-seidel|woodbury] \
//!     [--woodbury-rank K] [--repartition-budget N] [--query-threads N] \
//!     [--batch-window-us U] [--stale-budget K] [--smoke] \
//!     [--churn value|structure|mixed] [--no-refactor] \
//!     [--metrics-out PATH] [--no-telemetry] \
//!     [--wal-dir PATH] [--checkpoint-every N] [--group-commit W]
//! ```
//!
//! `--shards N` maintains the factors in the partitioned store (`N` factor
//! shards over an edge-locality partition; `1` keeps the monolithic store)
//! and reports a per-shard ingest breakdown alongside the aggregate
//! deltas/sec and the query latency quantiles.  `--batch N` sets the ingest
//! batch-cut size (default 64) — smaller batches touch fewer shards each,
//! which is the regime where the snapshot ring's copy-on-write sharing pays
//! (the sharing stats are printed either way).  `--solver` picks the
//! coupling-solver strategy of sharded queries (default `gauss-seidel`;
//! `--woodbury-rank` caps the cached correction, default 512), and
//! `--repartition-budget` enables adaptive re-partitioning when the live
//! coupling crosses the given entry count.  `--query-threads N` sets the
//! reader thread count explicitly (same as the second positional), and the
//! report breaks queries/sec down per thread.  `--batch-window-us U` makes
//! the query batcher's leader dwell `U` microseconds so concurrent cache
//! misses coalesce into wider multi-RHS panel solves (the batch-occupancy
//! histogram is printed either way); `--stale-budget K` lets the cache serve
//! results up to `K` snapshots behind the queried one.  `--smoke` shrinks
//! the replay
//! for CI so both code paths build and execute on every push.
//! `--metrics-out PATH` dumps the engine's telemetry registry (per-stage
//! latency histograms, counters, gauges, journal counts) in the Prometheus
//! text format after the replay, and `--no-telemetry` runs the engine with
//! recording compiled down to no-ops (the overhead baseline).
//!
//! `--churn` shapes the replayed stream: `structure` (default) replays the
//! wiki-like growth stream as before; `value` toggles a stable pool of
//! base-snapshot edges in alternating remove/re-insert rounds, so every
//! batch stays inside the frozen factor pattern and exercises the
//! pattern-frozen refactorization fast path; `mixed` interleaves the two.
//! `--no-refactor` disables that fast path (every batch goes through the
//! Bennett sweep), which is the baseline for the refactor speedup numbers.
//! After the replay the final engine answers are checked against a fresh
//! monolithic factorization of the final graph to 1e-9.
//!
//! `--wal-dir PATH` opens the engine durably over a spool directory: every
//! batch is written ahead to a checksummed WAL and a checkpoint generation
//! is cut every `--checkpoint-every N` batches (default 64); `--group-commit
//! W` syncs the WAL every `W` appends (default 8).  On a warm spool the run
//! first *recovers* — the printed recovery report shows the checkpoint used
//! and the WAL records replayed — so killing a durable run (e.g. `kill -9`)
//! and re-running it exercises the full crash path.  The ingest line labels
//! the rate `durable` instead of `in-memory` so the WAL overhead is
//! directly comparable.
//!
//! The full stream replays at least 10 000 edge operations; query threads
//! fire RWR / PageRank / PPR queries against the live engine the whole time.

// CLI tool: printing the report is its entire purpose.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use clude_engine::{
    BatchPolicy, CludeEngine, CouplingConfig, CouplingSolver, DurabilityConfig, EngineConfig,
    FactorStore, RefreshPolicy, StalenessBudget,
};
use clude_graph::generators::wiki_like::{self, WikiLikeConfig};
use clude_graph::EvolvingGraphSequence;
use clude_measures::MeasureQuery;
use clude_telemetry::{LogHistogram, Stage, TelemetryConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

const MIN_DELTAS: usize = 10_000;

/// One streamed edge operation of the replay.
#[derive(Clone, Copy)]
enum Op {
    Insert(usize, usize),
    Remove(usize, usize),
}

/// Flattens an EGS archive into a single edge-operation stream.
fn op_stream(egs: &EvolvingGraphSequence) -> Vec<Op> {
    let mut ops = Vec::new();
    for step in 0..egs.len() - 1 {
        let delta = egs.delta(step);
        for &(u, v) in &delta.removed {
            ops.push(Op::Remove(u, v));
        }
        for &(u, v) in &delta.added {
            ops.push(Op::Insert(u, v));
        }
    }
    ops
}

/// The shape of the replayed delta stream.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Churn {
    /// Remove/re-insert rounds over a stable pool of base-snapshot edges:
    /// every touched position keeps its frozen factor slot, so with the
    /// refactor path on each batch redoes numerics down the frozen pattern.
    Value,
    /// The wiki-like growth stream — mostly new edges, mostly structural.
    Structure,
    /// The two streams interleaved one-for-one.
    Mixed,
}

impl Churn {
    fn name(self) -> &'static str {
        match self {
            Churn::Value => "value",
            Churn::Structure => "structure",
            Churn::Mixed => "mixed",
        }
    }
}

/// Alternating full-pool remove and re-insert rounds over `pool_size` edges
/// of the base snapshot.  The pool is at least one batch wide, so each cut
/// batch is homogeneous — all removals or all in-pattern re-insertions — and
/// classifies as value-only against the frozen factor pattern.  Edges in
/// `exclude` (touched by an interleaved structural stream) are skipped so the
/// toggle presence invariant survives interleaving.
fn value_toggle_stream(
    egs: &EvolvingGraphSequence,
    target: usize,
    pool_size: usize,
    exclude: &std::collections::HashSet<(usize, usize)>,
) -> Vec<Op> {
    let base = egs.snapshot(0);
    // Prefer edges whose source has a high out-degree — the hot-page regime:
    // each toggle rescales the source's whole column, so the per-entry
    // Bennett cost is maximal while the frozen-pattern refactor pass stays
    // one sweep regardless.
    let mut candidates: Vec<(usize, usize)> =
        base.edges().filter(|e| !exclude.contains(e)).collect();
    candidates.sort_by_key(|&(u, v)| (std::cmp::Reverse(base.out_degree(u)), u, v));
    let pool: Vec<(usize, usize)> = candidates.into_iter().take(pool_size).collect();
    assert!(!pool.is_empty(), "base snapshot has no edges to toggle");
    let mut ops = Vec::with_capacity(target + 2 * pool.len());
    let mut removing = true;
    while ops.len() < target {
        for &(u, v) in &pool {
            ops.push(if removing {
                Op::Remove(u, v)
            } else {
                Op::Insert(u, v)
            });
        }
        removing = !removing;
    }
    // `removing` now names the round that would come next; if it is a
    // re-insert round the pool is currently absent — run it, so the final
    // graph returns to the base topology.
    if !removing {
        for &(u, v) in &pool {
            ops.push(Op::Insert(u, v));
        }
    }
    ops
}

fn main() {
    let mut n_pages: Option<usize> = None;
    let mut n_query_threads: Option<usize> = None;
    let mut n_shards: usize = 1;
    let mut batch_size: usize = 64;
    let mut solver_name = String::from("gauss-seidel");
    let mut woodbury_rank: usize = CouplingSolver::DEFAULT_WOODBURY_RANK;
    let mut repartition_budget: Option<usize> = None;
    let mut batch_window_us: u64 = 0;
    let mut stale_budget: u64 = 0;
    let mut smoke = false;
    let mut churn = Churn::Structure;
    let mut refactor = true;
    let mut metrics_out: Option<String> = None;
    let mut telemetry_enabled = true;
    let mut wal_dir: Option<String> = None;
    let mut checkpoint_every: u64 = 64;
    let mut group_commit: usize = 8;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--shards" => {
                n_shards = args
                    .next()
                    .and_then(|a| a.parse().ok())
                    .expect("--shards needs a positive integer");
                assert!(n_shards >= 1, "--shards needs a positive integer");
            }
            "--batch" => {
                batch_size = args
                    .next()
                    .and_then(|a| a.parse().ok())
                    .expect("--batch needs a positive integer");
                assert!(batch_size >= 1, "--batch needs a positive integer");
            }
            "--solver" => {
                solver_name = args.next().expect("--solver needs a strategy name");
            }
            "--woodbury-rank" => {
                woodbury_rank = args
                    .next()
                    .and_then(|a| a.parse().ok())
                    .expect("--woodbury-rank needs a non-negative integer");
            }
            "--repartition-budget" => {
                repartition_budget = Some(
                    args.next()
                        .and_then(|a| a.parse().ok())
                        .expect("--repartition-budget needs a non-negative integer"),
                );
            }
            "--query-threads" => {
                let threads: usize = args
                    .next()
                    .and_then(|a| a.parse().ok())
                    .expect("--query-threads needs a positive integer");
                assert!(threads >= 1, "--query-threads needs a positive integer");
                n_query_threads = Some(threads);
            }
            "--batch-window-us" => {
                batch_window_us = args
                    .next()
                    .and_then(|a| a.parse().ok())
                    .expect("--batch-window-us needs a non-negative integer");
            }
            "--stale-budget" => {
                stale_budget = args
                    .next()
                    .and_then(|a| a.parse().ok())
                    .expect("--stale-budget needs a non-negative integer");
            }
            "--smoke" => smoke = true,
            "--churn" => {
                churn = match args.next().as_deref() {
                    Some("value") => Churn::Value,
                    Some("structure") => Churn::Structure,
                    Some("mixed") => Churn::Mixed,
                    other => {
                        panic!("unknown --churn {other:?} (expected value, structure or mixed)")
                    }
                };
            }
            "--no-refactor" => refactor = false,
            "--metrics-out" => {
                metrics_out = Some(args.next().expect("--metrics-out needs a file path"));
            }
            "--no-telemetry" => telemetry_enabled = false,
            "--wal-dir" => {
                wal_dir = Some(args.next().expect("--wal-dir needs a directory path"));
            }
            "--checkpoint-every" => {
                checkpoint_every = args
                    .next()
                    .and_then(|a| a.parse().ok())
                    .expect("--checkpoint-every needs a positive integer");
                assert!(
                    checkpoint_every >= 1,
                    "--checkpoint-every needs a positive integer"
                );
            }
            "--group-commit" => {
                group_commit = args
                    .next()
                    .and_then(|a| a.parse().ok())
                    .expect("--group-commit needs a positive integer");
                assert!(group_commit >= 1, "--group-commit needs a positive integer");
            }
            other => {
                let value: usize = other
                    .parse()
                    .unwrap_or_else(|_| panic!("unrecognised argument {other:?}"));
                if n_pages.is_none() {
                    n_pages = Some(value);
                } else if n_query_threads.is_none() {
                    n_query_threads = Some(value);
                } else {
                    panic!("unexpected extra positional argument {other:?}");
                }
            }
        }
    }
    let solver = match solver_name.as_str() {
        "jacobi" => CouplingSolver::Jacobi,
        "gauss-seidel" | "gs" => CouplingSolver::GaussSeidel,
        "woodbury" => CouplingSolver::Woodbury {
            max_rank: woodbury_rank,
        },
        other => panic!("unknown --solver {other:?} (expected jacobi, gauss-seidel or woodbury)"),
    };
    let n_pages = n_pages.unwrap_or(if smoke { 150 } else { 400 });
    // Default to cores − 1 query threads (min 1) so the ingest thread is not
    // starved on small machines; pass an explicit count to override.
    let n_query_threads: usize = n_query_threads.unwrap_or_else(|| {
        if smoke {
            1
        } else {
            std::thread::available_parallelism()
                .map(|p| p.get().saturating_sub(1).max(1))
                .unwrap_or(1)
        }
    });

    // Scale the sequence so the replay comfortably clears the delta floor
    // (full runs only; smoke keeps CI fast).
    let config = if smoke {
        WikiLikeConfig {
            n_pages,
            initial_links: n_pages * 3,
            final_links: n_pages * 3 + 1_500,
            n_snapshots: 30,
            removals_per_snapshot: 4,
            burst_probability: 0.08,
            burst_size: 10,
        }
    } else {
        WikiLikeConfig {
            n_pages,
            initial_links: n_pages * 3,
            final_links: n_pages * 3 + 9_200,
            n_snapshots: 120,
            removals_per_snapshot: 8,
            burst_probability: 0.08,
            burst_size: 25,
        }
    };
    let egs = wiki_like::generate(&config, &mut StdRng::seed_from_u64(7));
    let structural = op_stream(&egs);
    // The toggle pool must be at least one batch wide, or a batch would
    // contain an edge's remove *and* re-insert and merge them away.
    let toggle_pool = batch_size.max(512);
    let ops = match churn {
        Churn::Structure => structural,
        Churn::Value => value_toggle_stream(
            &egs,
            structural.len(),
            toggle_pool,
            &std::collections::HashSet::new(),
        ),
        Churn::Mixed => {
            // Toggle only edges the structural stream never touches, so each
            // toggled edge keeps its strict remove/insert alternation.
            let touched: std::collections::HashSet<(usize, usize)> = structural
                .iter()
                .map(|op| match *op {
                    Op::Insert(u, v) | Op::Remove(u, v) => (u, v),
                })
                .collect();
            let toggles = value_toggle_stream(&egs, structural.len(), toggle_pool, &touched);
            structural
                .iter()
                .copied()
                .zip(toggles)
                .flat_map(|(s, t)| [s, t])
                .collect()
        }
    };
    assert!(
        smoke || ops.len() >= MIN_DELTAS,
        "replay too small: {} ops (need >= {MIN_DELTAS})",
        ops.len()
    );
    println!(
        "replay: {} pages, {} snapshots archived, {} edge operations ({} churn{}), {} query threads, {} factor shard(s), batch {}, solver {}{}{}",
        egs.n_nodes(),
        egs.len(),
        ops.len(),
        churn.name(),
        if refactor { "" } else { ", refactor off" },
        n_query_threads,
        n_shards,
        batch_size,
        solver.name(),
        match repartition_budget {
            Some(b) => format!(", repartition-budget {b}"),
            None => String::new(),
        },
        if smoke { " [smoke]" } else { "" }
    );

    let engine_config = EngineConfig {
        batch: BatchPolicy::by_count(batch_size),
        // A tight budget keeps the factors near the Markowitz
        // reference: Bennett cascades stay short, and the periodic
        // refresh is far cheaper than the fill it prevents.
        refresh: RefreshPolicy::QualityTriggered {
            max_quality_loss: 0.25,
        },
        ring_capacity: 8,
        cache_shards: 16,
        cache_capacity_per_shard: 256,
        n_shards,
        coupling: CouplingConfig {
            solver,
            repartition_budget,
            ..CouplingConfig::default()
        },
        telemetry: if telemetry_enabled {
            TelemetryConfig::default()
        } else {
            TelemetryConfig::disabled()
        },
        staleness: StalenessBudget {
            max_lag: stale_budget,
        },
        batch_window_us,
        refactor,
        ..EngineConfig::default()
    };
    let matrix_kind = engine_config.matrix_kind;
    // The fill-reducing ordering contest every shard build runs, shown here
    // on the whole base measure matrix: predicted factor size `|s̃p(A^O)|`
    // and ordering cost per pivot for the paper's Markowitz rule vs AMD.
    {
        let pattern = clude_graph::measure_matrix(&egs.snapshot(0), matrix_kind).pattern();
        let n = pattern.n_rows();
        let t = Instant::now();
        let markowitz = clude_lu::markowitz_ordering(&pattern);
        let t_markowitz = t.elapsed();
        let t = Instant::now();
        let amd = clude_lu::amd_ordering(&pattern);
        let t_amd = t.elapsed();
        println!(
            "ordering contest on the base matrix ({n} pivots): markowitz fill {} ({:.3?}, {:.2} us/pivot), amd fill {} ({:.3?}, {:.2} us/pivot)",
            markowitz.symbolic_size,
            t_markowitz,
            t_markowitz.as_micros() as f64 / n as f64,
            amd.symbolic_size,
            t_amd,
            t_amd.as_micros() as f64 / n as f64,
        );
        // Same contest on the shard matrices the engine actually refreshes at
        // the end of the replay: the densified end-state is where the
        // deficiency tie-break separates the two orderings.
        if n_shards > 1 {
            let last = egs.len() - 1;
            let final_graph = egs.snapshot(last);
            let partition = clude::partition::edge_locality_partition(&egs.snapshot(0), n_shards);
            let (mut fills, mut times) = ((0usize, 0usize), (0f64, 0f64));
            let mut pivots = 0usize;
            for shard in 0..partition.n_shards() {
                let m =
                    clude_graph::shard_measure_matrix(&final_graph, matrix_kind, &partition, shard);
                let p = m.pattern();
                pivots += p.n_rows();
                let t = Instant::now();
                fills.0 += clude_lu::markowitz_ordering(&p).symbolic_size;
                times.0 += t.elapsed().as_micros() as f64;
                let t = Instant::now();
                fills.1 += clude_lu::amd_ordering(&p).symbolic_size;
                times.1 += t.elapsed().as_micros() as f64;
            }
            println!(
                "ordering contest on final-state shard matrices ({} shards, {pivots} pivots): markowitz fill {} ({:.2} us/pivot), amd fill {} ({:.2} us/pivot)",
                partition.n_shards(),
                fills.0,
                times.0 / pivots as f64,
                fills.1,
                times.1 / pivots as f64,
            );
        }
    }
    let engine = Arc::new(match &wal_dir {
        Some(dir) => {
            let durability = DurabilityConfig::new(dir)
                .group_commit(group_commit)
                .checkpoint_every(checkpoint_every);
            let (engine, report) =
                CludeEngine::open_durable(egs.snapshot(0), engine_config, durability)
                    .expect("durable open succeeds");
            println!(
                "durable spool {dir}: checkpoint snapshot {:?} (gen {:?}), {} WAL records replayed, {} truncated, resumed at {:?}",
                report.checkpoint_snapshot,
                report.checkpoint_gen,
                report.wal_records_replayed,
                report.wal_records_truncated,
                report.recovered_snapshot,
            );
            engine
        }
        None => CludeEngine::new(egs.snapshot(0), engine_config).expect("base snapshot factorizes"),
    });
    let running = Arc::new(AtomicBool::new(true));
    let n = egs.n_nodes();
    // End-to-end query latency as the reader sees it (cache hits included),
    // shared lock-free across the reader threads.
    let latency_hist = Arc::new(LogHistogram::new());

    // Query threads: mixed RWR / PageRank / PPR workload with skewed seeds
    // (a hot set of 32 pages gets most of the traffic, as a real serving
    // tier would see).
    let readers: Vec<_> = (0..n_query_threads)
        .map(|t| {
            let engine = Arc::clone(&engine);
            let running = Arc::clone(&running);
            let latency_hist = Arc::clone(&latency_hist);
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(1000 + t as u64);
                let mut answered = 0u64;
                // lint: allow(atomic-ordering) — stop flag: readers only
                // need eventual visibility, not ordering with the workload.
                while running.load(Ordering::Relaxed) {
                    let query = match rng.gen_range(0usize..10) {
                        0..=6 => MeasureQuery::Rwr {
                            seed: if rng.gen_bool(0.8) {
                                rng.gen_range(0..32.min(n))
                            } else {
                                rng.gen_range(0..n)
                            },
                            damping: 0.85,
                        },
                        7..=8 => MeasureQuery::PageRank { damping: 0.85 },
                        _ => MeasureQuery::PprSeedSet {
                            seeds: vec![rng.gen_range(0..n), rng.gen_range(0..n)],
                            damping: 0.85,
                        },
                    };
                    let start = Instant::now();
                    let scores = engine.query(&query).expect("query succeeds");
                    latency_hist.record_duration(start.elapsed());
                    assert_eq!(scores.len(), n);
                    answered += 1;
                    // Give the ingest thread a scheduling slot on small
                    // machines; a no-op when cores are plentiful.
                    std::thread::yield_now();
                }
                answered
            })
        })
        .collect();

    // Ingest thread (this one): replay the stream as fast as possible.
    let ingest_start = Instant::now();
    for op in &ops {
        match *op {
            Op::Insert(u, v) => engine.insert_edge(u, v).expect("insert applies"),
            Op::Remove(u, v) => engine.remove_edge(u, v).expect("remove applies"),
        };
    }
    engine.flush().expect("final batch applies");
    let ingest_elapsed = ingest_start.elapsed();
    // lint: allow(atomic-ordering) — stop flag; the join below is the
    // synchronisation point, the flag only needs eventual visibility.
    running.store(false, Ordering::Relaxed);

    let per_thread: Vec<u64> = readers
        .into_iter()
        .map(|r| r.join().expect("query thread clean exit"))
        .collect();
    let n_queries = latency_hist.count();

    let stats = engine.stats();
    let qps = n_queries as f64 / ingest_elapsed.as_secs_f64();
    let dps = ops.len() as f64 / ingest_elapsed.as_secs_f64();
    let refactor_passes = engine
        .telemetry()
        .stage_histogram(Stage::ShardRefactor)
        .count();
    println!("\n--- ingest ---");
    println!(
        "replayed {} ops in {:.3?} -> {:.0} {} deltas/sec ({} batches, {} refreshes, {} refactor passes, final snapshot {})",
        ops.len(),
        ingest_elapsed,
        dps,
        if wal_dir.is_some() {
            "durable"
        } else {
            "in-memory"
        },
        stats.batches_applied,
        stats.refreshes,
        refactor_passes,
        engine.current_snapshot_id()
    );
    // The maintenance stage in isolation: time spent keeping factor values
    // current (Bennett sweeps + pattern-frozen refactor passes + refreshes),
    // excluding the shared pipeline around it (merge, routing, coupling
    // republish, snapshot freeze).  This is the direct refactor-vs-sweep
    // comparison; the end-to-end rate above dilutes it with the shared work.
    let telemetry = engine.telemetry();
    let maintenance_ns: u64 = [Stage::ShardSweep, Stage::ShardRefactor, Stage::ShardRefresh]
        .iter()
        .map(|&s| telemetry.stage_histogram(s).sum())
        .sum();
    if maintenance_ns > 0 {
        println!(
            "factor maintenance stage: {:.3?} total -> {:.0} deltas/sec through {}",
            std::time::Duration::from_nanos(maintenance_ns),
            ops.len() as f64 * 1e9 / maintenance_ns as f64,
            if refactor_passes > 0 {
                "refactor passes"
            } else {
                "Bennett sweeps"
            },
        );
    }
    if stats.per_shard.len() > 1 {
        println!("\n--- per-shard ingest breakdown ---");
        for s in &stats.per_shard {
            println!(
                "shard {:>3} | entries {:>8}  sweeps {:>8}  cross-edges {:>8}  refreshes {:>4}",
                s.shard, s.deltas_applied, s.sweeps_run, s.cross_shard_edges, s.refreshes
            );
        }
    }
    println!("\n--- snapshot ring (copy-on-write sharing) ---");
    let snapshots = stats.cow_shards_cloned + stats.cow_shards_shared;
    println!(
        "published {} snapshots over {} shard(s): {} blocks cloned, {} shared ({:.1}% share rate)",
        stats.batches_applied,
        engine.n_shards(),
        stats.cow_shards_cloned,
        stats.cow_shards_shared,
        100.0 * stats.cow_share_rate()
    );
    println!(
        "ring depth {}: ~{:.2} MiB factor blocks + couplings resident ({:.2} avg blocks cloned/snapshot)",
        stats.ring_depth,
        stats.resident_factor_bytes as f64 / (1024.0 * 1024.0),
        if stats.batches_applied == 0 {
            0.0
        } else {
            stats.cow_shards_cloned as f64 / stats.batches_applied as f64
        }
    );
    debug_assert_eq!(snapshots, stats.batches_applied * engine.n_shards() as u64);

    println!("\n--- queries (concurrent with ingest) ---");
    println!(
        "answered {} queries -> {:.0} queries/sec, cache hit-rate {:.1}%",
        n_queries,
        qps,
        100.0 * stats.hit_rate()
    );
    println!(
        "latency [{} x {} shard(s), coupling nnz {}]:",
        stats.solver, n_shards, stats.coupling_nnz
    );
    println!(
        "  p50 {:?}  p90 {:?}  p95 {:?}  p99 {:?}  max {:?}",
        latency_hist.duration_at_quantile(0.50),
        latency_hist.duration_at_quantile(0.90),
        latency_hist.duration_at_quantile(0.95),
        latency_hist.duration_at_quantile(0.99),
        latency_hist.max_duration()
    );
    println!("\n--- per-thread queries ---");
    for (t, answered) in per_thread.iter().enumerate() {
        println!(
            "thread {t:>3} | {answered:>9} queries -> {:.0} queries/sec",
            *answered as f64 / ingest_elapsed.as_secs_f64()
        );
    }
    let occupancy = engine.batch_occupancy();
    println!(
        "\n--- batch occupancy (window {batch_window_us} us, stale budget {stale_budget}) ---"
    );
    println!(
        "{} panel solves drained, occupancy mean {:.2}, p50 {}, p90 {}, max {}",
        occupancy.count(),
        occupancy.mean(),
        occupancy.value_at_quantile(0.50),
        occupancy.value_at_quantile(0.90),
        occupancy.max()
    );
    println!("\n--- engine counters ---\n{stats}");

    // Exactness gate: whatever path the batches took (Bennett sweeps,
    // pattern-frozen refactorizations, refreshes), the served answers must
    // match a fresh monolithic factorization of the final graph to 1e-9.
    let mut final_graph = egs.snapshot(0);
    for op in &ops {
        match *op {
            Op::Insert(u, v) => {
                final_graph.add_edge(u, v);
            }
            Op::Remove(u, v) => {
                final_graph.remove_edge(u, v);
            }
        }
    }
    let oracle = FactorStore::new(final_graph, matrix_kind, RefreshPolicy::Incremental)
        .expect("final graph factorizes");
    let oracle_snap = oracle.snapshot();
    let mut max_diff = 0.0f64;
    for q in [
        MeasureQuery::PageRank { damping: 0.85 },
        MeasureQuery::Rwr {
            seed: 0,
            damping: 0.85,
        },
        MeasureQuery::Rwr {
            seed: n - 1,
            damping: 0.85,
        },
        MeasureQuery::PprSeedSet {
            seeds: vec![1, n / 2],
            damping: 0.85,
        },
    ] {
        let served = engine.query(&q).expect("verification query succeeds");
        let exact = oracle_snap.query(&q).expect("oracle query succeeds");
        for (a, b) in served.iter().zip(exact.iter()) {
            max_diff = max_diff.max((a - b).abs());
        }
    }
    assert!(
        max_diff <= 1e-9,
        "served answers drifted from the monolithic oracle: max |diff| {max_diff:.3e}"
    );
    println!("\nexactness vs monolithic oracle: max |diff| {max_diff:.3e} (gate 1e-9)");

    if let Some(path) = metrics_out {
        let dump = engine.render_prometheus();
        clude_telemetry::validate_prometheus(&dump).expect("exposition is well-formed");
        std::fs::write(&path, &dump).expect("metrics file is writable");
        println!(
            "\nwrote {} telemetry series bytes to {path} ({} spans, {} journal events)",
            dump.len(),
            engine.telemetry().spans_recorded(),
            engine.telemetry().journal().recorded()
        );
    }
}
