//! Bennett per-pivot cost: replay a long matrix-delta stream against dynamic
//! LU factors and report µs/pivot and pivots/sec.
//!
//! Run with:
//! ```text
//! cargo run --release --bin bennett_pivot [tiny|default|large] [min_deltas]
//! ```
//!
//! The replay walks the Wiki-like evolving matrix sequence end to end,
//! applying every snapshot-to-snapshot delta through [`clude_lu::apply_delta_with`]
//! with one reused [`clude_lu::BennettWorkspace`], and cycles through the
//! sequence until at least `min_deltas` changed matrix entries (default
//! 10 000) have been streamed.  Only the Bennett sweep itself is timed; the
//! per-cycle re-factorization that resets fill between laps is not.  This is
//! the ROADMAP "per-pivot cost" probe: the number to watch is µs/pivot.

// CLI tool: printing the report is its entire purpose.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use clude_bench::{BenchScale, Datasets};
use clude_lu::{apply_delta_with, BennettStats, BennettWorkspace, DynamicLuFactors};
use clude_telemetry::LogHistogram;
use std::time::{Duration, Instant};

fn main() {
    let mut args = std::env::args().skip(1);
    let scale = args
        .next()
        .map(|s| BenchScale::parse(&s).expect("scale is tiny|default|large"))
        .unwrap_or(BenchScale::Tiny);
    let min_deltas: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(10_000);

    let data = Datasets::new(scale, 42);
    let ems = data.wiki_ems();
    assert!(ems.len() >= 2, "need at least one delta in the sequence");
    println!(
        "replay: {:?} wiki-like EMS, {} snapshots of order {}, streaming >= {} changed entries",
        scale,
        ems.len(),
        ems.matrix(0).n_rows(),
        min_deltas
    );

    // Precompute the per-step deltas once so the timed loop does no CSR work.
    let steps: Vec<Vec<(usize, usize, f64, f64)>> = (0..ems.len() - 1)
        .map(|i| {
            ems.matrix(i)
                .delta_to(ems.matrix(i + 1), 0.0)
                .expect("sequence matrices share a shape")
        })
        .collect();
    let entries_per_cycle: usize = steps.iter().map(Vec::len).sum();
    assert!(entries_per_cycle > 0, "sequence never changes");

    let mut workspace = BennettWorkspace::new();
    let mut stats = BennettStats::default();
    let mut structural = clude_sparse::StructuralStats::default();
    let mut streamed = 0usize;
    let mut sweep_time = Duration::ZERO;
    // Per-delta sweep latency distribution; recorded outside the timed
    // window so the histogram costs the measurement nothing.
    let sweep_hist = LogHistogram::new();
    while streamed < min_deltas {
        // Fresh factors per lap: each lap measures the same steady drift
        // instead of unboundedly accumulating fill across repeats.
        let mut factors =
            DynamicLuFactors::factorize(ems.matrix(0)).expect("base matrix factorizes");
        factors.reset_structural_stats();
        for delta in &steps {
            let t = Instant::now();
            let s = apply_delta_with(&mut factors, &mut workspace, delta)
                .expect("replay deltas stay factorizable");
            let elapsed = t.elapsed();
            sweep_time += elapsed;
            sweep_hist.record_duration(elapsed);
            stats.merge(&s);
            streamed += delta.len();
        }
        let s = factors.structural_stats();
        structural.inserts += s.inserts;
        structural.removals += s.removals;
        structural.probes += s.probes;
    }

    let pivots = stats.pivots_processed.max(1);
    let us_per_pivot = sweep_time.as_secs_f64() * 1e6 / pivots as f64;
    let pivots_per_sec = pivots as f64 / sweep_time.as_secs_f64();
    println!("\n--- bennett sweep ---");
    println!(
        "streamed {} changed entries as {} rank-one updates in {:.3?}",
        streamed, stats.rank_one_updates, sweep_time
    );
    println!(
        "pivots processed: {}  entries touched: {}",
        stats.pivots_processed, stats.entries_touched
    );
    println!(
        "structural: {} inserts, {} removals, {} probe steps",
        structural.inserts, structural.removals, structural.probes
    );
    println!(
        "per-delta sweep latency: p50 {:?}  p90 {:?}  p99 {:?}  max {:?}",
        sweep_hist.duration_at_quantile(0.50),
        sweep_hist.duration_at_quantile(0.90),
        sweep_hist.duration_at_quantile(0.99),
        sweep_hist.max_duration()
    );
    println!("us/pivot: {us_per_pivot:.3}");
    println!("pivots/sec: {pivots_per_sec:.0}");
}
