//! Figures 6, 7 and 8: the α-sweep on the Wiki-like and DBLP-like sequences.
//!
//! * Figure 6 — average quality-loss of CINC and CLUDE vs α;
//! * Figure 7 — speed-up over BF of INC, CINC and CLUDE vs α;
//! * Figure 8 — CLUDE's execution-time breakdown and the Bennett-time
//!   comparison between CINC and CLUDE.
//!
//! Usage: `cargo run -p clude-bench --release --bin fig06_07_08_alpha_sweep [tiny|default|large] [seed]`

// CLI tool: printing the report is its entire purpose.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use clude_bench::experiments::{alpha_sweep, secs, sweep_baselines};
use clude_bench::{BenchScale, Datasets};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = args
        .get(1)
        .and_then(|s| BenchScale::parse(s))
        .unwrap_or(BenchScale::Default);
    let seed = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(42u64);
    let data = Datasets::new(scale, seed);
    let alphas = [0.90, 0.92, 0.94, 0.95, 0.96, 0.98, 1.0];

    for (name, ems) in [
        ("wiki", data.wiki_ems()),
        ("dblp", data.dblp_random_walk_ems()),
    ] {
        eprintln!("# running BF / INC baselines for {name} …");
        let (baselines, reference) = sweep_baselines(&ems);
        eprintln!("# sweeping alpha for {name} …");
        let points = alpha_sweep(&ems, &alphas, &baselines, &reference);

        println!("# Figure 6 ({name}): average quality-loss vs alpha");
        println!(
            "alpha\tcinc_quality\tclude_quality\t(inc_quality={:.3})",
            baselines.inc_quality
        );
        for p in &points {
            println!(
                "{:.2}\t{:.4}\t{:.4}",
                p.alpha, p.cinc_quality, p.clude_quality
            );
        }
        println!("# paper shape: loss drops as alpha grows; CLUDE well below CINC (e.g. 0.13 vs 0.53 at alpha=0.95 on Wiki)");

        println!("# Figure 7 ({name}): speedup over BF vs alpha");
        println!("alpha\tinc_speedup\tcinc_speedup\tclude_speedup");
        for p in &points {
            println!(
                "{:.2}\t{:.2}\t{:.2}\t{:.2}",
                p.alpha, baselines.inc_speedup, p.cinc_speedup, p.clude_speedup
            );
        }
        println!("# paper shape: CLUDE fastest (≈20x on Wiki), CINC >5x, INC slowest (≈2.6x); all drop as alpha -> 1");

        println!("# Figure 8a ({name}): CLUDE execution-time breakdown vs alpha (seconds)");
        println!("alpha\tclustering\tmarkowitz\tsymbolic\tfull_lu\tbennett\ttotal\tclusters");
        for p in &points {
            let b = &p.clude_breakdown;
            println!(
                "{:.2}\t{:.3}\t{:.3}\t{:.3}\t{:.3}\t{:.3}\t{:.3}\t{}",
                p.alpha,
                secs(b.clustering),
                secs(b.ordering),
                secs(b.symbolic),
                secs(b.full_decomposition),
                secs(b.incremental),
                secs(b.total()),
                p.clude_clusters
            );
        }
        println!("# paper shape: Bennett time dominates and falls with alpha; Markowitz/full-LU time rises with alpha");

        println!("# Figure 8b ({name}): Bennett time, CINC vs CLUDE (seconds)");
        println!("alpha\tcinc_bennett\tclude_bennett");
        for p in &points {
            println!(
                "{:.2}\t{:.3}\t{:.3}",
                p.alpha,
                secs(p.cinc_bennett),
                secs(p.clude_breakdown.incremental)
            );
        }
        println!("# paper shape: CLUDE's Bennett time is several times smaller than CINC's at every alpha");
        println!("# BF total = {:.3}s", secs(baselines.bf_total));
    }
}
