//! Figure 10: the LUDEM-QC experiment — quality-loss and speed-up versus the
//! quality requirement β on the symmetric DBLP-like EMS.
//!
//! Usage: `cargo run -p clude-bench --release --bin fig10_qc [tiny|default|large] [seed]`

// CLI tool: printing the report is its entire purpose.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use clude_bench::{beta_sweep, BenchScale, Datasets};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = args
        .get(1)
        .and_then(|s| BenchScale::parse(s))
        .unwrap_or(BenchScale::Default);
    let seed = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(42u64);
    let data = Datasets::new(scale, seed);
    let betas = [0.0, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3];

    eprintln!("# sweeping beta on the symmetric DBLP-like EMS ({scale:?}, seed {seed}) …");
    let ems = data.dblp_symmetric_ems();
    let points = beta_sweep(&ems, &betas);

    println!("# Figure 10a: average quality-loss vs beta (constraint: max loss <= beta)");
    println!("beta\tcinc_quality\tclude_quality\tclude_max_quality");
    for p in &points {
        println!(
            "{:.2}\t{:.4}\t{:.4}\t{:.4}",
            p.beta, p.cinc_quality, p.clude_quality, p.clude_max_quality
        );
    }
    println!("# paper shape: both stay well within beta; CLUDE's loss below CINC's; loss grows with beta");

    println!("# Figure 10b: speedup over BF vs beta");
    println!("beta\tinc_speedup\tcinc_speedup\tclude_speedup");
    for p in &points {
        println!(
            "{:.2}\t{:.2}\t{:.2}\t{:.2}",
            p.beta, p.inc_speedup, p.cinc_speedup, p.clude_speedup
        );
    }
    println!("# paper shape: speedup grows with beta (bigger clusters); CLUDE >10x and above CINC throughout");
}
