//! Figure 11 / §7 case study: PPR-proximity ranks of companies from the
//! subject company's patents, over yearly snapshots of a patent-citation EGS.
//!
//! The paper's observation: most companies' ranks are stable while one
//! ("HARRIS") climbs steadily — a leading indicator of the later alliance.
//! The simulated dataset plants the same signal (see DESIGN.md).
//!
//! Usage: `cargo run -p clude-bench --release --bin fig11_case_study [tiny|default|large] [seed]`

// CLI tool: printing the report is its entire purpose.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use clude::Clude;
use clude_bench::{BenchScale, Datasets};
use clude_measures::MeasureSeries;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = args
        .get(1)
        .and_then(|s| BenchScale::parse(s))
        .unwrap_or(BenchScale::Default);
    let seed = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(42u64);
    let data = Datasets::new(scale, seed);

    eprintln!("# building the patent-citation case study ({scale:?}, seed {seed}) …");
    let patent = data.patent_egs();
    let config = data.patent_config();
    let series = MeasureSeries::build(
        &patent.egs,
        clude_bench::datasets::DAMPING,
        &Clude::default(),
    )
    .expect("decomposition succeeds");

    let last = patent.egs.len() - 1;
    let seeds = patent.patents_of(config.subject_company, last);
    let groups: Vec<Vec<usize>> = (0..config.n_companies)
        .filter(|&c| c != config.subject_company)
        .map(|c| patent.patents_of(c, last))
        .collect();
    let group_names: Vec<&str> = (0..config.n_companies)
        .filter(|&c| c != config.subject_company)
        .map(|c| patent.company_names[c].as_str())
        .collect();

    let ranks = series
        .group_rank_series(&seeds, &groups)
        .expect("solve succeeds");

    println!("# Figure 11: proximity rank (1 = closest) of each company from the SUBJECT company's patents");
    print!("snapshot");
    for name in &group_names {
        print!("\t{name}");
    }
    println!();
    for t in 0..series.len() {
        print!("{t}");
        for r in &ranks {
            print!("\t{}", r[t]);
        }
        println!();
    }
    let rising_idx = group_names
        .iter()
        .position(|&n| n == "RISING")
        .expect("rising company present");
    let first_rank = ranks[rising_idx][0];
    let last_rank = ranks[rising_idx][series.len() - 1];
    println!("# RISING company's rank moved {first_rank} -> {last_rank} (paper: HARRIS climbs steadily over 20 years)");
}
