//! Experiment drivers behind the figure binaries and Criterion benches.
//!
//! Each driver reproduces the measurement protocol of one (or a pair of)
//! figures: it runs the relevant algorithms, expresses times as speed-ups
//! over BF and quality as quality-loss against the Markowitz reference, and
//! returns plain structs that the binaries print.

use clude::{
    evaluate_orderings, BruteForce, CincQc, Clude, CludeQc, ClusterIncremental,
    EvolvingMatrixSequence, Incremental, LudemSolver, MarkowitzReference, SolverConfig,
    TimingBreakdown,
};
use std::time::Duration;

/// One row of the α-sweep (Figures 6, 7 and 8 share it).
#[derive(Debug, Clone)]
pub struct AlphaPoint {
    /// The similarity threshold α.
    pub alpha: f64,
    /// Average quality-loss of CINC's orderings.
    pub cinc_quality: f64,
    /// Average quality-loss of CLUDE's orderings.
    pub clude_quality: f64,
    /// Speed-up of CINC over BF.
    pub cinc_speedup: f64,
    /// Speed-up of CLUDE over BF.
    pub clude_speedup: f64,
    /// Number of clusters CLUDE used.
    pub clude_clusters: usize,
    /// CLUDE's timing breakdown (Figure 8a).
    pub clude_breakdown: TimingBreakdown,
    /// CINC's Bennett (incremental) time, for the Figure 8b comparison.
    pub cinc_bennett: Duration,
}

/// The α-independent measurements of the same experiment.
#[derive(Debug, Clone)]
pub struct SweepBaselines {
    /// Total BF time (the speed-up denominator).
    pub bf_total: Duration,
    /// Average quality-loss of INC (α-independent).
    pub inc_quality: f64,
    /// Per-matrix quality-loss of INC (Figure 5).
    pub inc_quality_series: Vec<f64>,
    /// Speed-up of INC over BF.
    pub inc_speedup: f64,
}

/// Figure 5: the per-matrix quality-loss of INC's single ordering.
pub fn inc_quality_series(
    ems: &EvolvingMatrixSequence,
    reference: &MarkowitzReference,
) -> Vec<f64> {
    let inc = Incremental
        .solve(ems, &SolverConfig::timing_only())
        .expect("INC decomposition succeeds");
    evaluate_orderings(ems, &inc.report.orderings, reference).per_matrix
}

/// Runs BF and INC once (the α-independent parts of Figures 5–8).
pub fn sweep_baselines(ems: &EvolvingMatrixSequence) -> (SweepBaselines, MarkowitzReference) {
    let (bf, reference) = BruteForce
        .solve_with_reference(ems, &SolverConfig::timing_only())
        .expect("BF decomposition succeeds");
    let bf_total = bf.report.timings.total();
    let inc = Incremental
        .solve(ems, &SolverConfig::timing_only())
        .expect("INC decomposition succeeds");
    let inc_eval = evaluate_orderings(ems, &inc.report.orderings, &reference);
    let baselines = SweepBaselines {
        bf_total,
        inc_quality: inc_eval.average(),
        inc_quality_series: inc_eval.per_matrix,
        inc_speedup: inc.report.speedup_over(bf_total),
    };
    (baselines, reference)
}

/// Figures 6–8: sweeps α for CINC and CLUDE.
pub fn alpha_sweep(
    ems: &EvolvingMatrixSequence,
    alphas: &[f64],
    baselines: &SweepBaselines,
    reference: &MarkowitzReference,
) -> Vec<AlphaPoint> {
    let mut points = Vec::with_capacity(alphas.len());
    for &alpha in alphas {
        let cinc = ClusterIncremental::new(alpha)
            .solve(ems, &SolverConfig::timing_only())
            .expect("CINC decomposition succeeds");
        let clude = Clude::new(alpha)
            .solve(ems, &SolverConfig::timing_only())
            .expect("CLUDE decomposition succeeds");
        let cinc_quality = evaluate_orderings(ems, &cinc.report.orderings, reference).average();
        let clude_quality = evaluate_orderings(ems, &clude.report.orderings, reference).average();
        points.push(AlphaPoint {
            alpha,
            cinc_quality,
            clude_quality,
            cinc_speedup: cinc.report.speedup_over(baselines.bf_total),
            clude_speedup: clude.report.speedup_over(baselines.bf_total),
            clude_clusters: clude.report.cluster_count(),
            clude_breakdown: clude.report.timings,
            cinc_bennett: cinc.report.timings.incremental,
        });
    }
    points
}

/// One row of the ΔE sweep (Figure 9).
#[derive(Debug, Clone)]
pub struct DeltaEPoint {
    /// The ΔE parameter of the synthetic generator.
    pub delta_e: usize,
    /// Average quality-losses.
    pub inc_quality: f64,
    /// Average quality-loss of CINC.
    pub cinc_quality: f64,
    /// Average quality-loss of CLUDE.
    pub clude_quality: f64,
    /// Speed-ups over BF.
    pub inc_speedup: f64,
    /// Speed-up of CINC over BF.
    pub cinc_speedup: f64,
    /// Speed-up of CLUDE over BF.
    pub clude_speedup: f64,
}

/// Figure 9: varies the per-snapshot change volume ΔE on the synthetic EMS.
pub fn delta_e_sweep<F>(delta_es: &[usize], alpha: f64, mut make_ems: F) -> Vec<DeltaEPoint>
where
    F: FnMut(usize) -> EvolvingMatrixSequence,
{
    let mut points = Vec::with_capacity(delta_es.len());
    for &delta_e in delta_es {
        let ems = make_ems(delta_e);
        let (baselines, reference) = sweep_baselines(&ems);
        let sweep = alpha_sweep(&ems, &[alpha], &baselines, &reference);
        let point = &sweep[0];
        points.push(DeltaEPoint {
            delta_e,
            inc_quality: baselines.inc_quality,
            cinc_quality: point.cinc_quality,
            clude_quality: point.clude_quality,
            inc_speedup: baselines.inc_speedup,
            cinc_speedup: point.cinc_speedup,
            clude_speedup: point.clude_speedup,
        });
    }
    points
}

/// One row of the β sweep (Figure 10, LUDEM-QC).
#[derive(Debug, Clone)]
pub struct BetaPoint {
    /// The quality requirement β.
    pub beta: f64,
    /// Average quality-loss of CINC-QC (always ≤ β).
    pub cinc_quality: f64,
    /// Average quality-loss of CLUDE-QC (always ≤ β).
    pub clude_quality: f64,
    /// Maximum per-matrix quality-loss of CLUDE-QC (constraint check).
    pub clude_max_quality: f64,
    /// Speed-up of CINC-QC over BF.
    pub cinc_speedup: f64,
    /// Speed-up of CLUDE-QC over BF.
    pub clude_speedup: f64,
    /// Speed-up of plain INC over BF (shown as the flat reference line).
    pub inc_speedup: f64,
}

/// Figure 10: sweeps the quality requirement β on a symmetric EMS.
pub fn beta_sweep(ems: &EvolvingMatrixSequence, betas: &[f64]) -> Vec<BetaPoint> {
    let (baselines, reference) = sweep_baselines(ems);
    let mut points = Vec::with_capacity(betas.len());
    for &beta in betas {
        let cinc = CincQc::new(beta)
            .solve(ems, &SolverConfig::timing_only())
            .expect("CINC-QC decomposition succeeds");
        let clude = CludeQc::new(beta)
            .solve(ems, &SolverConfig::timing_only())
            .expect("CLUDE-QC decomposition succeeds");
        let cinc_eval = evaluate_orderings(ems, &cinc.report.orderings, &reference);
        let clude_eval = evaluate_orderings(ems, &clude.report.orderings, &reference);
        points.push(BetaPoint {
            beta,
            cinc_quality: cinc_eval.average(),
            clude_quality: clude_eval.average(),
            clude_max_quality: clude_eval.max(),
            cinc_speedup: cinc.report.speedup_over(baselines.bf_total),
            clude_speedup: clude.report.speedup_over(baselines.bf_total),
            inc_speedup: baselines.inc_speedup,
        });
    }
    points
}

/// Pretty-prints a duration in seconds with three decimals.
pub fn secs(d: Duration) -> f64 {
    d.as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{BenchScale, Datasets};

    #[test]
    fn alpha_sweep_shapes_match_the_paper() {
        let data = Datasets::new(BenchScale::Tiny, 3);
        let ems = data.wiki_ems();
        let (baselines, reference) = sweep_baselines(&ems);
        let points = alpha_sweep(&ems, &[0.90, 0.98], &baselines, &reference);
        assert_eq!(points.len(), 2);
        for p in &points {
            // Cluster-based orderings beat (or match) INC's single ordering.
            assert!(p.clude_quality <= baselines.inc_quality + 1e-9);
            assert!(p.cinc_quality <= baselines.inc_quality + 1e-9);
            // CLUDE's union-matrix ordering tracks CINC's closely; at the
            // tiny scale either can win a cluster by a hair, so allow a
            // small tolerance instead of a strict ordering.
            assert!(p.clude_quality <= p.cinc_quality + 0.01);
            assert!(p.clude_speedup > 0.0 && p.cinc_speedup > 0.0);
        }
        // Tighter alpha => quality no worse.
        assert!(points[1].clude_quality <= points[0].clude_quality + 1e-9);
        // INC quality series is non-decreasing in the large (first vs last).
        let series = &baselines.inc_quality_series;
        assert!(series.last().unwrap() >= series.first().unwrap());
    }

    #[test]
    fn beta_sweep_respects_the_constraint() {
        let data = Datasets::new(BenchScale::Tiny, 5);
        let ems = data.dblp_symmetric_ems();
        let points = beta_sweep(&ems, &[0.0, 0.2]);
        for p in &points {
            assert!(p.clude_max_quality <= p.beta + 1e-9);
            assert!(p.clude_quality <= p.cinc_quality + 1e-9);
        }
    }

    #[test]
    fn delta_e_sweep_runs_end_to_end() {
        let data = Datasets::new(BenchScale::Tiny, 11);
        let points = delta_e_sweep(&[300, 700], 0.95, |de| data.synthetic_ems(de));
        assert_eq!(points.len(), 2);
        for p in &points {
            // At the tiny scale the drift is so small that INC's ordering is
            // already near-optimal; allow a small tolerance instead of a
            // strict ordering.
            assert!(p.clude_quality <= p.inc_quality + 0.05);
            assert!(p.clude_quality >= 0.0 && p.cinc_quality >= 0.0);
            assert!(p.clude_speedup > 0.0);
        }
    }
}
