//! Bench-scale dataset configurations.
//!
//! The paper's datasets have 20 000–98 000 nodes and 500–1000 snapshots; the
//! harness defaults to a laptop-scale rendition of each (same density, drift
//! and growth *shape*, smaller node count and snapshot count) so the whole
//! reproduction runs in minutes.  `BenchScale::Tiny` is used by the Criterion
//! benches and unit tests; `BenchScale::Default` by the figure binaries;
//! `BenchScale::Large` approaches the paper's scale for users with time to
//! spare.

use clude::EvolvingMatrixSequence;
use clude_graph::generators::{
    dblp_like, patent_like, synthetic, wiki_like, DblpLikeConfig, PatentEgs, PatentLikeConfig,
    SyntheticConfig, WikiLikeConfig,
};
use clude_graph::{EvolvingGraphSequence, MatrixKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The damping factor used by all random-walk matrices in the harness.
pub const DAMPING: f64 = 0.85;

/// How large the generated datasets should be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchScale {
    /// Very small: Criterion benches and smoke tests (seconds).
    Tiny,
    /// Default figure-binary scale (a few minutes for the full suite).
    Default,
    /// Closer to the paper's scale (tens of minutes to hours).
    Large,
}

impl BenchScale {
    /// Parses `tiny` / `default` / `large` (used by the binaries' CLI).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "tiny" => Some(BenchScale::Tiny),
            "default" => Some(BenchScale::Default),
            "large" => Some(BenchScale::Large),
            _ => None,
        }
    }
}

/// Factory for the bench datasets at a chosen scale.
#[derive(Debug, Clone, Copy)]
pub struct Datasets {
    scale: BenchScale,
    seed: u64,
}

impl Datasets {
    /// Creates a factory with the given scale and RNG seed.
    pub fn new(scale: BenchScale, seed: u64) -> Self {
        Datasets { scale, seed }
    }

    /// The scale of this factory.
    pub fn scale(&self) -> BenchScale {
        self.scale
    }

    /// The Wiki-like configuration at this scale.
    pub fn wiki_config(&self) -> WikiLikeConfig {
        match self.scale {
            BenchScale::Tiny => WikiLikeConfig {
                n_pages: 250,
                initial_links: 750,
                final_links: 1_000,
                n_snapshots: 24,
                removals_per_snapshot: 2,
                burst_probability: 0.08,
                burst_size: 8,
            },
            BenchScale::Default => WikiLikeConfig {
                n_pages: 900,
                initial_links: 2_700,
                final_links: 4_300,
                n_snapshots: 150,
                removals_per_snapshot: 2,
                burst_probability: 0.04,
                burst_size: 12,
            },
            BenchScale::Large => WikiLikeConfig::paper_scale(),
        }
    }

    /// The DBLP-like configuration at this scale.
    pub fn dblp_config(&self) -> DblpLikeConfig {
        match self.scale {
            BenchScale::Tiny => DblpLikeConfig {
                n_authors: 250,
                initial_papers: 300,
                papers_per_snapshot: 3,
                max_authors_per_paper: 4,
                n_snapshots: 24,
            },
            BenchScale::Default => DblpLikeConfig {
                n_authors: 900,
                initial_papers: 1_100,
                papers_per_snapshot: 3,
                max_authors_per_paper: 4,
                n_snapshots: 150,
            },
            BenchScale::Large => DblpLikeConfig::paper_scale(),
        }
    }

    /// The synthetic configuration at this scale with the given `ΔE`.
    pub fn synthetic_config(&self, delta_e: usize) -> SyntheticConfig {
        match self.scale {
            BenchScale::Tiny => SyntheticConfig {
                n_vertices: 250,
                edge_pool_size: 2_250,
                initial_degree: 5,
                add_remove_ratio: 4,
                delta_e: (delta_e / 60).max(2),
                n_snapshots: 20,
            },
            BenchScale::Default => SyntheticConfig {
                n_vertices: 900,
                edge_pool_size: 8_100,
                initial_degree: 5,
                add_remove_ratio: 4,
                delta_e: (delta_e / 50).max(3),
                n_snapshots: 100,
            },
            BenchScale::Large => SyntheticConfig {
                delta_e,
                ..SyntheticConfig::paper_scale()
            },
        }
    }

    /// The patent-citation configuration at this scale.
    pub fn patent_config(&self) -> PatentLikeConfig {
        match self.scale {
            BenchScale::Tiny => PatentLikeConfig {
                n_companies: 6,
                initial_patents: 150,
                final_patents: 450,
                n_snapshots: 10,
                citations_per_patent: 4,
                subject_company: 0,
                rising_company: 1,
            },
            BenchScale::Default => PatentLikeConfig {
                n_companies: 8,
                initial_patents: 400,
                final_patents: 1_400,
                n_snapshots: 21,
                citations_per_patent: 4,
                subject_company: 0,
                rising_company: 1,
            },
            BenchScale::Large => PatentLikeConfig {
                n_companies: 10,
                initial_patents: 4_000,
                final_patents: 16_000,
                n_snapshots: 25,
                citations_per_patent: 5,
                subject_company: 0,
                rising_company: 1,
            },
        }
    }

    /// The Wiki-like EGS.
    pub fn wiki_egs(&self) -> EvolvingGraphSequence {
        let mut rng = StdRng::seed_from_u64(self.seed);
        wiki_like::generate(&self.wiki_config(), &mut rng)
    }

    /// The Wiki-like EMS (`A = I − dW`).
    pub fn wiki_ems(&self) -> EvolvingMatrixSequence {
        EvolvingMatrixSequence::from_egs(
            &self.wiki_egs(),
            MatrixKind::RandomWalk { damping: DAMPING },
        )
    }

    /// The DBLP-like EGS (symmetric co-authorship).
    pub fn dblp_egs(&self) -> EvolvingGraphSequence {
        let mut rng = StdRng::seed_from_u64(self.seed.wrapping_add(1));
        dblp_like::generate(&self.dblp_config(), &mut rng)
    }

    /// The DBLP-like EMS with the symmetric composition (for LUDEM-QC).
    pub fn dblp_symmetric_ems(&self) -> EvolvingMatrixSequence {
        EvolvingMatrixSequence::from_egs(
            &self.dblp_egs(),
            MatrixKind::SymmetricLaplacian { shift: 1.0 },
        )
    }

    /// The DBLP-like EMS with the random-walk composition (for the quality /
    /// speed figures).
    pub fn dblp_random_walk_ems(&self) -> EvolvingMatrixSequence {
        EvolvingMatrixSequence::from_egs(
            &self.dblp_egs(),
            MatrixKind::RandomWalk { damping: DAMPING },
        )
    }

    /// A synthetic EMS for the given `ΔE`.
    pub fn synthetic_ems(&self, delta_e: usize) -> EvolvingMatrixSequence {
        let mut rng = StdRng::seed_from_u64(self.seed.wrapping_add(2));
        let egs = synthetic::generate(&self.synthetic_config(delta_e), &mut rng);
        EvolvingMatrixSequence::from_egs(&egs, MatrixKind::RandomWalk { damping: DAMPING })
    }

    /// The patent-citation EGS with company labels.
    pub fn patent_egs(&self) -> PatentEgs {
        let mut rng = StdRng::seed_from_u64(self.seed.wrapping_add(3));
        patent_like::generate(&self.patent_config(), &mut rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(BenchScale::parse("tiny"), Some(BenchScale::Tiny));
        assert_eq!(BenchScale::parse("DEFAULT"), Some(BenchScale::Default));
        assert_eq!(BenchScale::parse("large"), Some(BenchScale::Large));
        assert_eq!(BenchScale::parse("paper"), None);
    }

    #[test]
    fn tiny_datasets_are_well_formed() {
        let d = Datasets::new(BenchScale::Tiny, 7);
        let wiki = d.wiki_ems();
        assert_eq!(wiki.order(), 250);
        assert!(wiki.average_successive_similarity() > 0.9);
        let dblp = d.dblp_symmetric_ems();
        assert!(dblp.is_symmetric());
        let synth = d.synthetic_ems(500);
        assert_eq!(synth.len(), 20);
        let patent = d.patent_egs();
        assert_eq!(patent.egs.len(), 10);
        assert_eq!(d.scale(), BenchScale::Tiny);
    }
}
