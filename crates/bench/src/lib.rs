//! # clude-bench
//!
//! Benchmark harness reproducing the evaluation of the CLUDE paper (EDBT
//! 2014).  Every figure of §6/§7 has:
//!
//! * a binary in `src/bin/` that prints the figure's series (run with
//!   `cargo run -p clude-bench --release --bin figXX_...`), and
//! * a Criterion bench in `benches/` exercising the same code path at a
//!   reduced scale.
//!
//! The shared machinery lives here: bench-scale dataset configurations
//! ([`datasets`]) and the experiment drivers ([`experiments`]) that produce
//! the numbers the binaries print and `EXPERIMENTS.md` records.

#![forbid(unsafe_code)]

pub mod datasets;
pub mod experiments;

pub use datasets::{BenchScale, Datasets};
pub use experiments::{
    alpha_sweep, beta_sweep, delta_e_sweep, inc_quality_series, AlphaPoint, BetaPoint, DeltaEPoint,
};
