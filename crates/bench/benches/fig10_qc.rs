//! Criterion bench behind Figure 10: the LUDEM-QC solvers on the symmetric
//! DBLP-like sequence at a tight and a loose quality requirement β.

use clude::{CincQc, CludeQc, LudemSolver, SolverConfig};
use clude_bench::{BenchScale, Datasets};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_qc(c: &mut Criterion) {
    let data = Datasets::new(BenchScale::Tiny, 42);
    let ems = data.dblp_symmetric_ems();
    let config = SolverConfig::timing_only();
    let mut group = c.benchmark_group("fig10_qc");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(4));
    for beta in [0.05f64, 0.3] {
        group.bench_with_input(BenchmarkId::new("cinc_qc_dblp", beta), &beta, |b, &beta| {
            b.iter(|| CincQc::new(beta).solve(&ems, &config).unwrap())
        });
        group.bench_with_input(
            BenchmarkId::new("clude_qc_dblp", beta),
            &beta,
            |b, &beta| b.iter(|| CludeQc::new(beta).solve(&ems, &config).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_qc);
criterion_main!(benches);
