//! Criterion bench behind Figure 9: the algorithms on the synthetic EMS at
//! the two ends of the ΔE range (the per-snapshot change volume).

use clude::{Clude, Incremental, LudemSolver, SolverConfig};
use clude_bench::{BenchScale, Datasets};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_delta_e(c: &mut Criterion) {
    let data = Datasets::new(BenchScale::Tiny, 42);
    let config = SolverConfig::timing_only();
    let mut group = c.benchmark_group("fig09_delta_e");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(4));
    for delta_e in [300usize, 700] {
        let ems = data.synthetic_ems(delta_e);
        group.bench_with_input(
            BenchmarkId::new("inc_synthetic", delta_e),
            &ems,
            |b, ems| b.iter(|| Incremental.solve(ems, &config).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("clude_synthetic", delta_e),
            &ems,
            |b, ems| b.iter(|| Clude::new(0.95).solve(ems, &config).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_delta_e);
criterion_main!(benches);
