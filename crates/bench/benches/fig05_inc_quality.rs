//! Criterion bench behind Figure 5: the cost of running INC (whose ordering
//! quality the figure plots) and of evaluating its quality-loss series on the
//! tiny Wiki-like sequence.

use clude::{EvolvingMatrixSequence, Incremental, LudemSolver, MarkowitzReference, SolverConfig};
use clude_bench::{inc_quality_series, BenchScale, Datasets};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench_fig05(c: &mut Criterion) {
    let data = Datasets::new(BenchScale::Tiny, 42);
    let ems: EvolvingMatrixSequence = data.wiki_ems();
    let reference = MarkowitzReference::compute(&ems);

    let mut group = c.benchmark_group("fig05_inc_quality");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    group.bench_function("inc_decompose_wiki_tiny", |b| {
        b.iter(|| {
            Incremental
                .solve(&ems, &SolverConfig::timing_only())
                .unwrap()
        })
    });
    group.bench_function("inc_quality_series_wiki_tiny", |b| {
        b.iter(|| inc_quality_series(&ems, &reference))
    });
    group.finish();
}

criterion_group!(benches, bench_fig05);
criterion_main!(benches);
