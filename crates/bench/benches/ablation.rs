//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * ordering source — the cluster's first matrix (CINC) versus the union
//!   matrix `A_∪` (CLUDE) at the same α;
//! * storage — dynamic adjacency lists with insertion-on-demand (CINC)
//!   versus the static USSP structure (CLUDE);
//! * clustering — no clustering at all (INC) versus α-clustering.
//!
//! Comparing `cinc/0.95` with `clude/0.95` isolates the combined effect of
//! the union ordering + static structure; comparing either with `inc`
//! isolates the effect of clustering.

use clude::{Clude, ClusterIncremental, Incremental, LudemSolver, SolverConfig};
use clude_bench::{BenchScale, Datasets};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_ablation(c: &mut Criterion) {
    let data = Datasets::new(BenchScale::Tiny, 42);
    let ems = data.wiki_ems();
    let config = SolverConfig::timing_only();
    let mut group = c.benchmark_group("ablation");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(4));
    group.bench_function("no_clustering_inc", |b| {
        b.iter(|| Incremental.solve(&ems, &config).unwrap())
    });
    {
        let alpha = 0.95f64;
        group.bench_with_input(
            BenchmarkId::new("clustering_first_ordering_dynamic_cinc", alpha),
            &alpha,
            |b, &a| b.iter(|| ClusterIncremental::new(a).solve(&ems, &config).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("clustering_union_ordering_static_clude", alpha),
            &alpha,
            |b, &a| b.iter(|| Clude::new(a).solve(&ems, &config).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
