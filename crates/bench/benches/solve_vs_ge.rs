//! Criterion bench behind the §1 and §8 cost claims: answering one query
//! from the LU factors versus one dense Gaussian elimination, one power
//! iteration run and one Monte-Carlo run.

use clude::{BruteForce, EvolvingMatrixSequence, LudemSolver, SolverConfig};
use clude_bench::{BenchScale, Datasets};
use clude_graph::{EvolvingGraphSequence, MatrixKind};
use clude_measures::{rwr_monte_carlo, rwr_power_iteration};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn bench_solve_vs_ge(c: &mut Criterion) {
    let data = Datasets::new(BenchScale::Tiny, 42);
    let damping = clude_bench::datasets::DAMPING;
    let egs = data.wiki_egs();
    let graph = egs.snapshot(egs.len() - 1);
    let ems = EvolvingMatrixSequence::from_egs(
        &EvolvingGraphSequence::from_base(graph.clone()),
        MatrixKind::RandomWalk { damping },
    );
    let n = ems.order();
    let solution = BruteForce.solve(&ems, &SolverConfig::default()).unwrap();
    let dense = ems.matrix(0).to_dense();
    let mut b = vec![0.0; n];
    b[0] = 1.0 - damping;

    let mut group = c.benchmark_group("solve_vs_ge");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    group.bench_function("lu_query", |bench| {
        bench.iter(|| solution.solve(0, &b).unwrap())
    });
    group.bench_function("gaussian_elimination_per_query", |bench| {
        bench.iter(|| dense.solve_gaussian(&b).unwrap())
    });
    group.bench_function("power_iteration_per_query", |bench| {
        bench.iter(|| rwr_power_iteration(&graph, 0, damping, 1000, 1e-12))
    });
    group.bench_function("monte_carlo_per_query", |bench| {
        let mut rng = StdRng::seed_from_u64(7);
        bench.iter(|| rwr_monte_carlo(&graph, 0, damping, 500, 80, &mut rng))
    });
    group.finish();
}

criterion_group!(benches, bench_solve_vs_ge);
criterion_main!(benches);
