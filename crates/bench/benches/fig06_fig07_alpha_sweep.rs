//! Criterion bench behind Figures 6 and 7: BF, INC, CINC and CLUDE on the
//! tiny Wiki-like sequence (the speed-ups of Figure 7 are the ratios of these
//! timings; the quality side of Figure 6 is covered by the figure binary).

use clude::{BruteForce, Clude, ClusterIncremental, Incremental, LudemSolver, SolverConfig};
use clude_bench::{BenchScale, Datasets};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_algorithms(c: &mut Criterion) {
    let data = Datasets::new(BenchScale::Tiny, 42);
    let ems = data.wiki_ems();
    let config = SolverConfig::timing_only();

    let mut group = c.benchmark_group("fig07_speedup_components");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(5));
    group.bench_function("bf_wiki_tiny", |b| {
        b.iter(|| BruteForce.solve(&ems, &config).unwrap())
    });
    group.bench_function("inc_wiki_tiny", |b| {
        b.iter(|| Incremental.solve(&ems, &config).unwrap())
    });
    for alpha in [0.92f64, 0.95, 0.98] {
        group.bench_with_input(
            BenchmarkId::new("cinc_wiki_tiny", alpha),
            &alpha,
            |b, &a| b.iter(|| ClusterIncremental::new(a).solve(&ems, &config).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("clude_wiki_tiny", alpha),
            &alpha,
            |b, &a| b.iter(|| Clude::new(a).solve(&ems, &config).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);
