//! Criterion bench behind Figure 8: the components of CLUDE's running time —
//! clustering, Markowitz ordering of `A_∪`, symbolic decomposition / structure
//! building, one full numeric LU, and a Bennett update step — measured
//! separately on the tiny Wiki-like sequence.

use clude::cluster::{alpha_clustering, cluster_union_pattern, Cluster};
use clude::EvolvingMatrixSequence;
use clude_bench::{BenchScale, Datasets};
use clude_lu::{
    apply_delta, markowitz_ordering, reorder_pattern, symbolic_decomposition, LuFactors,
    LuStructure,
};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench_breakdown(c: &mut Criterion) {
    let data = Datasets::new(BenchScale::Tiny, 42);
    let ems: EvolvingMatrixSequence = data.wiki_ems();
    let whole = Cluster {
        start: 0,
        end: ems.len(),
    };
    let union = cluster_union_pattern(&ems, &whole);
    let ordering = markowitz_ordering(&union).ordering;
    let ussp = symbolic_decomposition(&reorder_pattern(&union, &ordering)).pattern;
    let structure = LuStructure::from_closed_pattern_unchecked(&ussp).into_shared();
    let a0 = ems.matrix(0).reorder(&ordering).unwrap();
    let a1 = ems.matrix(1).reorder(&ordering).unwrap();
    let delta = a0.delta_to(&a1, 0.0).unwrap();
    let base_factors = LuFactors::factorize(structure.clone(), &a0).unwrap();

    let mut group = c.benchmark_group("fig08_clude_phases");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    group.bench_function("clustering_alpha_0.95", |b| {
        b.iter(|| alpha_clustering(&ems, 0.95))
    });
    group.bench_function("markowitz_of_union", |b| {
        b.iter(|| markowitz_ordering(&union))
    });
    group.bench_function("symbolic_ussp_and_structure", |b| {
        b.iter(|| {
            let p = symbolic_decomposition(&reorder_pattern(&union, &ordering)).pattern;
            LuStructure::from_closed_pattern_unchecked(&p)
        })
    });
    group.bench_function("full_numeric_lu", |b| {
        b.iter(|| LuFactors::factorize(structure.clone(), &a0).unwrap())
    });
    group.bench_function("bennett_one_snapshot_step", |b| {
        b.iter(|| {
            let mut f = base_factors.clone();
            apply_delta(&mut f, &delta).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_breakdown);
criterion_main!(benches);
