//! Micro-benchmarks of the LU engine kernels: symbolic decomposition,
//! Markowitz ordering, numeric factorization, triangular solve and a Bennett
//! rank-one update, on one Wiki-like snapshot matrix.

use clude_bench::{BenchScale, Datasets};
use clude_lu::{
    factorize_fresh, markowitz_ordering, rank_one_update, rank_one_update_with,
    symbolic_decomposition, BennettWorkspace, LuFactors, LuStructure,
};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench_kernels(c: &mut Criterion) {
    let data = Datasets::new(BenchScale::Tiny, 42);
    let ems = data.wiki_ems();
    let a = ems.matrix(ems.len() - 1).clone();
    let pattern = a.pattern();
    let ordering = markowitz_ordering(&pattern).ordering;
    let reordered = a.reorder(&ordering).unwrap();
    let structure = LuStructure::from_pattern(&reordered.pattern())
        .unwrap()
        .into_shared();
    let factors = LuFactors::factorize(structure.clone(), &reordered).unwrap();
    let b = vec![1.0; a.n_rows()];

    let mut group = c.benchmark_group("lu_kernels");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    group.bench_function("symbolic_decomposition", |bench| {
        bench.iter(|| symbolic_decomposition(&pattern))
    });
    group.bench_function("markowitz_ordering", |bench| {
        bench.iter(|| markowitz_ordering(&pattern))
    });
    group.bench_function("numeric_factorization_natural_order", |bench| {
        bench.iter(|| factorize_fresh(&a).unwrap())
    });
    group.bench_function("numeric_factorization_markowitz_order", |bench| {
        bench.iter(|| LuFactors::factorize(structure.clone(), &reordered).unwrap())
    });
    group.bench_function("triangular_solve", |bench| {
        bench.iter(|| factors.solve(&b).unwrap())
    });
    group.bench_function("bennett_rank_one_update", |bench| {
        bench.iter(|| {
            let mut f = factors.clone();
            // Perturb an existing entry so no fill outside the structure is
            // required.
            let (cols, vals) = reordered.row(0);
            let (j, v) = (cols[0], vals[0]);
            rank_one_update(&mut f, &[(0, 0.01 * v.abs().max(0.1))], &[(j, 1.0)], 1.0).unwrap()
        })
    });
    group.bench_function("bennett_rank_one_update_reused_workspace", |bench| {
        // The steady-state streaming path: one workspace across all updates,
        // so the sweep itself performs no heap allocation.
        let mut workspace = BennettWorkspace::with_order(factors.n());
        bench.iter(|| {
            let mut f = factors.clone();
            let (cols, vals) = reordered.row(0);
            let (j, v) = (cols[0], vals[0]);
            rank_one_update_with(
                &mut f,
                &mut workspace,
                &[(0, 0.01 * v.abs().max(0.1))],
                &[(j, 1.0)],
                1.0,
            )
            .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
