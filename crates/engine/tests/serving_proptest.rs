//! Property-based tests for the serving tier: multi-RHS panel solves must be
//! bit-identical to sequential solves under every coupling solver, and
//! bounded-staleness serving must never exceed its configured lag budget.

use clude_engine::{
    CouplingConfig, CouplingSolver, EngineCounters, FactorStore, QueryService, RefreshPolicy,
    ShardedFactorStore, StalenessBudget,
};
use clude_graph::{DiGraph, GraphDelta, MatrixKind, NodePartition};
use clude_measures::MeasureQuery;
use clude_telemetry::TelemetryRegistry;
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Duration;

const N: usize = 14;
const SHARDS: usize = 3;

/// A connected random digraph: a Hamiltonian ring plus random extra edges
/// (deduplicated, no self-loops), so every node has an out-edge and the
/// random-walk matrix is well-behaved.
fn graph_edges() -> impl Strategy<Value = Vec<(usize, usize)>> {
    proptest::collection::vec((0..N, 0..N), 0..3 * N).prop_map(|extra| {
        let mut edges: BTreeSet<(usize, usize)> = (0..N).map(|i| (i, (i + 1) % N)).collect();
        edges.extend(extra.into_iter().filter(|(u, v)| u != v));
        edges.into_iter().collect()
    })
}

/// All four measure kinds, driven by a `(kind, a, b)` triple: RWR is drawn
/// most often (as a serving workload would), PPR seed sets are the sorted
/// dedup of `{a, b}`.
fn query_strategy() -> impl Strategy<Value = MeasureQuery> {
    (0usize..6, 0..N, 0..N).prop_map(|(kind, a, b)| match kind {
        0..=2 => MeasureQuery::Rwr {
            seed: a,
            damping: 0.85,
        },
        3 => MeasureQuery::PageRank { damping: 0.85 },
        4 => MeasureQuery::PprSeedSet {
            seeds: if a == b {
                vec![a]
            } else {
                vec![a.min(b), a.max(b)]
            },
            damping: 0.85,
        },
        _ => MeasureQuery::HittingTime {
            target: a,
            damping: 0.85,
        },
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// `query_batch` (one panel solve per snapshot) returns, per query, the
    /// exact bit pattern of the sequential `query` path — for every
    /// coupling-solver strategy, over randomly partitioned random graphs.
    #[test]
    fn panel_batches_are_bit_identical_to_sequential_solves(
        edges in graph_edges(),
        mut assignments in proptest::collection::vec(0usize..SHARDS, N),
        queries in proptest::collection::vec(query_strategy(), 1..7),
    ) {
        // Pin the first SHARDS nodes to distinct shards so none is empty.
        for (s, a) in assignments.iter_mut().take(SHARDS).enumerate() {
            *a = s;
        }
        let graph = DiGraph::from_edges(N, edges);
        let partition = NodePartition::from_assignments(assignments);
        for solver in [
            CouplingSolver::Jacobi,
            CouplingSolver::GaussSeidel,
            CouplingSolver::woodbury(),
        ] {
            let store = ShardedFactorStore::new(
                graph.clone(),
                MatrixKind::random_walk_default(),
                RefreshPolicy::default(),
                partition.clone(),
            )
            .unwrap()
            .with_coupling_config(CouplingConfig {
                solver,
                ..CouplingConfig::default()
            })
            .unwrap();
            let snapshot = store.snapshot();
            let refs: Vec<&MeasureQuery> = queries.iter().collect();
            match snapshot.query_batch(&refs) {
                Ok(batched) => {
                    prop_assert_eq!(batched.len(), queries.len());
                    for (query, panel) in queries.iter().zip(&batched) {
                        let sequential = snapshot.query(query).unwrap();
                        prop_assert_eq!(sequential.len(), panel.len());
                        for (i, (a, b)) in sequential.iter().zip(panel.iter()).enumerate() {
                            prop_assert_eq!(
                                a.to_bits(),
                                b.to_bits(),
                                "solver {:?}, query {:?}, row {}: {} vs {}",
                                solver, query, i, a, b
                            );
                        }
                    }
                }
                Err(_) => {
                    // A panel-wide convergence failure must mirror a failure
                    // of at least one sequential solve — never mask success.
                    prop_assert!(
                        queries.iter().any(|q| snapshot.query(q).is_err()),
                        "batch failed but every sequential solve succeeded ({solver:?})"
                    );
                }
            }
        }
    }

    /// A cached result is served for a newer snapshot exactly when its lag
    /// is within the configured staleness budget; beyond it, the service
    /// solves afresh.
    #[test]
    fn stale_serving_respects_the_budget(max_lag in 0u64..4, lag in 1u64..6) {
        let mut g = DiGraph::from_edges(8, (0..8).map(|i| (i, (i + 1) % 8)).collect::<Vec<_>>());
        g.add_edge(2, 0);
        let mut store = FactorStore::new(
            g,
            MatrixKind::random_walk_default(),
            RefreshPolicy::default(),
        )
        .unwrap();
        let counters = Arc::new(EngineCounters::default());
        let service = QueryService::with_serving(
            2,
            16,
            Arc::clone(&counters),
            Arc::new(TelemetryRegistry::default()),
            StalenessBudget { max_lag },
            Duration::ZERO,
        );
        let q = MeasureQuery::Rwr {
            seed: 1,
            damping: 0.85,
        };
        let snap0 = Arc::new(store.snapshot());
        let at0 = service.query(&snap0, &q).unwrap();
        for i in 0..lag {
            store
                .advance(&GraphDelta {
                    added: vec![(i as usize, (i as usize + 3) % 8)],
                    removed: vec![],
                })
                .unwrap();
        }
        let lagged = Arc::new(store.snapshot());
        prop_assert_eq!(lagged.id(), lag);
        let served = service.query(&lagged, &q).unwrap();
        if lag <= max_lag {
            prop_assert!(
                Arc::ptr_eq(&at0, &served),
                "lag {} within budget {} must serve the cached result",
                lag,
                max_lag
            );
            prop_assert_eq!(counters.snapshot().cache_misses, 1);
        } else {
            prop_assert!(
                !Arc::ptr_eq(&at0, &served),
                "lag {} beyond budget {} must solve afresh",
                lag,
                max_lag
            );
            prop_assert_eq!(counters.snapshot().cache_misses, 2);
        }
    }
}
