//! End-to-end telemetry: replay a stream through a sharded engine and check
//! that the spans, gauges, journal events and the Prometheus exposition all
//! reflect what the engine actually did.

use clude_engine::{BatchPolicy, CludeEngine, CouplingConfig, CouplingSolver, EngineConfig};
use clude_graph::{DiGraph, NodePartition};
use clude_measures::MeasureQuery;
use clude_telemetry::{validate_prometheus, EventKind, Stage, TelemetryConfig};

fn ring_graph(n: usize) -> DiGraph {
    let mut g = DiGraph::from_edges(n, (0..n).map(|i| (i, (i + 1) % n)).collect::<Vec<_>>());
    g.add_edge(2, 0);
    g
}

/// An interleaved partition of a ring is maximally coupled, so a tight
/// repartition budget trips on the first applied batch and the Woodbury
/// plan rebuilds on every coupling change.
fn instrumented_engine(telemetry: TelemetryConfig) -> CludeEngine {
    let assignments = (0..12).map(|u| u % 3).collect::<Vec<_>>();
    CludeEngine::with_partition(
        ring_graph(12),
        EngineConfig {
            batch: BatchPolicy::by_count(1),
            ring_capacity: 3,
            coupling: CouplingConfig {
                solver: CouplingSolver::woodbury(),
                repartition_budget: Some(4),
                ..CouplingConfig::default()
            },
            // This replay's batches are value-only (cross-edge rescales), so
            // with the refactor fast path on they would never Bennett-sweep;
            // force the sweep path — the refactor stage has its own tests.
            refactor: false,
            telemetry,
            ..EngineConfig::default()
        },
        NodePartition::from_assignments(assignments),
    )
    .unwrap()
}

fn replay(engine: &CludeEngine) {
    for i in 0..5 {
        engine.insert_edge(i, (i + 5) % 12).unwrap();
    }
    let q = MeasureQuery::PageRank { damping: 0.85 };
    for _ in 0..3 {
        engine.query(&q).unwrap();
    }
    engine
        .query(&MeasureQuery::Rwr {
            seed: 1,
            damping: 0.85,
        })
        .unwrap();
}

#[test]
fn replay_populates_spans_journal_and_exposition() {
    let engine = instrumented_engine(TelemetryConfig::default());
    replay(&engine);

    let telemetry = engine.telemetry();
    // Every instrumented stage of this replay saw work: batches were applied,
    // shards swept and re-frozen, coupled queries solved through Woodbury.
    for stage in [
        Stage::IngestMerge,
        Stage::IngestApply,
        Stage::ShardSweep,
        Stage::SnapshotFreeze,
        Stage::CouplingWoodburyApply,
        Stage::QuerySolve,
        Stage::QueryCacheHit,
    ] {
        assert!(
            telemetry.stage_histogram(stage).count() > 0,
            "stage {} recorded nothing",
            stage.name()
        );
    }

    // The journal saw the repartition (tight budget) and the plan rebuilds.
    let journal = telemetry.journal();
    assert!(journal.count_of(EventKind::Repartitioned) >= 1);
    assert!(journal.count_of(EventKind::WoodburyPlanRebuilt) >= 1);
    // The repartition rebuilt every shard, and each rebuild ran the
    // Markowitz-vs-AMD ordering contest.
    assert!(journal.count_of(EventKind::OrderingSelected) >= 1);
    assert!(journal
        .entries()
        .iter()
        .any(|e| e.event.kind() == EventKind::Repartitioned));

    // The exposition parses and carries the key series with non-zero counts.
    let dump = engine.render_prometheus();
    validate_prometheus(&dump).expect("exposition parses");
    for needle in [
        "clude_shard_sweep_duration_seconds_count",
        "clude_query_solve_duration_seconds_count",
        "clude_journal_events_total{event=\"repartitioned\"}",
    ] {
        assert!(dump.contains(needle), "missing {needle}");
    }
    assert!(!dump.contains("clude_shard_sweep_duration_seconds_count 0"));
    assert!(!dump.contains("clude_query_solve_duration_seconds_count 0"));

    // Gauges were refreshed by render_prometheus' stats pass.
    assert!(dump
        .lines()
        .any(|l| l.starts_with("clude_ring_depth ") && !l.ends_with(" 0")));

    // The stats record and its Display carry the telemetry section.
    let stats = engine.stats();
    assert!(stats.telemetry_enabled);
    assert!(stats.spans_recorded > 0);
    assert!(stats.journal_events >= 2);
    let text = stats.to_string();
    assert!(text.contains("telemetry |"));
    assert!(text.contains("coupling |"));

    // JSON snapshot is balanced and carries the journal payloads.
    let json = engine.telemetry_json();
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    assert!(json.contains("\"kind\": \"repartitioned\""));
}

#[test]
fn disabled_telemetry_records_nothing() {
    let engine = instrumented_engine(TelemetryConfig::disabled());
    replay(&engine);

    let telemetry = engine.telemetry();
    assert!(!telemetry.enabled());
    assert_eq!(telemetry.spans_recorded(), 0);
    assert_eq!(telemetry.journal().recorded(), 0);
    for counter in clude_telemetry::Counter::ALL {
        assert_eq!(telemetry.counter(counter), 0, "{} moved", counter.name());
    }

    // The engine's own counters still work — only telemetry is off.
    let stats = engine.stats();
    assert!(!stats.telemetry_enabled);
    assert!(stats.batches_applied >= 5);
    assert!(stats.to_string().contains("telemetry | off"));

    // The exposition still parses; every series is just zero.
    validate_prometheus(&engine.render_prometheus()).expect("exposition parses");
}
