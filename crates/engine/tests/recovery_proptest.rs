//! Crash-injection property tests for the durability layer.
//!
//! Each case streams a random (always-valid) edge-op sequence into two
//! engines with identical batch policies: an in-memory *twin* and a durable
//! engine over a [`FailpointFs`].  The failpoint kills the durable engine at
//! a random write — mid-WAL-append, mid-checkpoint, or not at all — and the
//! spool is then reopened through [`CludeEngine::open_durable`] on a
//! disarmed view of the same filesystem.  The recovered engine must agree
//! with the uncrashed twin to within `1e-9` on every measure query at every
//! snapshot id both engines retain.  A third family corrupts the WAL tail
//! *after* a clean run (truncation and bit flips) and additionally asserts
//! that the damage is detected, counted, and journalled — never silently
//! absorbed.

use clude_engine::{
    BatchPolicy, CludeEngine, DurabilityConfig, EdgeOp, EngineConfig, FailpointFs, Injection,
};
use clude_graph::DiGraph;
use clude_measures::MeasureQuery;
use clude_telemetry::EventKind;
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::path::Path;
use std::sync::Arc;

const N: usize = 12;
const BATCH: usize = 3;
const SPOOL: &str = "/spool";

/// Base graph: a Hamiltonian ring (never removed, so the random-walk matrix
/// stays well-behaved) plus one chord.
fn base_graph() -> DiGraph {
    let mut edges: Vec<(usize, usize)> = (0..N).map(|i| (i, (i + 1) % N)).collect();
    edges.push((2, 0));
    DiGraph::from_edges(N, edges)
}

fn base_edge_set() -> BTreeSet<(usize, usize)> {
    let mut set: BTreeSet<(usize, usize)> = (0..N).map(|i| (i, (i + 1) % N)).collect();
    set.insert((2, 0));
    set
}

fn config(n_shards: usize) -> EngineConfig {
    EngineConfig {
        batch: BatchPolicy::by_count(BATCH),
        ring_capacity: 64,
        n_shards,
        ..EngineConfig::default()
    }
}

/// Turns raw random pairs into a stream of ops that are valid at the moment
/// they are offered: inserts of absent non-loop edges, removals of
/// previously inserted extras (ring edges are never removed).  Both engines
/// see the identical stream, so batch boundaries line up exactly.
fn materialize_ops(raw: &[(usize, usize)]) -> Vec<EdgeOp> {
    let ring: BTreeSet<(usize, usize)> = (0..N).map(|i| (i, (i + 1) % N)).collect();
    let mut present = base_edge_set();
    let mut ops = Vec::new();
    for &(u, v) in raw {
        if u == v {
            continue;
        }
        if present.contains(&(u, v)) {
            if !ring.contains(&(u, v)) {
                present.remove(&(u, v));
                ops.push(EdgeOp::Remove(u, v));
            }
        } else {
            present.insert((u, v));
            ops.push(EdgeOp::Insert(u, v));
        }
    }
    ops
}

fn queries() -> Vec<MeasureQuery> {
    vec![
        MeasureQuery::PageRank { damping: 0.85 },
        MeasureQuery::Rwr {
            seed: 0,
            damping: 0.85,
        },
        MeasureQuery::Rwr {
            seed: N / 2,
            damping: 0.85,
        },
        MeasureQuery::HittingTime {
            target: 1,
            damping: 0.85,
        },
    ]
}

/// Feeds `ops` into the twin (which must never fail) and into the durable
/// engine until it crashes or the stream ends.  Returns whether the durable
/// engine died mid-stream.
fn drive(twin: &CludeEngine, durable: &CludeEngine, ops: &[EdgeOp]) -> bool {
    let mut crashed = false;
    for &op in ops {
        twin.offer(op).expect("twin must not fail");
        if !crashed && durable.offer(op).is_err() {
            crashed = true;
        }
    }
    twin.flush().expect("twin must not fail");
    if !crashed && durable.flush().is_err() {
        crashed = true;
    }
    crashed
}

/// Recovers from `fs` and checks the recovered engine against the twin at
/// every snapshot id both retain.  Returns the number of ids compared.
fn assert_recovered_matches_twin(
    twin: &CludeEngine,
    fs: &FailpointFs,
    n_shards: usize,
) -> (CludeEngine, usize) {
    let durability = DurabilityConfig::new(SPOOL).vfs(Arc::new(fs.disarmed()));
    let (recovered, report) = CludeEngine::open_durable(base_graph(), config(n_shards), durability)
        .expect("recovery must succeed");
    let twin_ids: BTreeSet<u64> = twin.retained_snapshot_ids().into_iter().collect();
    let shared: Vec<u64> = recovered
        .retained_snapshot_ids()
        .into_iter()
        .filter(|id| twin_ids.contains(id))
        .collect();
    assert!(
        !shared.is_empty(),
        "no shared snapshot ids (report: {report:?})"
    );
    for &id in &shared {
        for q in queries() {
            let a = twin.query_at(id, &q).expect("twin query");
            let b = recovered.query_at(id, &q).expect("recovered query");
            assert_eq!(a.len(), b.len());
            for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
                assert!(
                    (x - y).abs() <= 1e-9,
                    "snapshot {id}, query {q:?}, node {i}: twin {x} vs recovered {y}"
                );
            }
        }
    }
    let count = shared.len();
    (recovered, count)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Kill family 1: die mid-WAL-append (checkpoints effectively disabled,
    /// so every armed write is a WAL record append).  The recovered engine
    /// must match the twin at every shared snapshot.
    #[test]
    fn survives_wal_append_crashes(
        raw in proptest::collection::vec((0usize..N, 0usize..N), 9..40),
        kill in 0u64..30,
        torn_bit in 0usize..2,
        n_shards in 1usize..4,
    ) {
        let ops = materialize_ops(&raw);
        let fs = FailpointFs::new();
        let injection = if torn_bit == 1 {
            Injection::TornWrite { keep: 5 }
        } else {
            Injection::DropWrite
        };
        fs.fail_at(kill, injection);
        let durability = DurabilityConfig::new(SPOOL)
            .group_commit(1)
            .checkpoint_every(1_000_000)
            .vfs(Arc::new(fs.clone()));
        let twin = CludeEngine::new(base_graph(), config(n_shards)).unwrap();
        // The failpoint may already fire inside the bootstrap checkpoint —
        // that too is a kill site recovery must absorb.
        match CludeEngine::open_durable(base_graph(), config(n_shards), durability) {
            Ok((durable, _)) => {
                let crashed = drive(&twin, &durable, &ops);
                if crashed {
                    prop_assert!(fs.is_dead(), "only the failpoint may crash the durable engine");
                }
            }
            Err(_) => prop_assert!(fs.is_dead(), "only the failpoint may fail the open"),
        }
        assert_recovered_matches_twin(&twin, &fs, n_shards);
    }

    /// Kill family 2: die mid-checkpoint (aggressive checkpoint interval, so
    /// most armed writes belong to generation/manifest/rotation traffic).
    #[test]
    fn survives_checkpoint_crashes(
        raw in proptest::collection::vec((0usize..N, 0usize..N), 9..40),
        kill in 0u64..60,
        every in 1u64..4,
        n_shards in 1usize..4,
    ) {
        let ops = materialize_ops(&raw);
        let fs = FailpointFs::new();
        fs.fail_at(kill, Injection::TornWrite { keep: 9 });
        let durability = DurabilityConfig::new(SPOOL)
            .group_commit(1)
            .checkpoint_every(every)
            .vfs(Arc::new(fs.clone()));
        let twin = CludeEngine::new(base_graph(), config(n_shards)).unwrap();
        match CludeEngine::open_durable(base_graph(), config(n_shards), durability) {
            Ok((durable, _)) => {
                let crashed = drive(&twin, &durable, &ops);
                if crashed {
                    prop_assert!(fs.is_dead(), "only the failpoint may crash the durable engine");
                }
            }
            Err(_) => prop_assert!(fs.is_dead(), "only the failpoint may fail the open"),
        }
        assert_recovered_matches_twin(&twin, &fs, n_shards);
    }

    /// Kill family 3: a clean run whose WAL tail is then torn, truncated or
    /// bit-flipped.  The damage must be detected (non-zero truncation count,
    /// a `WalTruncated` journal event) and the surviving prefix must still
    /// match the twin.
    #[test]
    fn detects_and_journals_corrupt_wal_tails(
        raw in proptest::collection::vec((0usize..N, 0usize..N), 12..40),
        bite in 1usize..24,
        flip_bit in 0usize..2,
        n_shards in 1usize..4,
    ) {
        let ops = materialize_ops(&raw);
        prop_assume!(ops.len() >= 2 * BATCH);
        let fs = FailpointFs::new();
        let durability = DurabilityConfig::new(SPOOL)
            .group_commit(1)
            .checkpoint_every(1_000_000)
            .vfs(Arc::new(fs.clone()));
        let twin = CludeEngine::new(base_graph(), config(n_shards)).unwrap();
        let (durable, _) =
            CludeEngine::open_durable(base_graph(), config(n_shards), durability).unwrap();
        let crashed = drive(&twin, &durable, &ops);
        prop_assert!(!crashed, "no failpoint armed, the run must be clean");
        drop(durable);

        // The bootstrap checkpoint sits at snapshot 0, so the whole stream
        // is the tail of segment wal-1.log (8-byte header + records).
        let segment = Path::new(SPOOL).join("wal-1.log");
        let len = fs.len_of(&segment).expect("segment exists");
        prop_assume!(len > 8 + bite);
        fs.corrupt(&segment, |bytes| {
            if flip_bit == 1 {
                // Flip a bit strictly inside the record area (never the
                // 8-byte segment header, which is a *loud* failure instead).
                let at = 8 + (bite * 7) % (bytes.len() - 8);
                bytes[at] ^= 0x01;
            } else {
                let keep = bytes.len() - bite;
                bytes.truncate(keep.max(8));
            }
        });

        let (recovered, _) = assert_recovered_matches_twin(&twin, &fs, n_shards);
        let truncated = recovered
            .telemetry()
            .journal()
            .count_of(EventKind::WalTruncated);
        prop_assert_eq!(truncated, 1, "corruption must be journalled exactly once");
        prop_assert!(
            recovered.current_snapshot_id() <= twin.current_snapshot_id(),
            "recovery can only lose the tail, never invent state"
        );
    }
}
