//! On-disk format pinning and write-ahead invariant tests.
//!
//! The byte layouts of the WAL segment, the checkpoint generation file and
//! the manifest are a compatibility contract: `golden_wal_segment_bytes`
//! pins the exact bytes today's writer produces (so any layout change must
//! consciously edit this fixture *and* bump the version tag), and the
//! version-mismatch tests prove that a reader meeting a foreign version
//! fails loudly instead of guessing.  The write-ahead tests drive the
//! documented invariant: the WAL record for batch `k` is durable before
//! snapshot `k` is published, so a crash inside the WAL append leaves both
//! the disk and the in-memory engine at `k-1`.

use clude_engine::{
    BatchPolicy, CludeEngine, DurabilityConfig, EngineConfig, FailpointFs, Injection, Vfs,
};
use clude_graph::DiGraph;
use std::path::Path;
use std::sync::Arc;

const N: usize = 8;
const SPOOL: &str = "/spool";

fn base_graph() -> DiGraph {
    let mut edges: Vec<(usize, usize)> = (0..N).map(|i| (i, (i + 1) % N)).collect();
    edges.push((2, 0));
    DiGraph::from_edges(N, edges)
}

fn config(batch: usize) -> EngineConfig {
    EngineConfig {
        batch: BatchPolicy::by_count(batch),
        ring_capacity: 8,
        ..EngineConfig::default()
    }
}

fn durability(fs: &FailpointFs) -> DurabilityConfig {
    DurabilityConfig::new(SPOOL)
        .group_commit(1)
        .checkpoint_every(1_000_000)
        .vfs(Arc::new(fs.clone()))
}

/// The exact segment bytes after one single-edge batch.  8-byte segment
/// header (`CLWL`, version 1) followed by one length/crc-framed record for
/// snapshot 1 whose delta adds edge `(1, 3)`.
#[test]
fn golden_wal_segment_bytes() {
    let fs = FailpointFs::new();
    let (engine, _) = CludeEngine::open_durable(base_graph(), config(1), durability(&fs)).unwrap();
    assert_eq!(engine.insert_edge(1, 3).unwrap(), Some(1));
    let bytes = fs
        .read(Path::new(SPOOL).join("wal-1.log").as_path())
        .unwrap();
    let expected: Vec<u8> = vec![
        0x43, 0x4C, 0x57, 0x4C, // magic "CLWL"
        0x01, 0x00, 0x00, 0x00, // format version 1
        0x28, 0x00, 0x00, 0x00, // payload length = 40
        0x89, 0x7B, 0x9F, 0x1F, // crc32(payload)
        0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // snapshot id 1
        0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // 1 added edge
        0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // u = 1
        0x03, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // v = 3
        0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // 0 removed edges
    ];
    assert_eq!(
        bytes, expected,
        "WAL segment layout changed — bump WAL_VERSION"
    );
}

/// A spool written by a future (or foreign) format version must be rejected
/// loudly, for each of the three file types.
#[test]
fn foreign_version_tags_fail_loudly() {
    for file in ["MANIFEST", "gen-0.ckpt", "wal-1.log"] {
        let fs = FailpointFs::new();
        let (engine, _) =
            CludeEngine::open_durable(base_graph(), config(1), durability(&fs)).unwrap();
        engine.insert_edge(1, 3).unwrap();
        drop(engine);
        // Bytes 4..8 of every durable file are its little-endian version tag.
        fs.corrupt(Path::new(SPOOL).join(file).as_path(), |bytes| {
            bytes[4] = 0x7F;
        });
        let err = CludeEngine::open_durable(base_graph(), config(1), durability(&fs))
            .expect_err("foreign version must not be readable");
        let msg = format!("{err}");
        assert!(
            msg.contains("version"),
            "error for {file} should name the version mismatch, got: {msg}"
        );
    }
}

/// Corrupting a file's magic is indistinguishable from pointing the engine
/// at someone else's data — also a loud failure.
#[test]
fn foreign_magic_fails_loudly() {
    let fs = FailpointFs::new();
    let (engine, _) = CludeEngine::open_durable(base_graph(), config(1), durability(&fs)).unwrap();
    engine.insert_edge(1, 3).unwrap();
    drop(engine);
    fs.corrupt(Path::new(SPOOL).join("MANIFEST").as_path(), |bytes| {
        bytes[0] = b'X';
    });
    CludeEngine::open_durable(base_graph(), config(1), durability(&fs))
        .expect_err("foreign magic must not be readable");
}

/// Write-ahead invariant, crash side: when the WAL append for batch `k`
/// dies, the batch is aborted *before* any in-memory state advances — the
/// live engine still serves `k-1`, and so does recovery.
#[test]
fn crashed_wal_append_aborts_the_batch_everywhere() {
    let fs = FailpointFs::new();
    let (engine, _) = CludeEngine::open_durable(base_graph(), config(1), durability(&fs)).unwrap();
    assert_eq!(engine.insert_edge(1, 3).unwrap(), Some(1));
    // The next armed append is the WAL record for batch 2: tear it.
    fs.fail_at(fs.writes_seen(), Injection::TornWrite { keep: 7 });
    engine
        .insert_edge(3, 1)
        .expect_err("the torn WAL append must abort the batch");
    assert!(fs.is_dead());
    // The failed batch never advanced the in-memory engine.
    assert_eq!(engine.current_snapshot_id(), 1);
    drop(engine);
    let (recovered, report) =
        CludeEngine::open_durable(base_graph(), config(1), durability(&fs.disarmed())).unwrap();
    assert_eq!(recovered.current_snapshot_id(), 1);
    assert_eq!(report.checkpoint_snapshot, Some(0));
    assert_eq!(report.wal_records_replayed, 1);
    assert_eq!(report.wal_records_truncated, 1);
}

/// Write-ahead invariant, durable side: a batch whose apply returned
/// successfully survives an immediate kill — the record was on disk before
/// the snapshot was published.
#[test]
fn applied_batches_survive_an_immediate_kill() {
    let fs = FailpointFs::new();
    let (engine, _) = CludeEngine::open_durable(base_graph(), config(1), durability(&fs)).unwrap();
    assert_eq!(engine.insert_edge(1, 3).unwrap(), Some(1));
    assert_eq!(engine.remove_edge(1, 3).unwrap(), Some(2));
    // Kill without any shutdown path: drop the engine, keep only the disk.
    drop(engine);
    let (recovered, report) =
        CludeEngine::open_durable(base_graph(), config(1), durability(&fs.disarmed())).unwrap();
    assert_eq!(recovered.current_snapshot_id(), 2);
    assert_eq!(report.wal_records_replayed, 2);
    assert_eq!(report.wal_records_truncated, 0);
    assert_eq!(report.recovered_snapshot, Some(2));
}

/// Recovery re-anchors the spool: reopening twice in a row replays nothing
/// the second time, because the first open wrote a fresh full checkpoint.
#[test]
fn recovery_reanchors_the_spool() {
    let fs = FailpointFs::new();
    let (engine, _) = CludeEngine::open_durable(base_graph(), config(1), durability(&fs)).unwrap();
    engine.insert_edge(1, 3).unwrap();
    engine.insert_edge(3, 6).unwrap();
    drop(engine);
    let (_, first) =
        CludeEngine::open_durable(base_graph(), config(1), durability(&fs.disarmed())).unwrap();
    assert_eq!(first.wal_records_replayed, 2);
    let (second_engine, second) =
        CludeEngine::open_durable(base_graph(), config(1), durability(&fs.disarmed())).unwrap();
    assert_eq!(second.wal_records_replayed, 0);
    assert_eq!(second.checkpoint_snapshot, Some(2));
    assert_eq!(second_engine.current_snapshot_id(), 2);
}
