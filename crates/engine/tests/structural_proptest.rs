//! Property tests for the structural layer: a BTF partition of a randomly
//! generated DAG-coupled graph makes the block Gauss–Seidel arm exact in a
//! single sweep, matching the monolithic factorization to solver precision.

use clude_engine::{
    CouplingConfig, CouplingSolver, FactorStore, RefreshPolicy, ShardedFactorStore, SolveTolerance,
};
use clude_graph::{btf_partition, DiGraph, MatrixKind};
use clude_measures::MeasureQuery;
use proptest::prelude::*;

/// Three strongly connected blocks (directed cycles plus random chords),
/// bridged only from earlier blocks to later ones — the SCC condensation is
/// a path, so the cross-shard coupling of the BTF partition is triangular.
fn dag_coupled_graph() -> impl Strategy<Value = DiGraph> {
    (
        proptest::collection::vec(3usize..6, 3),
        proptest::collection::vec((0usize..2, 0usize..8, 0usize..8), 1..6),
        proptest::collection::vec((0usize..3, 0usize..8, 0usize..8), 0..6),
    )
        .prop_map(|(sizes, bridges, chords)| {
            let offsets: Vec<usize> = sizes
                .iter()
                .scan(0, |acc, &s| {
                    let o = *acc;
                    *acc += s;
                    Some(o)
                })
                .collect();
            let n: usize = sizes.iter().sum();
            let mut g = DiGraph::new(n);
            for (b, &sz) in sizes.iter().enumerate() {
                for i in 0..sz {
                    g.add_edge(offsets[b] + i, offsets[b] + (i + 1) % sz);
                }
            }
            // Bridges go from block `b` to block `b + 1` only, keeping the
            // condensation acyclic; chords stay inside one block, which can
            // only thicken an SCC, never merge two.
            for (b, fi, ti) in bridges {
                g.add_edge(
                    offsets[b] + fi % sizes[b],
                    offsets[b + 1] + ti % sizes[b + 1],
                );
            }
            for (b, fi, ti) in chords {
                g.add_edge(offsets[b] + fi % sizes[b], offsets[b] + ti % sizes[b]);
            }
            g
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn btf_gauss_seidel_matches_monolithic_in_one_sweep(g in dag_coupled_graph()) {
        let kind = MatrixKind::random_walk_default();
        let (partition, report) = btf_partition(&g, kind, 3);
        prop_assert!(report.transversal_full);
        prop_assert_eq!(report.n_sccs, 3);
        let store =
            ShardedFactorStore::new(g.clone(), kind, RefreshPolicy::Incremental, partition)
                .unwrap()
                .with_coupling_config(CouplingConfig {
                    solver: CouplingSolver::GaussSeidel,
                    tolerance: SolveTolerance {
                        tol: 1e-13,
                        max_sweeps: 1,
                    },
                    ..CouplingConfig::default()
                })
                .unwrap();
        prop_assert!(store.snapshot().coupling_plan().is_triangular());
        let mono = FactorStore::new(g, kind, RefreshPolicy::Incremental).unwrap();
        let queries = [
            MeasureQuery::PageRank { damping: 0.85 },
            MeasureQuery::Rwr {
                seed: 0,
                damping: 0.85,
            },
        ];
        for q in &queries {
            let a = store.snapshot().query(q).unwrap();
            let b = mono.snapshot().query(q).unwrap();
            for (x, y) in a.iter().zip(b.iter()) {
                prop_assert!((x - y).abs() <= 1e-9, "{:?}: sharded {} vs mono {}", q, x, y);
            }
        }
    }
}
