//! # clude-engine
//!
//! A streaming measure-serving engine over incrementally maintained LU
//! factors — the online counterpart of the batch LUDEM solvers.
//!
//! The paper's thesis is that once a snapshot's measure matrix `A = I − d·W`
//! is LU-decomposed, every proximity measure (PageRank, RWR, multi-seed PPR,
//! discounted hitting time) costs one pair of triangular substitutions.  The
//! batch crates decompose a *pre-built* sequence; this crate keeps factors
//! for the *live* snapshot as edge deltas stream in, and serves measure
//! queries against them concurrently:
//!
//! ```text
//!   edge ops                  delta batches                  queries
//!  ───────────►  DeltaIngestor ───────────►  factor store ◄───────────
//!  insert/remove  coalesce adds/removes,    FactorStore (1 shard) or
//!                 cut batch at max_ops or   ShardedFactorStore (k shards):
//!                 similarity threshold      entries routed by NodePartition,
//!                        │                  per-shard Bennett sweeps run in
//!                        │                  parallel, cross-shard entries go
//!                        │                  to the coupling store; per-shard
//!                        │                  refresh when quality-loss > budget
//!                        │                           │ publishes
//!                        ▼                           ▼
//!                 snapshot counter          ring of EngineSnapshots
//!                                           (copy-on-write: per-shard Arc'd
//!                                           factor blocks + frozen coupling,
//!                                           untouched shards shared with the
//!                                           previous entry; bounded time
//!                                           travel)
//!                                                    │
//!                                                    ▼
//!                                             QueryService
//!                                     sharded RwLock LRU cache keyed by
//!                                     (snapshot, query); solves combine the
//!                                     shard blocks exactly through the
//!                                     snapshot's CouplingSolver strategy
//!                                     (Jacobi / Gauss–Seidel / cached
//!                                     Woodbury correction) outside any lock
//! ```
//!
//! * [`ingest::DeltaIngestor`] coalesces single edge operations into
//!   [`clude_graph::GraphDelta`] batches ([`ingest::BatchPolicy`]: by count
//!   or by the paper's snapshot-similarity threshold).
//! * [`store::FactorStore`] maintains the current factors through the
//!   Bennett update path of `clude_lu`, with [`store::RefreshPolicy`]
//!   choosing between INC-style always-update and CLUDE-style refresh when
//!   the quality-loss hook (`clude::refresh_decision`) reports degradation
//!   past the budget.
//! * [`sharded::ShardedFactorStore`] partitions the node universe
//!   (`clude_graph::NodePartition`) into per-shard factor blocks plus a
//!   cross-shard coupling store; disjoint-shard delta batches sweep in
//!   parallel, and queries recombine the blocks exactly.
//! * [`store::EngineSnapshot`] is the immutable unit the ring retains: the
//!   per-shard factor blocks and the frozen coupling are shared [`Arc`]
//!   handles (see [`store::ShardSnapshot::shared`]), re-frozen by an advance
//!   for exactly the shards the batch touched — so a long time-travel window
//!   costs O(touched shards) factor memory per snapshot, not O(all shards)
//!   (the snapshot graph itself, much smaller than the factors, is still
//!   copied per entry).
//! * [`coupling`] is the pluggable solver layer of coupled (sharded)
//!   queries: a [`coupling::CouplingSolver`] strategy per snapshot — block
//!   Jacobi, block Gauss–Seidel in a dependency-derived shard order, or a
//!   cached low-rank Woodbury correction of the hottest coupling columns —
//!   under a configurable [`coupling::SolveTolerance`], with adaptive
//!   re-partitioning when the coupling outgrows its budget.
//! * [`query::QueryService`] answers typed
//!   [`clude_measures::MeasureQuery`]s against immutable snapshots with a
//!   sharded LRU result cache; coupled sharded solves run through reused
//!   [`clude_lu::SolveScratch`] buffers, allocation-free per sweep.
//! * [`stats`] exports lock-free ingest/refresh/query counters in the style
//!   of `clude::report::TimingBreakdown`, including the snapshot ring's
//!   sharing behaviour (depth, clone/share counts, resident factor bytes).
//!
//! [`Arc`]: std::sync::Arc
//!
//! The facade tying it together is [`CludeEngine`]:
//!
//! ```
//! use clude_engine::{CludeEngine, EngineConfig};
//! use clude_graph::DiGraph;
//! use clude_measures::MeasureQuery;
//!
//! let base = DiGraph::from_edges(4, vec![(0, 1), (1, 2), (2, 3), (3, 0)]);
//! let engine = CludeEngine::new(base, EngineConfig::default()).unwrap();
//! engine.insert_edge(0, 2).unwrap();
//! engine.flush().unwrap(); // cut the pending batch -> snapshot 1
//! let scores = engine
//!     .query(&MeasureQuery::Rwr { seed: 0, damping: 0.85 })
//!     .unwrap();
//! assert_eq!(scores.len(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
mod checkpoint;
pub mod coupling;
pub mod durability;
pub mod engine;
pub mod epoch;
pub mod error;
pub mod ingest;
pub mod query;
pub mod recovery;
pub mod sharded;
pub mod stats;
pub mod store;
pub mod vfs;
mod wal;

pub use coupling::{CouplingConfig, CouplingPlan, CouplingSolver, SolveTolerance};
pub use durability::DurabilityConfig;
pub use engine::{CludeEngine, EngineConfig};
pub use epoch::SnapshotHandle;
pub use error::{EngineError, EngineResult};
pub use ingest::{BatchPolicy, DeltaIngestor, EdgeOp, IngestOutcome};
pub use query::{QueryService, StalenessBudget};
pub use recovery::RecoveryReport;
pub use sharded::{PartitionStrategy, ShardAdvance, ShardedAdvanceReport, ShardedFactorStore};
pub use stats::{EngineCounters, EngineStats, ShardCounters, ShardStats};
pub use store::{AdvanceReport, EngineSnapshot, FactorStore, RefreshPolicy, ShardSnapshot};
pub use vfs::{FailpointFs, Injection, StdFs, Vfs, VfsFile};
