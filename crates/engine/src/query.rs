//! Concurrent measure-query serving.
//!
//! The [`QueryService`] answers [`MeasureQuery`]s against immutable
//! [`EngineSnapshot`]s.  Results are memoised in an LRU cache keyed by
//! `(snapshot id, query)` and sharded across independent `RwLock`s so
//! concurrent readers rarely contend: the expensive triangular solves always
//! run *outside* any lock, and the shard lock is held only for the cache
//! probe and insert.

use crate::cache::LruCache;
use crate::error::{EngineError, EngineResult};
use crate::stats::EngineCounters;
use crate::store::EngineSnapshot;
use clude_measures::MeasureQuery;
use clude_telemetry::{Counter, EngineEvent, Stage, TelemetryRegistry};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

type CacheKey = (u64, MeasureQuery);

/// Sharded, cached query evaluation over engine snapshots.
#[derive(Debug)]
pub struct QueryService {
    shards: Vec<RwLock<LruCache<CacheKey, Arc<Vec<f64>>>>>,
    /// Oldest snapshot id still retained; results below it are not cached
    /// (a reader may finish a solve for a snapshot evicted mid-flight).
    oldest_retained: AtomicU64,
    counters: Arc<EngineCounters>,
    telemetry: Arc<TelemetryRegistry>,
}

impl QueryService {
    /// Creates a service with `shards` cache shards of `capacity_per_shard`
    /// entries each.
    ///
    /// # Panics
    /// Panics when `shards` or `capacity_per_shard` is zero.
    pub fn new(
        shards: usize,
        capacity_per_shard: usize,
        counters: Arc<EngineCounters>,
        telemetry: Arc<TelemetryRegistry>,
    ) -> Self {
        assert!(shards > 0, "need at least one cache shard");
        QueryService {
            shards: (0..shards)
                .map(|_| RwLock::new(LruCache::new(capacity_per_shard)))
                .collect(),
            oldest_retained: AtomicU64::new(0),
            counters,
            telemetry,
        }
    }

    fn shard_of(&self, key: &CacheKey) -> usize {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        (hasher.finish() as usize) % self.shards.len()
    }

    /// Answers `query` against `snapshot`, consulting the cache first.
    ///
    /// Results are shared (`Arc`) so concurrent readers of a hot query pay
    /// no copies.
    pub fn query(
        &self,
        snapshot: &EngineSnapshot,
        query: &MeasureQuery,
    ) -> EngineResult<Arc<Vec<f64>>> {
        query
            .validate(snapshot.n_nodes())
            .map_err(EngineError::InvalidQuery)?;
        EngineCounters::bump(&self.counters.queries);
        self.telemetry.incr(Counter::QueriesServed);
        let key: CacheKey = (snapshot.id(), query.clone());
        let shard = &self.shards[self.shard_of(&key)];
        {
            let probe = self.telemetry.span(Stage::QueryCacheHit);
            // lint: allow(panic-surface) — a poisoned shard means a writer
            // panicked mid-mutation; serving from it could return corrupt
            // entries, so crashing loudly is the safe behavior.
            if let Some(hit) = shard.write().expect("cache shard poisoned").get(&key) {
                EngineCounters::bump(&self.counters.cache_hits);
                self.telemetry.incr(Counter::CacheHits);
                return Ok(Arc::clone(hit));
            }
            // A miss records no `query.cache_hit` sample — the stage times
            // served-from-cache probes only.
            probe.cancel();
        }
        EngineCounters::bump(&self.counters.cache_misses);
        // Solve outside the lock: many readers can factor-substitute
        // concurrently against the same immutable snapshot.
        let start = Instant::now();
        let solve_span = self.telemetry.span(Stage::QuerySolve);
        let scores = Arc::new(snapshot.query(query)?);
        solve_span.stop();
        EngineCounters::add_nanos(&self.counters.query_nanos, start.elapsed());
        // Don't cache results for snapshots evicted while we were solving:
        // query_at() rejects their ids before probing the cache, so the
        // entry would only waste LRU capacity.
        if key.0 >= self.oldest_retained.load(Ordering::Acquire) {
            let victim = shard
                .write()
                // lint: allow(panic-surface) — poisoned shard: a writer
                // panicked mid-mutation, the LRU state is untrustworthy.
                .expect("cache shard poisoned")
                .insert(key, Arc::clone(&scores));
            if let Some((evicted_snapshot, _)) = victim {
                self.telemetry.incr(Counter::CacheEvictions);
                self.telemetry.record_event(EngineEvent::CacheEvicted {
                    snapshot: evicted_snapshot,
                });
            }
        }
        Ok(scores)
    }

    /// Drops cached results for snapshots older than `oldest_retained`
    /// (called when the snapshot ring evicts; newer entries stay hot).
    pub fn invalidate_below(&self, oldest_retained: u64) {
        self.oldest_retained
            .store(oldest_retained, Ordering::Release);
        for shard in &self.shards {
            shard
                .write()
                // lint: allow(panic-surface) — poisoned shard: a writer
                // panicked mid-mutation, the LRU state is untrustworthy.
                .expect("cache shard poisoned")
                .retain(|(snapshot, _)| *snapshot >= oldest_retained);
        }
    }

    /// Total number of cached results across shards.
    pub fn cached_entries(&self) -> usize {
        self.shards
            .iter()
            // lint: allow(panic-surface) — poisoned shard: a writer panicked
            // mid-mutation, the LRU state is untrustworthy.
            .map(|s| s.read().expect("cache shard poisoned").len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{FactorStore, RefreshPolicy};
    use clude_graph::{DiGraph, MatrixKind};

    fn snapshot() -> EngineSnapshot {
        let mut g = DiGraph::from_edges(6, (0..6).map(|i| (i, (i + 1) % 6)).collect::<Vec<_>>());
        g.add_edge(2, 0);
        FactorStore::new(
            g,
            MatrixKind::random_walk_default(),
            RefreshPolicy::default(),
        )
        .unwrap()
        .snapshot()
    }

    #[test]
    fn cache_hits_return_the_same_result() {
        let counters = Arc::new(EngineCounters::default());
        let service = QueryService::new(
            4,
            16,
            Arc::clone(&counters),
            Arc::new(TelemetryRegistry::default()),
        );
        let snap = snapshot();
        let q = MeasureQuery::Rwr {
            seed: 1,
            damping: 0.85,
        };
        let first = service.query(&snap, &q).unwrap();
        let second = service.query(&snap, &q).unwrap();
        assert!(
            Arc::ptr_eq(&first, &second),
            "second answer must come from cache"
        );
        let stats = counters.snapshot();
        assert_eq!(stats.queries, 2);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(service.cached_entries(), 1);
    }

    #[test]
    fn distinct_queries_miss_separately() {
        let counters = Arc::new(EngineCounters::default());
        let service = QueryService::new(
            2,
            16,
            Arc::clone(&counters),
            Arc::new(TelemetryRegistry::default()),
        );
        let snap = snapshot();
        for seed in 0..4 {
            service
                .query(
                    &snap,
                    &MeasureQuery::Rwr {
                        seed,
                        damping: 0.85,
                    },
                )
                .unwrap();
        }
        assert_eq!(counters.snapshot().cache_misses, 4);
        assert_eq!(service.cached_entries(), 4);
    }

    #[test]
    fn invalidation_drops_old_snapshots_only() {
        let counters = Arc::new(EngineCounters::default());
        let service = QueryService::new(2, 16, counters, Arc::new(TelemetryRegistry::default()));
        let snap = snapshot(); // id 0
        let q = MeasureQuery::PageRank { damping: 0.85 };
        service.query(&snap, &q).unwrap();
        assert_eq!(service.cached_entries(), 1);
        service.invalidate_below(1);
        assert_eq!(service.cached_entries(), 0);
    }

    #[test]
    fn invalid_queries_are_rejected_before_solving() {
        let counters = Arc::new(EngineCounters::default());
        let service = QueryService::new(
            2,
            16,
            Arc::clone(&counters),
            Arc::new(TelemetryRegistry::default()),
        );
        let snap = snapshot();
        let bad = MeasureQuery::Rwr {
            seed: 99,
            damping: 0.85,
        };
        assert!(matches!(
            service.query(&snap, &bad),
            Err(EngineError::InvalidQuery(_))
        ));
        assert_eq!(counters.snapshot().queries, 0);
    }
}
