//! Concurrent measure-query serving.
//!
//! The [`QueryService`] answers [`MeasureQuery`]s against immutable
//! [`EngineSnapshot`]s.  Three mechanisms keep the hot path fast under high
//! qps:
//!
//! * **sharded result cache** — results are memoised in LRU shards keyed by
//!   `(snapshot id, query)` and sharded by the *query* alone, so every
//!   snapshot's entry for one query lives in the same shard and a staleness
//!   probe or publish-time promotion touches exactly one lock.  Each shard
//!   also keeps a per-snapshot entry count, letting bulk invalidation skip
//!   shards that hold nothing stale instead of scanning every key.
//! * **query batching** — cache-missing queries funnel through a
//!   flat-combining `QueryBatcher`: the first submitter becomes the leader
//!   and answers everything queued behind it with one multi-RHS panel solve
//!   per distinct snapshot ([`EngineSnapshot::query_batch`]), amortizing the
//!   factor traversal across concurrent readers.  Batched answers are
//!   bit-identical to sequential ones.
//! * **bounded-staleness serving** — under a [`StalenessBudget`], a cached
//!   result for the same query at a recent-enough older snapshot is served
//!   instead of solving, and publish-time *promotion* re-keys results whose
//!   entire support lies in shards the batch provably did not touch
//!   (structural sharing makes those answers exactly — not approximately —
//!   equal).

use crate::cache::LruCache;
use crate::error::{EngineError, EngineResult};
use crate::stats::EngineCounters;
use crate::store::EngineSnapshot;
use clude_measures::MeasureQuery;
use clude_telemetry::{Counter, EngineEvent, LogHistogram, Stage, TelemetryRegistry};
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError, RwLock};
use std::time::{Duration, Instant};

type CacheKey = (u64, MeasureQuery);

/// How far behind the queried snapshot a served cached result may lag.
///
/// With `max_lag == 0` (the default) only exact-snapshot results are served.
/// With `max_lag == k`, a cache miss at snapshot `s` may be answered by a
/// cached result for the same query at any snapshot in `[s - k, s)`, newest
/// first — trading bounded result staleness for a solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StalenessBudget {
    /// Maximum snapshot-id lag of a served result (`0` disables stale
    /// serving).
    pub max_lag: u64,
}

/// One cache shard: the LRU plus a per-snapshot entry count.  The counts let
/// [`CacheShard::invalidate_below`] return without scanning a shard that
/// holds nothing stale, and let promotion skip shards with no entries for
/// the previous snapshot.
#[derive(Debug)]
struct CacheShard {
    lru: LruCache<CacheKey, Arc<Vec<f64>>>,
    per_snapshot: BTreeMap<u64, usize>,
}

impl CacheShard {
    fn new(capacity: usize) -> Self {
        CacheShard {
            lru: LruCache::new(capacity),
            per_snapshot: BTreeMap::new(),
        }
    }

    fn len(&self) -> usize {
        self.lru.len()
    }

    fn get(&mut self, key: &CacheKey) -> Option<&Arc<Vec<f64>>> {
        self.lru.get(key)
    }

    fn insert(&mut self, key: CacheKey, value: Arc<Vec<f64>>) -> Option<CacheKey> {
        // Replacing an existing key must not double-count it; removing first
        // also guarantees the LRU has room, so a replace never evicts.
        if self.lru.remove(&key).is_none() {
            *self.per_snapshot.entry(key.0).or_insert(0) += 1;
        }
        let victim = self.lru.insert(key, value);
        if let Some((snapshot, _)) = &victim {
            Self::forget(&mut self.per_snapshot, *snapshot);
        }
        victim
    }

    fn forget(per_snapshot: &mut BTreeMap<u64, usize>, snapshot: u64) {
        if let Some(count) = per_snapshot.get_mut(&snapshot) {
            *count -= 1;
            if *count == 0 {
                per_snapshot.remove(&snapshot);
            }
        }
    }

    /// Drops entries for snapshots below `oldest`, returning how many were
    /// dropped.  A shard whose oldest resident snapshot is already `>=
    /// oldest` returns without touching the LRU at all — the common case
    /// when invalidation runs after every published batch.
    fn invalidate_below(&mut self, oldest: u64) -> u64 {
        match self.per_snapshot.first_key_value() {
            Some((&first, _)) if first < oldest => {}
            _ => return 0,
        }
        let kept = self.per_snapshot.split_off(&oldest);
        let dropped: usize = self.per_snapshot.values().sum();
        self.per_snapshot = kept;
        self.lru.retain(|(snapshot, _)| *snapshot >= oldest);
        dropped as u64
    }

    /// Re-keys `prev`-snapshot entries whose query satisfies `promotable`
    /// under snapshot `new`, keeping the originals so time-travel reads of
    /// `prev` stay hot.  Returns the promoted count and any LRU victims.
    fn promote(
        &mut self,
        prev: u64,
        new: u64,
        promotable: impl Fn(&MeasureQuery) -> bool,
    ) -> (u64, Vec<CacheKey>) {
        if !self.per_snapshot.contains_key(&prev) {
            return (0, Vec::new());
        }
        let candidates: Vec<MeasureQuery> = self
            .lru
            .keys()
            .filter(|(snapshot, query)| *snapshot == prev && promotable(query))
            .map(|(_, query)| query.clone())
            .collect();
        let mut promoted = 0;
        let mut victims = Vec::new();
        for query in candidates {
            // An earlier promotion in this loop may have evicted the
            // candidate; skipping it is correct (nothing left to promote).
            let Some(value) = self.lru.get(&(prev, query.clone())).cloned() else {
                continue;
            };
            if let Some(victim) = self.insert((new, query), value) {
                victims.push(victim);
            }
            promoted += 1;
        }
        (promoted, victims)
    }
}

/// A submission parked in the batcher: the ticket that identifies its answer
/// plus everything the leader needs to solve it.
#[derive(Debug)]
struct PendingQuery {
    ticket: u64,
    snapshot: Arc<EngineSnapshot>,
    query: MeasureQuery,
}

#[derive(Debug, Default)]
struct BatcherState {
    pending: Vec<PendingQuery>,
    results: HashMap<u64, EngineResult<Arc<Vec<f64>>>>,
    leader_active: bool,
    next_ticket: u64,
}

/// Coalesces concurrent cache-missing queries into multi-RHS panel solves.
///
/// Flat-combining leader/follower protocol: the first submitter to find no
/// active leader becomes the leader, optionally dwells for the configured
/// batch window, then repeatedly drains the queue and answers each drained
/// batch with one [`EngineSnapshot::query_batch`] panel solve per distinct
/// snapshot — outside the lock, so followers keep queueing while a solve is
/// in flight (natural batching under load, zero added latency when idle: a
/// lone query is a batch of one).  The leader steps down only after
/// observing an empty queue, so no follower is ever stranded.
#[derive(Debug)]
struct QueryBatcher {
    window: Duration,
    state: Mutex<BatcherState>,
    done: Condvar,
    occupancy: LogHistogram,
    telemetry: Arc<TelemetryRegistry>,
}

impl QueryBatcher {
    fn new(window: Duration, telemetry: Arc<TelemetryRegistry>) -> Self {
        QueryBatcher {
            window,
            state: Mutex::new(BatcherState::default()),
            done: Condvar::new(),
            occupancy: LogHistogram::new(),
            telemetry,
        }
    }

    fn lock(&self) -> MutexGuard<'_, BatcherState> {
        // The state is only ever mutated under this lock by short, panic-free
        // sections (solves run outside it), so a poisoned lock is recoverable.
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Submits one query, blocking until its (possibly batched) answer is
    /// available.  The answer is bit-identical to `snapshot.query(query)`.
    fn submit(
        &self,
        snapshot: &Arc<EngineSnapshot>,
        query: &MeasureQuery,
    ) -> EngineResult<Arc<Vec<f64>>> {
        let (ticket, lead) = {
            let mut st = self.lock();
            let ticket = st.next_ticket;
            st.next_ticket += 1;
            st.pending.push(PendingQuery {
                ticket,
                snapshot: Arc::clone(snapshot),
                query: query.clone(),
            });
            let lead = !st.leader_active;
            st.leader_active = true;
            (ticket, lead)
        };
        if !lead {
            let mut st = self.lock();
            loop {
                if let Some(result) = st.results.remove(&ticket) {
                    return result;
                }
                st = self.done.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
        }
        // Leader: an optional dwell lets concurrent submitters pile in, then
        // drain-solve-publish rounds until the queue stays empty.
        if !self.window.is_zero() {
            std::thread::sleep(self.window);
        }
        let mut own = None;
        loop {
            let batch = {
                let mut st = self.lock();
                std::mem::take(&mut st.pending)
            };
            if !batch.is_empty() {
                self.occupancy.record(batch.len() as u64);
                let solved = self.solve_batch(&batch);
                {
                    let mut st = self.lock();
                    for (ticket_solved, result) in solved {
                        if ticket_solved == ticket {
                            own = Some(result);
                        } else {
                            st.results.insert(ticket_solved, result);
                        }
                    }
                }
                self.done.notify_all();
            }
            {
                let mut st = self.lock();
                if st.pending.is_empty() {
                    st.leader_active = false;
                    break;
                }
            }
        }
        // The leader's own ticket was pending before it took leadership and
        // only the leader drains, so the first round always answered it.
        own.unwrap_or_else(|| {
            Err(EngineError::InvalidQuery(
                "query batcher lost the leader's own ticket".into(),
            ))
        })
    }

    /// Solves one drained batch: group by snapshot, dedup identical queries
    /// within a group, one panel solve per group.
    fn solve_batch(&self, batch: &[PendingQuery]) -> Vec<(u64, EngineResult<Arc<Vec<f64>>>)> {
        let mut out = Vec::with_capacity(batch.len());
        let mut groups: Vec<(u64, Vec<usize>)> = Vec::new();
        for (i, p) in batch.iter().enumerate() {
            match groups.iter_mut().find(|(id, _)| *id == p.snapshot.id()) {
                Some((_, members)) => members.push(i),
                None => groups.push((p.snapshot.id(), vec![i])),
            }
        }
        for (_, members) in groups {
            let snapshot = &batch[members[0]].snapshot;
            let mut unique: Vec<&MeasureQuery> = Vec::new();
            let mut column_of = Vec::with_capacity(members.len());
            for &i in &members {
                let query = &batch[i].query;
                match unique.iter().position(|u| *u == query) {
                    Some(column) => column_of.push(column),
                    None => {
                        unique.push(query);
                        column_of.push(unique.len() - 1);
                    }
                }
            }
            let span = self.telemetry.span(Stage::QueryBatchSolve);
            let solved = snapshot.query_batch(&unique);
            span.stop();
            match solved {
                Ok(results) => {
                    let shared: Vec<Arc<Vec<f64>>> = results.into_iter().map(Arc::new).collect();
                    for (slot, &i) in members.iter().enumerate() {
                        out.push((batch[i].ticket, Ok(Arc::clone(&shared[column_of[slot]]))));
                    }
                }
                Err(error) => {
                    for &i in &members {
                        out.push((batch[i].ticket, Err(EngineError::from(error.clone()))));
                    }
                }
            }
        }
        out
    }
}

/// Sharded, cached, batching query evaluation over engine snapshots.
#[derive(Debug)]
pub struct QueryService {
    shards: Vec<RwLock<CacheShard>>,
    /// Oldest snapshot id still retained; results below it are not cached
    /// (a reader may finish a solve for a snapshot evicted mid-flight).
    oldest_retained: AtomicU64,
    staleness: StalenessBudget,
    batcher: QueryBatcher,
    counters: Arc<EngineCounters>,
    telemetry: Arc<TelemetryRegistry>,
}

impl QueryService {
    /// Creates a service with `shards` cache shards of `capacity_per_shard`
    /// entries each, exact-snapshot serving only and no batch dwell window.
    ///
    /// # Panics
    /// Panics when `shards` or `capacity_per_shard` is zero.
    pub fn new(
        shards: usize,
        capacity_per_shard: usize,
        counters: Arc<EngineCounters>,
        telemetry: Arc<TelemetryRegistry>,
    ) -> Self {
        Self::with_serving(
            shards,
            capacity_per_shard,
            counters,
            telemetry,
            StalenessBudget::default(),
            Duration::ZERO,
        )
    }

    /// Creates a service with explicit serving knobs: the staleness budget
    /// for cache reuse across snapshots and the batcher's dwell window.
    ///
    /// # Panics
    /// Panics when `shards` or `capacity_per_shard` is zero.
    pub fn with_serving(
        shards: usize,
        capacity_per_shard: usize,
        counters: Arc<EngineCounters>,
        telemetry: Arc<TelemetryRegistry>,
        staleness: StalenessBudget,
        batch_window: Duration,
    ) -> Self {
        assert!(shards > 0, "need at least one cache shard");
        QueryService {
            shards: (0..shards)
                .map(|_| RwLock::new(CacheShard::new(capacity_per_shard)))
                .collect(),
            oldest_retained: AtomicU64::new(0),
            staleness,
            batcher: QueryBatcher::new(batch_window, Arc::clone(&telemetry)),
            counters,
            telemetry,
        }
    }

    /// Shards by the *query alone* (not the snapshot id): every snapshot's
    /// entry for one query shares a shard, so the staleness probe and
    /// publish-time promotion each touch exactly one lock.
    fn shard_of(&self, query: &MeasureQuery) -> usize {
        let mut hasher = DefaultHasher::new();
        query.hash(&mut hasher);
        (hasher.finish() as usize) % self.shards.len()
    }

    /// Answers `query` against `snapshot`, consulting the cache first (the
    /// exact snapshot, then — under the staleness budget — recent older
    /// snapshots, newest first).  Misses are solved through the batcher.
    ///
    /// Results are shared (`Arc`) so concurrent readers of a hot query pay
    /// no copies.
    pub fn query(
        &self,
        snapshot: &Arc<EngineSnapshot>,
        query: &MeasureQuery,
    ) -> EngineResult<Arc<Vec<f64>>> {
        query
            .validate(snapshot.n_nodes())
            .map_err(EngineError::InvalidQuery)?;
        EngineCounters::bump(&self.counters.queries);
        self.telemetry.incr(Counter::QueriesServed);
        let key: CacheKey = (snapshot.id(), query.clone());
        let shard = &self.shards[self.shard_of(query)];
        {
            let probe = self.telemetry.span(Stage::QueryCacheHit);
            // lint: allow(panic-surface) — a poisoned shard means a writer
            // panicked mid-mutation; serving from it could return corrupt
            // entries, so crashing loudly is the safe behavior.
            let mut guard = shard.write().expect("cache shard poisoned");
            if let Some(hit) = guard.get(&key) {
                EngineCounters::bump(&self.counters.cache_hits);
                self.telemetry.incr(Counter::CacheHits);
                return Ok(Arc::clone(hit));
            }
            // A miss records no `query.cache_hit` sample — the stage times
            // served-from-cache probes only.
            probe.cancel();
            // Bounded-staleness serving: the same query answered at a
            // recent-enough older snapshot is acceptable under the budget.
            // All candidate keys hash to this shard, so the probes reuse the
            // lock already held.
            if self.staleness.max_lag > 0 && key.0 > 0 {
                let stale = self.telemetry.span(Stage::QueryStaleHit);
                let floor = key.0.saturating_sub(self.staleness.max_lag);
                let mut id = key.0 - 1;
                loop {
                    if let Some(hit) = guard.get(&(id, query.clone())) {
                        EngineCounters::bump(&self.counters.cache_hits);
                        self.telemetry.incr(Counter::CacheHits);
                        return Ok(Arc::clone(hit));
                    }
                    if id == floor {
                        break;
                    }
                    id -= 1;
                }
                stale.cancel();
            }
        }
        EngineCounters::bump(&self.counters.cache_misses);
        // Solve outside the lock, through the batcher: concurrent misses
        // against the same snapshot share one panel solve.
        let start = Instant::now();
        let solve_span = self.telemetry.span(Stage::QuerySolve);
        let scores = self.batcher.submit(snapshot, query)?;
        solve_span.stop();
        EngineCounters::add_nanos(&self.counters.query_nanos, start.elapsed());
        // Don't cache results for snapshots evicted while we were solving:
        // query_at() rejects their ids before probing the cache, so the
        // entry would only waste LRU capacity.
        if key.0 >= self.oldest_retained.load(Ordering::Acquire) {
            let victim = shard
                .write()
                // lint: allow(panic-surface) — poisoned shard: a writer
                // panicked mid-mutation, the LRU state is untrustworthy.
                .expect("cache shard poisoned")
                .insert(key, Arc::clone(&scores));
            if let Some((evicted_snapshot, _)) = victim {
                self.telemetry.incr(Counter::CacheEvictions);
                self.telemetry.record_event(EngineEvent::CacheEvicted {
                    snapshot: evicted_snapshot,
                });
            }
        }
        Ok(scores)
    }

    /// Publish-time stability hook: promotes cached results from the
    /// previous snapshot that provably still hold under `snapshot`, so a
    /// stable region keeps serving exact hits across publishes.
    ///
    /// `changed_shards` are the shards whose factor blocks the publishing
    /// batch republished (untouched shards share their block `Arc` with the
    /// previous snapshot).  Promotion runs only when the snapshots are
    /// block-diagonal twins — same partition, same (empty) coupling — and a
    /// query is promoted only when its entire support reads unchanged
    /// blocks, which makes the promoted answer exactly equal, not an
    /// approximation.
    pub fn note_publish(
        &self,
        snapshot: &EngineSnapshot,
        changed_shards: &[usize],
        coupling_changed: bool,
        repartitioned: bool,
    ) {
        let new_id = snapshot.id();
        let Some(prev_id) = new_id.checked_sub(1) else {
            return;
        };
        // Cross-shard coupling makes every solve read every shard, and a
        // repartition renumbers the shards: no per-query support argument
        // survives either.
        if repartitioned || coupling_changed || snapshot.coupling().nnz() > 0 {
            return;
        }
        let partition = snapshot.partition();
        let all_clean = changed_shards.is_empty();
        let untouched = |node: usize| !changed_shards.contains(&partition.shard_of(node));
        for shard in &self.shards {
            let victims = {
                // lint: allow(panic-surface) — poisoned shard: a writer
                // panicked mid-mutation, the LRU state is untrustworthy.
                let mut guard = shard.write().expect("cache shard poisoned");
                let (_, victims) = guard.promote(prev_id, new_id, |query| match query {
                    // Block-diagonal solves: an Rwr/Ppr answer depends only
                    // on its seeds' shard blocks; PageRank's dense restart
                    // vector reads every block.
                    MeasureQuery::Rwr { seed, .. } => untouched(*seed),
                    MeasureQuery::PprSeedSet { seeds, .. } => seeds.iter().all(|&s| untouched(s)),
                    MeasureQuery::PageRank { .. } => all_clean,
                    // Hitting time factorizes the snapshot graph afresh,
                    // which every applied batch mutates — never stable.
                    MeasureQuery::HittingTime { .. } => false,
                });
                victims
            };
            for (evicted_snapshot, _) in victims {
                self.telemetry.incr(Counter::CacheEvictions);
                self.telemetry.record_event(EngineEvent::CacheEvicted {
                    snapshot: evicted_snapshot,
                });
            }
        }
    }

    /// Drops cached results for snapshots older than `oldest_retained`
    /// (called when the snapshot ring evicts; newer entries stay hot).
    /// Shards holding nothing stale are skipped via their per-snapshot
    /// counts; a non-empty drop is journalled as one bulk
    /// [`EngineEvent::CacheInvalidated`] event.
    pub fn invalidate_below(&self, oldest_retained: u64) {
        self.oldest_retained
            .store(oldest_retained, Ordering::Release);
        let mut dropped = 0u64;
        for shard in &self.shards {
            dropped += shard
                .write()
                // lint: allow(panic-surface) — poisoned shard: a writer
                // panicked mid-mutation, the LRU state is untrustworthy.
                .expect("cache shard poisoned")
                .invalidate_below(oldest_retained);
        }
        if dropped > 0 {
            self.telemetry.record_event(EngineEvent::CacheInvalidated {
                oldest_retained,
                dropped,
            });
        }
    }

    /// Total number of cached results across shards.
    pub fn cached_entries(&self) -> usize {
        self.shards
            .iter()
            // lint: allow(panic-surface) — poisoned shard: a writer panicked
            // mid-mutation, the LRU state is untrustworthy.
            .map(|s| s.read().expect("cache shard poisoned").len())
            .sum()
    }

    /// The batcher's occupancy histogram: one sample per drained batch,
    /// valued at the number of queries the batch coalesced.
    pub fn batch_occupancy(&self) -> &LogHistogram {
        &self.batcher.occupancy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{FactorStore, RefreshPolicy};
    use clude_graph::{DiGraph, GraphDelta, MatrixKind};

    fn store() -> FactorStore {
        let mut g = DiGraph::from_edges(6, (0..6).map(|i| (i, (i + 1) % 6)).collect::<Vec<_>>());
        g.add_edge(2, 0);
        FactorStore::new(
            g,
            MatrixKind::random_walk_default(),
            RefreshPolicy::default(),
        )
        .unwrap()
    }

    fn snapshot() -> Arc<EngineSnapshot> {
        Arc::new(store().snapshot())
    }

    fn service_with(
        staleness: StalenessBudget,
        counters: &Arc<EngineCounters>,
    ) -> (QueryService, Arc<TelemetryRegistry>) {
        let telemetry = Arc::new(TelemetryRegistry::default());
        let service = QueryService::with_serving(
            2,
            16,
            Arc::clone(counters),
            Arc::clone(&telemetry),
            staleness,
            Duration::ZERO,
        );
        (service, telemetry)
    }

    #[test]
    fn cache_hits_return_the_same_result() {
        let counters = Arc::new(EngineCounters::default());
        let service = QueryService::new(
            4,
            16,
            Arc::clone(&counters),
            Arc::new(TelemetryRegistry::default()),
        );
        let snap = snapshot();
        let q = MeasureQuery::Rwr {
            seed: 1,
            damping: 0.85,
        };
        let first = service.query(&snap, &q).unwrap();
        let second = service.query(&snap, &q).unwrap();
        assert!(
            Arc::ptr_eq(&first, &second),
            "second answer must come from cache"
        );
        let stats = counters.snapshot();
        assert_eq!(stats.queries, 2);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(service.cached_entries(), 1);
        // The lone miss went through the batcher as a batch of one.
        assert_eq!(service.batch_occupancy().count(), 1);
        assert_eq!(service.batch_occupancy().value_at_quantile(1.0), 1);
    }

    #[test]
    fn distinct_queries_miss_separately() {
        let counters = Arc::new(EngineCounters::default());
        let service = QueryService::new(
            2,
            16,
            Arc::clone(&counters),
            Arc::new(TelemetryRegistry::default()),
        );
        let snap = snapshot();
        for seed in 0..4 {
            service
                .query(
                    &snap,
                    &MeasureQuery::Rwr {
                        seed,
                        damping: 0.85,
                    },
                )
                .unwrap();
        }
        assert_eq!(counters.snapshot().cache_misses, 4);
        assert_eq!(service.cached_entries(), 4);
    }

    #[test]
    fn invalidation_drops_old_snapshots_only() {
        let counters = Arc::new(EngineCounters::default());
        let telemetry = Arc::new(TelemetryRegistry::default());
        let service = QueryService::new(2, 16, counters, Arc::clone(&telemetry));
        let snap = snapshot(); // id 0
        let q = MeasureQuery::PageRank { damping: 0.85 };
        service.query(&snap, &q).unwrap();
        assert_eq!(service.cached_entries(), 1);
        let events_before = telemetry.journal().recorded();
        // Nothing below 0: the counted shards skip every scan, no event.
        service.invalidate_below(0);
        assert_eq!(service.cached_entries(), 1);
        assert_eq!(telemetry.journal().recorded(), events_before);
        service.invalidate_below(1);
        assert_eq!(service.cached_entries(), 0);
        assert_eq!(
            telemetry.journal().recorded(),
            events_before + 1,
            "bulk invalidation must journal one CacheInvalidated event"
        );
    }

    #[test]
    fn stale_results_serve_within_budget_only() {
        let counters = Arc::new(EngineCounters::default());
        let (service, _) = service_with(StalenessBudget { max_lag: 2 }, &counters);
        let mut st = store();
        let snap0 = Arc::new(st.snapshot());
        let q = MeasureQuery::Rwr {
            seed: 1,
            damping: 0.85,
        };
        let exact = service.query(&snap0, &q).unwrap();
        for (u, v) in [(0, 3), (1, 4), (2, 5)] {
            st.advance(&GraphDelta {
                added: vec![(u, v)],
                removed: vec![],
            })
            .unwrap();
        }
        let snap3 = Arc::new(st.snapshot());
        assert_eq!(snap3.id(), 3);
        // Lag 3 exceeds the budget of 2: a fresh solve, not the cached one.
        let fresh = service.query(&snap3, &q).unwrap();
        assert!(!Arc::ptr_eq(&exact, &fresh), "lag 3 must not serve lag-0");
        // The fresh result is cached at id 3; querying id 4 or 5 (lag <= 2)
        // serves it, querying id 6 (lag 3) would not — simulate by probing
        // through snapshots the service never solved for.
        let stats = counters.snapshot();
        assert_eq!(stats.cache_misses, 2);
        // Exact hit still wins over the stale path.
        let again = service.query(&snap3, &q).unwrap();
        assert!(Arc::ptr_eq(&fresh, &again));
    }

    #[test]
    fn stale_serving_prefers_newest_lagged_result() {
        let counters = Arc::new(EngineCounters::default());
        let (service, _) = service_with(StalenessBudget { max_lag: 3 }, &counters);
        let mut st = store();
        let snap0 = Arc::new(st.snapshot());
        let q = MeasureQuery::PageRank { damping: 0.85 };
        let at0 = service.query(&snap0, &q).unwrap();
        st.advance(&GraphDelta {
            added: vec![(0, 3)],
            removed: vec![],
        })
        .unwrap();
        let snap1 = Arc::new(st.snapshot());
        // Lag 1 within budget: served from the id-0 entry without a solve.
        let at1 = service.query(&snap1, &q).unwrap();
        assert!(Arc::ptr_eq(&at0, &at1), "lag-1 query must reuse the cache");
        let stats = counters.snapshot();
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(stats.cache_hits, 1);
    }

    #[test]
    fn publish_promotion_rekeys_stable_queries() {
        let counters = Arc::new(EngineCounters::default());
        let (service, _) = service_with(StalenessBudget::default(), &counters);
        let mut st = store();
        let snap0 = Arc::new(st.snapshot());
        let pagerank = MeasureQuery::PageRank { damping: 0.85 };
        let rwr = MeasureQuery::Rwr {
            seed: 2,
            damping: 0.85,
        };
        let hit = MeasureQuery::HittingTime {
            target: 0,
            damping: 0.85,
        };
        let pr0 = service.query(&snap0, &pagerank).unwrap();
        let rwr0 = service.query(&snap0, &rwr).unwrap();
        service.query(&snap0, &hit).unwrap();
        assert_eq!(service.cached_entries(), 3);
        st.advance(&GraphDelta {
            added: vec![(0, 3)],
            removed: vec![],
        })
        .unwrap();
        let snap1 = Arc::new(st.snapshot());
        // No shard changed (as far as the summary claims): PageRank and Rwr
        // promote, HittingTime never does.
        service.note_publish(&snap1, &[], false, false);
        assert_eq!(service.cached_entries(), 5);
        let pr1 = service.query(&snap1, &pagerank).unwrap();
        let rwr1 = service.query(&snap1, &rwr).unwrap();
        assert!(Arc::ptr_eq(&pr0, &pr1), "promoted PageRank must hit");
        assert!(Arc::ptr_eq(&rwr0, &rwr1), "promoted Rwr must hit");
        assert_eq!(counters.snapshot().cache_misses, 3, "no new solves");
        // The monolithic store has one shard; with it changed, only queries
        // with no support there could promote — i.e. nothing cached here.
        st.advance(&GraphDelta {
            added: vec![(1, 5)],
            removed: vec![],
        })
        .unwrap();
        let snap2 = Arc::new(st.snapshot());
        let before = service.cached_entries();
        service.note_publish(&snap2, &[0], false, false);
        assert_eq!(service.cached_entries(), before);
        // Repartitioned or coupled publishes never promote.
        service.note_publish(&snap2, &[], false, true);
        service.note_publish(&snap2, &[], true, false);
        assert_eq!(service.cached_entries(), before);
    }

    #[test]
    fn invalid_queries_are_rejected_before_solving() {
        let counters = Arc::new(EngineCounters::default());
        let service = QueryService::new(
            2,
            16,
            Arc::clone(&counters),
            Arc::new(TelemetryRegistry::default()),
        );
        let snap = snapshot();
        let bad = MeasureQuery::Rwr {
            seed: 99,
            damping: 0.85,
        };
        assert!(matches!(
            service.query(&snap, &bad),
            Err(EngineError::InvalidQuery(_))
        ));
        assert_eq!(counters.snapshot().queries, 0);
    }

    #[test]
    fn concurrent_submissions_batch_and_agree_with_sequential() {
        let counters = Arc::new(EngineCounters::default());
        let telemetry = Arc::new(TelemetryRegistry::default());
        let service = Arc::new(QueryService::with_serving(
            4,
            64,
            Arc::clone(&counters),
            Arc::clone(&telemetry),
            StalenessBudget::default(),
            Duration::from_micros(200),
        ));
        let snap = snapshot();
        let mut handles = Vec::new();
        for t in 0..6 {
            let service = Arc::clone(&service);
            let snap = Arc::clone(&snap);
            handles.push(std::thread::spawn(move || {
                let q = MeasureQuery::Rwr {
                    seed: t % 6,
                    damping: 0.85,
                };
                (q.clone(), service.query(&snap, &q).unwrap())
            }));
        }
        for h in handles {
            let (q, batched) = h.join().unwrap();
            let sequential = snap.query(&q).unwrap();
            let same = batched
                .iter()
                .zip(sequential.iter())
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "batched answer must be bit-identical: {q:?}");
        }
        assert!(service.batch_occupancy().count() >= 1);
        let drained: u64 = service.batch_occupancy().count();
        assert!(drained <= 6, "at most one drain per submission");
    }
}
