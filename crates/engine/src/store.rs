//! Incrementally maintained LU factors of the current snapshot.
//!
//! The [`FactorStore`] is the single-writer heart of the engine: it owns the
//! current snapshot graph, its measure matrix, an ordering, and dynamic LU
//! factors kept in sync through Bennett updates (`clude_lu::apply_delta`).
//! Every applied [`GraphDelta`] advances the snapshot counter and emits an
//! immutable [`EngineSnapshot`] the query side serves from.
//!
//! Two maintenance policies mirror the paper's algorithm families:
//!
//! * [`RefreshPolicy::Incremental`] — INC-style: one ordering forever,
//!   fill-ins absorbed into the dynamic lists, never refreshed;
//! * [`RefreshPolicy::QualityTriggered`] — CLUDE-style: the factor size is
//!   compared against the size recorded at the last refresh via
//!   [`clude::refresh_decision`] (Definition 4's quality-loss), and once the
//!   degradation exceeds the budget the store re-orders and re-factorizes —
//!   the streaming analogue of starting a new cluster.

use crate::coupling::{self, CouplingConfig, CouplingPlan, CouplingSolver, SolveTolerance};
use crate::error::EngineResult;
use clude::{refresh_decision, DecomposedMatrix, MatrixFactors};
use clude_graph::{measure_matrix, DeltaClass, DiGraph, GraphDelta, MatrixKind, NodePartition};
use clude_lu::{
    amd_ordering, apply_delta_with, markowitz_ordering, refactor_frozen, BennettStats,
    BennettWorkspace, DynamicLuFactors, LuError, LuResult, RefactorStats, RefactorWorkspace,
};
use clude_measures::{evaluate_queries_with, evaluate_query_with, MeasureQuery, MeasureSolver};
use clude_sparse::{CooMatrix, CsrMatrix};
use clude_telemetry::{EngineEvent, FallbackReason, OrderingMethod, Stage, TelemetryRegistry};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// When the store abandons its ordering and re-factorizes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RefreshPolicy {
    /// Never refresh: keep updating the first ordering's factors (INC).
    Incremental,
    /// Refresh when the factors' quality-loss against the last refresh
    /// exceeds the budget (CLUDE-style re-clustering).
    QualityTriggered {
        /// Maximum tolerated quality-loss before a refresh.
        max_quality_loss: f64,
    },
}

impl Default for RefreshPolicy {
    /// Refresh at 100 % degradation — roughly where the paper's Figure 5
    /// shows INC's single ordering has become untenable.
    fn default() -> Self {
        RefreshPolicy::QualityTriggered {
            max_quality_loss: 1.0,
        }
    }
}

/// One shard's slice of an [`EngineSnapshot`]: the decomposed principal
/// submatrix over the shard's nodes, in local coordinates.
///
/// The block is held behind an [`Arc`], which is what makes the snapshot
/// ring copy-on-write: consecutive snapshots share the handle for every
/// shard a batch did not touch, so a long time-travel window costs
/// O(touched shards) factor memory per snapshot instead of O(all shards).
/// The [`DecomposedMatrix::index`] of a shared block records the snapshot id
/// at which the shard's factors last changed (not the id of the snapshot
/// serving it).
#[derive(Debug, Clone)]
pub struct ShardSnapshot {
    decomposed: Arc<DecomposedMatrix>,
}

impl ShardSnapshot {
    pub(crate) fn new(decomposed: Arc<DecomposedMatrix>) -> Self {
        ShardSnapshot { decomposed }
    }

    /// The shard's decomposed block (ordering + factors, local coordinates).
    pub fn decomposed(&self) -> &DecomposedMatrix {
        &self.decomposed
    }

    /// The shared handle of the decomposed block.  Two snapshots whose
    /// handles are [`Arc::ptr_eq`] serve the identical factors without
    /// holding two copies — the observable form of the ring's structural
    /// sharing.
    pub fn shared(&self) -> &Arc<DecomposedMatrix> {
        &self.decomposed
    }
}

/// One immutable, queryable snapshot: the graph plus per-shard decomposed
/// factors sharing one snapshot id.
///
/// A monolithic [`FactorStore`] publishes a single shard over the
/// [`NodePartition::singleton`] partition with an empty coupling matrix; a
/// `ShardedFactorStore` publishes one [`ShardSnapshot`] per shard plus the
/// cross-shard coupling entries.  Queries solve `A x = b` exactly either by
/// one pair of substitutions (no coupling) or by the snapshot's
/// [`CouplingSolver`] strategy combining per-shard solves with the coupling
/// (see [`crate::coupling`]).
#[derive(Debug, Clone)]
pub struct EngineSnapshot {
    id: u64,
    graph: DiGraph,
    partition: Arc<NodePartition>,
    shards: Vec<ShardSnapshot>,
    /// Cross-shard entries of the measure matrix, global coordinates (empty
    /// for monolithic snapshots).
    coupling: Arc<CsrMatrix>,
    /// The combination strategy this snapshot answers coupled solves with.
    solver: CouplingSolver,
    /// Stopping rule of the iterative strategies.
    tolerance: SolveTolerance,
    /// Frozen solver metadata (Gauss–Seidel order, cached Woodbury
    /// correction), shared through the ring like factor blocks.
    plan: Arc<CouplingPlan>,
    /// The engine-wide telemetry sink, stamped in so query-path coupling
    /// solves record their spans and convergence failures (disabled
    /// registries make every recording a branch).
    telemetry: Arc<TelemetryRegistry>,
}

impl EngineSnapshot {
    #[allow(clippy::too_many_arguments)] // one construction site per store
    pub(crate) fn from_parts(
        id: u64,
        graph: DiGraph,
        partition: Arc<NodePartition>,
        shards: Vec<ShardSnapshot>,
        coupling: Arc<CsrMatrix>,
        solver: CouplingSolver,
        tolerance: SolveTolerance,
        plan: Arc<CouplingPlan>,
        telemetry: Arc<TelemetryRegistry>,
    ) -> Self {
        debug_assert_eq!(partition.n_shards(), shards.len());
        EngineSnapshot {
            id,
            graph,
            partition,
            shards,
            coupling,
            solver,
            tolerance,
            plan,
            telemetry,
        }
    }

    /// The snapshot counter value this snapshot was produced at.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The snapshot graph.
    pub fn graph(&self) -> &DiGraph {
        &self.graph
    }

    /// The node partition the factors are sharded by.
    pub fn partition(&self) -> &NodePartition {
        &self.partition
    }

    /// The per-shard decomposed blocks, in shard order.
    pub fn shards(&self) -> &[ShardSnapshot] {
        &self.shards
    }

    /// Number of factor shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The cross-shard coupling entries (global coordinates).
    pub fn coupling(&self) -> &CsrMatrix {
        &self.coupling
    }

    /// The shared handle of the frozen coupling matrix.  Snapshots between
    /// which no cross-shard entry changed are [`Arc::ptr_eq`] here, the
    /// coupling-side half of the ring's structural sharing.
    pub fn shared_coupling(&self) -> &Arc<CsrMatrix> {
        &self.coupling
    }

    /// The strategy this snapshot combines per-shard solves with.
    pub fn solver(&self) -> CouplingSolver {
        self.solver
    }

    /// Stopping rule of this snapshot's iterative coupled solves.
    pub fn tolerance(&self) -> SolveTolerance {
        self.tolerance
    }

    /// The frozen solver metadata (Gauss–Seidel traversal order, cached
    /// Woodbury correction).  Shared exactly like factor blocks: snapshots
    /// between which neither the coupling nor a shard the cached correction
    /// depends on changed are [`Arc::ptr_eq`] here.
    pub fn coupling_plan(&self) -> &Arc<CouplingPlan> {
        &self.plan
    }

    /// The telemetry registry this snapshot records query-path spans and
    /// events into (the engine-wide one, or a disabled stub for stores
    /// built without telemetry).
    pub fn telemetry(&self) -> &TelemetryRegistry {
        &self.telemetry
    }

    /// The decomposed measure matrix of a monolithic snapshot.
    ///
    /// # Panics
    /// Panics when the snapshot is sharded — use [`EngineSnapshot::shards`].
    pub fn decomposed(&self) -> &DecomposedMatrix {
        assert_eq!(
            self.shards.len(),
            1,
            "decomposed() is only defined for single-shard snapshots"
        );
        self.shards[0].decomposed()
    }

    /// Number of nodes of the fixed universe.
    pub fn n_nodes(&self) -> usize {
        self.graph.n_nodes()
    }

    /// Answers a measure query against this snapshot by substitutions.
    pub fn query(&self, query: &MeasureQuery) -> LuResult<Vec<f64>> {
        evaluate_query_with(self, &self.graph, query)
    }

    /// Answers a batch of measure queries against this snapshot, coalescing
    /// all panel-eligible queries into **one** factor traversal over a
    /// column panel (hitting-time queries, which factorize a query-specific
    /// matrix, are answered individually).  Result `i` is bit-identical to
    /// `self.query(queries[i])`.
    pub fn query_batch(&self, queries: &[&MeasureQuery]) -> LuResult<Vec<Vec<f64>>> {
        evaluate_queries_with(self, &self.graph, queries)
    }
}

impl MeasureSolver for EngineSnapshot {
    /// Solves `A x = b` for the snapshot's full measure matrix
    /// `A = blockdiag(A_ss) + C` through the snapshot's [`CouplingSolver`]
    /// strategy (see [`crate::coupling`]); monolithic snapshots are one pair
    /// of substitutions, bit-identical to the pre-sharding solve.
    fn solve_measure_system(&self, b: &[f64]) -> LuResult<Vec<f64>> {
        coupling::solve_system(self, b)
    }

    /// Panel override: `n_rhs` stacked right-hand sides in one factor
    /// traversal per block pass, every stripe bit-identical to a sequential
    /// [`MeasureSolver::solve_measure_system`] call (see
    /// `crate::coupling::solve_systems`).
    fn solve_measure_systems(&self, b: &[f64], n_rhs: usize) -> LuResult<Vec<f64>> {
        coupling::solve_systems(self, b, n_rhs)
    }
}

/// What one [`FactorStore::advance`] did.
#[derive(Debug, Clone)]
pub struct AdvanceReport {
    /// The id of the snapshot the batch produced.
    pub snapshot_id: u64,
    /// Whether the advance ended in a full refresh.
    pub refreshed: bool,
    /// Bennett work performed (zero when the advance refreshed immediately).
    pub bennett: BennettStats,
    /// Quality-loss of the factors after the advance (0 right after a
    /// refresh).
    pub quality_loss: f64,
    /// Number of changed matrix entries the batch translated into factor
    /// updates.
    pub entries_applied: usize,
    /// Whether the batch re-published the store's shared factor handle.
    /// `false` means the next snapshot shares the previous one's factors —
    /// the copy-on-write case.
    pub republished: bool,
    /// Whether the batch was classified value-only against the frozen factor
    /// pattern (every changed entry landed on a stored slot).
    pub value_only: bool,
    /// Whether the batch was absorbed by a pattern-frozen refactorization
    /// (one pass down the frozen symbolic pattern) instead of per-entry
    /// Bennett sweeps.
    pub refactored: bool,
}

/// The current snapshot's factors, maintained under a fixed ordering until
/// the refresh policy trips.
#[derive(Debug, Clone)]
pub struct FactorStore {
    kind: MatrixKind,
    policy: RefreshPolicy,
    graph: DiGraph,
    /// The ordering, factors and coordinate/quality bookkeeping, replaced
    /// wholesale on refresh.
    of: OrderedFactors,
    /// Reused Bennett scratch: advances allocate nothing per pivot.
    workspace: BennettWorkspace,
    /// Reused refactorization scratch (stamped dense accumulator).
    refactor_ws: RefactorWorkspace,
    /// Whether value-only batches take the pattern-frozen refactor fast path
    /// instead of per-entry Bennett sweeps.
    refactor: bool,
    snapshot_id: u64,
    /// The shared factor handle snapshots serve from, re-frozen only by
    /// batches that change the factors; snapshots between which no factor
    /// work happened share it (copy-on-write ring).
    published: Arc<DecomposedMatrix>,
    /// Cached singleton partition shared by every published snapshot.
    partition: Arc<NodePartition>,
    /// Cached empty coupling matrix shared by every published snapshot.
    empty_coupling: Arc<CsrMatrix>,
    /// Coupling-solver configuration stamped onto published snapshots (a
    /// monolithic store has no coupling, so only the strategy label and the
    /// tolerance matter — for stats and for parity with the sharded store).
    coupling_cfg: CouplingConfig,
    /// Cached trivial plan shared by every published snapshot.
    trivial_plan: Arc<CouplingPlan>,
    /// Telemetry sink for sweep/refresh/freeze spans, stamped onto
    /// snapshots; a disabled stub unless [`FactorStore::with_telemetry`].
    telemetry: Arc<TelemetryRegistry>,
}

impl FactorStore {
    /// Builds the store for a base graph: derives the measure matrix, runs
    /// the Markowitz-vs-AMD ordering contest, and factorizes it fully.
    pub fn new(graph: DiGraph, kind: MatrixKind, policy: RefreshPolicy) -> EngineResult<Self> {
        Self::with_registry(graph, kind, policy, Arc::new(TelemetryRegistry::disabled()))
    }

    /// Like [`FactorStore::new`], but with the telemetry registry present
    /// *during* construction, so the build-time ordering contest lands in
    /// the journal (`ordering_selected`) instead of going to a disabled
    /// stub.  [`FactorStore::with_telemetry`] only swaps the sink for
    /// later spans.
    pub fn with_registry(
        graph: DiGraph,
        kind: MatrixKind,
        policy: RefreshPolicy,
        telemetry: Arc<TelemetryRegistry>,
    ) -> EngineResult<Self> {
        let matrix = measure_matrix(&graph, kind);
        let of = order_and_factorize(&matrix, &telemetry, 0)?;
        let workspace = BennettWorkspace::with_order(of.factors.n());
        let n = graph.n_nodes();
        let published = of.publish(0);
        Ok(FactorStore {
            kind,
            policy,
            partition: Arc::new(NodePartition::singleton(n)),
            empty_coupling: Arc::new(CsrMatrix::from_coo(&CooMatrix::new(n, n))),
            coupling_cfg: CouplingConfig::default(),
            trivial_plan: Arc::new(CouplingPlan::trivial(1)),
            telemetry,
            graph,
            of,
            workspace,
            refactor_ws: RefactorWorkspace::with_order(n),
            refactor: true,
            snapshot_id: 0,
            published,
        })
    }

    /// Enables or disables the pattern-frozen refactor fast path for
    /// value-only batches (builder style; on by default).  Disabled, every
    /// batch goes through per-entry Bennett sweeps — the A/B lever of the
    /// `--no-refactor` benchmark flag.
    pub fn with_refactor(mut self, refactor: bool) -> Self {
        self.refactor = refactor;
        self
    }

    /// Sets the telemetry registry sweep/refresh/freeze spans and refresh
    /// events are recorded into (builder style).  Snapshots carry the same
    /// handle so query-path solves record too.
    pub fn with_telemetry(mut self, telemetry: Arc<TelemetryRegistry>) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Sets the coupling-solver configuration stamped onto published
    /// snapshots (builder style).  A monolithic store never iterates — its
    /// solves are direct — so this only affects the strategy label and
    /// tolerance snapshots report.
    pub fn with_coupling_config(mut self, cfg: CouplingConfig) -> Self {
        self.coupling_cfg = cfg;
        self
    }

    /// The coupling-solver configuration in force.
    pub fn coupling_config(&self) -> CouplingConfig {
        self.coupling_cfg
    }

    /// The durable slice of the store for the checkpoint writer.  Serialises
    /// from the *published* block: an advance republishes whenever it
    /// touches the factors, so the published `Arc` content always equals the
    /// live factors.
    pub(crate) fn durable_state(&self) -> crate::checkpoint::DurableState {
        crate::checkpoint::DurableState {
            snapshot_id: self.snapshot_id,
            kind: self.kind,
            graph: self.graph.clone(),
            partition: (*self.partition).clone(),
            next_repartition_at: None,
            coupling: Vec::new(),
            blocks: vec![(Arc::clone(&self.published), self.of.reference_nnz)],
        }
    }

    /// Rebuilds a monolithic store from a decoded checkpoint image —
    /// bit-identical factors, ordering, quality anchor and snapshot id, so
    /// WAL replay from here evolves exactly as the original did.
    pub(crate) fn restore(
        policy: RefreshPolicy,
        coupling_cfg: CouplingConfig,
        telemetry: Arc<TelemetryRegistry>,
        state: crate::checkpoint::StoreState,
    ) -> EngineResult<Self> {
        let crate::checkpoint::StoreState {
            snapshot_id,
            kind,
            graph,
            blocks,
            ..
        } = state;
        let n = graph.n_nodes();
        let mut blocks = blocks;
        let block = match (blocks.len(), blocks.pop()) {
            (1, Some(b)) => b,
            (k, _) => {
                return Err(crate::error::EngineError::Persistence(format!(
                    "monolithic store restore needs exactly one block, checkpoint has {k}"
                )))
            }
        };
        if block.factors.n() != n {
            return Err(crate::error::EngineError::Persistence(format!(
                "checkpoint block of order {} does not fit the {n}-node universe",
                block.factors.n()
            )));
        }
        let of = OrderedFactors {
            row_old_to_new: block.ordering.row().old_to_new(),
            col_old_to_new: block.ordering.col().old_to_new(),
            ordering: block.ordering,
            factors: block.factors,
            reference_nnz: block.reference_nnz,
            // Rebuilt lazily by the first refactor pass; a checkpoint block
            // carries no matrix.
            reordered: None,
        };
        let workspace = BennettWorkspace::with_order(n);
        let published = of.publish(block.index);
        Ok(FactorStore {
            kind,
            policy,
            partition: Arc::new(NodePartition::singleton(n)),
            empty_coupling: Arc::new(CsrMatrix::from_coo(&CooMatrix::new(n, n))),
            coupling_cfg,
            trivial_plan: Arc::new(CouplingPlan::trivial(1)),
            telemetry,
            graph,
            of,
            workspace,
            refactor_ws: RefactorWorkspace::with_order(n),
            refactor: true,
            snapshot_id,
            published,
        })
    }

    /// The matrix composition the factors are built for.
    pub fn matrix_kind(&self) -> MatrixKind {
        self.kind
    }

    /// The refresh policy in force.
    pub fn policy(&self) -> RefreshPolicy {
        self.policy
    }

    /// The current snapshot id.
    pub fn snapshot_id(&self) -> u64 {
        self.snapshot_id
    }

    /// The current snapshot graph.
    pub fn graph(&self) -> &DiGraph {
        &self.graph
    }

    /// Current factor size `|sp(Â)|`.
    pub fn factor_nnz(&self) -> usize {
        self.of.factors.nnz()
    }

    /// Quality-loss of the current factors against the last refresh.
    pub fn quality_loss(&self) -> f64 {
        clude::quality_loss_from_sizes(self.of.factors.nnz(), self.of.reference_nnz)
    }

    /// An immutable snapshot of the current state for the query side.
    ///
    /// The factor handle is shared, not cloned: consecutive snapshots whose
    /// batches performed no factor work are [`Arc::ptr_eq`] on their
    /// [`ShardSnapshot::shared`] block, and the deep clone of the factors
    /// happens at most once per advance (inside [`FactorStore::advance`]),
    /// not per `snapshot()` call.
    pub fn snapshot(&self) -> EngineSnapshot {
        EngineSnapshot::from_parts(
            self.snapshot_id,
            self.graph.clone(),
            Arc::clone(&self.partition),
            vec![ShardSnapshot::new(Arc::clone(&self.published))],
            Arc::clone(&self.empty_coupling),
            self.coupling_cfg.solver,
            self.coupling_cfg.tolerance,
            Arc::clone(&self.trivial_plan),
            Arc::clone(&self.telemetry),
        )
    }

    /// Applies one coalesced delta batch, advancing the snapshot counter.
    ///
    /// The changed matrix entries are derived *directly from the graph
    /// delta* (an edge operation only perturbs its source's column of
    /// `I − d·W`, or its endpoints' entries of the Laplacian), so the cost
    /// of an advance is proportional to the change, not to the matrix.  The
    /// factors are then updated by Bennett's algorithm under the current
    /// ordering; when the numeric update fails (singular pivot en route) or
    /// the refresh policy trips afterwards, the store falls back to a full
    /// refresh — a fresh Markowitz ordering and factorization of the new
    /// matrix — so an `Ok` return always leaves servable factors.
    ///
    /// An `Err` (the rebuild itself failed, which a diagonally dominant
    /// measure matrix cannot trigger in practice) leaves the store
    /// mid-batch — the graph already advanced, the factors not — and must be
    /// treated as fatal for this store; only out-of-range deltas are
    /// rejected before any mutation.
    pub fn advance(&mut self, delta: &GraphDelta) -> EngineResult<AdvanceReport> {
        // Reject deltas naming nodes outside the universe before mutating
        // anything (the engine's ingestor pre-validates, but the store is a
        // public entry point of its own).
        let n = self.graph.n_nodes();
        for &(u, v) in delta.added.iter().chain(delta.removed.iter()) {
            if u >= n || v >= n {
                return Err(crate::error::EngineError::NodeOutOfRange {
                    node: u.max(v),
                    n_nodes: n,
                });
            }
        }
        // Capture pre-delta adjacency of the affected sources, then mutate.
        let affected = affected_sources(delta);
        let old_info: BTreeMap<usize, Vec<usize>> = affected
            .iter()
            .map(|&u| (u, self.graph.successors(u).collect()))
            .collect();
        delta.apply(&mut self.graph);
        self.snapshot_id += 1;
        let matrix_delta = self.matrix_delta(&old_info);
        let entries_applied = matrix_delta.len();

        // Classify against the frozen factor pattern: a batch whose every
        // changed off-diagonal position already has a stored slot can redo
        // the numerics down the frozen symbolic pattern in one pass instead
        // of per-entry Bennett sweeps.
        let value_only = entries_applied > 0
            && delta.classify_with(self.kind, |i, j| {
                self.of
                    .factors
                    .has_entry(self.of.row_old_to_new[i], self.of.col_old_to_new[j])
            }) == DeltaClass::ValueOnly;
        let (graph, kind) = (&self.graph, self.kind);
        let (bennett, refactored, refreshed) = if self.refactor && value_only {
            let (_stats, refreshed) = self.of.refactor_or_refresh(
                &mut self.refactor_ws,
                &matrix_delta,
                &self.telemetry,
                0,
                || measure_matrix(graph, kind),
            )?;
            (BennettStats::default(), !refreshed, refreshed)
        } else {
            let (bennett, refreshed) = self.of.apply_or_refresh(
                &mut self.workspace,
                &matrix_delta,
                self.policy,
                &self.telemetry,
                0,
                || measure_matrix(graph, kind),
            )?;
            (bennett, false, refreshed)
        };
        // Copy-on-write: re-freeze the shared factor handle only when this
        // batch actually touched the factors; a no-entry batch keeps serving
        // (and sharing) the previous handle.
        let republished = entries_applied > 0 || refreshed;
        if republished {
            let _freeze = self.telemetry.span(Stage::SnapshotFreeze);
            self.published = self.of.publish(self.snapshot_id);
        }
        Ok(AdvanceReport {
            snapshot_id: self.snapshot_id,
            refreshed,
            bennett,
            quality_loss: self.quality_loss(),
            entries_applied,
            republished,
            value_only,
            refactored,
        })
    }

    /// The Bennett delta `(row, col, old, new)` in *factor* (reordered)
    /// coordinates, given the pre-delta successor lists of the affected
    /// sources and the already-updated graph.
    fn matrix_delta(
        &self,
        old_info: &BTreeMap<usize, Vec<usize>>,
    ) -> Vec<(usize, usize, f64, f64)> {
        global_matrix_delta(&self.graph, self.kind, old_info)
            .into_iter()
            .map(|(r, c, old, new)| {
                (
                    self.of.row_old_to_new[r],
                    self.of.col_old_to_new[c],
                    old,
                    new,
                )
            })
            .collect()
    }
}

/// A matrix's fill-reducing ordering, its dynamic factors under that
/// ordering, and the derived bookkeeping every factor (shard or monolith)
/// keeps: the `old → new` index maps advances translate coordinates with,
/// and the factor size that anchors the quality-loss metric.
#[derive(Debug, Clone)]
pub(crate) struct OrderedFactors {
    pub ordering: clude_sparse::Ordering,
    pub row_old_to_new: Vec<usize>,
    pub col_old_to_new: Vec<usize>,
    pub factors: DynamicLuFactors,
    pub reference_nnz: usize,
    /// The reordered measure matrix the factors were computed from, kept in
    /// sync by value-only batches so the refactor fast path never rebuilds
    /// it from the graph.  Invalidated (`None`) when a structural Bennett
    /// pass changes the pattern underneath it.
    pub reordered: Option<CsrMatrix>,
}

impl OrderedFactors {
    /// Freezes the current factors into a shared snapshot handle.  This is
    /// the one place the deep clone of a factor block happens — once per
    /// advance that touched the block, never for untouched blocks, never in
    /// `snapshot()` itself.  `id` is the snapshot id the clone is current as
    /// of, recorded as the block's [`DecomposedMatrix::index`].
    pub(crate) fn publish(&self, id: u64) -> Arc<DecomposedMatrix> {
        Arc::new(DecomposedMatrix {
            index: id as usize,
            ordering: self.ordering.clone(),
            factors: Some(MatrixFactors::Dynamic(self.factors.clone())),
        })
    }

    /// Applies a factor-coordinate Bennett delta, falling back to a full
    /// rebuild from `rebuild_matrix()` on numeric failure, and refreshing
    /// again when the quality policy trips afterwards — the one maintenance
    /// step shared by the monolithic store and every shard.  Returns the
    /// Bennett work done and whether a refresh happened; an `Ok` return
    /// always leaves servable factors.
    ///
    /// The sweep and any refresh record `shard.sweep` / `shard.refresh`
    /// spans into `telemetry`, and every refresh posts a
    /// [`EngineEvent::RefreshTriggered`] journal event tagged with `shard`
    /// (0 for the monolithic store) and whether numerics or the quality
    /// budget forced it.
    pub(crate) fn apply_or_refresh(
        &mut self,
        ws: &mut BennettWorkspace,
        delta: &[(usize, usize, f64, f64)],
        policy: RefreshPolicy,
        telemetry: &TelemetryRegistry,
        shard: usize,
        rebuild_matrix: impl Fn() -> CsrMatrix,
    ) -> LuResult<(BennettStats, bool)> {
        // Keep the refactor path's reordered-matrix cache current: overwrite
        // stored positions in place, and invalidate it the moment the batch
        // lands outside the stored pattern (a structural insert).
        if let Some(cached) = self.reordered.as_mut() {
            if !delta.iter().all(|&(i, j, _, new)| cached.set(i, j, new)) {
                self.reordered = None;
            }
        }
        let mut refreshed = false;
        let sweep = telemetry.span(Stage::ShardSweep);
        let bennett = match apply_delta_with(&mut self.factors, ws, delta) {
            Ok(stats) => {
                sweep.stop();
                stats
            }
            Err(_) => {
                sweep.stop();
                // Numeric fallback: rebuild under a fresh ordering.
                let refresh = telemetry.span(Stage::ShardRefresh);
                *self = order_and_factorize(&rebuild_matrix(), telemetry, shard)?;
                refresh.stop();
                telemetry.record_event(EngineEvent::RefreshTriggered {
                    shard: shard as u32,
                    numeric: true,
                    quality_loss: 0.0,
                });
                refreshed = true;
                BennettStats::default()
            }
        };
        if !refreshed {
            if let RefreshPolicy::QualityTriggered { max_quality_loss } = policy {
                let loss = clude::quality_loss_from_sizes(self.factors.nnz(), self.reference_nnz);
                let decision =
                    refresh_decision(self.factors.nnz(), self.reference_nnz, max_quality_loss);
                if decision.should_refresh {
                    let refresh = telemetry.span(Stage::ShardRefresh);
                    *self = order_and_factorize(&rebuild_matrix(), telemetry, shard)?;
                    refresh.stop();
                    telemetry.record_event(EngineEvent::RefreshTriggered {
                        shard: shard as u32,
                        numeric: false,
                        quality_loss: loss,
                    });
                    refreshed = true;
                }
            }
        }
        Ok((bennett, refreshed))
    }

    /// Absorbs a value-only batch by recomputing the factor values down the
    /// frozen symbolic pattern in one pass (`clude_lu::refactor_frozen`) —
    /// the KLU refactorization fast path — recording a `shard.refactor`
    /// span.  A failed refactorization leaves the factors partially
    /// rewritten, so the only sound fallback is a full refresh (fresh
    /// ordering + factorization), announced by an
    /// [`EngineEvent::RefactorFallback`]; Bennett is not an option at that
    /// point.  Returns the refactor work done and whether the fallback
    /// refresh happened; an `Ok` return always leaves servable factors.
    ///
    /// The quality policy is *not* consulted: a frozen-pattern pass cannot
    /// change the factor size, so the quality-loss is exactly what it was
    /// before the batch.
    pub(crate) fn refactor_or_refresh(
        &mut self,
        ws: &mut RefactorWorkspace,
        delta: &[(usize, usize, f64, f64)],
        telemetry: &TelemetryRegistry,
        shard: usize,
        rebuild_matrix: impl Fn() -> CsrMatrix,
    ) -> LuResult<(RefactorStats, bool)> {
        // Bring the cached reordered matrix up to date in place — the whole
        // point of the fast path is to not touch the graph.  For a value-only
        // batch every position is stored, so `set` only fails when the cache
        // was invalidated by an earlier structural pass or the delta lands on
        // a fill-only position; then (and only then) rebuild it once.
        let up_to_date = match self.reordered.as_mut() {
            Some(cached) => delta.iter().all(|&(i, j, _, new)| cached.set(i, j, new)),
            None => false,
        };
        if !up_to_date {
            let rebuilt = rebuild_matrix()
                .reorder(&self.ordering)
                // lint: allow(panic-surface) — the frozen ordering was
                // computed for a matrix over the same fixed node universe;
                // its dimensions cannot disagree.
                .expect("frozen ordering fits the rebuilt matrix");
            self.reordered = Some(rebuilt);
        }
        let span = telemetry.span(Stage::ShardRefactor);
        let cached = self
            .reordered
            .as_ref()
            // lint: allow(panic-surface) — ensured two branches up.
            .expect("reordered-matrix cache was just ensured");
        match refactor_frozen(&mut self.factors, cached, ws) {
            Ok(stats) => {
                span.stop();
                Ok((stats, false))
            }
            Err(err) => {
                span.stop();
                let reason = match err {
                    LuError::SingularPivot { .. } => FallbackReason::Pivot,
                    _ => FallbackReason::Structure,
                };
                telemetry.record_event(EngineEvent::RefactorFallback {
                    shard: shard as u32,
                    reason,
                });
                let refresh = telemetry.span(Stage::ShardRefresh);
                *self = order_and_factorize(&rebuild_matrix(), telemetry, shard)?;
                refresh.stop();
                telemetry.record_event(EngineEvent::RefreshTriggered {
                    shard: shard as u32,
                    numeric: true,
                    quality_loss: 0.0,
                });
                Ok((RefactorStats::default(), true))
            }
        }
    }
}

/// Orders `matrix`, factorizes it, and packages the bookkeeping — the one
/// construction path shared by initial builds and refreshes of both the
/// monolithic and the sharded store.
///
/// Two fill-reducing orderings compete on the pattern: the paper's Markowitz
/// product rule (the incumbent) and AMD over `A + Aᵀ`.  AMD wins only when
/// its predicted factor size `|s̃p(A^O)|` is strictly smaller; the choice is
/// announced with an [`EngineEvent::OrderingSelected`] journal event.
pub(crate) fn order_and_factorize(
    matrix: &CsrMatrix,
    telemetry: &TelemetryRegistry,
    shard: usize,
) -> LuResult<OrderedFactors> {
    let pattern = matrix.pattern();
    let markowitz = markowitz_ordering(&pattern);
    let amd = amd_ordering(&pattern);
    let (chosen, method) = if amd.symbolic_size < markowitz.symbolic_size {
        (amd, OrderingMethod::Amd)
    } else {
        (markowitz, OrderingMethod::Markowitz)
    };
    telemetry.record_event(EngineEvent::OrderingSelected {
        shard: shard as u32,
        method,
        fill: chosen.symbolic_size as u64,
    });
    let ordering = chosen.ordering;
    let reordered = matrix
        .reorder(&ordering)
        // lint: allow(panic-surface) — the ordering was computed from this
        // matrix's own pattern one line up; its dimensions cannot disagree.
        .expect("ordering was computed for this matrix");
    let factors = DynamicLuFactors::factorize(&reordered)?;
    let reference_nnz = factors.nnz();
    Ok(OrderedFactors {
        row_old_to_new: ordering.row().old_to_new(),
        col_old_to_new: ordering.col().old_to_new(),
        ordering,
        factors,
        reference_nnz,
        reordered: Some(reordered),
    })
}

/// The changed entries `(row, col, old, new)` of the measure matrix, in
/// *global* (original graph) coordinates, given the pre-delta successor lists
/// of the affected sources and the already-updated graph.
///
/// An edge operation only perturbs entries keyed by its source: for
/// `I − d·W` the source's column (the degree normalisation rescales the whole
/// column), for the Laplacian the source's row plus its diagonal.  Both the
/// monolithic and the sharded store derive their Bennett updates from this
/// list — the monolithic store maps it through its ordering, the sharded
/// store routes each entry to its owning shard or the coupling store.
pub(crate) fn global_matrix_delta(
    graph: &DiGraph,
    kind: MatrixKind,
    old_info: &BTreeMap<usize, Vec<usize>>,
) -> Vec<(usize, usize, f64, f64)> {
    let mut out = Vec::new();
    for (&u, old_succ) in old_info {
        let new_succ: Vec<usize> = graph.successors(u).collect();
        match kind {
            MatrixKind::RandomWalk { damping } => {
                // Column u of A = I − d·W holds −d/deg(u) at each
                // successor's row; a degree change rescales the whole
                // column, an edge change moves its support.
                let old_w = column_weight(damping, old_succ.len());
                let new_w = column_weight(damping, new_succ.len());
                let old_set: BTreeSet<usize> = old_succ.iter().copied().collect();
                let new_set: BTreeSet<usize> = new_succ.iter().copied().collect();
                for &v in old_set.union(&new_set) {
                    let old = if old_set.contains(&v) { old_w } else { 0.0 };
                    let new = if new_set.contains(&v) { new_w } else { 0.0 };
                    if old != new {
                        out.push((v, u, old, new));
                    }
                }
            }
            MatrixKind::SymmetricLaplacian { shift } => {
                // Row u of A = σ·I + D − Adj: −1 at each successor and
                // the degree on the diagonal.
                let old_set: BTreeSet<usize> = old_succ.iter().copied().collect();
                let new_set: BTreeSet<usize> = new_succ.iter().copied().collect();
                for &v in old_set.union(&new_set) {
                    if v == u {
                        continue; // folded into the diagonal below
                    }
                    let old = if old_set.contains(&v) { -1.0 } else { 0.0 };
                    let new = if new_set.contains(&v) { -1.0 } else { 0.0 };
                    if old != new {
                        out.push((u, v, old, new));
                    }
                }
                let diag = |set: &BTreeSet<usize>| {
                    let self_loop = if set.contains(&u) { 1.0 } else { 0.0 };
                    shift + set.len() as f64 - self_loop
                };
                if diag(&old_set) != diag(&new_set) {
                    out.push((u, u, diag(&old_set), diag(&new_set)));
                }
            }
        }
    }
    out
}

/// The nodes whose matrix column/row a delta perturbs: the source endpoint
/// of every changed edge.
pub(crate) fn affected_sources(delta: &GraphDelta) -> BTreeSet<usize> {
    delta
        .added
        .iter()
        .chain(delta.removed.iter())
        .map(|&(u, _)| u)
        .collect()
}

/// The per-successor weight of column `u` in `I − d·W`.
fn column_weight(damping: f64, out_degree: usize) -> f64 {
    if out_degree == 0 {
        0.0
    } else {
        -damping / out_degree as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clude_lu::factorize_fresh;

    fn base_graph() -> DiGraph {
        let mut g = DiGraph::from_edges(6, (0..6).map(|i| (i, (i + 1) % 6)).collect::<Vec<_>>());
        g.add_edge(2, 0);
        g.add_edge(4, 0);
        g
    }

    fn rwr_scores(graph: &DiGraph, seed: usize, damping: f64) -> Vec<f64> {
        // Oracle: fresh factorization of the snapshot's measure matrix.
        let a = measure_matrix(graph, MatrixKind::RandomWalk { damping });
        let factors = factorize_fresh(&a).unwrap();
        let mut b = vec![0.0; graph.n_nodes()];
        b[seed] = 1.0 - damping;
        factors.solve(&b).unwrap()
    }

    #[test]
    fn advance_tracks_fresh_factorization() {
        let g = base_graph();
        let mut store = FactorStore::new(
            g.clone(),
            MatrixKind::random_walk_default(),
            RefreshPolicy::Incremental,
        )
        .unwrap();
        assert_eq!(store.snapshot_id(), 0);

        let delta = GraphDelta {
            added: vec![(1, 4), (5, 2)],
            removed: vec![(2, 0)],
        };
        let report = store.advance(&delta).unwrap();
        assert_eq!(report.snapshot_id, 1);
        assert!(!report.refreshed);
        assert!(report.bennett.rank_one_updates > 0);

        let snap = store.snapshot();
        let q = MeasureQuery::Rwr {
            seed: 3,
            damping: 0.85,
        };
        let got = snap.query(&q).unwrap();
        let mut expected = rwr_scores(store.graph(), 3, 0.85);
        clude_sparse::vector::normalize_l1(&mut expected);
        for (a, b) in got.iter().zip(expected.iter()) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn quality_policy_refreshes_on_degradation() {
        let g = base_graph();
        // A zero budget refreshes on any factor growth.
        let mut store = FactorStore::new(
            g,
            MatrixKind::random_walk_default(),
            RefreshPolicy::QualityTriggered {
                max_quality_loss: 0.0,
            },
        )
        .unwrap();
        let mut refreshed_any = false;
        // Densify the graph step by step; fill-in must eventually appear.
        for k in 0..4 {
            let delta = GraphDelta {
                added: vec![(k, (k + 3) % 6), ((k + 2) % 6, k)],
                removed: vec![],
            };
            let report = store.advance(&delta).unwrap();
            refreshed_any |= report.refreshed;
            if report.refreshed {
                assert_eq!(report.quality_loss, 0.0);
            }
        }
        assert!(refreshed_any, "densification never tripped the refresh");
        // Factors still track the graph exactly.
        let snap = store.snapshot();
        let got = snap
            .query(&MeasureQuery::PageRank { damping: 0.85 })
            .unwrap();
        assert!((got.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn snapshots_are_independent_of_later_advances() {
        let g = base_graph();
        let mut store = FactorStore::new(
            g,
            MatrixKind::random_walk_default(),
            RefreshPolicy::default(),
        )
        .unwrap();
        let snap0 = store.snapshot();
        let q = MeasureQuery::PageRank { damping: 0.85 };
        let before = snap0.query(&q).unwrap();
        store
            .advance(&GraphDelta {
                added: vec![(0, 3)],
                removed: vec![(0, 1)],
            })
            .unwrap();
        // The old snapshot still answers from the old factors.
        let after = snap0.query(&q).unwrap();
        assert_eq!(before, after);
        assert_eq!(snap0.id(), 0);
        assert_eq!(store.snapshot().id(), 1);
        // And the new snapshot differs (the graph changed).
        let new = store.snapshot().query(&q).unwrap();
        assert!(before
            .iter()
            .zip(new.iter())
            .any(|(a, b)| (a - b).abs() > 1e-12));
    }

    #[test]
    fn factor_handle_is_shared_until_a_batch_touches_the_factors() {
        let mut store = FactorStore::new(
            base_graph(),
            MatrixKind::random_walk_default(),
            RefreshPolicy::Incremental,
        )
        .unwrap();
        let snap0 = store.snapshot();
        // Two snapshots with no advance in between share the handle.
        assert!(Arc::ptr_eq(
            snap0.shards()[0].shared(),
            store.snapshot().shards()[0].shared()
        ));
        // An empty batch advances the snapshot id but performs no factor
        // work: the handle keeps being shared (index records snapshot 0).
        let report = store.advance(&GraphDelta::empty()).unwrap();
        assert_eq!(report.entries_applied, 0);
        assert!(!report.republished);
        let snap1 = store.snapshot();
        assert_eq!(snap1.id(), 1);
        assert!(Arc::ptr_eq(
            snap0.shards()[0].shared(),
            snap1.shards()[0].shared()
        ));
        assert_eq!(snap1.shards()[0].decomposed().index, 0);
        // A real batch re-freezes the handle.
        let report = store
            .advance(&GraphDelta {
                added: vec![(0, 3)],
                removed: vec![],
            })
            .unwrap();
        assert!(report.republished);
        let snap2 = store.snapshot();
        assert!(!Arc::ptr_eq(
            snap1.shards()[0].shared(),
            snap2.shards()[0].shared()
        ));
        assert_eq!(snap2.shards()[0].decomposed().index, 2);
    }

    #[test]
    fn value_only_batches_take_the_refactor_fast_path() {
        let telemetry = Arc::new(TelemetryRegistry::new(
            clude_telemetry::TelemetryConfig::default(),
        ));
        let mut store = FactorStore::new(
            base_graph(),
            MatrixKind::random_walk_default(),
            RefreshPolicy::Incremental,
        )
        .unwrap()
        .with_telemetry(Arc::clone(&telemetry));
        // Removals are always value-only: the removed edge's position zeroes
        // and the source's surviving column entries rescale in place.
        let delta = GraphDelta {
            added: vec![],
            removed: vec![(2, 0)],
        };
        let report = store.advance(&delta).unwrap();
        assert!(report.value_only);
        assert!(report.refactored);
        assert!(!report.refreshed);
        assert_eq!(report.bennett.rank_one_updates, 0);
        assert!(report.entries_applied > 0);
        assert!(telemetry.stage_histogram(Stage::ShardRefactor).count() > 0);
        // The refactored factors are exact: they match a fresh factorization
        // of the updated graph to solver precision.
        let got = store
            .snapshot()
            .query(&MeasureQuery::Rwr {
                seed: 3,
                damping: 0.85,
            })
            .unwrap();
        let mut expected = rwr_scores(store.graph(), 3, 0.85);
        clude_sparse::vector::normalize_l1(&mut expected);
        for (a, b) in got.iter().zip(expected.iter()) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
        // The A/B lever: with the fast path off, the same batch Bennett-sweeps.
        let mut bennett_store = FactorStore::new(
            base_graph(),
            MatrixKind::random_walk_default(),
            RefreshPolicy::Incremental,
        )
        .unwrap()
        .with_refactor(false);
        let report = bennett_store.advance(&delta).unwrap();
        assert!(report.value_only);
        assert!(!report.refactored);
        assert!(report.bennett.rank_one_updates > 0);
    }

    #[test]
    fn advance_rejects_out_of_universe_deltas_without_mutating() {
        let mut store = FactorStore::new(
            base_graph(),
            MatrixKind::random_walk_default(),
            RefreshPolicy::Incremental,
        )
        .unwrap();
        let bad = GraphDelta {
            added: vec![(0, 999)],
            removed: vec![],
        };
        let err = store.advance(&bad).unwrap_err();
        assert!(matches!(
            err,
            crate::error::EngineError::NodeOutOfRange {
                node: 999,
                n_nodes: 6
            }
        ));
        // Nothing moved: same snapshot, same graph, still servable.
        assert_eq!(store.snapshot_id(), 0);
        assert_eq!(store.graph().n_edges(), base_graph().n_edges());
        assert!(store
            .snapshot()
            .query(&MeasureQuery::PageRank { damping: 0.85 })
            .is_ok());
    }

    #[test]
    fn symmetric_laplacian_advance_matches_fresh_factorization() {
        // An undirected path graph; deltas change both edge directions.
        let mut g = DiGraph::new(5);
        for i in 0..4 {
            g.add_undirected_edge(i, i + 1);
        }
        let kind = MatrixKind::SymmetricLaplacian { shift: 1.0 };
        let mut store = FactorStore::new(g, kind, RefreshPolicy::Incremental).unwrap();
        let delta = GraphDelta {
            added: vec![(0, 3), (3, 0), (1, 4), (4, 1)],
            removed: vec![(1, 2), (2, 1)],
        };
        store.advance(&delta).unwrap();
        // Oracle: fresh factors of the updated graph's Laplacian.
        let a = measure_matrix(store.graph(), kind);
        let fresh = factorize_fresh(&a).unwrap();
        let b = vec![1.0, -0.5, 2.0, 0.25, -1.0];
        let expected = fresh.solve(&b).unwrap();
        let got = clude_lu::solve_original(
            match store.snapshot().decomposed().factors.as_ref().unwrap() {
                clude::MatrixFactors::Dynamic(f) => f,
                _ => unreachable!("store keeps dynamic factors"),
            },
            &store.snapshot().decomposed().ordering,
            &b,
        )
        .unwrap();
        for (x, y) in got.iter().zip(expected.iter()) {
            assert!((x - y).abs() < 1e-9, "{x} vs {y}");
        }
    }

    #[test]
    fn accessors_expose_state() {
        let store = FactorStore::new(
            base_graph(),
            MatrixKind::random_walk_default(),
            RefreshPolicy::Incremental,
        )
        .unwrap();
        assert_eq!(store.matrix_kind(), MatrixKind::random_walk_default());
        assert_eq!(store.policy(), RefreshPolicy::Incremental);
        assert!(store.factor_nnz() > 0);
        assert_eq!(store.quality_loss(), 0.0);
        assert_eq!(store.snapshot().n_nodes(), 6);
        assert!(store.snapshot().graph().has_edge(2, 0));
        assert_eq!(store.snapshot().decomposed().index, 0);
    }
}
