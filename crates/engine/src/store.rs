//! Incrementally maintained LU factors of the current snapshot.
//!
//! The [`FactorStore`] is the single-writer heart of the engine: it owns the
//! current snapshot graph, its measure matrix, an ordering, and dynamic LU
//! factors kept in sync through Bennett updates (`clude_lu::apply_delta`).
//! Every applied [`GraphDelta`] advances the snapshot counter and emits an
//! immutable [`EngineSnapshot`] the query side serves from.
//!
//! Two maintenance policies mirror the paper's algorithm families:
//!
//! * [`RefreshPolicy::Incremental`] — INC-style: one ordering forever,
//!   fill-ins absorbed into the dynamic lists, never refreshed;
//! * [`RefreshPolicy::QualityTriggered`] — CLUDE-style: the factor size is
//!   compared against the size recorded at the last refresh via
//!   [`clude::refresh_decision`] (Definition 4's quality-loss), and once the
//!   degradation exceeds the budget the store re-orders and re-factorizes —
//!   the streaming analogue of starting a new cluster.

use crate::error::EngineResult;
use clude::{refresh_decision, DecomposedMatrix, MatrixFactors};
use clude_graph::{measure_matrix, DiGraph, GraphDelta, MatrixKind};
use clude_lu::{
    apply_delta_with, markowitz_ordering, BennettStats, BennettWorkspace, DynamicLuFactors,
    LuResult,
};
use clude_measures::{evaluate_query, MeasureQuery};
use std::collections::{BTreeMap, BTreeSet};

/// When the store abandons its ordering and re-factorizes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RefreshPolicy {
    /// Never refresh: keep updating the first ordering's factors (INC).
    Incremental,
    /// Refresh when the factors' quality-loss against the last refresh
    /// exceeds the budget (CLUDE-style re-clustering).
    QualityTriggered {
        /// Maximum tolerated quality-loss before a refresh.
        max_quality_loss: f64,
    },
}

impl Default for RefreshPolicy {
    /// Refresh at 100 % degradation — roughly where the paper's Figure 5
    /// shows INC's single ordering has become untenable.
    fn default() -> Self {
        RefreshPolicy::QualityTriggered {
            max_quality_loss: 1.0,
        }
    }
}

/// One immutable, queryable snapshot: the graph plus its decomposed factors.
#[derive(Debug, Clone)]
pub struct EngineSnapshot {
    id: u64,
    graph: DiGraph,
    decomposed: DecomposedMatrix,
}

impl EngineSnapshot {
    /// The snapshot counter value this snapshot was produced at.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The snapshot graph.
    pub fn graph(&self) -> &DiGraph {
        &self.graph
    }

    /// The decomposed measure matrix (ordering + factors).
    pub fn decomposed(&self) -> &DecomposedMatrix {
        &self.decomposed
    }

    /// Number of nodes of the fixed universe.
    pub fn n_nodes(&self) -> usize {
        self.graph.n_nodes()
    }

    /// Answers a measure query against this snapshot by substitutions.
    pub fn query(&self, query: &MeasureQuery) -> LuResult<Vec<f64>> {
        evaluate_query(&self.decomposed, &self.graph, query)
    }
}

/// What one [`FactorStore::advance`] did.
#[derive(Debug, Clone)]
pub struct AdvanceReport {
    /// The id of the snapshot the batch produced.
    pub snapshot_id: u64,
    /// Whether the advance ended in a full refresh.
    pub refreshed: bool,
    /// Bennett work performed (zero when the advance refreshed immediately).
    pub bennett: BennettStats,
    /// Quality-loss of the factors after the advance (0 right after a
    /// refresh).
    pub quality_loss: f64,
}

/// The current snapshot's factors, maintained under a fixed ordering until
/// the refresh policy trips.
#[derive(Debug, Clone)]
pub struct FactorStore {
    kind: MatrixKind,
    policy: RefreshPolicy,
    graph: DiGraph,
    ordering: clude_sparse::Ordering,
    /// `old → new` index maps of `ordering` (cached; advances translate
    /// original-coordinate matrix deltas into factor coordinates with them).
    row_old_to_new: Vec<usize>,
    col_old_to_new: Vec<usize>,
    factors: DynamicLuFactors,
    /// Reused Bennett scratch: advances allocate nothing per pivot.
    workspace: BennettWorkspace,
    /// Factor size right after the last refresh (quality-loss reference).
    reference_nnz: usize,
    snapshot_id: u64,
}

impl FactorStore {
    /// Builds the store for a base graph: derives the measure matrix,
    /// computes its Markowitz ordering, and factorizes it fully.
    pub fn new(graph: DiGraph, kind: MatrixKind, policy: RefreshPolicy) -> EngineResult<Self> {
        let matrix = measure_matrix(&graph, kind);
        let ordering = markowitz_ordering(&matrix.pattern()).ordering;
        let reordered = matrix
            .reorder(&ordering)
            .expect("ordering was computed for this matrix");
        let factors = DynamicLuFactors::factorize(&reordered)?;
        let reference_nnz = factors.nnz();
        let workspace = BennettWorkspace::with_order(factors.n());
        Ok(FactorStore {
            kind,
            policy,
            graph,
            row_old_to_new: ordering.row().old_to_new(),
            col_old_to_new: ordering.col().old_to_new(),
            ordering,
            factors,
            workspace,
            reference_nnz,
            snapshot_id: 0,
        })
    }

    /// The matrix composition the factors are built for.
    pub fn matrix_kind(&self) -> MatrixKind {
        self.kind
    }

    /// The refresh policy in force.
    pub fn policy(&self) -> RefreshPolicy {
        self.policy
    }

    /// The current snapshot id.
    pub fn snapshot_id(&self) -> u64 {
        self.snapshot_id
    }

    /// The current snapshot graph.
    pub fn graph(&self) -> &DiGraph {
        &self.graph
    }

    /// Current factor size `|sp(Â)|`.
    pub fn factor_nnz(&self) -> usize {
        self.factors.nnz()
    }

    /// Quality-loss of the current factors against the last refresh.
    pub fn quality_loss(&self) -> f64 {
        clude::quality_loss_from_sizes(self.factors.nnz(), self.reference_nnz)
    }

    /// An immutable snapshot of the current state for the query side.
    pub fn snapshot(&self) -> EngineSnapshot {
        EngineSnapshot {
            id: self.snapshot_id,
            graph: self.graph.clone(),
            decomposed: DecomposedMatrix {
                index: self.snapshot_id as usize,
                ordering: self.ordering.clone(),
                factors: Some(MatrixFactors::Dynamic(self.factors.clone())),
            },
        }
    }

    /// Applies one coalesced delta batch, advancing the snapshot counter.
    ///
    /// The changed matrix entries are derived *directly from the graph
    /// delta* (an edge operation only perturbs its source's column of
    /// `I − d·W`, or its endpoints' entries of the Laplacian), so the cost
    /// of an advance is proportional to the change, not to the matrix.  The
    /// factors are then updated by Bennett's algorithm under the current
    /// ordering; when the numeric update fails (singular pivot en route) or
    /// the refresh policy trips afterwards, the store falls back to a full
    /// refresh — a fresh Markowitz ordering and factorization of the new
    /// matrix — so an `Ok` return always leaves servable factors.
    pub fn advance(&mut self, delta: &GraphDelta) -> EngineResult<AdvanceReport> {
        // Reject deltas naming nodes outside the universe before mutating
        // anything (the engine's ingestor pre-validates, but the store is a
        // public entry point of its own).
        let n = self.graph.n_nodes();
        for &(u, v) in delta.added.iter().chain(delta.removed.iter()) {
            if u >= n || v >= n {
                return Err(crate::error::EngineError::NodeOutOfRange {
                    node: u.max(v),
                    n_nodes: n,
                });
            }
        }
        // Capture pre-delta adjacency of the affected sources, then mutate.
        let affected = affected_sources(delta);
        let old_info: BTreeMap<usize, Vec<usize>> = affected
            .iter()
            .map(|&u| (u, self.graph.successors(u).collect()))
            .collect();
        delta.apply(&mut self.graph);
        self.snapshot_id += 1;
        let matrix_delta = self.matrix_delta(&old_info);

        let mut refreshed = false;
        let bennett = match apply_delta_with(&mut self.factors, &mut self.workspace, &matrix_delta)
        {
            Ok(stats) => stats,
            Err(_) => {
                // Numeric fallback: rebuild under a fresh ordering.
                self.refresh()?;
                refreshed = true;
                BennettStats::default()
            }
        };
        if !refreshed {
            if let RefreshPolicy::QualityTriggered { max_quality_loss } = self.policy {
                let decision =
                    refresh_decision(self.factors.nnz(), self.reference_nnz, max_quality_loss);
                if decision.should_refresh {
                    self.refresh()?;
                    refreshed = true;
                }
            }
        }
        Ok(AdvanceReport {
            snapshot_id: self.snapshot_id,
            refreshed,
            bennett,
            quality_loss: self.quality_loss(),
        })
    }

    /// The Bennett delta `(row, col, old, new)` in *factor* (reordered)
    /// coordinates, given the pre-delta successor lists of the affected
    /// sources and the already-updated graph.
    fn matrix_delta(
        &self,
        old_info: &BTreeMap<usize, Vec<usize>>,
    ) -> Vec<(usize, usize, f64, f64)> {
        let mut out = Vec::new();
        for (&u, old_succ) in old_info {
            let new_succ: Vec<usize> = self.graph.successors(u).collect();
            match self.kind {
                MatrixKind::RandomWalk { damping } => {
                    // Column u of A = I − d·W holds −d/deg(u) at each
                    // successor's row; a degree change rescales the whole
                    // column, an edge change moves its support.
                    let old_w = column_weight(damping, old_succ.len());
                    let new_w = column_weight(damping, new_succ.len());
                    let old_set: BTreeSet<usize> = old_succ.iter().copied().collect();
                    let new_set: BTreeSet<usize> = new_succ.iter().copied().collect();
                    for &v in old_set.union(&new_set) {
                        let old = if old_set.contains(&v) { old_w } else { 0.0 };
                        let new = if new_set.contains(&v) { new_w } else { 0.0 };
                        if old != new {
                            out.push((self.row_old_to_new[v], self.col_old_to_new[u], old, new));
                        }
                    }
                }
                MatrixKind::SymmetricLaplacian { shift } => {
                    // Row u of A = σ·I + D − Adj: −1 at each successor and
                    // the degree on the diagonal.
                    let old_set: BTreeSet<usize> = old_succ.iter().copied().collect();
                    let new_set: BTreeSet<usize> = new_succ.iter().copied().collect();
                    for &v in old_set.union(&new_set) {
                        if v == u {
                            continue; // folded into the diagonal below
                        }
                        let old = if old_set.contains(&v) { -1.0 } else { 0.0 };
                        let new = if new_set.contains(&v) { -1.0 } else { 0.0 };
                        if old != new {
                            out.push((self.row_old_to_new[u], self.col_old_to_new[v], old, new));
                        }
                    }
                    let diag = |set: &BTreeSet<usize>| {
                        let self_loop = if set.contains(&u) { 1.0 } else { 0.0 };
                        shift + set.len() as f64 - self_loop
                    };
                    if diag(&old_set) != diag(&new_set) {
                        out.push((
                            self.row_old_to_new[u],
                            self.col_old_to_new[u],
                            diag(&old_set),
                            diag(&new_set),
                        ));
                    }
                }
            }
        }
        out
    }

    /// Re-orders and re-factorizes the current graph's matrix from scratch.
    fn refresh(&mut self) -> EngineResult<()> {
        let matrix = measure_matrix(&self.graph, self.kind);
        self.ordering = markowitz_ordering(&matrix.pattern()).ordering;
        self.row_old_to_new = self.ordering.row().old_to_new();
        self.col_old_to_new = self.ordering.col().old_to_new();
        let reordered = matrix
            .reorder(&self.ordering)
            .expect("ordering was computed for this matrix");
        self.factors = DynamicLuFactors::factorize(&reordered)?;
        self.reference_nnz = self.factors.nnz();
        Ok(())
    }
}

/// The nodes whose matrix column/row a delta perturbs: the source endpoint
/// of every changed edge.
fn affected_sources(delta: &GraphDelta) -> BTreeSet<usize> {
    delta
        .added
        .iter()
        .chain(delta.removed.iter())
        .map(|&(u, _)| u)
        .collect()
}

/// The per-successor weight of column `u` in `I − d·W`.
fn column_weight(damping: f64, out_degree: usize) -> f64 {
    if out_degree == 0 {
        0.0
    } else {
        -damping / out_degree as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clude_lu::factorize_fresh;

    fn base_graph() -> DiGraph {
        let mut g = DiGraph::from_edges(6, (0..6).map(|i| (i, (i + 1) % 6)).collect::<Vec<_>>());
        g.add_edge(2, 0);
        g.add_edge(4, 0);
        g
    }

    fn rwr_scores(graph: &DiGraph, seed: usize, damping: f64) -> Vec<f64> {
        // Oracle: fresh factorization of the snapshot's measure matrix.
        let a = measure_matrix(graph, MatrixKind::RandomWalk { damping });
        let factors = factorize_fresh(&a).unwrap();
        let mut b = vec![0.0; graph.n_nodes()];
        b[seed] = 1.0 - damping;
        factors.solve(&b).unwrap()
    }

    #[test]
    fn advance_tracks_fresh_factorization() {
        let g = base_graph();
        let mut store = FactorStore::new(
            g.clone(),
            MatrixKind::random_walk_default(),
            RefreshPolicy::Incremental,
        )
        .unwrap();
        assert_eq!(store.snapshot_id(), 0);

        let delta = GraphDelta {
            added: vec![(1, 4), (5, 2)],
            removed: vec![(2, 0)],
        };
        let report = store.advance(&delta).unwrap();
        assert_eq!(report.snapshot_id, 1);
        assert!(!report.refreshed);
        assert!(report.bennett.rank_one_updates > 0);

        let snap = store.snapshot();
        let q = MeasureQuery::Rwr {
            seed: 3,
            damping: 0.85,
        };
        let got = snap.query(&q).unwrap();
        let mut expected = rwr_scores(store.graph(), 3, 0.85);
        clude_sparse::vector::normalize_l1(&mut expected);
        for (a, b) in got.iter().zip(expected.iter()) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn quality_policy_refreshes_on_degradation() {
        let g = base_graph();
        // A zero budget refreshes on any factor growth.
        let mut store = FactorStore::new(
            g,
            MatrixKind::random_walk_default(),
            RefreshPolicy::QualityTriggered {
                max_quality_loss: 0.0,
            },
        )
        .unwrap();
        let mut refreshed_any = false;
        // Densify the graph step by step; fill-in must eventually appear.
        for k in 0..4 {
            let delta = GraphDelta {
                added: vec![(k, (k + 3) % 6), ((k + 2) % 6, k)],
                removed: vec![],
            };
            let report = store.advance(&delta).unwrap();
            refreshed_any |= report.refreshed;
            if report.refreshed {
                assert_eq!(report.quality_loss, 0.0);
            }
        }
        assert!(refreshed_any, "densification never tripped the refresh");
        // Factors still track the graph exactly.
        let snap = store.snapshot();
        let got = snap
            .query(&MeasureQuery::PageRank { damping: 0.85 })
            .unwrap();
        assert!((got.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn snapshots_are_independent_of_later_advances() {
        let g = base_graph();
        let mut store = FactorStore::new(
            g,
            MatrixKind::random_walk_default(),
            RefreshPolicy::default(),
        )
        .unwrap();
        let snap0 = store.snapshot();
        let q = MeasureQuery::PageRank { damping: 0.85 };
        let before = snap0.query(&q).unwrap();
        store
            .advance(&GraphDelta {
                added: vec![(0, 3)],
                removed: vec![(0, 1)],
            })
            .unwrap();
        // The old snapshot still answers from the old factors.
        let after = snap0.query(&q).unwrap();
        assert_eq!(before, after);
        assert_eq!(snap0.id(), 0);
        assert_eq!(store.snapshot().id(), 1);
        // And the new snapshot differs (the graph changed).
        let new = store.snapshot().query(&q).unwrap();
        assert!(before
            .iter()
            .zip(new.iter())
            .any(|(a, b)| (a - b).abs() > 1e-12));
    }

    #[test]
    fn advance_rejects_out_of_universe_deltas_without_mutating() {
        let mut store = FactorStore::new(
            base_graph(),
            MatrixKind::random_walk_default(),
            RefreshPolicy::Incremental,
        )
        .unwrap();
        let bad = GraphDelta {
            added: vec![(0, 999)],
            removed: vec![],
        };
        let err = store.advance(&bad).unwrap_err();
        assert!(matches!(
            err,
            crate::error::EngineError::NodeOutOfRange {
                node: 999,
                n_nodes: 6
            }
        ));
        // Nothing moved: same snapshot, same graph, still servable.
        assert_eq!(store.snapshot_id(), 0);
        assert_eq!(store.graph().n_edges(), base_graph().n_edges());
        assert!(store
            .snapshot()
            .query(&MeasureQuery::PageRank { damping: 0.85 })
            .is_ok());
    }

    #[test]
    fn symmetric_laplacian_advance_matches_fresh_factorization() {
        // An undirected path graph; deltas change both edge directions.
        let mut g = DiGraph::new(5);
        for i in 0..4 {
            g.add_undirected_edge(i, i + 1);
        }
        let kind = MatrixKind::SymmetricLaplacian { shift: 1.0 };
        let mut store = FactorStore::new(g, kind, RefreshPolicy::Incremental).unwrap();
        let delta = GraphDelta {
            added: vec![(0, 3), (3, 0), (1, 4), (4, 1)],
            removed: vec![(1, 2), (2, 1)],
        };
        store.advance(&delta).unwrap();
        // Oracle: fresh factors of the updated graph's Laplacian.
        let a = measure_matrix(store.graph(), kind);
        let fresh = factorize_fresh(&a).unwrap();
        let b = vec![1.0, -0.5, 2.0, 0.25, -1.0];
        let expected = fresh.solve(&b).unwrap();
        let got = clude_lu::solve_original(
            match store.snapshot().decomposed().factors.as_ref().unwrap() {
                clude::MatrixFactors::Dynamic(f) => f,
                _ => unreachable!("store keeps dynamic factors"),
            },
            &store.snapshot().decomposed().ordering,
            &b,
        )
        .unwrap();
        for (x, y) in got.iter().zip(expected.iter()) {
            assert!((x - y).abs() < 1e-9, "{x} vs {y}");
        }
    }

    #[test]
    fn accessors_expose_state() {
        let store = FactorStore::new(
            base_graph(),
            MatrixKind::random_walk_default(),
            RefreshPolicy::Incremental,
        )
        .unwrap();
        assert_eq!(store.matrix_kind(), MatrixKind::random_walk_default());
        assert_eq!(store.policy(), RefreshPolicy::Incremental);
        assert!(store.factor_nnz() > 0);
        assert_eq!(store.quality_loss(), 0.0);
        assert_eq!(store.snapshot().n_nodes(), 6);
        assert!(store.snapshot().graph().has_edge(2, 0));
        assert_eq!(store.snapshot().decomposed().index, 0);
    }
}
