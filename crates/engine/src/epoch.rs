//! Wait-free epoch-published snapshot handles.
//!
//! The engine's hot read path used to acquire the snapshot-ring `RwLock` on
//! every query just to clone the newest `Arc<EngineSnapshot>` — a shared
//! lock, but still a contended cache line and a reader/writer convoy under
//! high qps.  [`SnapshotHandle`] replaces that acquisition with an epoch
//! protocol over the same Arc-swap discipline the copy-on-write ring already
//! uses for factor blocks:
//!
//! * **publish** (writer, serialized by the engine's ingest mutex): write the
//!   new `Arc` into the handle's slot, then increment the epoch counter with
//!   `Release` ordering.  The slot write therefore *happens-before* any
//!   reader that observes the new epoch value.
//! * **load** (readers): read the epoch with `Acquire` and compare it against
//!   a thread-local `(handle id, epoch, Arc)` cache.  In the steady state —
//!   no publish since this thread's last load — the load is one atomic read
//!   plus a thread-local hit: **no lock of any kind**, wait-free, and the
//!   shared `Arc`'s reference count is not touched by other threads' loads.
//!   Only the first load after a publish (per thread) refreshes the cache
//!   through the slot's `Mutex`, a once-per-epoch cost that is amortized to
//!   nothing at serving rates.
//!
//! A snapshot tagged with epoch `E` is always the snapshot published at `E`
//! *or newer* (the slot is written before the epoch increment, and the slot
//! mutex orders the refresh after that write), so per thread the served
//! snapshot sequence is monotone and never older than the last completed
//! publish the thread could have observed.  Lock order: the engine's ingest
//! mutex is held *around* `publish`, which takes the slot mutex; readers
//! take the slot mutex without the ingest mutex — no cycle.

use crate::store::EngineSnapshot;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Process-wide allocator distinguishing handles in the thread-local cache
/// (a thread may serve several engines over its lifetime).
static NEXT_HANDLE_ID: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// One cached `(handle id, epoch, snapshot)` entry per thread: the
    /// steady-state fast path of [`SnapshotHandle::load`].  A single entry
    /// suffices because a serving thread hammers one engine; switching
    /// handles just misses once.
    static CACHED: RefCell<Option<(usize, u64, Arc<EngineSnapshot>)>> = const { RefCell::new(None) };
}

/// The engine's wait-free published-snapshot cell: readers get the current
/// snapshot without locks in the steady state, the single writer publishes
/// with one slot store plus one `Release` epoch increment.
#[derive(Debug)]
pub struct SnapshotHandle {
    id: usize,
    epoch: AtomicU64,
    slot: Mutex<Arc<EngineSnapshot>>,
}

impl SnapshotHandle {
    /// A handle initially publishing `snapshot`.
    pub fn new(snapshot: Arc<EngineSnapshot>) -> Self {
        // lint: allow(atomic-ordering) — handle-id allocation needs only
        // uniqueness, which the atomic fetch_add gives at any ordering.
        let id = NEXT_HANDLE_ID.fetch_add(1, Ordering::Relaxed);
        SnapshotHandle {
            id,
            epoch: AtomicU64::new(0),
            slot: Mutex::new(snapshot),
        }
    }

    /// Publishes `snapshot` as the new current snapshot.  Callers serialize
    /// publishes (the engine holds its ingest mutex); the `Release`
    /// increment orders the slot write before the epoch value readers
    /// acquire, which is the entire correctness argument of [`Self::load`].
    pub fn publish(&self, snapshot: Arc<EngineSnapshot>) {
        {
            let mut slot = self.slot.lock().unwrap_or_else(PoisonError::into_inner);
            *slot = snapshot;
        }
        self.epoch.fetch_add(1, Ordering::Release);
    }

    /// The current snapshot.  Steady state (no publish since this thread's
    /// last load of this handle): one `Acquire` epoch read plus a
    /// thread-local hit — wait-free, zero locks.  After a publish, the first
    /// load per thread refreshes through the slot mutex.
    pub fn load(&self) -> Arc<EngineSnapshot> {
        let epoch = self.epoch.load(Ordering::Acquire);
        CACHED.with(|cell| {
            let mut cached = cell.borrow_mut();
            if let Some((id, e, snap)) = cached.as_ref() {
                if *id == self.id && *e == epoch {
                    return Arc::clone(snap);
                }
            }
            let snap = Arc::clone(&self.slot.lock().unwrap_or_else(PoisonError::into_inner));
            *cached = Some((self.id, epoch, Arc::clone(&snap)));
            snap
        })
    }

    /// The number of completed publishes (the current epoch), for stats and
    /// tests.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{FactorStore, RefreshPolicy};
    use clude_graph::{DiGraph, GraphDelta, MatrixKind};

    fn store() -> FactorStore {
        let g = DiGraph::from_edges(4, vec![(0, 1), (1, 2), (2, 3), (3, 0)]);
        FactorStore::new(
            g,
            MatrixKind::random_walk_default(),
            RefreshPolicy::Incremental,
        )
        .unwrap()
    }

    fn advance(store: &mut FactorStore, from: usize, to: usize) {
        store
            .advance(&GraphDelta {
                added: vec![(from, to)],
                removed: vec![],
            })
            .unwrap();
    }

    #[test]
    fn load_returns_published_snapshot_and_epoch_advances() {
        let mut st = store();
        let s0 = Arc::new(st.snapshot());
        let handle = SnapshotHandle::new(Arc::clone(&s0));
        assert_eq!(handle.epoch(), 0);
        assert!(Arc::ptr_eq(&handle.load(), &s0));
        // Steady state: repeated loads hit the thread-local cache and agree.
        assert!(Arc::ptr_eq(&handle.load(), &s0));

        advance(&mut st, 0, 2);
        let s1 = Arc::new(st.snapshot());
        handle.publish(Arc::clone(&s1));
        assert_eq!(handle.epoch(), 1);
        assert!(Arc::ptr_eq(&handle.load(), &s1));
        assert_eq!(handle.load().id(), 1);
    }

    #[test]
    fn interleaved_handles_do_not_cross_serve() {
        let (mut sta, stb) = (store(), store());
        let a0 = Arc::new(sta.snapshot());
        let b0 = Arc::new(stb.snapshot());
        let ha = SnapshotHandle::new(Arc::clone(&a0));
        let hb = SnapshotHandle::new(Arc::clone(&b0));
        // Alternating loads across handles must never serve the other
        // handle's snapshot even though they share the thread-local entry.
        for _ in 0..3 {
            assert!(Arc::ptr_eq(&ha.load(), &a0));
            assert!(Arc::ptr_eq(&hb.load(), &b0));
        }
        advance(&mut sta, 1, 3);
        let a1 = Arc::new(sta.snapshot());
        ha.publish(Arc::clone(&a1));
        assert!(Arc::ptr_eq(&ha.load(), &a1));
        assert!(Arc::ptr_eq(&hb.load(), &b0));
    }

    #[test]
    fn concurrent_readers_see_monotone_snapshot_ids() {
        let mut st = store();
        let handle = Arc::new(SnapshotHandle::new(Arc::new(st.snapshot())));
        let publishes = 20u64;
        let mut readers = Vec::new();
        for _ in 0..4 {
            let h = Arc::clone(&handle);
            readers.push(std::thread::spawn(move || {
                let mut last = 0u64;
                loop {
                    let snap = h.load();
                    let id = snap.id();
                    assert!(id >= last, "snapshot ids went backwards: {id} < {last}");
                    last = id;
                    if id >= publishes {
                        break;
                    }
                }
            }));
        }
        for i in 0..publishes {
            advance(&mut st, (i % 4) as usize, ((i + 2) % 4) as usize);
            handle.publish(Arc::new(st.snapshot()));
        }
        for r in readers {
            r.join().unwrap();
        }
    }
}
