//! The partitioned factor store: per-shard LU factors with a cross-shard
//! coupling term and parallel delta application.
//!
//! CLUDE's clustered incremental LU exists because updates to an evolving
//! graph are spatially local; the [`ShardedFactorStore`] exploits the same
//! locality *within one live snapshot*.  The node universe is split by a
//! [`NodePartition`]; each shard owns the decomposed principal submatrix
//! `A[S_s, S_s]` of the measure matrix (its own ordering, dynamic factors and
//! [`BennettWorkspace`]), while the entries whose
//! row and column straddle two shards accumulate in a sparse coupling store:
//!
//! ```text
//!        A  =  blockdiag(A_00, …, A_kk)  +  C        (exactly, by construction)
//! ```
//!
//! A [`GraphDelta`] is routed entry-wise: an entry whose row and column live
//! in the same shard becomes a Bennett update of that shard's factors (in
//! local coordinates), a cross-shard entry is a plain value write into the
//! coupling store — it never touches any factors.  Because the per-shard
//! entry lists are disjoint, shards with pending work apply their updates **in
//! parallel** across scoped threads, each sweeping with its own workspace.
//!
//! Queries recombine exactly: snapshots expose the per-shard factors plus a
//! frozen coupling matrix, and the snapshot's [`crate::coupling`] strategy
//! (block Jacobi, block Gauss–Seidel, or a cached Woodbury correction)
//! converges for the engine's diagonally dominant M-matrices, matching the
//! monolithic store to well below 1e-9.

use crate::coupling::{CouplingConfig, CouplingPlan};
use crate::error::{EngineError, EngineResult};
use crate::store::{
    affected_sources, global_matrix_delta, order_and_factorize, EngineSnapshot, OrderedFactors,
    RefreshPolicy, ShardSnapshot,
};
use clude::{partition::edge_locality_partition, DecomposedMatrix};
use clude_graph::{
    btf_partition, coupling_matrix, shard_measure_matrix, DeltaClass, DiGraph, GraphDelta,
    MatrixKind, NodePartition,
};
use clude_lu::{BennettStats, BennettWorkspace, LuError, RefactorWorkspace, ShardWorkspaces};
use clude_sparse::{CooMatrix, CsrMatrix};
use clude_telemetry::{EngineEvent, Stage, TelemetryRegistry, Timer};
use std::collections::BTreeMap;
use std::sync::Arc;

/// How the store derives a node partition when it repartitions (and how the
/// engine derives the initial one).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PartitionStrategy {
    /// Greedy edge-locality growth: minimizes the coupling size without
    /// constraining its shape (`clude::partition::edge_locality_partition`).
    #[default]
    EdgeLocality,
    /// BTF structure: maximum transversal + Tarjan SCCs, coarsened so the
    /// cross-shard coupling is block-triangular — one Gauss–Seidel sweep in
    /// SCC topological order is then exact (`clude_graph::btf_partition`).
    /// May produce fewer shards than requested when the graph's SCCs are
    /// coarse.
    Btf,
}

/// One shard's factors under its own ordering (local coordinates
/// throughout; refreshes replace the whole [`OrderedFactors`]).
#[derive(Debug, Clone)]
struct FactorShard {
    of: OrderedFactors,
}

impl FactorShard {
    fn build(
        graph: &DiGraph,
        kind: MatrixKind,
        partition: &NodePartition,
        shard: usize,
        telemetry: &TelemetryRegistry,
    ) -> EngineResult<Self> {
        let matrix = shard_measure_matrix(graph, kind, partition, shard);
        Ok(FactorShard {
            of: order_and_factorize(&matrix, telemetry, shard)?,
        })
    }

    fn quality_loss(&self) -> f64 {
        clude::quality_loss_from_sizes(self.of.factors.nnz(), self.of.reference_nnz)
    }

    /// Applies one shard-local entry list (local coordinates) through the
    /// shard's ordering, refreshing on numeric failure or when the policy
    /// trips.  Runs on a worker thread during parallel advances.
    ///
    /// Value-only batches (every changed position already on a stored factor
    /// slot) take the pattern-frozen refactor fast path when the store has it
    /// enabled: one pass down the frozen symbolic pattern instead of a
    /// Bennett sweep per entry.
    fn apply(
        &mut self,
        ws: &mut BennettWorkspace,
        rws: &mut RefactorWorkspace,
        entries: &[(usize, usize, f64, f64)],
        value_only: bool,
        ctx: SweepContext<'_>,
        shard: usize,
    ) -> Result<ShardOutcome, LuError> {
        let mapped: Vec<(usize, usize, f64, f64)> = entries
            .iter()
            .map(|&(r, c, old, new)| {
                (
                    self.of.row_old_to_new[r],
                    self.of.col_old_to_new[c],
                    old,
                    new,
                )
            })
            .collect();
        if ctx.refactor && value_only && !entries.is_empty() {
            let (_stats, refreshed) =
                self.of
                    .refactor_or_refresh(rws, &mapped, ctx.telemetry, shard, || {
                        shard_measure_matrix(ctx.graph, ctx.kind, ctx.partition, shard)
                    })?;
            return Ok(ShardOutcome {
                bennett: BennettStats::default(),
                refreshed,
                refactored: !refreshed,
            });
        }
        let (bennett, refreshed) =
            self.of
                .apply_or_refresh(ws, &mapped, ctx.policy, ctx.telemetry, shard, || {
                    shard_measure_matrix(ctx.graph, ctx.kind, ctx.partition, shard)
                })?;
        Ok(ShardOutcome {
            bennett,
            refreshed,
            refactored: false,
        })
    }
}

/// Shared read-only context of one advance's per-shard sweeps.
#[derive(Clone, Copy)]
struct SweepContext<'a> {
    graph: &'a DiGraph,
    partition: &'a NodePartition,
    kind: MatrixKind,
    policy: RefreshPolicy,
    /// Whether value-only batches take the pattern-frozen refactor path.
    refactor: bool,
    /// Shared sink for per-shard sweep/refresh spans (worker threads record
    /// concurrently through relaxed atomics).
    telemetry: &'a TelemetryRegistry,
}

/// What one shard did during an advance (worker-thread result).
#[derive(Debug, Clone, Copy, Default)]
struct ShardOutcome {
    bennett: BennettStats,
    refreshed: bool,
    refactored: bool,
}

/// The cross-shard entries of the measure matrix, mutable form.
///
/// Row-major sparse storage in global coordinates; a delta's cross-shard
/// entries are plain value writes here (no factor work at all), and
/// snapshots freeze the current state into a [`CsrMatrix`].
#[derive(Debug, Clone, Default)]
struct CouplingStore {
    rows: Vec<BTreeMap<usize, f64>>,
    nnz: usize,
}

impl CouplingStore {
    fn from_matrix(m: &CsrMatrix) -> Self {
        let mut rows = vec![BTreeMap::new(); m.n_rows()];
        let mut nnz = 0;
        for (i, j, v) in m.iter() {
            if v != 0.0 {
                rows[i].insert(j, v);
                nnz += 1;
            }
        }
        CouplingStore { rows, nnz }
    }

    fn set(&mut self, row: usize, col: usize, value: f64) {
        if value == 0.0 {
            if self.rows[row].remove(&col).is_some() {
                self.nnz -= 1;
            }
        } else if self.rows[row].insert(col, value).is_none() {
            self.nnz += 1;
        }
    }

    fn nnz(&self) -> usize {
        self.nnz
    }

    fn to_csr(&self) -> CsrMatrix {
        let n = self.rows.len();
        let mut coo = CooMatrix::with_capacity(n, n, self.nnz);
        for (i, cols) in self.rows.iter().enumerate() {
            for (&j, &v) in cols {
                // lint: allow(panic-surface) — `i` enumerates `rows` and `j`
                // was bounds-checked against `rows.len()` when the entry was
                // routed into the store; the push cannot be out of bounds.
                coo.push(i, j, v).expect("coupling entries are in bounds");
            }
        }
        CsrMatrix::from_coo(&coo)
    }
}

/// Per-shard slice of a [`ShardedAdvanceReport`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ShardAdvance {
    /// The shard id.
    pub shard: usize,
    /// Changed matrix entries applied to this shard's factors.
    pub entries_applied: u64,
    /// Bennett rank-one updates (sweeps) the entries triggered.
    pub sweeps: u64,
    /// Cross-shard edge changes routed *from* this shard (its nodes were the
    /// source endpoint) into the coupling store.
    pub cross_edges_seen: u64,
    /// Whether this shard's block was re-ordered and re-factorized.
    pub refreshed: bool,
    /// Whether this shard's slice of the batch was value-only against its
    /// frozen factor pattern.
    pub value_only: bool,
    /// Whether this shard absorbed the batch by a pattern-frozen
    /// refactorization instead of per-entry Bennett sweeps.
    pub refactored: bool,
    /// The shard's quality-loss after the advance.
    pub quality_loss: f64,
}

/// What one [`ShardedFactorStore::advance`] did, shard by shard.
#[derive(Debug, Clone, Default)]
pub struct ShardedAdvanceReport {
    /// The id of the snapshot the batch produced.
    pub snapshot_id: u64,
    /// Aggregated Bennett work across all shards.
    pub bennett: BennettStats,
    /// Per-shard breakdown, indexed by shard id (shards without work report
    /// zeros).
    pub per_shard: Vec<ShardAdvance>,
    /// Whether any shard refreshed.
    pub refreshed: bool,
    /// Shards that absorbed the batch by pattern-frozen refactorization.
    pub shards_refactored: u64,
    /// Worst per-shard quality-loss after the advance.
    pub quality_loss: f64,
    /// Cross-shard coupling entries written by this batch.
    pub coupling_writes: u64,
    /// Shards whose shared factor handle was re-frozen by this batch; the
    /// other `n_shards − shards_republished` blocks of the next snapshot are
    /// pointer-shared with the previous one (copy-on-write ring).
    pub shards_republished: u64,
    /// Whether the frozen coupling matrix was rebuilt (any cross-shard entry
    /// changed); `false` shares the previous snapshot's coupling.
    pub coupling_republished: bool,
    /// Whether this batch crossed the coupling budget and re-ran the
    /// edge-locality partition (all shards re-ordered and re-factorized).
    pub repartitioned: bool,
    /// Whether this batch re-froze the coupling plan *and* the new plan
    /// carries a Woodbury correction (i.e. the cached correction was
    /// rebuilt); `false` shares the previous snapshot's plan or the plan has
    /// no correction to cache.
    pub correction_rebuilt: bool,
}

/// Per-shard LU factors over a partitioned node universe, updated in
/// parallel, with cross-shard coupling served at query time.
///
/// The sharded counterpart of [`crate::store::FactorStore`]: same maintenance
/// policies, same snapshot/query contract (snapshots answer identically to
/// within the block solve's 1e-13 tolerance), but deltas touching disjoint
/// shards cost one *small* Bennett sweep per shard — run concurrently — and
/// cross-shard edges bypass the numeric layer entirely.
#[derive(Debug)]
pub struct ShardedFactorStore {
    kind: MatrixKind,
    policy: RefreshPolicy,
    partition: Arc<NodePartition>,
    graph: DiGraph,
    shards: Vec<FactorShard>,
    workspaces: ShardWorkspaces,
    /// Reused per-shard refactorization scratch (stamped dense accumulator),
    /// rebuilt alongside `workspaces` on repartition/restore.
    refactor_workspaces: Vec<RefactorWorkspace>,
    /// Whether value-only batches take the pattern-frozen refactor fast path
    /// instead of per-entry Bennett sweeps.
    refactor: bool,
    /// How repartitions derive the replacement partition.
    partition_strategy: PartitionStrategy,
    coupling: CouplingStore,
    snapshot_id: u64,
    /// Per-shard shared factor handles snapshots serve from, re-frozen only
    /// for the shards a batch swept or refreshed; the rest stay shared with
    /// every earlier snapshot in the ring (copy-on-write).
    published: Vec<Arc<DecomposedMatrix>>,
    /// The frozen coupling CSR, rebuilt only by batches that wrote a
    /// cross-shard entry.
    published_coupling: Arc<CsrMatrix>,
    /// Coupling-solver configuration: strategy, tolerance, re-partition
    /// budget.
    coupling_cfg: CouplingConfig,
    /// The frozen coupling plan (Gauss–Seidel order + cached Woodbury
    /// correction), re-frozen only when the coupling changed, a shard the
    /// correction depends on re-froze, or the store re-partitioned.
    plan: Arc<CouplingPlan>,
    /// Coupling size that triggers the next adaptive re-partition (`None`
    /// disables; backed off after each re-partition for amortization).
    next_repartition_at: Option<usize>,
    /// Telemetry sink for sweep/refresh/freeze/plan spans and repartition
    /// events, stamped onto snapshots; a disabled stub unless
    /// [`ShardedFactorStore::with_telemetry`].
    telemetry: Arc<TelemetryRegistry>,
}

impl ShardedFactorStore {
    /// Builds the store for a base graph over the given partition: derives
    /// and factorizes every shard's principal submatrix and collects the
    /// cross-shard entries into the coupling store.
    pub fn new(
        graph: DiGraph,
        kind: MatrixKind,
        policy: RefreshPolicy,
        partition: NodePartition,
    ) -> EngineResult<Self> {
        Self::with_registry(
            graph,
            kind,
            policy,
            partition,
            Arc::new(TelemetryRegistry::disabled()),
        )
    }

    /// Like [`ShardedFactorStore::new`], but with the telemetry registry
    /// present *during* construction, so every shard's build-time ordering
    /// contest lands in the journal (`ordering_selected`) instead of going
    /// to a disabled stub.  [`ShardedFactorStore::with_telemetry`] only
    /// swaps the sink for later spans.
    pub fn with_registry(
        graph: DiGraph,
        kind: MatrixKind,
        policy: RefreshPolicy,
        partition: NodePartition,
        telemetry: Arc<TelemetryRegistry>,
    ) -> EngineResult<Self> {
        assert_eq!(
            graph.n_nodes(),
            partition.n_nodes(),
            "partition must cover the graph's node universe"
        );
        let partition = Arc::new(partition);
        let shards: Vec<FactorShard> = (0..partition.n_shards())
            .map(|s| FactorShard::build(&graph, kind, &partition, s, &telemetry))
            .collect::<EngineResult<_>>()?;
        let workspaces = ShardWorkspaces::for_orders(&partition.shard_sizes());
        let refactor_workspaces = refactor_workspaces_for(&partition);
        let coupling = CouplingStore::from_matrix(&coupling_matrix(&graph, kind, &partition));
        let published: Vec<Arc<DecomposedMatrix>> =
            shards.iter().map(|s| s.of.publish(0)).collect();
        let published_coupling = Arc::new(coupling.to_csr());
        let coupling_cfg = CouplingConfig::default();
        let plan = Arc::new(CouplingPlan::build(
            &partition,
            &published,
            &published_coupling,
            coupling_cfg.solver,
        )?);
        Ok(ShardedFactorStore {
            kind,
            policy,
            partition,
            graph,
            shards,
            workspaces,
            refactor_workspaces,
            refactor: true,
            partition_strategy: PartitionStrategy::default(),
            coupling,
            snapshot_id: 0,
            published,
            published_coupling,
            next_repartition_at: coupling_cfg.repartition_budget,
            coupling_cfg,
            plan,
            telemetry,
        })
    }

    /// Enables or disables the pattern-frozen refactor fast path for
    /// value-only batches (builder style; on by default).  Disabled, every
    /// batch goes through per-entry Bennett sweeps — the A/B lever of the
    /// `--no-refactor` benchmark flag.
    pub fn with_refactor(mut self, refactor: bool) -> Self {
        self.refactor = refactor;
        self
    }

    /// Sets how adaptive repartitions derive the replacement partition
    /// (builder style; edge locality by default).  The *current* partition is
    /// untouched — the strategy takes effect at the next repartition trigger.
    pub fn with_partition_strategy(mut self, strategy: PartitionStrategy) -> Self {
        self.partition_strategy = strategy;
        self
    }

    /// The partition strategy repartitions will use.
    pub fn partition_strategy(&self) -> PartitionStrategy {
        self.partition_strategy
    }

    /// The durable slice of the store for the checkpoint writer.  Blocks
    /// are the *published* per-shard `Arc`s — advances republish every shard
    /// they touch, so the published content always equals the live factors —
    /// plus each shard's `reference_nnz` quality anchor; the coupling comes
    /// from the mutable store (identical in content to the frozen CSR).
    pub(crate) fn durable_state(&self) -> crate::checkpoint::DurableState {
        let coupling = self
            .coupling
            .rows
            .iter()
            .enumerate()
            .flat_map(|(i, cols)| cols.iter().map(move |(&j, &v)| (i, j, v)))
            .collect();
        crate::checkpoint::DurableState {
            snapshot_id: self.snapshot_id,
            kind: self.kind,
            graph: self.graph.clone(),
            partition: (*self.partition).clone(),
            next_repartition_at: self.next_repartition_at,
            coupling,
            blocks: self
                .published
                .iter()
                .zip(&self.shards)
                .map(|(p, s)| (Arc::clone(p), s.of.reference_nnz))
                .collect(),
        }
    }

    /// Rebuilds a sharded store from a decoded checkpoint image.  Factors,
    /// orderings, quality anchors, coupling entries, the partition and the
    /// re-partition budget are restored bit-identically, so WAL replay from
    /// here takes exactly the refresh/repartition decisions the original
    /// took.
    pub(crate) fn restore(
        policy: RefreshPolicy,
        coupling_cfg: CouplingConfig,
        telemetry: Arc<TelemetryRegistry>,
        state: crate::checkpoint::StoreState,
    ) -> EngineResult<Self> {
        let crate::checkpoint::StoreState {
            snapshot_id,
            kind,
            graph,
            partition,
            next_repartition_at,
            coupling,
            blocks,
        } = state;
        if graph.n_nodes() != partition.n_nodes() {
            return Err(EngineError::Persistence(format!(
                "checkpoint partition covers {} nodes but the graph has {}",
                partition.n_nodes(),
                graph.n_nodes()
            )));
        }
        let partition = Arc::new(partition);
        let n = graph.n_nodes();
        let mut coupling_store = CouplingStore {
            rows: vec![BTreeMap::new(); n],
            nnz: 0,
        };
        for &(i, j, v) in &coupling {
            if i >= n || j >= n {
                return Err(EngineError::Persistence(format!(
                    "checkpoint coupling entry ({i}, {j}) outside the {n}-node universe"
                )));
            }
            coupling_store.set(i, j, v);
        }
        let mut shards = Vec::with_capacity(blocks.len());
        let mut published = Vec::with_capacity(blocks.len());
        for block in blocks {
            let of = OrderedFactors {
                row_old_to_new: block.ordering.row().old_to_new(),
                col_old_to_new: block.ordering.col().old_to_new(),
                ordering: block.ordering,
                factors: block.factors,
                reference_nnz: block.reference_nnz,
                // Rebuilt lazily by the first refactor pass; a checkpoint
                // block carries no matrix.
                reordered: None,
            };
            published.push(of.publish(block.index));
            shards.push(FactorShard { of });
        }
        let workspaces = ShardWorkspaces::for_orders(&partition.shard_sizes());
        let refactor_workspaces = refactor_workspaces_for(&partition);
        let published_coupling = Arc::new(coupling_store.to_csr());
        let plan = Arc::new(CouplingPlan::build(
            &partition,
            &published,
            &published_coupling,
            coupling_cfg.solver,
        )?);
        Ok(ShardedFactorStore {
            kind,
            policy,
            partition,
            graph,
            shards,
            workspaces,
            refactor_workspaces,
            refactor: true,
            partition_strategy: PartitionStrategy::default(),
            coupling: coupling_store,
            snapshot_id,
            published,
            published_coupling,
            next_repartition_at,
            coupling_cfg,
            plan,
            telemetry,
        })
    }

    /// Sets the telemetry registry sweep/refresh/freeze/plan spans and
    /// repartition events are recorded into (builder style).  Snapshots
    /// carry the same handle so query-path coupling solves record too.
    pub fn with_telemetry(mut self, telemetry: Arc<TelemetryRegistry>) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Sets the coupling-solver configuration (builder style) and, when the
    /// strategy changed, re-freezes the coupling plan under it — a Woodbury
    /// configuration builds its cached correction here (one block solve per
    /// captured column).  The plan depends only on the strategy, so
    /// tolerance- or budget-only changes keep the existing one.
    pub fn with_coupling_config(mut self, cfg: CouplingConfig) -> EngineResult<Self> {
        let solver_changed = cfg.solver != self.coupling_cfg.solver;
        self.coupling_cfg = cfg;
        self.next_repartition_at = cfg.repartition_budget;
        if solver_changed {
            self.plan = Arc::new(CouplingPlan::build(
                &self.partition,
                &self.published,
                &self.published_coupling,
                cfg.solver,
            )?);
        }
        Ok(self)
    }

    /// The coupling-solver configuration in force.
    pub fn coupling_config(&self) -> CouplingConfig {
        self.coupling_cfg
    }

    /// The matrix composition the factors are built for.
    pub fn matrix_kind(&self) -> MatrixKind {
        self.kind
    }

    /// The refresh policy in force.
    pub fn policy(&self) -> RefreshPolicy {
        self.policy
    }

    /// The node partition the store is sharded by.
    pub fn partition(&self) -> &NodePartition {
        &self.partition
    }

    /// Number of factor shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The current snapshot id.
    pub fn snapshot_id(&self) -> u64 {
        self.snapshot_id
    }

    /// The current snapshot graph.
    pub fn graph(&self) -> &DiGraph {
        &self.graph
    }

    /// Total factor size across shards, `Σ_s |sp(Â_s)|`.
    pub fn factor_nnz(&self) -> usize {
        self.shards.iter().map(|s| s.of.factors.nnz()).sum()
    }

    /// Number of live cross-shard coupling entries.
    pub fn coupling_nnz(&self) -> usize {
        self.coupling.nnz()
    }

    /// Worst per-shard quality-loss against the shards' last refreshes.
    pub fn quality_loss(&self) -> f64 {
        self.shards
            .iter()
            .map(FactorShard::quality_loss)
            .fold(0.0, f64::max)
    }

    /// An immutable snapshot of the current state for the query side.
    ///
    /// Cheap by construction: the per-shard factor blocks and the frozen
    /// coupling are shared [`Arc`] handles re-frozen inside
    /// [`ShardedFactorStore::advance`] for exactly the shards the batch
    /// touched, so this clones `n_shards` pointers and the graph — never a
    /// factor block.  Consecutive snapshots are [`Arc::ptr_eq`] on every
    /// untouched shard's [`ShardSnapshot::shared`] handle.
    pub fn snapshot(&self) -> EngineSnapshot {
        let shards = self
            .published
            .iter()
            .map(|d| ShardSnapshot::new(Arc::clone(d)))
            .collect();
        EngineSnapshot::from_parts(
            self.snapshot_id,
            self.graph.clone(),
            Arc::clone(&self.partition),
            shards,
            Arc::clone(&self.published_coupling),
            self.coupling_cfg.solver,
            self.coupling_cfg.tolerance,
            Arc::clone(&self.plan),
            Arc::clone(&self.telemetry),
        )
    }

    /// Applies one coalesced delta batch, advancing the snapshot counter.
    ///
    /// The batch's matrix entries are derived from the graph delta alone,
    /// routed by the partition — intra-shard entries become per-shard Bennett
    /// updates (translated to local factor coordinates), cross-shard entries
    /// are value writes into the coupling store — and shards with pending
    /// work sweep **in parallel** on scoped threads, each with its own
    /// workspace.  Numeric failures and policy trips refresh only the
    /// affected shard; an `Ok` return always leaves servable factors.
    ///
    /// An `Err` (a shard's rebuild itself failed, which a diagonally
    /// dominant block cannot trigger in practice) leaves the store
    /// mid-batch — graph and coupling already advanced, sibling shards
    /// possibly swept — and must be treated as fatal for this store; only
    /// out-of-range deltas are rejected before any mutation.
    pub fn advance(&mut self, delta: &GraphDelta) -> EngineResult<ShardedAdvanceReport> {
        let n = self.graph.n_nodes();
        for &(u, v) in delta.added.iter().chain(delta.removed.iter()) {
            if u >= n || v >= n {
                return Err(crate::error::EngineError::NodeOutOfRange {
                    node: u.max(v),
                    n_nodes: n,
                });
            }
        }
        let k = self.shards.len();
        let mut per_shard: Vec<ShardAdvance> = (0..k)
            .map(|s| ShardAdvance {
                shard: s,
                ..ShardAdvance::default()
            })
            .collect();
        // Edge-level routing is only bookkeeping (the matrix routing below
        // is entry-wise): count cross-shard edge changes against their
        // source's shard, allocation-free.
        for &(u, v) in delta.added.iter().chain(delta.removed.iter()) {
            if !self.partition.is_intra(u, v) {
                per_shard[self.partition.shard_of(u)].cross_edges_seen += 1;
            }
        }

        // Classify each shard's slice of the batch against its frozen factor
        // pattern (pattern-only, so the order against the graph mutation
        // below is immaterial).  Only intra-shard edges can introduce a new
        // intra-block matrix position; a cross edge contributes nothing but
        // rescales of existing intra entries to a shard's list — so a shard
        // whose intra slice is value-only can absorb the whole batch down its
        // frozen pattern.
        let (intra_deltas, _cross) = delta.split_by(&self.partition);
        let value_only: Vec<bool> = intra_deltas
            .iter()
            .zip(&self.shards)
            .map(|(d, shard)| {
                let of = &shard.of;
                d.classify_with(self.kind, |i, j| {
                    of.factors.has_entry(
                        of.row_old_to_new[self.partition.local_of(i)],
                        of.col_old_to_new[self.partition.local_of(j)],
                    )
                }) == DeltaClass::ValueOnly
            })
            .collect();

        // Capture pre-delta adjacency of the affected sources, then mutate.
        let affected = affected_sources(delta);
        let old_info: BTreeMap<usize, Vec<usize>> = affected
            .iter()
            .map(|&u| (u, self.graph.successors(u).collect()))
            .collect();
        delta.apply(&mut self.graph);
        self.snapshot_id += 1;

        // Route every changed matrix entry to its shard or the coupling.
        let mut shard_entries: Vec<Vec<(usize, usize, f64, f64)>> = vec![Vec::new(); k];
        let mut coupling_writes = 0u64;
        for (r, c, old, new) in global_matrix_delta(&self.graph, self.kind, &old_info) {
            let sr = self.partition.shard_of(r);
            if sr == self.partition.shard_of(c) {
                shard_entries[sr].push((
                    self.partition.local_of(r),
                    self.partition.local_of(c),
                    old,
                    new,
                ));
            } else {
                self.coupling.set(r, c, new);
                coupling_writes += 1;
            }
        }
        for (s, entries) in shard_entries.iter().enumerate() {
            per_shard[s].entries_applied = entries.len() as u64;
            per_shard[s].value_only = value_only[s];
        }

        // Fan the disjoint per-shard sweeps out across scoped threads (the
        // single-active-shard case runs inline to skip the spawn cost).
        let active: Vec<usize> = (0..k).filter(|&s| !shard_entries[s].is_empty()).collect();
        let ctx = SweepContext {
            graph: &self.graph,
            partition: &self.partition,
            kind: self.kind,
            policy: self.policy,
            refactor: self.refactor,
            telemetry: &self.telemetry,
        };
        let mut outcomes: Vec<Option<Result<ShardOutcome, LuError>>> =
            (0..k).map(|_| None).collect();
        if active.len() <= 1 {
            for &s in &active {
                outcomes[s] = Some(self.shards[s].apply(
                    self.workspaces.get_mut(s),
                    &mut self.refactor_workspaces[s],
                    &shard_entries[s],
                    value_only[s],
                    ctx,
                    s,
                ));
            }
        } else {
            let results = std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(active.len());
                for (((s, shard), ws), rws) in self
                    .shards
                    .iter_mut()
                    .enumerate()
                    .zip(self.workspaces.iter_mut())
                    .zip(self.refactor_workspaces.iter_mut())
                {
                    let entries = &shard_entries[s];
                    if entries.is_empty() {
                        continue;
                    }
                    let vo = value_only[s];
                    handles.push((
                        s,
                        scope.spawn(move || shard.apply(ws, rws, entries, vo, ctx, s)),
                    ));
                }
                handles
                    .into_iter()
                    // lint: allow(panic-surface) — join() only fails when a
                    // shard worker panicked; re-raising that panic on the
                    // coordinating thread is the correct propagation.
                    .map(|(s, h)| (s, h.join().expect("shard sweep thread panicked")))
                    .collect::<Vec<_>>()
            });
            for (s, outcome) in results {
                outcomes[s] = Some(outcome);
            }
        }

        let mut report = ShardedAdvanceReport {
            snapshot_id: self.snapshot_id,
            per_shard,
            coupling_writes,
            ..ShardedAdvanceReport::default()
        };
        let mut republished: Vec<usize> = Vec::new();
        for (s, outcome) in outcomes.into_iter().enumerate() {
            let Some(outcome) = outcome else { continue };
            let outcome = outcome?;
            report.bennett.merge(&outcome.bennett);
            report.per_shard[s].sweeps = outcome.bennett.rank_one_updates as u64;
            report.per_shard[s].refreshed = outcome.refreshed;
            report.per_shard[s].refactored = outcome.refactored;
            report.refreshed |= outcome.refreshed;
            report.shards_refactored += outcome.refactored as u64;
            // Copy-on-write: only the shards this batch swept (or refreshed)
            // re-freeze their shared handle; every other shard keeps serving
            // the handle older snapshots already hold.
            let freeze = self.telemetry.span(Stage::SnapshotFreeze);
            self.published[s] = self.shards[s].of.publish(self.snapshot_id);
            freeze.stop();
            report.shards_republished += 1;
            republished.push(s);
        }
        if coupling_writes > 0 {
            self.published_coupling = Arc::new(self.coupling.to_csr());
            report.coupling_republished = true;
        }

        // Adaptive re-partitioning: once the live coupling crosses the
        // budget, the partition has drifted from the graph's edge locality —
        // re-derive it from the *current* graph and rebuild every shard.
        // Expensive (k orderings + factorizations), but amortized: the
        // trigger backs off to twice the surviving coupling size, so a graph
        // whose locality genuinely degraded does not thrash.
        if let Some(budget) = self.coupling_cfg.repartition_budget {
            let nnz = self.coupling.nnz();
            if nnz <= budget {
                // Back under the configured budget (e.g. removals drained the
                // coupling): restore the base trigger so the next genuine
                // locality drift repartitions at the budget, not at the
                // backed-off threshold of a past repartition.
                self.next_repartition_at = Some(budget);
            }
            if nnz > self.next_repartition_at.unwrap_or(budget) {
                self.repartition()?;
                self.telemetry.record_event(EngineEvent::Repartitioned {
                    coupling_nnz_before: nnz as u64,
                    coupling_nnz_after: self.coupling.nnz() as u64,
                });
                report.repartitioned = true;
                report.shards_republished = self.shards.len() as u64;
                report.coupling_republished = true;
            }
        }

        // Plan maintenance (copy-on-write like the factor blocks): re-freeze
        // the coupling plan only when the coupling changed, the store
        // re-partitioned, or this batch re-froze a shard the cached Woodbury
        // correction depends on.  Batches touching only shards outside the
        // correction's support keep sharing the previous snapshots' plan.
        let plan_stale = report.repartitioned
            || report.coupling_republished
            || republished.iter().any(|&s| self.plan.depends_on_shard(s));
        if plan_stale {
            let timer = Timer::start(&self.telemetry);
            self.plan = Arc::new(CouplingPlan::build(
                &self.partition,
                &self.published,
                &self.published_coupling,
                self.coupling_cfg.solver,
            )?);
            report.correction_rebuilt = self.plan.correction_rank().is_some();
            if let Some(rank) = self.plan.correction_rank() {
                // The Woodbury correction is the expensive part of a plan
                // rebuild (block solves per captured column); Gauss–Seidel
                // order derivation alone is not worth a stage.
                timer.finish(&self.telemetry, Stage::CouplingWoodburyBuild);
                self.telemetry
                    .record_event(EngineEvent::WoodburyPlanRebuilt {
                        rank: rank as u32,
                        // Rebuilt only because a support shard re-froze its
                        // factors: the captured column set itself is unchanged.
                        reused: !report.repartitioned && !report.coupling_republished,
                    });
            }
        }

        // Quality-loss is a property of the shard's accumulated state, not
        // of this batch's work: report it for idle shards too.
        for (s, shard) in self.shards.iter().enumerate() {
            report.per_shard[s].quality_loss = shard.quality_loss();
        }
        report.quality_loss = self.quality_loss();
        Ok(report)
    }

    /// Re-runs the partition strategy on the current graph and rebuilds the
    /// store around it: fresh shard orderings and factorizations, fresh
    /// workspaces, re-collected coupling, all handles re-frozen.  The next
    /// trigger backs off to `max(budget, 2 × surviving coupling size)` so
    /// repeated triggers on a genuinely dense graph stay amortized.
    ///
    /// The BTF strategy may coarsen to fewer shards than the store had when
    /// the graph's SCC structure is coarse; the store's shard count follows
    /// the partition.
    fn repartition(&mut self) -> EngineResult<()> {
        let k = self.shards.len();
        let partition = Arc::new(match self.partition_strategy {
            PartitionStrategy::EdgeLocality => edge_locality_partition(&self.graph, k),
            PartitionStrategy::Btf => btf_partition(&self.graph, self.kind, k).0,
        });
        let shards: Vec<FactorShard> = (0..partition.n_shards())
            .map(|s| FactorShard::build(&self.graph, self.kind, &partition, s, &self.telemetry))
            .collect::<EngineResult<_>>()?;
        self.workspaces = ShardWorkspaces::for_orders(&partition.shard_sizes());
        self.refactor_workspaces = refactor_workspaces_for(&partition);
        self.coupling =
            CouplingStore::from_matrix(&coupling_matrix(&self.graph, self.kind, &partition));
        self.published = shards
            .iter()
            .map(|s| s.of.publish(self.snapshot_id))
            .collect();
        self.published_coupling = Arc::new(self.coupling.to_csr());
        self.partition = partition;
        self.shards = shards;
        // `repartition` only runs when the advance path saw a budget; if
        // that invariant ever breaks, degrade to "no further triggers"
        // instead of panicking mid-ingest.
        self.next_repartition_at = self
            .coupling_cfg
            .repartition_budget
            .map(|budget| budget.max(2 * self.coupling.nnz()));
        Ok(())
    }

    /// Debug invariant: block-diagonal shard factors reconstruct their
    /// blocks, and blocks plus coupling reassemble the global measure matrix.
    #[cfg(test)]
    fn assert_consistent(&self, tol: f64) {
        let full = clude_graph::measure_matrix(&self.graph, self.kind);
        let n = self.graph.n_nodes();
        let mut coo = CooMatrix::new(n, n);
        for (s, shard) in self.shards.iter().enumerate() {
            let nodes = self.partition.nodes_of(s);
            // Undo the shard-local ordering to recover A[S_s, S_s].
            let reconstructed = shard.of.factors.reconstruct();
            let row_new_to_old = shard.of.ordering.row().as_new_to_old();
            let col_new_to_old = shard.of.ordering.col().as_new_to_old();
            for (i, j, v) in reconstructed.iter() {
                coo.push(nodes[row_new_to_old[i]], nodes[col_new_to_old[j]], v)
                    .unwrap();
            }
        }
        for (i, cols) in self.coupling.rows.iter().enumerate() {
            for (&j, &v) in cols {
                coo.push(i, j, v).unwrap();
            }
        }
        let reassembled = CsrMatrix::from_coo(&coo);
        let diff = reassembled.max_abs_diff(&full).unwrap();
        assert!(diff <= tol, "sharded state drifted from A: {diff:e}");
    }
}

/// One refactorization scratch per shard, sized to the shard's order.
fn refactor_workspaces_for(partition: &NodePartition) -> Vec<RefactorWorkspace> {
    partition
        .shard_sizes()
        .iter()
        .map(|&n| RefactorWorkspace::with_order(n))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coupling::{CouplingSolver, SolveTolerance};
    use crate::store::FactorStore;
    use clude_measures::MeasureQuery;

    fn base_graph(n: usize) -> DiGraph {
        let mut g = DiGraph::from_edges(n, (0..n).map(|i| (i, (i + 1) % n)).collect::<Vec<_>>());
        g.add_edge(2, 0);
        g.add_edge(n / 2, 1);
        g
    }

    fn assert_queries_match(sharded: &ShardedFactorStore, mono: &FactorStore, n: usize) {
        let snap_s = sharded.snapshot();
        let snap_m = mono.snapshot();
        let queries = [
            MeasureQuery::PageRank { damping: 0.85 },
            MeasureQuery::Rwr {
                seed: 0,
                damping: 0.85,
            },
            MeasureQuery::Rwr {
                seed: n - 1,
                damping: 0.85,
            },
            MeasureQuery::PprSeedSet {
                seeds: vec![1, n / 2],
                damping: 0.85,
            },
        ];
        for q in &queries {
            let a = snap_s.query(q).unwrap();
            let b = snap_m.query(q).unwrap();
            for (x, y) in a.iter().zip(b.iter()) {
                assert!((x - y).abs() <= 1e-9, "{q:?}: sharded {x} vs mono {y}");
            }
        }
    }

    #[test]
    fn sharded_store_matches_monolithic_on_mixed_stream() {
        let n = 12;
        let g = base_graph(n);
        let kind = MatrixKind::random_walk_default();
        let policy = RefreshPolicy::QualityTriggered {
            max_quality_loss: 0.5,
        };
        let partition = NodePartition::contiguous(n, 3);
        let mut sharded = ShardedFactorStore::new(g.clone(), kind, policy, partition).unwrap();
        let mut mono = FactorStore::new(g, kind, policy).unwrap();
        assert_eq!(sharded.n_shards(), 3);
        assert_queries_match(&sharded, &mono, n);

        // Mixed intra/cross batches, including removals.
        let deltas = [
            GraphDelta {
                added: vec![(0, 3), (1, 2)], // intra shard 0
                removed: vec![],
            },
            GraphDelta {
                added: vec![(0, 7), (9, 2)], // cross shards
                removed: vec![(2, 0)],
            },
            GraphDelta {
                added: vec![(4, 6), (10, 11), (5, 0)],
                removed: vec![(0, 3), (9, 2)],
            },
        ];
        for delta in &deltas {
            let report = sharded.advance(delta).unwrap();
            mono.advance(delta).unwrap();
            assert_eq!(report.snapshot_id, mono.snapshot_id());
            sharded.assert_consistent(1e-9);
            assert_queries_match(&sharded, &mono, n);
        }
        assert!(sharded.coupling_nnz() > 0, "stream produced coupling");
    }

    #[test]
    fn disjoint_shard_batches_sweep_every_shard() {
        let n = 12;
        // A pure ring: every delta source's successors stay inside its own
        // shard, so the batch is fully disjoint — no coupling writes at all.
        let g = DiGraph::from_edges(n, (0..n).map(|i| (i, (i + 1) % n)).collect::<Vec<_>>());
        let kind = MatrixKind::random_walk_default();
        let partition = NodePartition::contiguous(n, 4); // shards of 3
        let mut store =
            ShardedFactorStore::new(g, kind, RefreshPolicy::Incremental, partition).unwrap();
        // One intra-shard change per shard: all four shards sweep in one
        // parallel advance, nothing lands in the coupling.
        let delta = GraphDelta {
            added: vec![(0, 2), (3, 5), (6, 8), (9, 11)],
            removed: vec![],
        };
        let report = store.advance(&delta).unwrap();
        assert_eq!(report.per_shard.len(), 4);
        for s in 0..4 {
            assert!(
                report.per_shard[s].entries_applied > 0,
                "shard {s} saw no entries"
            );
            assert!(report.per_shard[s].sweeps > 0, "shard {s} never swept");
            assert_eq!(report.per_shard[s].cross_edges_seen, 0);
        }
        assert_eq!(report.coupling_writes, 0);
        assert!(report.bennett.rank_one_updates > 0);
        store.assert_consistent(1e-9);
    }

    #[test]
    fn cross_edges_only_touch_the_coupling() {
        let n = 8;
        let g = base_graph(n);
        let kind = MatrixKind::random_walk_default();
        let partition = NodePartition::contiguous(n, 2);
        let mut store =
            ShardedFactorStore::new(g, kind, RefreshPolicy::Incremental, partition).unwrap();
        let before = store.coupling_nnz();
        // 2 -> 6 is cross-shard; node 2 has existing intra successors whose
        // column weight rescales, so shard 0 still sweeps — but shard 1 (the
        // target side) must not.
        let report = store
            .advance(&GraphDelta {
                added: vec![(2, 6)],
                removed: vec![],
            })
            .unwrap();
        assert_eq!(report.per_shard[0].cross_edges_seen, 1);
        assert_eq!(report.per_shard[1].entries_applied, 0);
        assert_eq!(report.per_shard[1].sweeps, 0);
        assert!(store.coupling_nnz() > before);
        assert!(report.coupling_writes > 0);
        store.assert_consistent(1e-9);
    }

    #[test]
    fn high_damping_coupled_queries_still_converge() {
        // d = 0.995 contracts slowly (~200 sweeps per decade): the
        // contraction-aware exit must accept instead of exhausting the
        // iteration budget, and the answers must still match the monolith.
        let n = 12;
        let g = base_graph(n);
        let kind = MatrixKind::RandomWalk { damping: 0.995 };
        let partition = NodePartition::contiguous(n, 3);
        let sharded =
            ShardedFactorStore::new(g.clone(), kind, RefreshPolicy::Incremental, partition)
                .unwrap();
        let mono = FactorStore::new(g, kind, RefreshPolicy::Incremental).unwrap();
        assert!(sharded.coupling_nnz() > 0, "ring edges cross the shards");
        let q = MeasureQuery::Rwr {
            seed: 0,
            damping: 0.995,
        };
        let a = sharded.snapshot().query(&q).unwrap();
        let b = mono.snapshot().query(&q).unwrap();
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() <= 1e-9, "{x} vs {y}");
        }
    }

    #[test]
    fn laplacian_sharding_matches_monolithic() {
        let mut g = DiGraph::new(10);
        for i in 0..9 {
            g.add_undirected_edge(i, i + 1);
        }
        let kind = MatrixKind::SymmetricLaplacian { shift: 1.0 };
        let policy = RefreshPolicy::Incremental;
        let partition = NodePartition::contiguous(10, 2);
        let mut sharded = ShardedFactorStore::new(g.clone(), kind, policy, partition).unwrap();
        let mut mono = FactorStore::new(g, kind, policy).unwrap();
        let delta = GraphDelta {
            added: vec![(0, 8), (8, 0), (3, 6), (6, 3)],
            removed: vec![(4, 5), (5, 4)],
        };
        sharded.advance(&delta).unwrap();
        mono.advance(&delta).unwrap();
        sharded.assert_consistent(1e-9);
        // Compare raw solves (the engine's measure queries are random-walk
        // specific; Laplacian parity is checked at the solver level).
        let b: Vec<f64> = (0..10).map(|i| (i as f64) - 4.5).collect();
        let xs =
            clude_measures::MeasureSolver::solve_measure_system(&sharded.snapshot(), &b).unwrap();
        let xm = mono.snapshot().decomposed().solve(&b).unwrap();
        for (x, y) in xs.iter().zip(xm.iter()) {
            assert!((x - y).abs() <= 1e-9, "{x} vs {y}");
        }
    }

    #[test]
    fn quality_policy_refreshes_single_shard() {
        let n = 12;
        let g = base_graph(n);
        let kind = MatrixKind::random_walk_default();
        let partition = NodePartition::contiguous(n, 2);
        let mut store = ShardedFactorStore::new(
            g,
            kind,
            RefreshPolicy::QualityTriggered {
                max_quality_loss: 0.0,
            },
            partition,
        )
        .unwrap();
        // Densify shard 0 only; eventually its factors grow and it refreshes,
        // while shard 1 never does.
        let mut refreshed = [false, false];
        for k in 0..5 {
            let delta = GraphDelta {
                added: vec![(k % 6, (k + 3) % 6), ((k + 2) % 6, k % 6)],
                removed: vec![],
            };
            let report = store.advance(&delta).unwrap();
            refreshed[0] |= report.per_shard[0].refreshed;
            refreshed[1] |= report.per_shard[1].refreshed;
        }
        assert!(refreshed[0], "densified shard never refreshed");
        assert!(!refreshed[1], "untouched shard refreshed spuriously");
        store.assert_consistent(1e-9);
    }

    #[test]
    fn untouched_shards_share_their_snapshot_handles() {
        let n = 12;
        let g = base_graph(n);
        let mut store = ShardedFactorStore::new(
            g,
            MatrixKind::random_walk_default(),
            RefreshPolicy::Incremental,
            NodePartition::contiguous(n, 3),
        )
        .unwrap();
        let snap0 = store.snapshot();

        // Intra-shard-0 batch: only shard 0's block may be re-frozen.
        let report = store
            .advance(&GraphDelta {
                added: vec![(0, 3), (1, 2)],
                removed: vec![],
            })
            .unwrap();
        assert_eq!(report.shards_republished, 1);
        assert!(!report.coupling_republished);
        let snap1 = store.snapshot();
        assert!(!Arc::ptr_eq(
            snap0.shards()[0].shared(),
            snap1.shards()[0].shared()
        ));
        for s in 1..3 {
            assert!(
                Arc::ptr_eq(snap0.shards()[s].shared(), snap1.shards()[s].shared()),
                "untouched shard {s} was cloned"
            );
        }
        assert!(Arc::ptr_eq(
            snap0.shared_coupling(),
            snap1.shared_coupling()
        ));
        // The shared blocks record when they were last touched, the snapshot
        // records when it was taken.
        assert_eq!(snap1.id(), 1);
        assert_eq!(snap1.shards()[0].decomposed().index, 1);
        assert_eq!(snap1.shards()[1].decomposed().index, 0);

        // Cross-shard batch (0 -> 7): shard 0's column rescales, shard 1 is
        // only a coupling target — its block stays shared, the frozen
        // coupling does not.
        let report = store
            .advance(&GraphDelta {
                added: vec![(0, 7)],
                removed: vec![],
            })
            .unwrap();
        assert!(report.coupling_republished);
        let snap2 = store.snapshot();
        assert!(Arc::ptr_eq(
            snap1.shards()[1].shared(),
            snap2.shards()[1].shared()
        ));
        assert!(!Arc::ptr_eq(
            snap1.shared_coupling(),
            snap2.shared_coupling()
        ));
        // Old snapshots still answer from their own (shared) state.
        let q = MeasureQuery::PageRank { damping: 0.85 };
        assert_ne!(snap0.query(&q).unwrap(), snap2.query(&q).unwrap());
    }

    #[test]
    fn every_solver_strategy_matches_the_monolithic_store() {
        let n = 12;
        let g = base_graph(n);
        let kind = MatrixKind::random_walk_default();
        let policy = RefreshPolicy::QualityTriggered {
            max_quality_loss: 0.5,
        };
        let mut mono = FactorStore::new(g.clone(), kind, policy).unwrap();
        // Jacobi, Gauss–Seidel, a full-capture Woodbury correction, and a
        // rank-starved Woodbury whose remainder forces the corrected
        // iteration — every strategy must agree with the monolith.
        let solvers = [
            CouplingSolver::Jacobi,
            CouplingSolver::GaussSeidel,
            CouplingSolver::woodbury(),
            CouplingSolver::Woodbury { max_rank: 1 },
        ];
        let mut stores: Vec<ShardedFactorStore> = solvers
            .iter()
            .map(|&solver| {
                ShardedFactorStore::new(g.clone(), kind, policy, NodePartition::contiguous(n, 3))
                    .unwrap()
                    .with_coupling_config(CouplingConfig {
                        solver,
                        ..CouplingConfig::default()
                    })
                    .unwrap()
            })
            .collect();
        let deltas = [
            GraphDelta {
                added: vec![(0, 3), (1, 2)], // intra shard 0
                removed: vec![],
            },
            GraphDelta {
                added: vec![(0, 7), (9, 2), (5, 11)], // cross shards
                removed: vec![(2, 0)],
            },
            GraphDelta {
                added: vec![(4, 6), (10, 11), (5, 0)],
                removed: vec![(0, 3), (9, 2)],
            },
        ];
        for delta in &deltas {
            mono.advance(delta).unwrap();
            for store in &mut stores {
                store.advance(delta).unwrap();
            }
            for (store, solver) in stores.iter().zip(solvers.iter()) {
                assert_eq!(store.snapshot().solver(), *solver);
                assert_queries_match(store, &mono, n);
            }
        }
        // The stream crossed shards, so the Woodbury stores actually cached
        // corrections — full-capture with an empty remainder, rank-starved
        // with a non-empty one.
        assert!(stores[0].coupling_nnz() > 0);
        let full = stores[2].snapshot();
        assert!(full.coupling_plan().correction_rank().unwrap() > 1);
        assert_eq!(full.coupling_plan().correction_rest_nnz(), Some(0));
        let starved = stores[3].snapshot();
        assert_eq!(starved.coupling_plan().correction_rank(), Some(1));
        assert!(starved.coupling_plan().correction_rest_nnz().unwrap() > 0);
    }

    #[test]
    fn woodbury_plan_is_shared_until_coupling_or_support_changes() {
        // Three shard-local rings plus opposing cross edges 0 -> 4 and
        // 5 -> 1: shards 0 and 1 depend on each other, so the coupling is
        // *not* block-triangular and the Woodbury plan actually caches a
        // correction (an acyclic coupling would be solved by one triangular
        // Gauss–Seidel sweep instead — see `coupling.rs`).  The captured
        // columns 0 and 5 have support only in shards 1 and 0.
        let n = 12;
        let mut g = DiGraph::new(n);
        for s in 0..3 {
            for i in 0..4 {
                g.add_edge(s * 4 + i, s * 4 + (i + 1) % 4);
            }
        }
        g.add_edge(0, 4);
        g.add_edge(5, 1);
        let mut store = ShardedFactorStore::new(
            g,
            MatrixKind::random_walk_default(),
            RefreshPolicy::Incremental,
            NodePartition::contiguous(n, 3),
        )
        .unwrap()
        .with_coupling_config(CouplingConfig {
            solver: CouplingSolver::woodbury(),
            ..CouplingConfig::default()
        })
        .unwrap();
        let snap0 = store.snapshot();
        assert_eq!(snap0.coupling_plan().correction_rank(), Some(2));

        // Intra-shard-2 batch: outside the correction's support — the next
        // snapshot shares the cached plan (and the frozen coupling).
        let report = store
            .advance(&GraphDelta {
                added: vec![(8, 10)],
                removed: vec![],
            })
            .unwrap();
        assert!(!report.coupling_republished);
        assert!(!report.correction_rebuilt);
        let snap1 = store.snapshot();
        assert!(Arc::ptr_eq(snap0.coupling_plan(), snap1.coupling_plan()));

        // Intra-shard-1 batch: shard 1 carries the captured column's
        // support, so the cached Z is stale — the plan re-freezes.
        let report = store
            .advance(&GraphDelta {
                added: vec![(4, 6)],
                removed: vec![],
            })
            .unwrap();
        assert!(!report.coupling_republished);
        assert!(report.correction_rebuilt);
        let snap2 = store.snapshot();
        assert!(!Arc::ptr_eq(snap1.coupling_plan(), snap2.coupling_plan()));

        // Cross-shard batch: the coupling itself changed — plan re-freezes.
        let report = store
            .advance(&GraphDelta {
                added: vec![(1, 9)],
                removed: vec![],
            })
            .unwrap();
        assert!(report.coupling_republished);
        assert!(report.correction_rebuilt);
        let snap3 = store.snapshot();
        assert!(!Arc::ptr_eq(snap2.coupling_plan(), snap3.coupling_plan()));
        // Old snapshots keep answering from their own frozen plans.
        let q = MeasureQuery::PageRank { damping: 0.85 };
        assert!(snap0.query(&q).is_ok());
        store.assert_consistent(1e-9);
    }

    #[test]
    fn sharded_value_only_batches_refactor_and_stay_exact() {
        let n = 12;
        let g = base_graph(n);
        let kind = MatrixKind::random_walk_default();
        let partition = NodePartition::contiguous(n, 3);
        let mut sharded =
            ShardedFactorStore::new(g.clone(), kind, RefreshPolicy::Incremental, partition)
                .unwrap();
        let mut mono = FactorStore::new(g, kind, RefreshPolicy::Incremental).unwrap();
        // Removing an intra-shard edge is always value-only: shard 0 absorbs
        // it by a pattern-frozen refactorization, the other shards stay idle.
        let delta = GraphDelta {
            added: vec![],
            removed: vec![(2, 0)],
        };
        let report = sharded.advance(&delta).unwrap();
        mono.advance(&delta).unwrap();
        assert!(report.per_shard[0].value_only);
        assert!(report.per_shard[0].refactored);
        assert!(!report.per_shard[0].refreshed);
        assert_eq!(report.per_shard[0].sweeps, 0);
        assert!(report.per_shard[0].entries_applied > 0);
        assert_eq!(report.shards_refactored, 1);
        assert!(!report.per_shard[1].refactored);
        sharded.assert_consistent(1e-9);
        assert_queries_match(&sharded, &mono, n);
        // A structural intra-shard addition must not refactor.
        let delta = GraphDelta {
            added: vec![(1, 3)],
            removed: vec![],
        };
        let report = sharded.advance(&delta).unwrap();
        mono.advance(&delta).unwrap();
        assert!(!report.per_shard[0].refactored || report.per_shard[0].value_only);
        sharded.assert_consistent(1e-9);
        assert_queries_match(&sharded, &mono, n);
    }

    #[test]
    fn repartition_triggers_on_coupling_budget_and_stays_exact() {
        // Interleaved (worst-case) partition of a ring: every edge crosses,
        // so the coupling is as dense as it gets.  A tight budget must make
        // the store re-derive an edge-locality partition, collapsing the
        // coupling, while the answers stay exact.
        let n = 16;
        let g = base_graph(n);
        let kind = MatrixKind::random_walk_default();
        let mut store = ShardedFactorStore::new(
            g.clone(),
            kind,
            RefreshPolicy::Incremental,
            NodePartition::from_assignments((0..n).map(|u| u % 2).collect()),
        )
        .unwrap()
        .with_coupling_config(CouplingConfig {
            repartition_budget: Some(8),
            ..CouplingConfig::default()
        })
        .unwrap();
        let mut mono = FactorStore::new(g, kind, RefreshPolicy::Incremental).unwrap();
        let dense_before = store.coupling_nnz();
        assert!(dense_before > 8, "interleaved ring must cross everywhere");

        let delta = GraphDelta {
            added: vec![(0, 5), (3, 10)],
            removed: vec![],
        };
        let report = store.advance(&delta).unwrap();
        mono.advance(&delta).unwrap();
        assert!(report.repartitioned, "budget crossing must repartition");
        assert_eq!(report.shards_republished, 2);
        assert!(report.coupling_republished);
        assert!(
            store.coupling_nnz() < dense_before,
            "edge-locality partition should shrink the coupling ({} -> {})",
            dense_before,
            store.coupling_nnz()
        );
        store.assert_consistent(1e-9);
        assert_queries_match(&store, &mono, n);

        // Amortization: the next advance does not re-trigger (the threshold
        // backed off past the surviving coupling size).
        let delta = GraphDelta {
            added: vec![(1, 6)],
            removed: vec![],
        };
        let report = store.advance(&delta).unwrap();
        mono.advance(&delta).unwrap();
        assert!(!report.repartitioned);
        assert_queries_match(&store, &mono, n);
    }

    #[test]
    fn exhausted_sweep_budget_fails_loudly() {
        let n = 12;
        let g = base_graph(n);
        let store = ShardedFactorStore::new(
            g,
            MatrixKind::random_walk_default(),
            RefreshPolicy::Incremental,
            NodePartition::contiguous(n, 3),
        )
        .unwrap()
        .with_coupling_config(CouplingConfig {
            tolerance: SolveTolerance {
                tol: 1e-13,
                max_sweeps: 1,
            },
            ..CouplingConfig::default()
        })
        .unwrap();
        assert!(store.coupling_nnz() > 0, "ring edges cross the shards");
        let err = store
            .snapshot()
            .query(&MeasureQuery::PageRank { damping: 0.85 })
            .unwrap_err();
        assert!(matches!(
            err,
            LuError::ConvergenceFailure { iterations: 1, .. }
        ));
    }

    #[test]
    fn out_of_range_deltas_are_rejected_without_mutating() {
        let n = 8;
        let g = base_graph(n);
        let mut store = ShardedFactorStore::new(
            g.clone(),
            MatrixKind::random_walk_default(),
            RefreshPolicy::Incremental,
            NodePartition::contiguous(n, 2),
        )
        .unwrap();
        let err = store
            .advance(&GraphDelta {
                added: vec![(0, 99)],
                removed: vec![],
            })
            .unwrap_err();
        assert!(matches!(
            err,
            crate::error::EngineError::NodeOutOfRange { node: 99, .. }
        ));
        assert_eq!(store.snapshot_id(), 0);
        assert_eq!(store.graph().n_edges(), g.n_edges());
    }

    #[test]
    fn accessors_expose_state() {
        let n = 8;
        let store = ShardedFactorStore::new(
            base_graph(n),
            MatrixKind::random_walk_default(),
            RefreshPolicy::default(),
            NodePartition::contiguous(n, 2),
        )
        .unwrap();
        assert_eq!(store.matrix_kind(), MatrixKind::random_walk_default());
        assert_eq!(store.policy(), RefreshPolicy::default());
        assert_eq!(store.n_shards(), 2);
        assert_eq!(store.partition().n_nodes(), n);
        assert!(store.factor_nnz() > 0);
        assert_eq!(store.quality_loss(), 0.0);
        assert_eq!(store.snapshot_id(), 0);
        let snap = store.snapshot();
        assert_eq!(snap.n_shards(), 2);
        assert_eq!(snap.id(), 0);
        assert_eq!(snap.coupling().nnz(), store.coupling_nnz());
    }

    #[test]
    fn btf_partition_makes_gauss_seidel_one_sweep_exact() {
        // Three 4-node cycles bridged 0 → 1 → 2 in one direction only: the
        // SCCs are the cycles and the cross-shard coupling is block
        // triangular in SCC topological order.  Under a one-sweep budget —
        // which makes cyclic coupling fail loudly (see
        // `exhausted_sweep_budget_fails_loudly`) — the BTF-partitioned
        // Gauss–Seidel solve must still be exact.
        let n = 12;
        let mut g = DiGraph::new(n);
        for s in 0..3 {
            for i in 0..4 {
                g.add_edge(s * 4 + i, s * 4 + (i + 1) % 4);
            }
        }
        g.add_edge(3, 4);
        g.add_edge(7, 8);
        let kind = MatrixKind::random_walk_default();
        let (partition, report) = btf_partition(&g, kind, 3);
        assert_eq!(report.n_sccs, 3);
        assert!(report.transversal_full);
        let mut store =
            ShardedFactorStore::new(g.clone(), kind, RefreshPolicy::Incremental, partition)
                .unwrap()
                .with_coupling_config(CouplingConfig {
                    solver: CouplingSolver::GaussSeidel,
                    tolerance: SolveTolerance {
                        tol: 1e-13,
                        max_sweeps: 1,
                    },
                    ..CouplingConfig::default()
                })
                .unwrap();
        assert!(store.coupling_nnz() > 0, "bridges cross the shards");
        assert!(store.snapshot().coupling_plan().is_triangular());
        let mut mono = FactorStore::new(g, kind, RefreshPolicy::Incremental).unwrap();
        assert_queries_match(&store, &mono, n);

        // Evolve the graph without breaking the DAG shape: the rebuilt plan
        // must stay triangular and one-sweep exact.
        let delta = GraphDelta {
            added: vec![(2, 5)],
            removed: vec![(3, 4)],
        };
        store.advance(&delta).unwrap();
        mono.advance(&delta).unwrap();
        assert!(store.snapshot().coupling_plan().is_triangular());
        assert_queries_match(&store, &mono, n);
    }
}
