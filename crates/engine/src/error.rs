//! Engine error type.

use clude_lu::LuError;
use std::fmt;

/// Errors raised by the streaming engine.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// A numeric factorization or update failed even after a refresh.
    Lu(LuError),
    /// The query's parameters are invalid or incompatible with the engine's
    /// matrix composition.
    InvalidQuery(String),
    /// A time-travel query addressed a snapshot outside the retained ring.
    UnknownSnapshot {
        /// The snapshot id asked for.
        requested: u64,
        /// Oldest id still retained.
        oldest: u64,
        /// Newest (current) id.
        newest: u64,
    },
    /// An edge endpoint lies outside the engine's fixed node universe.
    NodeOutOfRange {
        /// The offending node id.
        node: usize,
        /// The number of nodes of the universe.
        n_nodes: usize,
    },
    /// The durability layer failed: a WAL append, checkpoint write or
    /// recovery step hit an I/O error, a corrupt file, or a format/version
    /// mismatch.  The message carries the failing operation and path.
    Persistence(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Lu(e) => write!(f, "factor maintenance failed: {e}"),
            EngineError::InvalidQuery(msg) => write!(f, "invalid query: {msg}"),
            EngineError::UnknownSnapshot {
                requested,
                oldest,
                newest,
            } => write!(
                f,
                "snapshot {requested} outside the retained window [{oldest}, {newest}]"
            ),
            EngineError::NodeOutOfRange { node, n_nodes } => {
                write!(f, "node {node} outside the {n_nodes}-node universe")
            }
            EngineError::Persistence(msg) => write!(f, "durability failure: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<LuError> for EngineError {
    fn from(e: LuError) -> Self {
        EngineError::Lu(e)
    }
}

/// Convenience alias.
pub type EngineResult<T> = Result<T, EngineError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = EngineError::UnknownSnapshot {
            requested: 1,
            oldest: 5,
            newest: 9,
        };
        assert!(e.to_string().contains("[5, 9]"));
        assert!(EngineError::InvalidQuery("bad".into())
            .to_string()
            .contains("bad"));
        assert!(EngineError::NodeOutOfRange {
            node: 7,
            n_nodes: 4
        }
        .to_string()
        .contains("7"));
        let lu = EngineError::from(LuError::DimensionMismatch {
            expected: 3,
            actual: 2,
        });
        assert!(matches!(lu, EngineError::Lu(_)));
        assert!(!lu.to_string().is_empty());
    }
}
