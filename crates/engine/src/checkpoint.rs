//! Incremental checkpoints: generation files, the manifest chain, and the
//! change detector that decides which factor blocks each generation must
//! carry.
//!
//! A checkpoint *generation* (`gen-<g>.ckpt`) snapshots the durable part of
//! the factor store: the graph, the partition, the frozen coupling entries,
//! and — incrementally — only the factor blocks *republished since the
//! previous generation*.  Unchanged shards are covered by earlier
//! generations; the `MANIFEST` record committed for generation `g` carries,
//! per shard, the generation whose copy of that shard's block is current.
//! Change detection is pointer identity ([`Arc::ptr_eq`]) on the published
//! block `Arc`s: the copy-on-write ring republishes a block if and only if
//! an advance touched it, so pointer equality is exact, not heuristic.
//!
//! ## On-disk layout
//!
//! ```text
//! gen file  := magic:u32le version:u32le crc:u32le payload
//! payload   := gen:u64 snapshot_id:u64 kind graph partition
//!              next_repartition_flagged coupling_entries changed_blocks
//! block     := shard:usize index:u64 reference_nnz:u64 n:usize
//!              row_new_to_old:seq col_new_to_old:seq entries
//!
//! MANIFEST  := magic:u32le version:u32le record*
//! record    := len:u32le crc:u32le payload[len]
//! payload   := gen:u64 snapshot_id:u64 k:usize shard_gen:u64 × k
//! ```
//!
//! The gen-file `crc` covers the whole payload; a mismatch makes the
//! generation unusable and recovery falls back to the previous manifest
//! record.  The manifest itself is append-only with the same torn-tail rule
//! as the WAL.  Commit order is: gen file synced → fresh WAL segment synced
//! → manifest record synced → garbage (covered segments, unreferenced
//! generations) deleted.  A crash between any two steps leaves the previous
//! manifest record and everything it references intact.

use clude::DecomposedMatrix;
use clude_graph::{wire, DiGraph, MatrixKind, NodePartition, WireReader, WireWriter};
use clude_lu::DynamicLuFactors;
use clude_sparse::{Ordering, Permutation};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::error::{EngineError, EngineResult};
use crate::vfs::Vfs;
use crate::wal::{crc32, io_err};

/// `b"CLCK"`: CLude ChecKpoint generation file.
pub(crate) const CKPT_MAGIC: u32 = u32::from_le_bytes(*b"CLCK");
/// Generation-file format version; readers reject any other.
pub(crate) const CKPT_VERSION: u32 = 1;
/// `b"CLMF"`: CLude ManiFest.
pub(crate) const MANIFEST_MAGIC: u32 = u32::from_le_bytes(*b"CLMF");
/// Manifest format version; readers reject any other.
pub(crate) const MANIFEST_VERSION: u32 = 1;
/// File name of the manifest chaining checkpoint generations.
pub(crate) const MANIFEST_NAME: &str = "MANIFEST";

/// File name of generation `gen`.
pub(crate) fn gen_name(gen: u64) -> String {
    format!("gen-{gen}.ckpt")
}

/// Parses `gen-<g>.ckpt` back into `g`.
pub(crate) fn gen_of_path(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    let digits = name.strip_prefix("gen-")?.strip_suffix(".ckpt")?;
    digits.parse().ok()
}

/// The durable slice of a factor store, captured under the ingest lock.
///
/// `blocks[s]` is the published (copy-on-write) block of shard `s` plus the
/// shard's `reference_nnz` quality anchor.  The published `Arc` content is
/// identical to the live factors after every advance — the store republishes
/// whenever an advance touches a shard — so serialising from the snapshot
/// side is exact.
pub(crate) struct DurableState {
    pub(crate) snapshot_id: u64,
    pub(crate) kind: MatrixKind,
    pub(crate) graph: DiGraph,
    pub(crate) partition: NodePartition,
    pub(crate) next_repartition_at: Option<usize>,
    pub(crate) coupling: Vec<(usize, usize, f64)>,
    pub(crate) blocks: Vec<(Arc<DecomposedMatrix>, usize)>,
}

/// One shard's factor block decoded from a generation file, ready to be
/// rebuilt into live `OrderedFactors`.
pub(crate) struct RestoredBlock {
    pub(crate) index: u64,
    pub(crate) reference_nnz: usize,
    pub(crate) ordering: Ordering,
    pub(crate) factors: DynamicLuFactors,
}

/// A fully assembled store image: the newest generation's store-wide fields
/// plus, per shard, the block pulled from whichever generation last wrote
/// it.
pub(crate) struct StoreState {
    pub(crate) snapshot_id: u64,
    pub(crate) kind: MatrixKind,
    pub(crate) graph: DiGraph,
    pub(crate) partition: NodePartition,
    pub(crate) next_repartition_at: Option<usize>,
    pub(crate) coupling: Vec<(usize, usize, f64)>,
    pub(crate) blocks: Vec<RestoredBlock>,
}

/// A decoded generation file.
pub(crate) struct GenFile {
    pub(crate) gen: u64,
    pub(crate) snapshot_id: u64,
    pub(crate) kind: MatrixKind,
    pub(crate) graph: DiGraph,
    pub(crate) partition: NodePartition,
    pub(crate) next_repartition_at: Option<usize>,
    pub(crate) coupling: Vec<(usize, usize, f64)>,
    /// `(shard, block)` for every shard this generation carries.
    pub(crate) blocks: Vec<(usize, RestoredBlock)>,
}

/// Why a generation file could not be used.
pub(crate) enum GenReadError {
    /// Unrecoverable: wrong magic or a version this build cannot read.
    /// Falling back to an older generation would mask an operational error
    /// (pointing a new binary at an incompatible spool), so this aborts
    /// recovery.
    Hard(EngineError),
    /// Recoverable: missing file, bad checksum, or a payload that fails to
    /// decode.  Recovery falls back to the previous manifest record.
    Soft(String),
}

/// One manifest record: a committed generation and its per-shard coverage.
pub(crate) struct ManifestRecord {
    pub(crate) gen: u64,
    pub(crate) snapshot_id: u64,
    pub(crate) shard_gens: Vec<u64>,
}

impl ManifestRecord {
    /// Every generation this record needs on disk.
    pub(crate) fn live_gens(&self) -> BTreeSet<u64> {
        let mut live: BTreeSet<u64> = self.shard_gens.iter().copied().collect();
        live.insert(self.gen);
        live
    }
}

fn encode_kind(w: &mut WireWriter, kind: MatrixKind) {
    match kind {
        MatrixKind::RandomWalk { damping } => {
            w.put_u32(0);
            w.put_f64(damping);
        }
        MatrixKind::SymmetricLaplacian { shift } => {
            w.put_u32(1);
            w.put_f64(shift);
        }
    }
}

fn decode_kind(r: &mut WireReader<'_>) -> Result<MatrixKind, String> {
    let tag = r.get_u32().map_err(|e| e.to_string())?;
    let param = r.get_f64().map_err(|e| e.to_string())?;
    match tag {
        0 => Ok(MatrixKind::RandomWalk { damping: param }),
        1 => Ok(MatrixKind::SymmetricLaplacian { shift: param }),
        other => Err(format!("unknown matrix-kind tag {other}")),
    }
}

fn encode_block(
    w: &mut WireWriter,
    shard: usize,
    block: &DecomposedMatrix,
    reference_nnz: usize,
) -> EngineResult<()> {
    let Some(clude::MatrixFactors::Dynamic(factors)) = &block.factors else {
        return Err(EngineError::Persistence(format!(
            "shard {shard} block has no dynamic factors to checkpoint"
        )));
    };
    w.put_usize(shard);
    w.put_u64(block.index as u64);
    w.put_u64(reference_nnz as u64);
    w.put_usize(factors.n());
    w.put_usize_seq(block.ordering.row().as_new_to_old());
    w.put_usize_seq(block.ordering.col().as_new_to_old());
    let entries = factors.export_entries();
    w.put_usize(entries.len());
    for (i, j, v) in entries {
        w.put_usize(i);
        w.put_usize(j);
        w.put_f64(v);
    }
    Ok(())
}

fn decode_block(r: &mut WireReader<'_>) -> Result<(usize, RestoredBlock), String> {
    let shard = r.get_usize().map_err(|e| e.to_string())?;
    let index = r.get_u64().map_err(|e| e.to_string())?;
    let reference_nnz = r.get_u64().map_err(|e| e.to_string())? as usize;
    let n = r.get_usize().map_err(|e| e.to_string())?;
    let row = r.get_usize_seq().map_err(|e| e.to_string())?;
    let col = r.get_usize_seq().map_err(|e| e.to_string())?;
    if row.len() != n || col.len() != n {
        return Err(format!(
            "shard {shard} permutations of length {}/{} for order {n}",
            row.len(),
            col.len()
        ));
    }
    let count = r.get_usize().map_err(|e| e.to_string())?;
    let mut entries = Vec::new();
    for _ in 0..count {
        let i = r.get_usize().map_err(|e| e.to_string())?;
        let j = r.get_usize().map_err(|e| e.to_string())?;
        let v = r.get_f64().map_err(|e| e.to_string())?;
        entries.push((i, j, v));
    }
    let row = Permutation::from_new_to_old(row).map_err(|e| e.to_string())?;
    let col = Permutation::from_new_to_old(col).map_err(|e| e.to_string())?;
    let factors = DynamicLuFactors::from_sorted_entries(n, &entries).map_err(|e| e.to_string())?;
    Ok((
        shard,
        RestoredBlock {
            index,
            reference_nnz,
            ordering: Ordering::new(row, col),
            factors,
        },
    ))
}

fn encode_gen_payload(gen: u64, state: &DurableState, changed: &[usize]) -> EngineResult<Vec<u8>> {
    let mut w = WireWriter::new();
    w.put_u64(gen);
    w.put_u64(state.snapshot_id);
    encode_kind(&mut w, state.kind);
    wire::encode_graph(&mut w, &state.graph);
    wire::encode_partition(&mut w, &state.partition);
    match state.next_repartition_at {
        Some(at) => {
            w.put_u32(1);
            w.put_u64(at as u64);
        }
        None => {
            w.put_u32(0);
            w.put_u64(0);
        }
    }
    w.put_usize(state.coupling.len());
    for &(i, j, v) in &state.coupling {
        w.put_usize(i);
        w.put_usize(j);
        w.put_f64(v);
    }
    w.put_usize(changed.len());
    for &s in changed {
        let (block, reference_nnz) = &state.blocks[s];
        encode_block(&mut w, s, block, *reference_nnz)?;
    }
    Ok(w.into_bytes())
}

fn decode_gen_payload(payload: &[u8]) -> Result<GenFile, String> {
    let mut r = WireReader::new(payload);
    let gen = r.get_u64().map_err(|e| e.to_string())?;
    let snapshot_id = r.get_u64().map_err(|e| e.to_string())?;
    let kind = decode_kind(&mut r)?;
    let graph = wire::decode_graph(&mut r).map_err(|e| e.to_string())?;
    let partition = wire::decode_partition(&mut r).map_err(|e| e.to_string())?;
    let flag = r.get_u32().map_err(|e| e.to_string())?;
    let at = r.get_u64().map_err(|e| e.to_string())?;
    let next_repartition_at = (flag == 1).then_some(at as usize);
    let count = r.get_usize().map_err(|e| e.to_string())?;
    let mut coupling = Vec::new();
    for _ in 0..count {
        let i = r.get_usize().map_err(|e| e.to_string())?;
        let j = r.get_usize().map_err(|e| e.to_string())?;
        let v = r.get_f64().map_err(|e| e.to_string())?;
        coupling.push((i, j, v));
    }
    let n_blocks = r.get_usize().map_err(|e| e.to_string())?;
    let mut blocks = Vec::new();
    for _ in 0..n_blocks {
        blocks.push(decode_block(&mut r)?);
    }
    if !r.is_exhausted() {
        return Err(format!(
            "{} trailing bytes after the last block",
            r.remaining()
        ));
    }
    Ok(GenFile {
        gen,
        snapshot_id,
        kind,
        graph,
        partition,
        next_repartition_at,
        coupling,
        blocks,
    })
}

/// Reads and validates generation `gen` from `dir`.
pub(crate) fn read_gen(vfs: &dyn Vfs, dir: &Path, gen: u64) -> Result<GenFile, GenReadError> {
    let path = dir.join(gen_name(gen));
    let bytes = vfs
        .read(&path)
        .map_err(|e| GenReadError::Soft(format!("read {}: {e}", path.display())))?;
    if bytes.len() < 12 {
        return Err(GenReadError::Soft(format!(
            "{} too short for a generation header",
            path.display()
        )));
    }
    let magic = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    let version = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    let crc = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
    if magic != CKPT_MAGIC {
        return Err(GenReadError::Hard(EngineError::Persistence(format!(
            "{} is not a checkpoint generation (bad magic {magic:#010x})",
            path.display()
        ))));
    }
    if version != CKPT_VERSION {
        return Err(GenReadError::Hard(EngineError::Persistence(format!(
            "{} has checkpoint format version {version}, this build reads only {CKPT_VERSION}",
            path.display()
        ))));
    }
    let payload = &bytes[12..];
    if crc32(payload) != crc {
        return Err(GenReadError::Soft(format!(
            "{} fails its checksum",
            path.display()
        )));
    }
    let decoded = decode_gen_payload(payload)
        .map_err(|e| GenReadError::Soft(format!("{}: {e}", path.display())))?;
    if decoded.gen != gen {
        return Err(GenReadError::Soft(format!(
            "{} claims generation {} in its payload",
            path.display(),
            decoded.gen
        )));
    }
    Ok(decoded)
}

/// Parses the manifest, returning its valid records and the byte length of
/// the valid prefix (trailing torn bytes excluded).
pub(crate) fn parse_manifest(
    path: &Path,
    bytes: &[u8],
) -> EngineResult<(Vec<ManifestRecord>, usize)> {
    if bytes.len() < 8 {
        return Ok((Vec::new(), 0));
    }
    let magic = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    let version = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    if magic != MANIFEST_MAGIC {
        return Err(EngineError::Persistence(format!(
            "{} is not a checkpoint manifest (bad magic {magic:#010x})",
            path.display()
        )));
    }
    if version != MANIFEST_VERSION {
        return Err(EngineError::Persistence(format!(
            "{} has manifest format version {version}, this build reads only {MANIFEST_VERSION}",
            path.display()
        )));
    }
    let mut records = Vec::new();
    let mut pos = 8usize;
    loop {
        let remaining = bytes.len() - pos;
        if remaining < 8 {
            break;
        }
        let len = u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]])
            as usize;
        let crc = u32::from_le_bytes([
            bytes[pos + 4],
            bytes[pos + 5],
            bytes[pos + 6],
            bytes[pos + 7],
        ]);
        if remaining - 8 < len {
            break;
        }
        let payload = &bytes[pos + 8..pos + 8 + len];
        if crc32(payload) != crc {
            break;
        }
        let mut r = WireReader::new(payload);
        let Ok(gen) = r.get_u64() else { break };
        let Ok(snapshot_id) = r.get_u64() else { break };
        let Ok(k) = r.get_usize() else { break };
        let mut shard_gens = Vec::new();
        let mut ok = true;
        for _ in 0..k {
            match r.get_u64() {
                Ok(g) => shard_gens.push(g),
                Err(_) => {
                    ok = false;
                    break;
                }
            }
        }
        if !ok || !r.is_exhausted() {
            break;
        }
        records.push(ManifestRecord {
            gen,
            snapshot_id,
            shard_gens,
        });
        pos += 8 + len;
    }
    Ok((records, pos))
}

/// Assembles the store image for manifest `record`: store-wide fields from
/// its own generation, each shard's block from the generation the record
/// points at.  Any missing/corrupt piece is a [`GenReadError::Soft`].
pub(crate) fn assemble_store_state(
    vfs: &dyn Vfs,
    dir: &Path,
    record: &ManifestRecord,
) -> Result<StoreState, GenReadError> {
    let mut gens: Vec<(u64, GenFile)> = Vec::new();
    for gen in record.live_gens() {
        gens.push((gen, read_gen(vfs, dir, gen)?));
    }
    let own = gens
        .iter()
        .position(|(g, _)| *g == record.gen)
        .expect("record gen in live set");
    let k = record.shard_gens.len();
    let mut blocks: Vec<Option<RestoredBlock>> = (0..k).map(|_| None).collect();
    for (g, file) in gens.iter_mut() {
        for (shard, block) in file.blocks.drain(..) {
            if shard < k && record.shard_gens[shard] == *g {
                blocks[shard] = Some(block);
            }
        }
    }
    let mut assembled = Vec::with_capacity(k);
    for (shard, slot) in blocks.into_iter().enumerate() {
        match slot {
            Some(b) => assembled.push(b),
            None => {
                return Err(GenReadError::Soft(format!(
                    "generation {} carries no block for shard {shard}",
                    record.shard_gens[shard]
                )))
            }
        }
    }
    let own = &gens[own].1;
    if own.partition.n_shards() != k {
        return Err(GenReadError::Soft(format!(
            "manifest record covers {k} shards but generation {} partitions into {}",
            record.gen,
            own.partition.n_shards()
        )));
    }
    for (shard, block) in assembled.iter().enumerate() {
        if block.factors.n() != own.partition.shard_len(shard) {
            return Err(GenReadError::Soft(format!(
                "shard {shard} block of order {} does not fit its {}-node shard",
                block.factors.n(),
                own.partition.shard_len(shard)
            )));
        }
    }
    if own.snapshot_id != record.snapshot_id {
        return Err(GenReadError::Soft(format!(
            "manifest record claims snapshot {} but generation {} holds snapshot {}",
            record.snapshot_id, record.gen, own.snapshot_id
        )));
    }
    Ok(StoreState {
        snapshot_id: own.snapshot_id,
        kind: own.kind,
        graph: own.graph.clone(),
        partition: own.partition.clone(),
        next_repartition_at: own.next_repartition_at,
        coupling: own.coupling.clone(),
        blocks: assembled,
    })
}

/// Outcome of writing one generation file.
pub(crate) struct GenOutcome {
    pub(crate) gen: u64,
    pub(crate) blocks_written: usize,
    pub(crate) bytes: u64,
    pub(crate) incremental: bool,
}

/// The checkpoint writer: tracks the previous generation's published block
/// `Arc`s for pointer-identity change detection, the per-shard generation
/// pointers, and the next generation number.
pub(crate) struct Checkpointer {
    vfs: Arc<dyn Vfs>,
    dir: PathBuf,
    next_gen: u64,
    shard_gens: Vec<u64>,
    last_blocks: Vec<Arc<DecomposedMatrix>>,
}

impl Checkpointer {
    /// A checkpointer whose first generation will be `next_gen` and whose
    /// first write is always full (no retained `Arc`s to compare against).
    pub(crate) fn new(vfs: Arc<dyn Vfs>, dir: PathBuf, next_gen: u64) -> Self {
        Checkpointer {
            vfs,
            dir,
            next_gen,
            shard_gens: Vec::new(),
            last_blocks: Vec::new(),
        }
    }

    /// Writes (and syncs) the next generation file for `state`, carrying
    /// only the blocks whose published `Arc` changed since the previous
    /// generation.  Bookkeeping advances only after the file is durable, so
    /// a failed write leaves the checkpointer consistent with disk.
    pub(crate) fn write_generation(&mut self, state: &DurableState) -> EngineResult<GenOutcome> {
        let k = state.blocks.len();
        let comparable = self.last_blocks.len() == k;
        let changed: Vec<usize> = (0..k)
            .filter(|&s| !comparable || !Arc::ptr_eq(&self.last_blocks[s], &state.blocks[s].0))
            .collect();
        let gen = self.next_gen;
        let payload = encode_gen_payload(gen, state, &changed)?;
        let mut file_bytes = Vec::with_capacity(12 + payload.len());
        file_bytes.extend_from_slice(&CKPT_MAGIC.to_le_bytes());
        file_bytes.extend_from_slice(&CKPT_VERSION.to_le_bytes());
        file_bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
        file_bytes.extend_from_slice(&payload);
        let path = self.dir.join(gen_name(gen));
        let mut file = self
            .vfs
            .create(&path)
            .map_err(|e| io_err("create", &path, e))?;
        file.append(&file_bytes)
            .map_err(|e| io_err("write", &path, e))?;
        file.sync().map_err(|e| io_err("sync", &path, e))?;
        self.next_gen = gen + 1;
        let mut shard_gens = if comparable {
            std::mem::take(&mut self.shard_gens)
        } else {
            vec![gen; k]
        };
        for &s in &changed {
            shard_gens[s] = gen;
        }
        self.shard_gens = shard_gens;
        self.last_blocks = state.blocks.iter().map(|(b, _)| Arc::clone(b)).collect();
        Ok(GenOutcome {
            gen,
            blocks_written: changed.len(),
            bytes: file_bytes.len() as u64,
            incremental: changed.len() < k,
        })
    }

    /// Appends (and syncs) the manifest record committing generation `gen`
    /// at `snapshot_id` with the current per-shard coverage.
    pub(crate) fn commit_manifest(&self, gen: u64, snapshot_id: u64) -> EngineResult<()> {
        let path = self.dir.join(MANIFEST_NAME);
        let mut payload = WireWriter::new();
        payload.put_u64(gen);
        payload.put_u64(snapshot_id);
        payload.put_usize(self.shard_gens.len());
        for &g in &self.shard_gens {
            payload.put_u64(g);
        }
        let payload = payload.into_bytes();
        let mut frame = WireWriter::new();
        frame.put_u32(payload.len() as u32);
        frame.put_u32(crc32(&payload));
        frame.put_bytes(&payload);
        let mut file = if self.vfs.exists(&path) {
            self.vfs
                .open_append(&path)
                .map_err(|e| io_err("open", &path, e))?
        } else {
            let mut f = self
                .vfs
                .create(&path)
                .map_err(|e| io_err("create", &path, e))?;
            let mut header = WireWriter::new();
            header.put_u32(MANIFEST_MAGIC);
            header.put_u32(MANIFEST_VERSION);
            f.append(header.bytes())
                .map_err(|e| io_err("write header of", &path, e))?;
            f
        };
        file.append(frame.bytes())
            .map_err(|e| io_err("append to", &path, e))?;
        file.sync().map_err(|e| io_err("sync", &path, e))?;
        Ok(())
    }

    /// The generations the latest committed record still references.
    pub(crate) fn live_gens(&self, committed_gen: u64) -> BTreeSet<u64> {
        let mut live: BTreeSet<u64> = self.shard_gens.iter().copied().collect();
        live.insert(committed_gen);
        live
    }

    /// Deletes WAL segments other than `keep_segment` and generation files
    /// not in `live`.  Runs only after a manifest commit, so everything
    /// removed is unreferenced.
    pub(crate) fn cleanup(&self, live: &BTreeSet<u64>, keep_segment: &Path) -> EngineResult<()> {
        let entries = self
            .vfs
            .list(&self.dir)
            .map_err(|e| io_err("list", &self.dir, e))?;
        for path in entries {
            let stale_wal = crate::wal::segment_first_id(&path).is_some() && path != keep_segment;
            let stale_gen = gen_of_path(&path).is_some_and(|g| !live.contains(&g));
            if stale_wal || stale_gen {
                self.vfs
                    .remove(&path)
                    .map_err(|e| io_err("remove", &path, e))?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::order_and_factorize;
    use crate::vfs::FailpointFs;
    use clude_graph::measure_matrix;

    fn state_for(graph: DiGraph, snapshot_id: u64) -> DurableState {
        let kind = MatrixKind::random_walk_default();
        let matrix = measure_matrix(&graph, kind);
        let of = order_and_factorize(&matrix, &clude_telemetry::TelemetryRegistry::disabled(), 0)
            .unwrap();
        let published = of.publish(snapshot_id);
        let n = graph.n_nodes();
        DurableState {
            snapshot_id,
            kind,
            graph,
            partition: NodePartition::singleton(n),
            next_repartition_at: None,
            coupling: Vec::new(),
            blocks: vec![(published, of.reference_nnz)],
        }
    }

    #[test]
    fn generation_round_trips_through_disk() {
        let fs: Arc<dyn Vfs> = Arc::new(FailpointFs::new());
        let dir = PathBuf::from("/ckpt");
        let graph = DiGraph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
        let state = state_for(graph.clone(), 7);
        let mut ck = Checkpointer::new(Arc::clone(&fs), dir.clone(), 0);
        let out = ck.write_generation(&state).unwrap();
        assert_eq!(out.gen, 0);
        assert_eq!(out.blocks_written, 1);
        assert!(!out.incremental, "first generation is always full");
        ck.commit_manifest(out.gen, 7).unwrap();

        let manifest = fs.read(&dir.join(MANIFEST_NAME)).unwrap();
        let (records, valid) = parse_manifest(&dir.join(MANIFEST_NAME), &manifest).unwrap();
        assert_eq!(valid, manifest.len());
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].shard_gens, vec![0]);
        let restored = assemble_store_state(&*fs, &dir, &records[0]).unwrap_or_else(|_| {
            panic!("assemble failed");
        });
        assert_eq!(restored.snapshot_id, 7);
        assert_eq!(restored.graph, graph);
        assert_eq!(restored.blocks.len(), 1);
        let original = match &state.blocks[0].0.factors {
            Some(clude::MatrixFactors::Dynamic(f)) => f.export_entries(),
            _ => unreachable!(),
        };
        assert_eq!(restored.blocks[0].factors.export_entries(), original);
        assert_eq!(restored.blocks[0].reference_nnz, state.blocks[0].1);
    }

    #[test]
    fn unchanged_blocks_are_skipped_incrementally() {
        let fs: Arc<dyn Vfs> = Arc::new(FailpointFs::new());
        let dir = PathBuf::from("/ckpt");
        let graph = DiGraph::from_edges(4, [(0, 1), (1, 2)]);
        let state = state_for(graph, 1);
        let mut ck = Checkpointer::new(Arc::clone(&fs), dir.clone(), 0);
        ck.write_generation(&state).unwrap();
        ck.commit_manifest(0, 1).unwrap();
        // Same Arc published again: the next generation carries zero blocks.
        let state2 = DurableState {
            snapshot_id: 2,
            ..state
        };
        let out = ck.write_generation(&state2).unwrap();
        assert_eq!(out.blocks_written, 0);
        assert!(out.incremental);
        ck.commit_manifest(out.gen, 2).unwrap();
        let manifest = fs.read(&dir.join(MANIFEST_NAME)).unwrap();
        let (records, _) = parse_manifest(&dir.join(MANIFEST_NAME), &manifest).unwrap();
        assert_eq!(records.len(), 2);
        // Newest record still points shard 0 at generation 0 for its block.
        assert_eq!(records[1].gen, 1);
        assert_eq!(records[1].shard_gens, vec![0]);
        let restored = assemble_store_state(&*fs, &dir, &records[1]).unwrap_or_else(|_| {
            panic!("assemble failed");
        });
        assert_eq!(restored.snapshot_id, 2);
    }

    #[test]
    fn corrupt_generation_is_soft_version_mismatch_is_hard() {
        let fs = FailpointFs::new();
        let shared: Arc<dyn Vfs> = Arc::new(fs.clone());
        let dir = PathBuf::from("/ckpt");
        let graph = DiGraph::from_edges(3, [(0, 1), (1, 2)]);
        let state = state_for(graph, 1);
        let mut ck = Checkpointer::new(Arc::clone(&shared), dir.clone(), 5);
        ck.write_generation(&state).unwrap();
        let path = dir.join(gen_name(5));
        fs.corrupt(&path, |b| {
            let last = b.len() - 1;
            b[last] ^= 0x10;
        });
        match read_gen(&*shared, &dir, 5) {
            Err(GenReadError::Soft(msg)) => assert!(msg.contains("checksum")),
            _ => panic!("corruption must be a soft failure"),
        }
        fs.corrupt(&path, |b| {
            let last = b.len() - 1;
            b[last] ^= 0x10; // undo
            b[4] = 9; // version
        });
        match read_gen(&*shared, &dir, 5) {
            Err(GenReadError::Hard(e)) => assert!(e.to_string().contains("version 9")),
            _ => panic!("version skew must be a hard failure"),
        }
    }

    #[test]
    fn torn_manifest_tail_keeps_valid_prefix() {
        let fs = FailpointFs::new();
        let shared: Arc<dyn Vfs> = Arc::new(fs.clone());
        let dir = PathBuf::from("/ckpt");
        let graph = DiGraph::from_edges(3, [(0, 1)]);
        let state = state_for(graph, 1);
        let mut ck = Checkpointer::new(shared, dir.clone(), 0);
        ck.write_generation(&state).unwrap();
        ck.commit_manifest(0, 1).unwrap();
        let out = ck.write_generation(&state).unwrap();
        ck.commit_manifest(out.gen, 2).unwrap();
        let path = dir.join(MANIFEST_NAME);
        let full = fs.read(&path).unwrap();
        fs.corrupt(&path, |b| {
            let cut = b.len() - 5;
            b.truncate(cut);
        });
        let torn = fs.read(&path).unwrap();
        let (records, valid) = parse_manifest(&path, &torn).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].snapshot_id, 1);
        assert!(valid < full.len());
    }

    #[test]
    fn cleanup_removes_unreferenced_files() {
        let fs = FailpointFs::new();
        let shared: Arc<dyn Vfs> = Arc::new(fs.clone());
        let dir = PathBuf::from("/ckpt");
        let graph = DiGraph::from_edges(3, [(0, 1)]);
        let state = state_for(graph, 1);
        let mut ck = Checkpointer::new(Arc::clone(&shared), dir.clone(), 0);
        ck.write_generation(&state).unwrap();
        ck.commit_manifest(0, 1).unwrap();
        // Stale files a crashed rotation could leave behind.
        shared.create(&dir.join("wal-1.log")).unwrap();
        shared.create(&dir.join("wal-9.log")).unwrap();
        shared.create(&dir.join("gen-99.ckpt")).unwrap();
        ck.cleanup(&ck.live_gens(0), &dir.join("wal-2.log"))
            .unwrap();
        assert!(!fs.exists(&dir.join("wal-1.log")));
        assert!(!fs.exists(&dir.join("wal-9.log")));
        assert!(!fs.exists(&dir.join("gen-99.ckpt")));
        assert!(fs.exists(&dir.join(gen_name(0))));
        assert!(fs.exists(&dir.join(MANIFEST_NAME)));
    }
}
