//! The engine facade: single-writer ingest, many-reader querying.
//!
//! [`CludeEngine`] wires the three subsystems together behind a thread-safe
//! interface (`&self` everywhere, share it in an `Arc`):
//!
//! * edge operations go through a `Mutex`-guarded ingest state (the
//!   [`DeltaIngestor`] plus the [`FactorStore`]) — one writer at a time;
//! * cut batches advance the store and publish an immutable
//!   [`EngineSnapshot`] into an `RwLock`-guarded ring of recent snapshots
//!   (bounded time-travel window);
//! * queries grab an `Arc` to a snapshot under a brief read lock and solve
//!   through the sharded, cached [`QueryService`] without blocking the
//!   writer or each other.

use crate::error::{EngineError, EngineResult};
use crate::ingest::{BatchPolicy, DeltaIngestor, EdgeOp, IngestOutcome};
use crate::query::QueryService;
use crate::stats::{EngineCounters, EngineStats};
use crate::store::{EngineSnapshot, FactorStore, RefreshPolicy};
use clude_graph::{DiGraph, GraphDelta, MatrixKind};
use clude_measures::MeasureQuery;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// Tuning knobs of the engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// Matrix composition the factors are maintained for.  Queries whose
    /// [`MeasureQuery::required_matrix_kind`] disagrees are rejected.
    pub matrix_kind: MatrixKind,
    /// When to cut ingest batches.
    pub batch: BatchPolicy,
    /// When to abandon the ordering and re-factorize.
    pub refresh: RefreshPolicy,
    /// How many recent snapshots stay queryable (time-travel window).
    pub ring_capacity: usize,
    /// Number of result-cache shards.
    pub cache_shards: usize,
    /// LRU capacity per cache shard.
    pub cache_capacity_per_shard: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            matrix_kind: MatrixKind::random_walk_default(),
            batch: BatchPolicy::default(),
            refresh: RefreshPolicy::default(),
            ring_capacity: 8,
            cache_shards: 8,
            cache_capacity_per_shard: 128,
        }
    }
}

struct IngestState {
    ingestor: DeltaIngestor,
    store: FactorStore,
}

/// The streaming measure-serving engine.
pub struct CludeEngine {
    kind: MatrixKind,
    inner: Mutex<IngestState>,
    ring: RwLock<VecDeque<Arc<EngineSnapshot>>>,
    ring_capacity: usize,
    service: QueryService,
    counters: Arc<EngineCounters>,
}

impl CludeEngine {
    /// Builds the engine over a base graph: factorizes it as snapshot 0 and
    /// starts accepting edge operations and queries.
    pub fn new(base: DiGraph, config: EngineConfig) -> EngineResult<Self> {
        assert!(
            config.ring_capacity > 0,
            "need at least one retained snapshot"
        );
        let counters = Arc::new(EngineCounters::default());
        let store = FactorStore::new(base, config.matrix_kind, config.refresh)?;
        let first = Arc::new(store.snapshot());
        let mut ring = VecDeque::with_capacity(config.ring_capacity);
        ring.push_back(first);
        Ok(CludeEngine {
            kind: config.matrix_kind,
            inner: Mutex::new(IngestState {
                ingestor: DeltaIngestor::new(config.batch),
                store,
            }),
            ring: RwLock::new(ring),
            ring_capacity: config.ring_capacity,
            service: QueryService::new(
                config.cache_shards,
                config.cache_capacity_per_shard,
                Arc::clone(&counters),
            ),
            counters,
        })
    }

    /// Streams one edge insertion.  Returns the new snapshot id when the
    /// operation completed a batch.
    pub fn insert_edge(&self, from: usize, to: usize) -> EngineResult<Option<u64>> {
        self.offer(EdgeOp::Insert(from, to))
    }

    /// Streams one edge removal.  Returns the new snapshot id when the
    /// operation completed a batch.
    pub fn remove_edge(&self, from: usize, to: usize) -> EngineResult<Option<u64>> {
        self.offer(EdgeOp::Remove(from, to))
    }

    /// Streams one edge operation.
    pub fn offer(&self, op: EdgeOp) -> EngineResult<Option<u64>> {
        let mut state = self.inner.lock().expect("ingest state poisoned");
        let state = &mut *state;
        let outcome = state.ingestor.offer(op, state.store.graph())?;
        // Count only operations the ingestor accepted (rejected ones erred).
        EngineCounters::bump(&self.counters.ops_ingested);
        match outcome {
            IngestOutcome::Buffered => Ok(None),
            IngestOutcome::Coalesced => {
                EngineCounters::bump(&self.counters.ops_coalesced);
                Ok(None)
            }
            IngestOutcome::Flush(delta) => self.apply_batch(state, delta).map(Some),
        }
    }

    /// Forces the pending batch (if any) to be applied now.  Returns the new
    /// snapshot id when something was pending.
    pub fn flush(&self) -> EngineResult<Option<u64>> {
        let mut state = self.inner.lock().expect("ingest state poisoned");
        match state.ingestor.flush() {
            Some(delta) => self.apply_batch(&mut state, delta).map(Some),
            None => Ok(None),
        }
    }

    fn apply_batch(&self, state: &mut IngestState, delta: GraphDelta) -> EngineResult<u64> {
        let start = Instant::now();
        let report = state.store.advance(&delta)?;
        // Every applied batch counts toward ingest time; refresh time is the
        // subset spent in batches that ended in a full refresh.
        let elapsed = start.elapsed();
        EngineCounters::add_nanos(&self.counters.ingest_nanos, elapsed);
        if report.refreshed {
            EngineCounters::bump(&self.counters.refreshes);
            EngineCounters::add_nanos(&self.counters.refresh_nanos, elapsed);
        }
        EngineCounters::bump(&self.counters.batches_applied);
        self.counters.bennett_rank_one_updates.fetch_add(
            report.bennett.rank_one_updates as u64,
            std::sync::atomic::Ordering::Relaxed,
        );
        self.counters.bennett_pivots.fetch_add(
            report.bennett.pivots_processed as u64,
            std::sync::atomic::Ordering::Relaxed,
        );

        let snapshot = Arc::new(state.store.snapshot());
        let oldest_retained = {
            let mut ring = self.ring.write().expect("snapshot ring poisoned");
            ring.push_back(snapshot);
            while ring.len() > self.ring_capacity {
                ring.pop_front();
            }
            ring.front().expect("ring is never empty").id()
        };
        self.service.invalidate_below(oldest_retained);
        Ok(report.snapshot_id)
    }

    /// The id of the newest (currently served) snapshot.
    pub fn current_snapshot_id(&self) -> u64 {
        self.ring
            .read()
            .expect("snapshot ring poisoned")
            .back()
            .expect("ring is never empty")
            .id()
    }

    /// The ids still retained for time-travel queries (oldest first).
    pub fn retained_snapshot_ids(&self) -> Vec<u64> {
        self.ring
            .read()
            .expect("snapshot ring poisoned")
            .iter()
            .map(|s| s.id())
            .collect()
    }

    /// Net pending edge changes not yet applied to any snapshot.
    pub fn pending_ops(&self) -> usize {
        self.inner
            .lock()
            .expect("ingest state poisoned")
            .ingestor
            .pending_ops()
    }

    /// Answers a query against the newest snapshot.
    pub fn query(&self, query: &MeasureQuery) -> EngineResult<Arc<Vec<f64>>> {
        let snapshot = {
            let ring = self.ring.read().expect("snapshot ring poisoned");
            Arc::clone(ring.back().expect("ring is never empty"))
        };
        self.check_kind(query)?;
        self.service.query(&snapshot, query)
    }

    /// Answers a query against a retained past snapshot (time travel).
    pub fn query_at(&self, snapshot_id: u64, query: &MeasureQuery) -> EngineResult<Arc<Vec<f64>>> {
        let snapshot = {
            let ring = self.ring.read().expect("snapshot ring poisoned");
            let oldest = ring.front().expect("ring is never empty").id();
            let newest = ring.back().expect("ring is never empty").id();
            match ring.iter().find(|s| s.id() == snapshot_id) {
                Some(s) => Arc::clone(s),
                None => {
                    return Err(EngineError::UnknownSnapshot {
                        requested: snapshot_id,
                        oldest,
                        newest,
                    })
                }
            }
        };
        self.check_kind(query)?;
        self.service.query(&snapshot, query)
    }

    fn check_kind(&self, query: &MeasureQuery) -> EngineResult<()> {
        if let Some(required) = query.required_matrix_kind() {
            if required != self.kind {
                return Err(EngineError::InvalidQuery(format!(
                    "query needs factors for {required:?}, engine maintains {:?} \
                     (damping must match the engine's matrix composition)",
                    self.kind
                )));
            }
        }
        Ok(())
    }

    /// A point-in-time copy of the operation counters.
    pub fn stats(&self) -> EngineStats {
        self.counters.snapshot()
    }

    /// Number of results currently cached.
    pub fn cached_results(&self) -> usize {
        self.service.cached_entries()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn ring_graph(n: usize) -> DiGraph {
        let mut g = DiGraph::from_edges(n, (0..n).map(|i| (i, (i + 1) % n)).collect::<Vec<_>>());
        g.add_edge(2, 0);
        g
    }

    fn small_config(batch: usize) -> EngineConfig {
        EngineConfig {
            batch: BatchPolicy::by_count(batch),
            ring_capacity: 3,
            ..EngineConfig::default()
        }
    }

    #[test]
    fn batches_advance_snapshots_and_cache_invalidates() {
        let engine = CludeEngine::new(ring_graph(8), small_config(2)).unwrap();
        assert_eq!(engine.current_snapshot_id(), 0);
        let q = MeasureQuery::PageRank { damping: 0.85 };
        let before = engine.query(&q).unwrap();
        assert_eq!(engine.cached_results(), 1);

        assert_eq!(engine.insert_edge(0, 4).unwrap(), None);
        assert_eq!(engine.pending_ops(), 1);
        let id = engine.insert_edge(5, 1).unwrap();
        assert_eq!(id, Some(1));
        assert_eq!(engine.current_snapshot_id(), 1);
        assert_eq!(engine.pending_ops(), 0);

        let after = engine.query(&q).unwrap();
        assert!(before
            .iter()
            .zip(after.iter())
            .any(|(a, b)| (a - b).abs() > 1e-12));
        // Old snapshot still retained: time travel sees the old answer.
        let travelled = engine.query_at(0, &q).unwrap();
        assert_eq!(&*travelled, &*before);
    }

    #[test]
    fn ring_is_bounded_and_old_snapshots_expire() {
        let engine = CludeEngine::new(ring_graph(8), small_config(1)).unwrap();
        for i in 0..5 {
            engine.insert_edge(i, (i + 4) % 8).unwrap();
        }
        assert_eq!(engine.current_snapshot_id(), 5);
        assert_eq!(engine.retained_snapshot_ids(), vec![3, 4, 5]);
        let q = MeasureQuery::PageRank { damping: 0.85 };
        assert!(matches!(
            engine.query_at(0, &q),
            Err(EngineError::UnknownSnapshot {
                requested: 0,
                oldest: 3,
                newest: 5
            })
        ));
        assert!(engine.query_at(4, &q).is_ok());
    }

    #[test]
    fn flush_applies_partial_batches() {
        let engine = CludeEngine::new(ring_graph(8), small_config(100)).unwrap();
        assert_eq!(engine.flush().unwrap(), None);
        engine.insert_edge(1, 6).unwrap();
        assert_eq!(engine.flush().unwrap(), Some(1));
        assert!(engine.current_snapshot_id() == 1);
        let stats = engine.stats();
        assert_eq!(stats.batches_applied, 1);
        assert_eq!(stats.ops_ingested, 1);
    }

    #[test]
    fn damping_mismatch_is_rejected() {
        let engine = CludeEngine::new(ring_graph(8), small_config(4)).unwrap();
        let wrong = MeasureQuery::Rwr {
            seed: 0,
            damping: 0.5,
        };
        assert!(matches!(
            engine.query(&wrong),
            Err(EngineError::InvalidQuery(_))
        ));
        // Hitting time builds its own system and is damping-independent.
        let ht = MeasureQuery::HittingTime {
            target: 0,
            damping: 0.5,
        };
        assert!(engine.query(&ht).is_ok());
    }

    #[test]
    fn concurrent_readers_and_writer() {
        let engine = Arc::new(CludeEngine::new(ring_graph(16), small_config(3)).unwrap());
        let writer = {
            let engine = Arc::clone(&engine);
            thread::spawn(move || {
                // 30 distinct edges absent from the base ring (offsets 3/5).
                for i in 0..30 {
                    let (u, off) = if i < 15 { (i, 3) } else { (i - 15, 5) };
                    engine.insert_edge(u, (u + off) % 16).unwrap();
                }
                engine.flush().unwrap();
            })
        };
        let readers: Vec<_> = (0..4)
            .map(|t| {
                let engine = Arc::clone(&engine);
                thread::spawn(move || {
                    for i in 0..50 {
                        let q = MeasureQuery::Rwr {
                            seed: (t * 50 + i) % 16,
                            damping: 0.85,
                        };
                        let scores = engine.query(&q).unwrap();
                        assert!((scores.iter().sum::<f64>() - 1.0).abs() < 1e-6);
                    }
                })
            })
            .collect();
        writer.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }
        let stats = engine.stats();
        assert_eq!(stats.queries, 200);
        assert!(stats.batches_applied >= 10);
    }
}
