//! The engine facade: single-writer ingest, many-reader querying.
//!
//! [`CludeEngine`] wires the three subsystems together behind a thread-safe
//! interface (`&self` everywhere, share it in an `Arc`):
//!
//! * edge operations go through a `Mutex`-guarded ingest state (the
//!   [`DeltaIngestor`] plus the [`FactorStore`]) — one writer at a time;
//! * cut batches advance the store and publish an immutable
//!   [`EngineSnapshot`] into an `RwLock`-guarded ring of recent snapshots
//!   (bounded time-travel window).  The ring is copy-on-write: consecutive
//!   entries share the `Arc`'d factor blocks of every shard the batch did
//!   not touch (and the frozen coupling when no cross-shard entry changed),
//!   so retaining a deep ring costs O(touched shards) *factor* memory per
//!   snapshot (each entry still carries its own copy of the graph, which
//!   changes every batch and is far smaller than the factors);
//! * queries grab an `Arc` to the newest snapshot through the wait-free
//!   epoch-published [`SnapshotHandle`] — no lock of any kind on the hot
//!   read path — and solve through the sharded, cached, batching
//!   [`QueryService`] without blocking the writer or each other.  The ring
//!   `RwLock` is touched only by time-travel queries and stats.

use crate::coupling::CouplingConfig;
use crate::durability::{DurabilityConfig, Persistence};
use crate::epoch::SnapshotHandle;
use crate::error::{EngineError, EngineResult};
use crate::ingest::{BatchPolicy, DeltaIngestor, EdgeOp, IngestOutcome};
use crate::query::{QueryService, StalenessBudget};
use crate::recovery::{self, RecoveryReport};
use crate::sharded::{PartitionStrategy, ShardAdvance, ShardedAdvanceReport, ShardedFactorStore};
use crate::stats::{EngineCounters, EngineStats};
use crate::store::{EngineSnapshot, FactorStore, RefreshPolicy};
use clude::partition::edge_locality_partition;
use clude_graph::{btf_partition, DiGraph, GraphDelta, MatrixKind, NodePartition};
use clude_measures::MeasureQuery;
use clude_telemetry::{
    Counter, EngineEvent, Gauge, LogHistogram, Stage, TelemetryConfig, TelemetryRegistry,
};
use std::collections::{HashSet, VecDeque};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// Tuning knobs of the engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// Matrix composition the factors are maintained for.  Queries whose
    /// [`MeasureQuery::required_matrix_kind`] disagrees are rejected.
    pub matrix_kind: MatrixKind,
    /// When to cut ingest batches.
    pub batch: BatchPolicy,
    /// When to abandon the ordering and re-factorize.
    pub refresh: RefreshPolicy,
    /// How many recent snapshots stay queryable (time-travel window).  The
    /// ring shares untouched shards' factor blocks between entries, so a
    /// deeper ring costs O(touched shards) — not O(all shards) — *factor*
    /// memory per retained snapshot; each entry does keep its own copy of
    /// the (much smaller) snapshot graph.
    pub ring_capacity: usize,
    /// Number of result-cache shards.
    pub cache_shards: usize,
    /// LRU capacity per cache shard.
    pub cache_capacity_per_shard: usize,
    /// Number of factor-store shards.  `1` keeps the monolithic
    /// [`FactorStore`]; `>1` partitions the node universe by
    /// [`edge_locality_partition`] and maintains a [`ShardedFactorStore`]
    /// whose disjoint-shard delta batches apply in parallel.  Clamped to
    /// the number of nodes of the base graph.
    pub n_shards: usize,
    /// How coupled (sharded) queries are solved: the
    /// [`crate::coupling::CouplingSolver`] strategy, its
    /// [`crate::coupling::SolveTolerance`] stopping rule, and the optional
    /// coupling-size budget that triggers adaptive re-partitioning.
    pub coupling: CouplingConfig,
    /// Whether value-only delta batches (every changed matrix position
    /// already on a stored factor slot) are absorbed by a pattern-frozen
    /// refactorization — one pass down the frozen symbolic pattern — instead
    /// of per-entry Bennett sweeps.  On by default; turn off to A/B the
    /// Bennett path.
    pub refactor: bool,
    /// How the initial partition of a sharded engine is derived, and how the
    /// adaptive re-partitioner derives replacements: greedy edge locality,
    /// or BTF (SCC) structure whose cross-shard coupling is
    /// block-triangular (one-sweep Gauss–Seidel).
    pub partition_strategy: PartitionStrategy,
    /// Telemetry behavior: enabled (spans, histograms, journal) or compiled
    /// down to near-no-ops with [`TelemetryConfig::disabled`].
    pub telemetry: TelemetryConfig,
    /// Bounded-staleness serving: how many snapshots a cached result served
    /// for a newer snapshot may lag (`0`, the default, serves exact results
    /// only).
    pub staleness: StalenessBudget,
    /// Dwell window of the query batcher, in microseconds.  `0` (the
    /// default) drains immediately; a small window lets concurrent
    /// cache-missing queries coalesce into wider panel solves.
    pub batch_window_us: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            matrix_kind: MatrixKind::random_walk_default(),
            batch: BatchPolicy::default(),
            refresh: RefreshPolicy::default(),
            ring_capacity: 8,
            cache_shards: 8,
            cache_capacity_per_shard: 128,
            n_shards: 1,
            coupling: CouplingConfig::default(),
            refactor: true,
            partition_strategy: PartitionStrategy::default(),
            telemetry: TelemetryConfig::default(),
            staleness: StalenessBudget::default(),
            batch_window_us: 0,
        }
    }
}

/// The factor store behind the ingest path: monolithic or partitioned
/// (boxed: the stores are large and live once per engine).
#[derive(Debug)]
enum StoreBackend {
    Monolithic(Box<FactorStore>),
    Sharded(Box<ShardedFactorStore>),
}

impl StoreBackend {
    fn graph(&self) -> &DiGraph {
        match self {
            StoreBackend::Monolithic(s) => s.graph(),
            StoreBackend::Sharded(s) => s.graph(),
        }
    }

    fn snapshot(&self) -> EngineSnapshot {
        match self {
            StoreBackend::Monolithic(s) => s.snapshot(),
            StoreBackend::Sharded(s) => s.snapshot(),
        }
    }

    fn n_shards(&self) -> usize {
        match self {
            StoreBackend::Monolithic(_) => 1,
            StoreBackend::Sharded(s) => s.n_shards(),
        }
    }

    fn snapshot_id(&self) -> u64 {
        match self {
            StoreBackend::Monolithic(s) => s.snapshot_id(),
            StoreBackend::Sharded(s) => s.snapshot_id(),
        }
    }

    fn durable_state(&self) -> crate::checkpoint::DurableState {
        match self {
            StoreBackend::Monolithic(s) => s.durable_state(),
            StoreBackend::Sharded(s) => s.durable_state(),
        }
    }

    /// Advances the store, normalising both backends' reports to the
    /// per-shard shape (the monolithic store is one big shard).
    fn advance(&mut self, delta: &GraphDelta) -> EngineResult<ShardedAdvanceReport> {
        match self {
            StoreBackend::Monolithic(s) => {
                let r = s.advance(delta)?;
                Ok(ShardedAdvanceReport {
                    snapshot_id: r.snapshot_id,
                    bennett: r.bennett,
                    per_shard: vec![ShardAdvance {
                        shard: 0,
                        entries_applied: r.entries_applied as u64,
                        sweeps: r.bennett.rank_one_updates as u64,
                        cross_edges_seen: 0,
                        refreshed: r.refreshed,
                        value_only: r.value_only,
                        refactored: r.refactored,
                        quality_loss: r.quality_loss,
                    }],
                    refreshed: r.refreshed,
                    shards_refactored: r.refactored as u64,
                    quality_loss: r.quality_loss,
                    coupling_writes: 0,
                    shards_republished: r.republished as u64,
                    coupling_republished: false,
                    repartitioned: false,
                    correction_rebuilt: false,
                })
            }
            StoreBackend::Sharded(s) => s.advance(delta),
        }
    }
}

struct IngestState {
    ingestor: DeltaIngestor,
    store: StoreBackend,
    /// Durability driver; `None` for in-memory engines.  Living inside the
    /// ingest mutex makes the WAL single-writer by construction.
    persistence: Option<Persistence>,
}

impl std::fmt::Debug for IngestState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IngestState")
            .field("ingestor", &self.ingestor)
            .field("store", &self.store)
            .field("durable", &self.persistence.is_some())
            .finish()
    }
}

/// The streaming measure-serving engine.
#[derive(Debug)]
pub struct CludeEngine {
    kind: MatrixKind,
    /// Fixed at construction (the shard *count* never changes; the adaptive
    /// re-partitioner may re-derive the node assignment behind it).
    n_shards: usize,
    /// The coupling-solver configuration in force (strategy name is
    /// reported through [`EngineStats`]).
    coupling_cfg: CouplingConfig,
    inner: Mutex<IngestState>,
    ring: RwLock<VecDeque<Arc<EngineSnapshot>>>,
    ring_capacity: usize,
    /// Wait-free published-snapshot cell: the hot read path loads the newest
    /// snapshot here without touching the ring lock.
    handle: SnapshotHandle,
    service: QueryService,
    counters: Arc<EngineCounters>,
    telemetry: Arc<TelemetryRegistry>,
}

impl CludeEngine {
    /// Builds the engine over a base graph: factorizes it as snapshot 0 and
    /// starts accepting edge operations and queries.
    ///
    /// With `config.n_shards > 1` the node universe is partitioned by
    /// [`edge_locality_partition`] (balanced breadth-first regions, so
    /// well-connected nodes share a shard) and the factors are maintained in
    /// a [`ShardedFactorStore`]; use [`CludeEngine::with_partition`] to bring
    /// a custom partition instead.
    pub fn new(base: DiGraph, config: EngineConfig) -> EngineResult<Self> {
        assert!(config.n_shards >= 1, "need at least one factor shard");
        // Callers often size n_shards from the CPU count; a universe smaller
        // than that caps at one node per shard rather than failing.
        let n_shards = config.n_shards.min(base.n_nodes().max(1));
        if n_shards <= 1 {
            let telemetry = Arc::new(TelemetryRegistry::new(config.telemetry));
            let store = FactorStore::with_registry(
                base,
                config.matrix_kind,
                config.refresh,
                Arc::clone(&telemetry),
            )?
            .with_coupling_config(config.coupling)
            .with_refactor(config.refactor);
            Self::from_backend(StoreBackend::Monolithic(Box::new(store)), config, telemetry)
        } else {
            let partition = match config.partition_strategy {
                PartitionStrategy::EdgeLocality => edge_locality_partition(&base, n_shards),
                PartitionStrategy::Btf => btf_partition(&base, config.matrix_kind, n_shards).0,
            };
            Self::with_partition(base, config, partition)
        }
    }

    /// Builds a sharded engine over an explicit node partition (the
    /// partition's shard count overrides `config.n_shards`).
    pub fn with_partition(
        base: DiGraph,
        config: EngineConfig,
        partition: NodePartition,
    ) -> EngineResult<Self> {
        let telemetry = Arc::new(TelemetryRegistry::new(config.telemetry));
        let store = ShardedFactorStore::with_registry(
            base,
            config.matrix_kind,
            config.refresh,
            partition,
            Arc::clone(&telemetry),
        )?
        .with_refactor(config.refactor)
        .with_partition_strategy(config.partition_strategy)
        .with_coupling_config(config.coupling)?;
        Self::from_backend(StoreBackend::Sharded(Box::new(store)), config, telemetry)
    }

    /// Opens a durable engine over the spool in `durability.dir`.
    ///
    /// With no committed checkpoint the spool is cold: the engine is built
    /// from `base` exactly like [`CludeEngine::new`] and the base image is
    /// made durable (full checkpoint + fresh WAL segment) *before* any batch
    /// is accepted.  Otherwise the newest loadable checkpoint is restored,
    /// the WAL suffix is replayed through the normal batch path (identical
    /// refresh/repartition decisions, so the recovered factors match the
    /// uncrashed run bit-for-bit), and a fresh full checkpoint re-anchors
    /// the spool.  `base` must describe the same node universe and
    /// `config.matrix_kind` the same matrix as the spool; mismatches fail
    /// loudly rather than answering queries from the wrong operator.
    ///
    /// Returns the engine plus a [`RecoveryReport`] describing what was
    /// found and replayed.
    pub fn open_durable(
        base: DiGraph,
        config: EngineConfig,
        durability: DurabilityConfig,
    ) -> EngineResult<(Self, RecoveryReport)> {
        durability
            .vfs
            .create_dir_all(&durability.dir)
            .map_err(|e| crate::wal::io_err("create_dir_all", &durability.dir, e))?;
        let loaded = recovery::load_checkpoint(&*durability.vfs, &durability.dir)?;
        let Some(loaded) = loaded else {
            // Cold start: durably anchor the base image before any writes.
            let engine = Self::new(base, config)?;
            let mut state = engine.inner.lock().expect("ingest state poisoned");
            let durable = state.store.durable_state();
            state.persistence = Some(Persistence::bootstrap(
                &durability,
                Arc::clone(&engine.telemetry),
                &durable,
                0,
            )?);
            drop(state);
            return Ok((engine, RecoveryReport::default()));
        };
        if loaded.state.kind != config.matrix_kind {
            return Err(EngineError::Persistence(format!(
                "checkpoint matrix kind {:?} does not match configured {:?}",
                loaded.state.kind, config.matrix_kind
            )));
        }
        if loaded.state.graph.n_nodes() != base.n_nodes() {
            return Err(EngineError::Persistence(format!(
                "checkpoint node universe ({} nodes) does not match base graph ({} nodes)",
                loaded.state.graph.n_nodes(),
                base.n_nodes()
            )));
        }
        let checkpoint_snapshot = loaded.state.snapshot_id;
        let checkpoint_gen = loaded.gen;
        let max_committed_gen = loaded.max_committed_gen;
        let telemetry = Arc::new(TelemetryRegistry::new(config.telemetry));
        let store = if loaded.state.partition.n_shards() <= 1 {
            StoreBackend::Monolithic(Box::new(
                FactorStore::restore(
                    config.refresh,
                    config.coupling,
                    Arc::clone(&telemetry),
                    loaded.state,
                )?
                .with_refactor(config.refactor),
            ))
        } else {
            StoreBackend::Sharded(Box::new(
                ShardedFactorStore::restore(
                    config.refresh,
                    config.coupling,
                    Arc::clone(&telemetry),
                    loaded.state,
                )?
                .with_refactor(config.refactor)
                .with_partition_strategy(config.partition_strategy),
            ))
        };
        let replay = recovery::read_wal(&*durability.vfs, &durability.dir, checkpoint_snapshot)?;
        let engine = Self::from_backend(store, config, telemetry)?;
        let mut report = RecoveryReport {
            checkpoint_snapshot: Some(checkpoint_snapshot),
            checkpoint_gen: Some(checkpoint_gen),
            wal_records_replayed: 0,
            wal_records_truncated: replay.dropped,
            recovered_snapshot: None,
        };
        {
            let mut state = engine.inner.lock().expect("ingest state poisoned");
            for (id, delta) in replay.records {
                let span = engine.telemetry.span(Stage::RecoveryReplay);
                let applied = engine.apply_batch(&mut state, delta)?;
                span.stop();
                if applied != id {
                    return Err(EngineError::Persistence(format!(
                        "WAL replay produced snapshot {applied} where record {id} was expected"
                    )));
                }
                report.wal_records_replayed += 1;
            }
            if replay.dropped > 0 {
                engine.telemetry.record_event(EngineEvent::WalTruncated {
                    records_dropped: replay.dropped,
                });
            }
            // Re-anchor: a fresh full checkpoint above every committed
            // generation, so the next crash replays only new work.
            let durable = state.store.durable_state();
            state.persistence = Some(Persistence::bootstrap(
                &durability,
                Arc::clone(&engine.telemetry),
                &durable,
                max_committed_gen + 1,
            )?);
            report.recovered_snapshot = Some(state.store.snapshot_id());
        }
        Ok((engine, report))
    }

    /// Forces a checkpoint generation now, regardless of the interval.
    /// Returns `false` for in-memory (non-durable) engines.
    pub fn checkpoint_now(&self) -> EngineResult<bool> {
        let mut state = self.inner.lock().expect("ingest state poisoned");
        let state = &mut *state;
        match state.persistence.as_mut() {
            Some(persistence) => {
                let durable = state.store.durable_state();
                persistence.checkpoint_state(&durable)?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Forces the WAL durability barrier, closing an open group-commit
    /// window early.  Returns `false` for in-memory engines.
    pub fn sync_wal(&self) -> EngineResult<bool> {
        let mut state = self.inner.lock().expect("ingest state poisoned");
        match state.persistence.as_mut() {
            Some(persistence) => {
                persistence.sync_wal()?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    fn from_backend(
        store: StoreBackend,
        config: EngineConfig,
        telemetry: Arc<TelemetryRegistry>,
    ) -> EngineResult<Self> {
        assert!(
            config.ring_capacity > 0,
            "need at least one retained snapshot"
        );
        let n_shards = store.n_shards();
        let counters = Arc::new(EngineCounters::with_shards(n_shards));
        let first = Arc::new(store.snapshot());
        let mut ring = VecDeque::with_capacity(config.ring_capacity);
        ring.push_back(Arc::clone(&first));
        Ok(CludeEngine {
            kind: config.matrix_kind,
            coupling_cfg: config.coupling,
            n_shards,
            inner: Mutex::new(IngestState {
                ingestor: DeltaIngestor::new(config.batch).with_telemetry(Arc::clone(&telemetry)),
                store,
                persistence: None,
            }),
            ring: RwLock::new(ring),
            ring_capacity: config.ring_capacity,
            handle: SnapshotHandle::new(first),
            service: QueryService::with_serving(
                config.cache_shards,
                config.cache_capacity_per_shard,
                Arc::clone(&counters),
                Arc::clone(&telemetry),
                config.staleness,
                std::time::Duration::from_micros(config.batch_window_us),
            ),
            counters,
            telemetry,
        })
    }

    /// Number of factor-store shards the ingest path maintains (fixed at
    /// construction; never blocks on the ingest lock).
    pub fn n_shards(&self) -> usize {
        self.n_shards
    }

    /// Streams one edge insertion.  Returns the new snapshot id when the
    /// operation completed a batch.
    pub fn insert_edge(&self, from: usize, to: usize) -> EngineResult<Option<u64>> {
        self.offer(EdgeOp::Insert(from, to))
    }

    /// Streams one edge removal.  Returns the new snapshot id when the
    /// operation completed a batch.
    pub fn remove_edge(&self, from: usize, to: usize) -> EngineResult<Option<u64>> {
        self.offer(EdgeOp::Remove(from, to))
    }

    /// Streams one edge operation.
    pub fn offer(&self, op: EdgeOp) -> EngineResult<Option<u64>> {
        let mut state = self.inner.lock().expect("ingest state poisoned");
        let state = &mut *state;
        let outcome = state.ingestor.offer(op, state.store.graph())?;
        // Count only operations the ingestor accepted (rejected ones erred).
        EngineCounters::bump(&self.counters.ops_ingested);
        self.telemetry.incr(Counter::OpsIngested);
        match outcome {
            IngestOutcome::Buffered => Ok(None),
            IngestOutcome::Coalesced => {
                EngineCounters::bump(&self.counters.ops_coalesced);
                Ok(None)
            }
            // lint: allow(lock-discipline) — the one legal nesting: the
            // ingest Mutex is held while `apply_batch` takes the ring
            // RwLock. Lock order is documented on `CludeEngine`: ingest
            // Mutex first, ring RwLock second, never the reverse.
            IngestOutcome::Flush(delta) => self.apply_batch(state, delta).map(Some),
        }
    }

    /// Forces the pending batch (if any) to be applied now.  Returns the new
    /// snapshot id when something was pending.
    pub fn flush(&self) -> EngineResult<Option<u64>> {
        let mut state = self.inner.lock().expect("ingest state poisoned");
        match state.ingestor.flush() {
            // lint: allow(lock-discipline) — same documented ingest-Mutex →
            // ring-RwLock order as `offer`; no path takes the locks reversed.
            Some(delta) => self.apply_batch(&mut state, delta).map(Some),
            None => Ok(None),
        }
    }

    fn apply_batch(&self, state: &mut IngestState, delta: GraphDelta) -> EngineResult<u64> {
        let start = Instant::now();
        // Write-ahead invariant: the WAL record for the batch that will
        // become snapshot `k` is appended (and synced per the group-commit
        // window) before any in-memory state advances.  A failed append
        // aborts the batch here, before the store, ring or handle see it, so
        // no published snapshot can ever be ahead of the log.
        if let Some(persistence) = state.persistence.as_mut() {
            persistence.log_batch(state.store.snapshot_id() + 1, &delta)?;
        }
        let apply_span = self.telemetry.span(Stage::IngestApply);
        let report = state.store.advance(&delta)?;
        apply_span.stop();
        self.telemetry.incr(Counter::BatchesApplied);
        // Every applied batch counts toward ingest time; refresh time is the
        // subset spent in batches that ended in a full refresh.
        let elapsed = start.elapsed();
        EngineCounters::add_nanos(&self.counters.ingest_nanos, elapsed);
        if report.refreshed {
            EngineCounters::bump(&self.counters.refreshes);
            EngineCounters::add_nanos(&self.counters.refresh_nanos, elapsed);
        }
        EngineCounters::bump(&self.counters.batches_applied);
        EngineCounters::add(
            &self.counters.bennett_rank_one_updates,
            report.bennett.rank_one_updates as u64,
        );
        EngineCounters::add(
            &self.counters.bennett_pivots,
            report.bennett.pivots_processed as u64,
        );
        for shard in &report.per_shard {
            let c = &self.counters.per_shard[shard.shard];
            EngineCounters::add(&c.deltas_applied, shard.entries_applied);
            EngineCounters::add(&c.sweeps_run, shard.sweeps);
            EngineCounters::add(&c.cross_shard_edges, shard.cross_edges_seen);
            if shard.refreshed {
                EngineCounters::bump(&c.refreshes);
            }
        }
        // Snapshot-ring sharing accounting: the batch cloned (re-froze) the
        // factor blocks of the shards it touched and shared the rest with the
        // previous ring entry.
        EngineCounters::add(&self.counters.cow_shards_cloned, report.shards_republished);
        EngineCounters::add(
            &self.counters.cow_shards_shared,
            self.n_shards as u64 - report.shards_republished,
        );
        if report.repartitioned {
            EngineCounters::bump(&self.counters.repartitions);
        }
        if report.correction_rebuilt {
            EngineCounters::bump(&self.counters.corrections_built);
        }

        let snapshot = Arc::new(state.store.snapshot());
        let (previous, oldest_retained) = {
            let mut ring = self.ring.write().expect("snapshot ring poisoned");
            let previous = ring.back().map(Arc::clone);
            ring.push_back(Arc::clone(&snapshot));
            while ring.len() > self.ring_capacity {
                ring.pop_front();
            }
            (previous, ring.front().expect("ring is never empty").id())
        };
        // Publish to the wait-free handle: the hot read path switches to the
        // new snapshot without ever taking the ring lock.  Publishes stay
        // serialized because the ingest mutex is held here; readers touch
        // only the handle's internal slot, so no ordering cycle exists.
        self.handle.publish(Arc::clone(&snapshot));
        self.service.invalidate_below(oldest_retained);
        // Stability-aware cache promotion: `Arc` block identity between the
        // two newest ring entries names exactly the shards this batch
        // republished; results supported only by the others still hold.
        if let Some(previous) = previous {
            let changed: Vec<usize> = snapshot
                .shards()
                .iter()
                .zip(previous.shards().iter())
                .enumerate()
                .filter(|(_, (new, old))| !Arc::ptr_eq(new.shared(), old.shared()))
                .map(|(shard, _)| shard)
                .collect();
            self.service.note_publish(
                &snapshot,
                &changed,
                report.coupling_republished,
                report.repartitioned,
            );
        }
        // Checkpoint after publication so the generation image matches a
        // snapshot queries can already see.  The (expensive) durable-state
        // capture happens only on the batches that actually checkpoint.
        if let Some(persistence) = state.persistence.as_mut() {
            if persistence.note_applied() {
                let durable = state.store.durable_state();
                persistence.checkpoint_state(&durable)?;
            }
        }
        Ok(report.snapshot_id)
    }

    /// The id of the newest (currently served) snapshot.
    pub fn current_snapshot_id(&self) -> u64 {
        self.ring
            .read()
            .expect("snapshot ring poisoned")
            .back()
            .expect("ring is never empty")
            .id()
    }

    /// The ids still retained for time-travel queries (oldest first).
    pub fn retained_snapshot_ids(&self) -> Vec<u64> {
        self.ring
            .read()
            .expect("snapshot ring poisoned")
            .iter()
            .map(|s| s.id())
            .collect()
    }

    /// Net pending edge changes not yet applied to any snapshot.
    pub fn pending_ops(&self) -> usize {
        self.inner
            .lock()
            .expect("ingest state poisoned")
            .ingestor
            .pending_ops()
    }

    /// Answers a query against the newest snapshot.
    ///
    /// Lock-free snapshot acquisition: the newest snapshot comes from the
    /// wait-free [`SnapshotHandle`], so this path acquires no `RwLock` at
    /// all (the result-cache shards use their own locks only around probes
    /// and inserts, never across a solve).
    pub fn query(&self, query: &MeasureQuery) -> EngineResult<Arc<Vec<f64>>> {
        let snapshot = self.handle.load();
        self.check_kind(query)?;
        self.service.query(&snapshot, query)
    }

    /// Answers a query against a retained past snapshot (time travel).
    pub fn query_at(&self, snapshot_id: u64, query: &MeasureQuery) -> EngineResult<Arc<Vec<f64>>> {
        let snapshot = {
            let ring = self.ring.read().expect("snapshot ring poisoned");
            let oldest = ring.front().expect("ring is never empty").id();
            let newest = ring.back().expect("ring is never empty").id();
            match ring.iter().find(|s| s.id() == snapshot_id) {
                Some(s) => Arc::clone(s),
                None => {
                    return Err(EngineError::UnknownSnapshot {
                        requested: snapshot_id,
                        oldest,
                        newest,
                    })
                }
            }
        };
        self.check_kind(query)?;
        self.service.query(&snapshot, query)
    }

    fn check_kind(&self, query: &MeasureQuery) -> EngineResult<()> {
        if let Some(required) = query.required_matrix_kind() {
            if required != self.kind {
                return Err(EngineError::InvalidQuery(format!(
                    "query needs factors for {required:?}, engine maintains {:?} \
                     (damping must match the engine's matrix composition)",
                    self.kind
                )));
            }
        }
        Ok(())
    }

    /// A point-in-time copy of the operation counters, completed with the
    /// snapshot-ring occupancy: ring depth and the approximate resident
    /// factor bytes across the ring, counting every shared factor block and
    /// frozen coupling exactly once (deduplicated by [`Arc`] identity —
    /// this is where the copy-on-write sharing becomes visible as memory).
    pub fn stats(&self) -> EngineStats {
        let mut stats = self.counters.snapshot();
        let ring = self.ring.read().expect("snapshot ring poisoned");
        stats.ring_depth = ring.len() as u64;
        let mut seen: HashSet<*const ()> = HashSet::new();
        let mut bytes = 0u64;
        for snapshot in ring.iter() {
            for shard in snapshot.shards() {
                if seen.insert(Arc::as_ptr(shard.shared()).cast()) {
                    bytes += shard.decomposed().approx_bytes() as u64;
                }
            }
            let coupling = snapshot.shared_coupling();
            if seen.insert(Arc::as_ptr(coupling).cast()) {
                // CSR: ~16 bytes per entry (column + value) plus row offsets.
                bytes += (coupling.nnz() * 16 + (coupling.n_rows() + 1) * 8) as u64;
            }
            let plan = snapshot.coupling_plan();
            if seen.insert(Arc::as_ptr(plan).cast()) {
                bytes += plan.approx_bytes() as u64;
            }
        }
        stats.resident_factor_bytes = bytes;
        // The coupling view of the newest snapshot: the strategy in force,
        // how dense the coupling currently is, and how much of it the cached
        // correction captures.
        let newest = ring.back().expect("ring is never empty");
        stats.solver = self.coupling_cfg.solver.name().to_string();
        stats.coupling_nnz = newest.coupling().nnz() as u64;
        stats.correction_rank = newest.coupling_plan().correction_rank().unwrap_or(0) as u64;
        drop(ring);
        // Fold the occupancy numbers back into the telemetry gauges so the
        // exposition and the stats report agree on a sampling instant.
        self.telemetry.set_gauge(Gauge::RingDepth, stats.ring_depth);
        self.telemetry
            .set_gauge(Gauge::ResidentFactorBytes, stats.resident_factor_bytes);
        self.telemetry
            .set_gauge(Gauge::CouplingNnz, stats.coupling_nnz);
        self.telemetry
            .set_gauge(Gauge::CorrectionRank, stats.correction_rank);
        stats.telemetry_enabled = self.telemetry.enabled();
        stats.spans_recorded = self.telemetry.spans_recorded();
        stats.journal_events = self.telemetry.journal().recorded();
        stats.journal_dropped = self.telemetry.journal().dropped();
        let solves = self.telemetry.stage_histogram(Stage::QuerySolve);
        stats.query_solve_p50 = solves.duration_at_quantile(0.5);
        stats.query_solve_p99 = solves.duration_at_quantile(0.99);
        stats
    }

    /// Number of results currently cached.
    pub fn cached_results(&self) -> usize {
        self.service.cached_entries()
    }

    /// The query batcher's occupancy histogram: one sample per drained
    /// batch, valued at how many queries the batch coalesced into panel
    /// solves.
    pub fn batch_occupancy(&self) -> &LogHistogram {
        self.service.batch_occupancy()
    }

    /// The telemetry registry shared by every engine subsystem — stage
    /// histograms, counters, gauges, and the structured event journal.
    pub fn telemetry(&self) -> &Arc<TelemetryRegistry> {
        &self.telemetry
    }

    /// Renders the telemetry registry in the Prometheus text exposition
    /// format, refreshing the occupancy gauges first.
    pub fn render_prometheus(&self) -> String {
        let _ = self.stats();
        self.telemetry.render_prometheus()
    }

    /// Renders the telemetry registry as a JSON document, refreshing the
    /// occupancy gauges first.
    pub fn telemetry_json(&self) -> String {
        let _ = self.stats();
        self.telemetry.render_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn ring_graph(n: usize) -> DiGraph {
        let mut g = DiGraph::from_edges(n, (0..n).map(|i| (i, (i + 1) % n)).collect::<Vec<_>>());
        g.add_edge(2, 0);
        g
    }

    fn small_config(batch: usize) -> EngineConfig {
        EngineConfig {
            batch: BatchPolicy::by_count(batch),
            ring_capacity: 3,
            ..EngineConfig::default()
        }
    }

    #[test]
    fn batches_advance_snapshots_and_cache_invalidates() {
        let engine = CludeEngine::new(ring_graph(8), small_config(2)).unwrap();
        assert_eq!(engine.current_snapshot_id(), 0);
        let q = MeasureQuery::PageRank { damping: 0.85 };
        let before = engine.query(&q).unwrap();
        assert_eq!(engine.cached_results(), 1);

        assert_eq!(engine.insert_edge(0, 4).unwrap(), None);
        assert_eq!(engine.pending_ops(), 1);
        let id = engine.insert_edge(5, 1).unwrap();
        assert_eq!(id, Some(1));
        assert_eq!(engine.current_snapshot_id(), 1);
        assert_eq!(engine.pending_ops(), 0);

        let after = engine.query(&q).unwrap();
        assert!(before
            .iter()
            .zip(after.iter())
            .any(|(a, b)| (a - b).abs() > 1e-12));
        // Old snapshot still retained: time travel sees the old answer.
        let travelled = engine.query_at(0, &q).unwrap();
        assert_eq!(&*travelled, &*before);
    }

    #[test]
    fn ring_is_bounded_and_old_snapshots_expire() {
        let engine = CludeEngine::new(ring_graph(8), small_config(1)).unwrap();
        for i in 0..5 {
            engine.insert_edge(i, (i + 4) % 8).unwrap();
        }
        assert_eq!(engine.current_snapshot_id(), 5);
        assert_eq!(engine.retained_snapshot_ids(), vec![3, 4, 5]);
        let q = MeasureQuery::PageRank { damping: 0.85 };
        assert!(matches!(
            engine.query_at(0, &q),
            Err(EngineError::UnknownSnapshot {
                requested: 0,
                oldest: 3,
                newest: 5
            })
        ));
        assert!(engine.query_at(4, &q).is_ok());
    }

    #[test]
    fn stats_report_ring_occupancy_and_sharing() {
        let engine = CludeEngine::new(
            ring_graph(12),
            EngineConfig {
                n_shards: 3,
                ..small_config(1)
            },
        )
        .unwrap();
        let before = engine.stats();
        assert_eq!(before.ring_depth, 1);
        assert!(before.resident_factor_bytes > 0);
        assert_eq!(before.cow_shards_cloned + before.cow_shards_shared, 0);
        // Each single-edge batch touches one or two shards; the rest of each
        // snapshot's blocks are shared with the previous ring entry.
        for i in 0..4 {
            engine.insert_edge(i, (i + 5) % 12).unwrap();
        }
        let stats = engine.stats();
        assert_eq!(stats.ring_depth, 3); // capped by ring_capacity
        assert_eq!(
            stats.cow_shards_cloned + stats.cow_shards_shared,
            4 * engine.n_shards() as u64
        );
        assert!(stats.cow_shards_shared > 0, "no snapshot shared any shard");
        assert!(stats.resident_factor_bytes > 0);
        assert!(stats.to_string().contains("cow-clones"));
    }

    #[test]
    fn coupling_config_flows_into_snapshots_and_stats() {
        use crate::coupling::{CouplingConfig, CouplingSolver};
        let engine = CludeEngine::new(
            ring_graph(12),
            EngineConfig {
                n_shards: 3,
                coupling: CouplingConfig {
                    solver: CouplingSolver::woodbury(),
                    ..CouplingConfig::default()
                },
                ..small_config(1)
            },
        )
        .unwrap();
        // The ring crosses shards, so the configured Woodbury strategy has a
        // cached correction from snapshot 0 on.
        let stats = engine.stats();
        assert_eq!(stats.solver, "woodbury");
        assert!(stats.coupling_nnz > 0);
        assert!(stats.correction_rank > 0);
        let q = MeasureQuery::PageRank { damping: 0.85 };
        let scores = engine.query(&q).unwrap();
        assert!((scores.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // Cross-shard inserts rebuild the cached correction; the counter and
        // the Display line make the strategy visible.
        engine.insert_edge(0, 7).unwrap();
        let stats = engine.stats();
        assert!(stats.corrections_built > 0);
        let text = stats.to_string();
        assert!(text.contains("coupling |"));
        assert!(text.contains("woodbury"));
    }

    #[test]
    fn repartition_budget_is_honored_through_the_engine() {
        use crate::coupling::CouplingConfig;
        // Interleaved partition of a ring: dense coupling from the start; a
        // tight budget makes the first applied batch re-partition.
        let assignments = (0..12).map(|u| u % 3).collect::<Vec<_>>();
        let engine = CludeEngine::with_partition(
            ring_graph(12),
            EngineConfig {
                coupling: CouplingConfig {
                    repartition_budget: Some(4),
                    ..CouplingConfig::default()
                },
                ..small_config(1)
            },
            clude_graph::NodePartition::from_assignments(assignments),
        )
        .unwrap();
        let before = engine.stats();
        assert!(before.coupling_nnz > 4);
        engine.insert_edge(0, 6).unwrap();
        let stats = engine.stats();
        assert_eq!(stats.repartitions, 1);
        assert!(
            stats.coupling_nnz < before.coupling_nnz,
            "repartition should shrink the coupling ({} -> {})",
            before.coupling_nnz,
            stats.coupling_nnz
        );
        let q = MeasureQuery::PageRank { damping: 0.85 };
        let scores = engine.query(&q).unwrap();
        assert!((scores.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn flush_applies_partial_batches() {
        let engine = CludeEngine::new(ring_graph(8), small_config(100)).unwrap();
        assert_eq!(engine.flush().unwrap(), None);
        engine.insert_edge(1, 6).unwrap();
        assert_eq!(engine.flush().unwrap(), Some(1));
        assert!(engine.current_snapshot_id() == 1);
        let stats = engine.stats();
        assert_eq!(stats.batches_applied, 1);
        assert_eq!(stats.ops_ingested, 1);
    }

    #[test]
    fn damping_mismatch_is_rejected() {
        let engine = CludeEngine::new(ring_graph(8), small_config(4)).unwrap();
        let wrong = MeasureQuery::Rwr {
            seed: 0,
            damping: 0.5,
        };
        assert!(matches!(
            engine.query(&wrong),
            Err(EngineError::InvalidQuery(_))
        ));
        // Hitting time builds its own system and is damping-independent.
        let ht = MeasureQuery::HittingTime {
            target: 0,
            damping: 0.5,
        };
        assert!(engine.query(&ht).is_ok());
    }

    #[test]
    fn sharded_engine_matches_monolithic_answers() {
        let base = ring_graph(16);
        let mono = CludeEngine::new(base.clone(), small_config(3)).unwrap();
        let sharded = CludeEngine::new(
            base,
            EngineConfig {
                n_shards: 4,
                ..small_config(3)
            },
        )
        .unwrap();
        assert_eq!(mono.n_shards(), 1);
        assert_eq!(sharded.n_shards(), 4);
        // Same stream into both engines: intra- and cross-shard edges.
        for i in 0..12 {
            let (u, v) = (i, (i * 5 + 2) % 16);
            if u != v {
                mono.insert_edge(u, v).unwrap();
                sharded.insert_edge(u, v).unwrap();
            }
        }
        mono.flush().unwrap();
        sharded.flush().unwrap();
        assert_eq!(mono.current_snapshot_id(), sharded.current_snapshot_id());
        for q in [
            MeasureQuery::PageRank { damping: 0.85 },
            MeasureQuery::Rwr {
                seed: 3,
                damping: 0.85,
            },
            MeasureQuery::PprSeedSet {
                seeds: vec![0, 9],
                damping: 0.85,
            },
        ] {
            let a = mono.query(&q).unwrap();
            let b = sharded.query(&q).unwrap();
            for (x, y) in a.iter().zip(b.iter()) {
                assert!((x - y).abs() <= 1e-9, "{q:?}: {x} vs {y}");
            }
        }
        // Per-shard stats flow through to the engine's counters.
        let stats = sharded.stats();
        assert_eq!(stats.per_shard.len(), 4);
        let applied: u64 = stats.per_shard.iter().map(|s| s.deltas_applied).sum();
        assert!(applied > 0, "no shard recorded applied entries");
        assert!(
            stats.per_shard.iter().any(|s| s.cross_shard_edges > 0),
            "the stream crossed shards"
        );
        assert_eq!(mono.stats().per_shard.len(), 1);
    }

    #[test]
    fn sharded_engine_error_paths_and_time_travel() {
        let engine = CludeEngine::new(
            ring_graph(12),
            EngineConfig {
                n_shards: 3,
                ..small_config(1)
            },
        )
        .unwrap();
        let q = MeasureQuery::PageRank { damping: 0.85 };
        let before = engine.query(&q).unwrap();
        for i in 0..5 {
            engine.insert_edge(i, (i + 5) % 12).unwrap();
        }
        // Ring capacity 3: snapshot 0 has expired.
        assert!(matches!(
            engine.query_at(0, &q),
            Err(EngineError::UnknownSnapshot { requested: 0, .. })
        ));
        // Retained snapshots still answer, and differ from snapshot 0.
        let travelled = engine.query_at(3, &q).unwrap();
        assert!(before
            .iter()
            .zip(travelled.iter())
            .any(|(a, b)| (a - b).abs() > 1e-12));
        assert!(matches!(
            engine.query(&MeasureQuery::Rwr {
                seed: 0,
                damping: 0.5
            }),
            Err(EngineError::InvalidQuery(_))
        ));
        assert!(matches!(
            engine.insert_edge(0, 99),
            Err(EngineError::NodeOutOfRange { node: 99, .. })
        ));
    }

    #[test]
    fn custom_partition_is_respected() {
        let base = ring_graph(8);
        // Interleaved (non-contiguous) partition: evens | odds.
        let assignments = (0..8).map(|u| u % 2).collect::<Vec<_>>();
        let engine = CludeEngine::with_partition(
            base,
            small_config(2),
            clude_graph::NodePartition::from_assignments(assignments),
        )
        .unwrap();
        assert_eq!(engine.n_shards(), 2);
        engine.insert_edge(0, 4).unwrap(); // intra (evens)
        engine.insert_edge(1, 4).unwrap(); // cross (odd -> even)
        engine.flush().unwrap();
        let scores = engine
            .query(&MeasureQuery::PageRank { damping: 0.85 })
            .unwrap();
        assert!((scores.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        let stats = engine.stats();
        assert!(stats.per_shard.iter().any(|s| s.cross_shard_edges > 0));
    }

    #[test]
    fn concurrent_readers_and_writer() {
        concurrent_readers_and_writer_impl(1);
    }

    #[test]
    fn concurrent_readers_and_writer_sharded() {
        concurrent_readers_and_writer_impl(4);
    }

    fn concurrent_readers_and_writer_impl(n_shards: usize) {
        let engine = Arc::new(
            CludeEngine::new(
                ring_graph(16),
                EngineConfig {
                    n_shards,
                    ..small_config(3)
                },
            )
            .unwrap(),
        );
        let writer = {
            let engine = Arc::clone(&engine);
            thread::spawn(move || {
                // 30 distinct edges absent from the base ring (offsets 3/5).
                for i in 0..30 {
                    let (u, off) = if i < 15 { (i, 3) } else { (i - 15, 5) };
                    engine.insert_edge(u, (u + off) % 16).unwrap();
                }
                engine.flush().unwrap();
            })
        };
        let readers: Vec<_> = (0..4)
            .map(|t| {
                let engine = Arc::clone(&engine);
                thread::spawn(move || {
                    for i in 0..50 {
                        let q = MeasureQuery::Rwr {
                            seed: (t * 50 + i) % 16,
                            damping: 0.85,
                        };
                        let scores = engine.query(&q).unwrap();
                        assert!((scores.iter().sum::<f64>() - 1.0).abs() < 1e-6);
                    }
                })
            })
            .collect();
        writer.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }
        let stats = engine.stats();
        assert_eq!(stats.queries, 200);
        assert!(stats.batches_applied >= 10);
    }
}
