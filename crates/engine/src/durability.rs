//! Durability configuration and the per-engine persistence driver.
//!
//! [`DurabilityConfig`] is the user-facing knob set; the crate-private
//! `Persistence` driver is what the engine holds under its ingest lock.  It
//! owns the open WAL segment and the checkpoint writer and enforces the
//! write-ahead ordering: the WAL record for batch `k` is appended (and
//! synced per the group-commit window) *before* any in-memory state
//! advances, and the periodic checkpoint runs *after* snapshot `k` is
//! published.

use std::path::PathBuf;
use std::sync::Arc;

use clude_telemetry::{EngineEvent, Stage, TelemetryRegistry};

use crate::checkpoint::{Checkpointer, DurableState};
use crate::error::EngineResult;
use crate::vfs::{StdFs, Vfs};
use crate::wal::{segment_name, WalWriter};
use clude_graph::GraphDelta;

/// Where and how an engine persists its deltas and checkpoints.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Spool directory holding WAL segments, generation files and the
    /// manifest.  Created on open when missing.
    pub dir: PathBuf,
    /// Group-commit window: sync the WAL every this many appended batches.
    /// `1` syncs per batch; larger windows trade the tail of a crash for
    /// throughput.
    pub group_commit: usize,
    /// Write a checkpoint generation every this many applied batches.
    pub checkpoint_every: u64,
    /// Filesystem implementation; tests substitute a crash-injecting one.
    pub vfs: Arc<dyn Vfs>,
}

impl DurabilityConfig {
    /// Defaults: group-commit window 8, checkpoint every 64 batches, real
    /// filesystem.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DurabilityConfig {
            dir: dir.into(),
            group_commit: 8,
            checkpoint_every: 64,
            vfs: Arc::new(StdFs),
        }
    }

    /// Replaces the group-commit window.
    pub fn group_commit(mut self, window: usize) -> Self {
        self.group_commit = window.max(1);
        self
    }

    /// Replaces the checkpoint interval (in applied batches).
    pub fn checkpoint_every(mut self, batches: u64) -> Self {
        self.checkpoint_every = batches.max(1);
        self
    }

    /// Replaces the filesystem implementation.
    pub fn vfs(mut self, vfs: Arc<dyn Vfs>) -> Self {
        self.vfs = vfs;
        self
    }
}

/// The engine's durability driver: open WAL segment, checkpoint writer, and
/// the batch countdown to the next checkpoint.  Held inside the ingest
/// mutex, so all of this is single-writer by construction.
pub(crate) struct Persistence {
    vfs: Arc<dyn Vfs>,
    dir: PathBuf,
    wal: WalWriter,
    wal_path: PathBuf,
    ckpt: Checkpointer,
    group_commit: usize,
    checkpoint_every: u64,
    batches_since_checkpoint: u64,
    telemetry: Arc<TelemetryRegistry>,
}

impl Persistence {
    /// Stands up the spool for `state` and writes its first durable image:
    /// a full generation at the state's snapshot id, a fresh WAL segment,
    /// and the committing manifest record.  Used both on cold start (the
    /// base graph must be durable before any batch is accepted) and after a
    /// recovery replay (re-anchoring so the next crash replays only new
    /// work).  `first_gen` must exceed every generation already in the
    /// manifest.
    pub(crate) fn bootstrap(
        config: &DurabilityConfig,
        telemetry: Arc<TelemetryRegistry>,
        state: &DurableState,
        first_gen: u64,
    ) -> EngineResult<Self> {
        let ckpt = Checkpointer::new(Arc::clone(&config.vfs), config.dir.clone(), first_gen);
        // Placeholder writer, immediately replaced by the rotation below;
        // checkpoint_and_rotate never looks at the old writer on bootstrap.
        let wal_path = config.dir.join(segment_name(state.snapshot_id + 1));
        let wal = WalWriter::create(&*config.vfs, &wal_path, config.group_commit)?;
        let mut p = Persistence {
            vfs: Arc::clone(&config.vfs),
            dir: config.dir.clone(),
            wal,
            wal_path,
            ckpt,
            group_commit: config.group_commit,
            checkpoint_every: config.checkpoint_every,
            batches_since_checkpoint: 0,
            telemetry,
        };
        p.checkpoint_state(state)?;
        Ok(p)
    }

    /// Appends the WAL record for the batch that will become `snapshot_id`.
    /// Called *before* the in-memory advance — the write-ahead invariant.
    pub(crate) fn log_batch(&mut self, snapshot_id: u64, delta: &GraphDelta) -> EngineResult<()> {
        let span = self.telemetry.span(Stage::WalAppend);
        let result = self.wal.append(snapshot_id, delta);
        drop(span);
        result
    }

    /// Called after snapshot publication; returns whether the checkpoint
    /// interval elapsed.  Split from [`Persistence::checkpoint_state`] so
    /// the caller only captures a [`DurableState`] (which clones the graph)
    /// on the batches that actually checkpoint.
    pub(crate) fn note_applied(&mut self) -> bool {
        self.batches_since_checkpoint += 1;
        self.batches_since_checkpoint >= self.checkpoint_every
    }

    /// Writes one checkpoint generation for `state` and rotates the WAL.
    ///
    /// Commit order — each step durable before the next, each prefix
    /// crash-consistent:
    /// 1. generation file written and synced (unreferenced until step 3);
    /// 2. fresh WAL segment created and synced (empty, harmless);
    /// 3. manifest record appended and synced — the commit point;
    /// 4. covered segments and unreferenced generations deleted.
    pub(crate) fn checkpoint_state(&mut self, state: &DurableState) -> EngineResult<()> {
        let span = self.telemetry.span(Stage::CheckpointWrite);
        let outcome = self.ckpt.write_generation(state)?;
        let new_path = self.dir.join(segment_name(state.snapshot_id + 1));
        if new_path != self.wal_path {
            let new_wal = WalWriter::create(&*self.vfs, &new_path, self.group_commit)?;
            self.wal = new_wal;
            self.wal_path = new_path;
        }
        self.ckpt.commit_manifest(outcome.gen, state.snapshot_id)?;
        self.ckpt
            .cleanup(&self.ckpt.live_gens(outcome.gen), &self.wal_path)?;
        self.batches_since_checkpoint = 0;
        drop(span);
        self.telemetry.record_event(EngineEvent::CheckpointWritten {
            blocks: outcome.blocks_written as u64,
            bytes: outcome.bytes,
            incremental: outcome.incremental,
        });
        Ok(())
    }

    /// Forces the WAL durability barrier (closing an open group-commit
    /// window early).
    pub(crate) fn sync_wal(&mut self) -> EngineResult<()> {
        self.wal.sync()
    }
}
