//! Filesystem abstraction for the durability layer.
//!
//! The WAL and checkpoint writers talk to a tiny [`Vfs`] trait instead of
//! `std::fs` directly so the crash-injection test harness can substitute an
//! in-memory filesystem that dies — dropping, tearing or bit-flipping the
//! in-flight write — at a chosen write number.  Production uses [`StdFs`];
//! tests use [`FailpointFs`].
//!
//! The model deliberately has no buffering: `append` makes bytes visible
//! immediately (the page cache), `sync` is the durability barrier.  The
//! fail-point filesystem crashes *at* an append, which simulates the worst
//! legal outcome of a real crash between two syncs: an arbitrary prefix of
//! the un-synced tail survives.

use std::collections::BTreeMap;
use std::fmt::Debug;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// An open file handle that supports appending and syncing.
pub trait VfsFile: Send {
    /// Appends `bytes` at the end of the file.
    fn append(&mut self, bytes: &[u8]) -> io::Result<()>;
    /// Durability barrier: block until all appended bytes are on stable
    /// storage.
    fn sync(&mut self) -> io::Result<()>;
}

/// Minimal filesystem surface the durability layer needs.
///
/// All methods take `&self`; implementations are internally synchronised so
/// a single handle can be shared across the engine and a recovery pass.
pub trait Vfs: Send + Sync + Debug {
    /// Creates (or truncates) the file at `path` and returns an append
    /// handle positioned at offset zero.
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Opens an existing file for appending at its current end.
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Reads the whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Whether a file exists at `path`.
    fn exists(&self, path: &Path) -> bool;
    /// The files (not directories) directly inside `dir`.
    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>>;
    /// Removes the file at `path`.
    fn remove(&self, path: &Path) -> io::Result<()>;
    /// Creates `dir` and any missing parents.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;
}

/// The real filesystem: `std::fs` with `sync_all` as the barrier.
#[derive(Debug, Clone, Copy, Default)]
pub struct StdFs;

struct StdFile(fs::File);

impl VfsFile for StdFile {
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.0.write_all(bytes)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.0.sync_all()
    }
}

impl Vfs for StdFs {
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(StdFile(fs::File::create(path)?)))
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(StdFile(
            fs::OpenOptions::new().append(true).open(path)?,
        )))
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        fs::read(path)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                out.push(entry.path());
            }
        }
        out.sort();
        Ok(out)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        fs::create_dir_all(dir)
    }
}

/// What the fail-point filesystem does to the triggering append.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Injection {
    /// The append vanishes entirely (crash before the write reached disk).
    DropWrite,
    /// Only the first `keep` bytes of the append land (torn write).
    TornWrite {
        /// Byte prefix of the append that survives.
        keep: usize,
    },
    /// The append lands with one bit flipped at `byte % len` (media or
    /// transfer corruption surfacing at the crash boundary).
    BitFlip {
        /// Byte offset (mod append length) whose lowest bit is flipped.
        byte: usize,
    },
}

#[derive(Debug)]
struct FailState {
    files: BTreeMap<PathBuf, Vec<u8>>,
    /// Appends observed through *armed* handles.
    writes_seen: u64,
    /// Crash at the append whose ordinal equals `.0`, applying `.1`.
    trigger: Option<(u64, Injection)>,
    /// After the crash every armed operation fails, like a killed process.
    dead: bool,
}

/// Deterministic in-memory filesystem with a single programmable fail point.
///
/// Cloned handles share the same file map.  An *armed* handle (the default)
/// counts appends and, at the ordinal set by [`FailpointFs::fail_at`],
/// applies the configured [`Injection`] and then fails every subsequent
/// operation — the simulated `SIGKILL`.  A [`FailpointFs::disarmed`] clone
/// over the same files never fails; recovery code uses it to play the role
/// of the next process seeing the surviving bytes.
#[derive(Debug, Clone)]
pub struct FailpointFs {
    shared: Arc<Mutex<FailState>>,
    armed: bool,
}

impl Default for FailpointFs {
    fn default() -> Self {
        Self::new()
    }
}

impl FailpointFs {
    /// An empty filesystem with no fail point armed yet.
    pub fn new() -> Self {
        FailpointFs {
            shared: Arc::new(Mutex::new(FailState {
                files: BTreeMap::new(),
                writes_seen: 0,
                trigger: None,
                dead: false,
            })),
            armed: true,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FailState> {
        self.shared.lock().expect("failpoint fs poisoned")
    }

    /// Crash at the `nth` armed append (0-based, counted from filesystem
    /// creation), applying `injection` to that append's bytes first.
    pub fn fail_at(&self, nth: u64, injection: Injection) {
        let mut s = self.lock();
        s.trigger = Some((nth, injection));
    }

    /// A handle over the same files that never counts, injects or fails —
    /// the post-crash process reading what survived.
    pub fn disarmed(&self) -> FailpointFs {
        FailpointFs {
            shared: Arc::clone(&self.shared),
            armed: false,
        }
    }

    /// Number of armed appends observed so far.
    pub fn writes_seen(&self) -> u64 {
        self.lock().writes_seen
    }

    /// Whether the fail point has fired.
    pub fn is_dead(&self) -> bool {
        self.lock().dead
    }

    /// Mutates the raw bytes of `path` in place — for post-hoc corruption
    /// (tearing or flipping a file's tail after a clean shutdown).
    ///
    /// # Panics
    /// Panics when the file does not exist.
    pub fn corrupt(&self, path: &Path, f: impl FnOnce(&mut Vec<u8>)) {
        let mut s = self.lock();
        let bytes = s
            .files
            .get_mut(path)
            .unwrap_or_else(|| panic!("corrupt: no file at {}", path.display()));
        f(bytes);
    }

    /// The current size of `path`, if present.
    pub fn len_of(&self, path: &Path) -> Option<usize> {
        self.lock().files.get(path).map(Vec::len)
    }
}

fn killed() -> io::Error {
    io::Error::other("failpoint filesystem is dead (simulated crash)")
}

struct FailFile {
    path: PathBuf,
    shared: Arc<Mutex<FailState>>,
    armed: bool,
}

impl VfsFile for FailFile {
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        let mut s = self.shared.lock().expect("failpoint fs poisoned");
        if !self.armed {
            let file = s.files.entry(self.path.clone()).or_default();
            file.extend_from_slice(bytes);
            return Ok(());
        }
        if s.dead {
            return Err(killed());
        }
        let ordinal = s.writes_seen;
        s.writes_seen += 1;
        let firing = matches!(s.trigger, Some((n, _)) if n == ordinal);
        if firing {
            let (_, injection) = s.trigger.take().expect("trigger present");
            s.dead = true;
            let file = s.files.entry(self.path.clone()).or_default();
            match injection {
                Injection::DropWrite => {}
                Injection::TornWrite { keep } => {
                    file.extend_from_slice(&bytes[..keep.min(bytes.len())]);
                }
                Injection::BitFlip { byte } => {
                    let mut corrupted = bytes.to_vec();
                    if !corrupted.is_empty() {
                        let at = byte % corrupted.len();
                        corrupted[at] ^= 1;
                    }
                    file.extend_from_slice(&corrupted);
                }
            }
            return Err(killed());
        }
        let file = s.files.entry(self.path.clone()).or_default();
        file.extend_from_slice(bytes);
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        let s = self.shared.lock().expect("failpoint fs poisoned");
        if self.armed && s.dead {
            return Err(killed());
        }
        Ok(())
    }
}

impl Vfs for FailpointFs {
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let mut s = self.lock();
        if self.armed && s.dead {
            return Err(killed());
        }
        s.files.insert(path.to_path_buf(), Vec::new());
        Ok(Box::new(FailFile {
            path: path.to_path_buf(),
            shared: Arc::clone(&self.shared),
            armed: self.armed,
        }))
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let s = self.lock();
        if self.armed && s.dead {
            return Err(killed());
        }
        if !s.files.contains_key(path) {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no file at {}", path.display()),
            ));
        }
        Ok(Box::new(FailFile {
            path: path.to_path_buf(),
            shared: Arc::clone(&self.shared),
            armed: self.armed,
        }))
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let s = self.lock();
        if self.armed && s.dead {
            return Err(killed());
        }
        s.files.get(path).cloned().ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::NotFound,
                format!("no file at {}", path.display()),
            )
        })
    }

    fn exists(&self, path: &Path) -> bool {
        self.lock().files.contains_key(path)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let s = self.lock();
        if self.armed && s.dead {
            return Err(killed());
        }
        Ok(s.files
            .keys()
            .filter(|p| p.parent() == Some(dir))
            .cloned()
            .collect())
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        let mut s = self.lock();
        if self.armed && s.dead {
            return Err(killed());
        }
        if s.files.remove(path).is_none() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no file at {}", path.display()),
            ));
        }
        Ok(())
    }

    fn create_dir_all(&self, _dir: &Path) -> io::Result<()> {
        let s = self.lock();
        if self.armed && s.dead {
            return Err(killed());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> PathBuf {
        PathBuf::from(s)
    }

    #[test]
    fn failpoint_appends_then_dies_at_trigger() {
        let fs = FailpointFs::new();
        fs.fail_at(2, Injection::DropWrite);
        let mut f = fs.create(&p("/d/a")).unwrap();
        f.append(b"one").unwrap(); // write 0
        f.append(b"two").unwrap(); // write 1
        let err = f.append(b"three").unwrap_err(); // write 2: dropped + dead
        assert!(err.to_string().contains("simulated crash"));
        assert!(fs.is_dead());
        assert!(f.append(b"after").is_err());
        assert!(fs.read(&p("/d/a")).is_err());
        // The surviving bytes exclude the dropped write.
        assert_eq!(fs.disarmed().read(&p("/d/a")).unwrap(), b"onetwo");
    }

    #[test]
    fn torn_write_keeps_a_prefix() {
        let fs = FailpointFs::new();
        fs.fail_at(1, Injection::TornWrite { keep: 2 });
        let mut f = fs.create(&p("/d/a")).unwrap();
        f.append(b"head").unwrap();
        assert!(f.append(b"tail").is_err());
        assert_eq!(fs.disarmed().read(&p("/d/a")).unwrap(), b"headta");
    }

    #[test]
    fn bit_flip_lands_corrupted_bytes() {
        let fs = FailpointFs::new();
        fs.fail_at(0, Injection::BitFlip { byte: 1 });
        let mut f = fs.create(&p("/d/a")).unwrap();
        assert!(f.append(&[0x10, 0x20, 0x30]).is_err());
        assert_eq!(
            fs.disarmed().read(&p("/d/a")).unwrap(),
            vec![0x10, 0x21, 0x30]
        );
    }

    #[test]
    fn disarmed_handle_ignores_death_and_never_counts() {
        let fs = FailpointFs::new();
        fs.fail_at(0, Injection::DropWrite);
        let mut f = fs.create(&p("/d/a")).unwrap();
        assert!(f.append(b"x").is_err());
        let alive = fs.disarmed();
        let mut g = alive.create(&p("/d/b")).unwrap();
        g.append(b"recovered").unwrap();
        g.sync().unwrap();
        assert_eq!(alive.read(&p("/d/b")).unwrap(), b"recovered");
        // Disarmed appends do not advance the armed write counter.
        assert_eq!(fs.writes_seen(), 1);
    }

    #[test]
    fn list_filters_by_directory_and_corrupt_mutates() {
        let fs = FailpointFs::new();
        fs.create(&p("/d/a")).unwrap();
        fs.create(&p("/d/b")).unwrap();
        fs.create(&p("/e/c")).unwrap();
        assert_eq!(fs.list(&p("/d")).unwrap(), vec![p("/d/a"), p("/d/b")]);
        let mut f = fs.open_append(&p("/d/a")).unwrap();
        f.append(b"abcd").unwrap();
        fs.corrupt(&p("/d/a"), |bytes| bytes.truncate(2));
        assert_eq!(fs.read(&p("/d/a")).unwrap(), b"ab");
        fs.remove(&p("/d/b")).unwrap();
        assert!(!fs.exists(&p("/d/b")));
        assert!(fs.remove(&p("/d/b")).is_err());
    }

    #[test]
    fn std_fs_round_trips_in_a_temp_dir() {
        let dir = std::env::temp_dir().join(format!("clude-vfs-test-{}", std::process::id()));
        let fs = StdFs;
        fs.create_dir_all(&dir).unwrap();
        let path = dir.join("file.bin");
        let mut f = fs.create(&path).unwrap();
        f.append(b"hello ").unwrap();
        f.append(b"world").unwrap();
        f.sync().unwrap();
        drop(f);
        assert!(fs.exists(&path));
        assert_eq!(fs.read(&path).unwrap(), b"hello world");
        let mut g = fs.open_append(&path).unwrap();
        g.append(b"!").unwrap();
        g.sync().unwrap();
        drop(g);
        assert_eq!(fs.read(&path).unwrap(), b"hello world!");
        assert!(fs.list(&dir).unwrap().contains(&path));
        fs.remove(&path).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
