//! Engine operation counters.
//!
//! The batch solvers report their work through `clude::report::TimingBreakdown`;
//! this module is the streaming counterpart: lock-free counters incremented
//! on the ingest and query paths, snapshotted into an [`EngineStats`] record
//! whose `Display` prints the same style of breakdown table.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Lock-free per-shard counters of the partitioned ingest path.
#[derive(Debug, Default)]
pub struct ShardCounters {
    /// Changed matrix entries applied to this shard's factors.
    pub deltas_applied: AtomicU64,
    /// Bennett rank-one updates (sweeps) run on this shard.
    pub sweeps_run: AtomicU64,
    /// Cross-shard edge changes sourced from this shard's nodes.
    pub cross_shard_edges: AtomicU64,
    /// Refreshes (fresh ordering + factorization) of this shard's block.
    pub refreshes: AtomicU64,
}

impl ShardCounters {
    fn snapshot(&self, shard: usize) -> ShardStats {
        ShardStats {
            shard,
            deltas_applied: EngineCounters::load(&self.deltas_applied),
            sweeps_run: EngineCounters::load(&self.sweeps_run),
            cross_shard_edges: EngineCounters::load(&self.cross_shard_edges),
            refreshes: EngineCounters::load(&self.refreshes),
        }
    }
}

/// A point-in-time copy of one shard's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// The shard id.
    pub shard: usize,
    /// Changed matrix entries applied to this shard's factors.
    pub deltas_applied: u64,
    /// Bennett rank-one updates (sweeps) run on this shard.
    pub sweeps_run: u64,
    /// Cross-shard edge changes sourced from this shard's nodes.
    pub cross_shard_edges: u64,
    /// Refreshes of this shard's block.
    pub refreshes: u64,
}

/// Lock-free counters shared by the ingest and query paths.
#[derive(Debug, Default)]
pub struct EngineCounters {
    /// Edge operations accepted (including ones coalesced away).
    pub ops_ingested: AtomicU64,
    /// Edge operations dropped as no-ops (already-present inserts, absent
    /// removes, add/remove pairs cancelling inside one batch).
    pub ops_coalesced: AtomicU64,
    /// Delta batches applied to the factors (snapshot advances).
    pub batches_applied: AtomicU64,
    /// Full refreshes (fresh ordering + factorization).
    pub refreshes: AtomicU64,
    /// Bennett rank-one updates performed.
    pub bennett_rank_one_updates: AtomicU64,
    /// Bennett pivots visited.
    pub bennett_pivots: AtomicU64,
    /// Queries answered (hit or miss).
    pub queries: AtomicU64,
    /// Queries answered from the result cache.
    pub cache_hits: AtomicU64,
    /// Queries that had to solve.
    pub cache_misses: AtomicU64,
    /// Nanoseconds spent applying batches (Bennett + delta assembly,
    /// including batches that ended in a refresh).
    pub ingest_nanos: AtomicU64,
    /// Nanoseconds spent in batches that ended in a full refresh (a subset
    /// of `ingest_nanos`).
    pub refresh_nanos: AtomicU64,
    /// Nanoseconds spent solving queries (cache misses only).
    pub query_nanos: AtomicU64,
    /// Shard factor blocks cloned (re-frozen) for a new snapshot because the
    /// batch touched them — the "copy" side of the copy-on-write ring.
    pub cow_shards_cloned: AtomicU64,
    /// Shard factor blocks shared with the previous snapshot because the
    /// batch left them untouched — the "write-free" side of the ring.
    pub cow_shards_shared: AtomicU64,
    /// Adaptive re-partitions: batches whose coupling growth crossed the
    /// budget and triggered a fresh edge-locality partition.
    pub repartitions: AtomicU64,
    /// Cached Woodbury corrections built (re-frozen) at snapshot-freeze
    /// time; batches that left the coupling and the correction's support
    /// shards untouched share the previous correction instead.
    pub corrections_built: AtomicU64,
    /// Per-shard ingest counters (one entry per factor shard; a single entry
    /// for the monolithic store).
    pub per_shard: Vec<ShardCounters>,
}

impl EngineCounters {
    /// Counters for an engine whose factor store has `n_shards` shards.
    pub fn with_shards(n_shards: usize) -> Self {
        EngineCounters {
            per_shard: (0..n_shards).map(|_| ShardCounters::default()).collect(),
            ..EngineCounters::default()
        }
    }

    // Relaxed-ordering policy: every counter in this module is an independent
    // monotonic event tally read only for human-facing stats. No load or
    // store synchronises other memory, and cross-counter consistency is
    // explicitly not promised (`snapshot` is "consistent enough"), so all
    // atomic traffic funnels through these four helpers with `Relaxed`.

    /// Adds `d` to a duration counter.
    pub fn add_nanos(counter: &AtomicU64, d: Duration) {
        // lint: allow(atomic-ordering) — independent monotonic tally; see
        // the relaxed-ordering policy note above.
        counter.fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Increments a counter by one.
    pub fn bump(counter: &AtomicU64) {
        // lint: allow(atomic-ordering) — independent monotonic tally; see
        // the relaxed-ordering policy note above.
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `v` to a counter.
    pub fn add(counter: &AtomicU64, v: u64) {
        // lint: allow(atomic-ordering) — independent monotonic tally; see
        // the relaxed-ordering policy note above.
        counter.fetch_add(v, Ordering::Relaxed);
    }

    /// Reads a counter for a stats snapshot.
    pub fn load(counter: &AtomicU64) -> u64 {
        // lint: allow(atomic-ordering) — independent monotonic tally; see
        // the relaxed-ordering policy note above.
        counter.load(Ordering::Relaxed)
    }

    /// Takes a consistent-enough snapshot of all counters.
    pub fn snapshot(&self) -> EngineStats {
        EngineStats {
            per_shard: self
                .per_shard
                .iter()
                .enumerate()
                .map(|(s, c)| c.snapshot(s))
                .collect(),
            ops_ingested: Self::load(&self.ops_ingested),
            ops_coalesced: Self::load(&self.ops_coalesced),
            batches_applied: Self::load(&self.batches_applied),
            refreshes: Self::load(&self.refreshes),
            bennett_rank_one_updates: Self::load(&self.bennett_rank_one_updates),
            bennett_pivots: Self::load(&self.bennett_pivots),
            queries: Self::load(&self.queries),
            cache_hits: Self::load(&self.cache_hits),
            cache_misses: Self::load(&self.cache_misses),
            ingest_time: Duration::from_nanos(Self::load(&self.ingest_nanos)),
            refresh_time: Duration::from_nanos(Self::load(&self.refresh_nanos)),
            query_time: Duration::from_nanos(Self::load(&self.query_nanos)),
            cow_shards_cloned: Self::load(&self.cow_shards_cloned),
            cow_shards_shared: Self::load(&self.cow_shards_shared),
            repartitions: Self::load(&self.repartitions),
            corrections_built: Self::load(&self.corrections_built),
            // Ring occupancy and the coupling view live outside the
            // counters; `CludeEngine::stats` fills these in from the live
            // ring and the newest snapshot.
            ring_depth: 0,
            resident_factor_bytes: 0,
            solver: String::new(),
            coupling_nnz: 0,
            correction_rank: 0,
            telemetry_enabled: false,
            spans_recorded: 0,
            journal_events: 0,
            journal_dropped: 0,
            query_solve_p50: Duration::ZERO,
            query_solve_p99: Duration::ZERO,
        }
    }
}

/// A point-in-time copy of the engine counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Edge operations accepted.
    pub ops_ingested: u64,
    /// Edge operations coalesced away as no-ops.
    pub ops_coalesced: u64,
    /// Delta batches applied (snapshot advances).
    pub batches_applied: u64,
    /// Full refreshes performed.
    pub refreshes: u64,
    /// Bennett rank-one updates performed.
    pub bennett_rank_one_updates: u64,
    /// Bennett pivots visited.
    pub bennett_pivots: u64,
    /// Queries answered.
    pub queries: u64,
    /// Cache hits among them.
    pub cache_hits: u64,
    /// Cache misses among them.
    pub cache_misses: u64,
    /// Wall-clock spent applying batches (refresh-ending ones included).
    pub ingest_time: Duration,
    /// Wall-clock of the batches that ended in a refresh (subset of
    /// `ingest_time`).
    pub refresh_time: Duration,
    /// Wall-clock spent solving queries.
    pub query_time: Duration,
    /// Shard factor blocks cloned (re-frozen) across all published snapshots
    /// because their shard was swept or refreshed.
    pub cow_shards_cloned: u64,
    /// Shard factor blocks shared with the previous snapshot across all
    /// published snapshots (untouched shards).
    pub cow_shards_shared: u64,
    /// Snapshots currently retained in the time-travel ring (filled in by
    /// `CludeEngine::stats`; 0 when the stats came straight from counters).
    pub ring_depth: u64,
    /// Approximate bytes of factor blocks plus frozen couplings resident
    /// across the ring, counting each shared handle once (filled in by
    /// `CludeEngine::stats`).
    pub resident_factor_bytes: u64,
    /// Adaptive re-partitions triggered by coupling growth.
    pub repartitions: u64,
    /// Cached Woodbury corrections built at snapshot-freeze time.
    pub corrections_built: u64,
    /// Display name of the active coupling-solver strategy (filled in by
    /// `CludeEngine::stats`; empty when the stats came straight from
    /// counters).
    pub solver: String,
    /// Cross-shard coupling entries of the newest snapshot — the number to
    /// watch for dense-coupling drift (filled in by `CludeEngine::stats`).
    pub coupling_nnz: u64,
    /// Rank of the newest snapshot's cached Woodbury correction (0 when the
    /// strategy caches none; filled in by `CludeEngine::stats`).
    pub correction_rank: u64,
    /// Whether the engine's telemetry registry is recording (filled in by
    /// `CludeEngine::stats`).
    pub telemetry_enabled: bool,
    /// Total timed-span observations across all stage histograms (filled in
    /// by `CludeEngine::stats`).
    pub spans_recorded: u64,
    /// Structured journal events recorded (filled in by
    /// `CludeEngine::stats`).
    pub journal_events: u64,
    /// Journal events shed by the bounded ring (filled in by
    /// `CludeEngine::stats`).
    pub journal_dropped: u64,
    /// Median `query.solve` stage latency (filled in by
    /// `CludeEngine::stats`).
    pub query_solve_p50: Duration,
    /// 99th-percentile `query.solve` stage latency (filled in by
    /// `CludeEngine::stats`).
    pub query_solve_p99: Duration,
    /// Per-shard ingest breakdown, indexed by shard id.
    pub per_shard: Vec<ShardStats>,
}

impl EngineStats {
    /// Cache hit rate in `[0, 1]` (0 when no queries ran).
    pub fn hit_rate(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.queries as f64
        }
    }

    /// Average wall-clock per applied batch.
    pub fn avg_batch_time(&self) -> Duration {
        if self.batches_applied == 0 {
            Duration::ZERO
        } else {
            self.ingest_time / self.batches_applied as u32
        }
    }

    /// Fraction of per-snapshot shard blocks served by sharing instead of
    /// cloning, in `[0, 1]` (0 when no snapshot was published).  `1 − rate`
    /// is the fraction of the old full-clone cost the ring still pays.
    pub fn cow_share_rate(&self) -> f64 {
        let total = self.cow_shards_cloned + self.cow_shards_shared;
        if total == 0 {
            0.0
        } else {
            self.cow_shards_shared as f64 / total as f64
        }
    }
}

/// Renders a byte count with a binary-unit suffix (`4.2 MiB`), for the
/// resident-memory line of the stats display.
fn format_bytes(bytes: u64) -> String {
    const UNITS: [&str; 4] = ["B", "KiB", "MiB", "GiB"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit + 1 < UNITS.len() {
        value /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{value:.1} {}", UNITS[unit])
    }
}

impl fmt::Display for EngineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "ingest   | ops {:>10}  coalesced {:>8}  batches {:>7}  time {:>10.3?}",
            self.ops_ingested, self.ops_coalesced, self.batches_applied, self.ingest_time
        )?;
        writeln!(
            f,
            "factors  | refreshes {:>4}  rank-1 {:>10}  pivots {:>10}  refresh time {:>10.3?}",
            self.refreshes, self.bennett_rank_one_updates, self.bennett_pivots, self.refresh_time
        )?;
        writeln!(
            f,
            "queries  | total {:>8}  hits {:>10}  misses {:>8}  hit-rate {:>5.1}%  solve time {:>10.3?}",
            self.queries,
            self.cache_hits,
            self.cache_misses,
            100.0 * self.hit_rate(),
            self.query_time
        )?;
        writeln!(
            f,
            "ring     | depth {:>8}  cow-clones {:>6}  shared {:>8}  share-rate {:>5.1}%  resident ~{}",
            self.ring_depth,
            self.cow_shards_cloned,
            self.cow_shards_shared,
            100.0 * self.cow_share_rate(),
            format_bytes(self.resident_factor_bytes)
        )?;
        write!(
            f,
            "coupling | solver {:>12}  nnz {:>8}  woodbury-rank {:>4}  repartitions {:>4}  corrections {:>6}",
            if self.solver.is_empty() {
                "?"
            } else {
                self.solver.as_str()
            },
            self.coupling_nnz,
            self.correction_rank,
            self.repartitions,
            self.corrections_built
        )?;
        write!(
            f,
            "\ntelemetry | {}  spans {:>9}  journal {:>6} (dropped {:>4})  q-solve p50 {:>9.3?}  p99 {:>9.3?}",
            if self.telemetry_enabled { "on " } else { "off" },
            self.spans_recorded,
            self.journal_events,
            self.journal_dropped,
            self.query_solve_p50,
            self.query_solve_p99
        )?;
        if self.per_shard.len() > 1 {
            for s in &self.per_shard {
                write!(
                    f,
                    "\nshard {:>3} | deltas {:>10}  sweeps {:>10}  cross-edges {:>8}  refreshes {:>4}",
                    s.shard, s.deltas_applied, s.sweeps_run, s.cross_shard_edges, s.refreshes
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_counters() {
        let c = EngineCounters::default();
        EngineCounters::bump(&c.queries);
        EngineCounters::bump(&c.queries);
        EngineCounters::bump(&c.cache_hits);
        EngineCounters::add_nanos(&c.query_nanos, Duration::from_micros(5));
        let s = c.snapshot();
        assert_eq!(s.queries, 2);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.query_time, Duration::from_micros(5));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn derived_rates_handle_zero() {
        let s = EngineStats::default();
        assert_eq!(s.hit_rate(), 0.0);
        assert_eq!(s.avg_batch_time(), Duration::ZERO);
        let with_batches = EngineStats {
            batches_applied: 4,
            ingest_time: Duration::from_millis(8),
            ..EngineStats::default()
        };
        assert_eq!(with_batches.avg_batch_time(), Duration::from_millis(2));
    }

    #[test]
    fn per_shard_counters_snapshot_and_render() {
        let c = EngineCounters::with_shards(2);
        EngineCounters::add(&c.per_shard[1].deltas_applied, 5);
        EngineCounters::add(&c.per_shard[1].sweeps_run, 3);
        EngineCounters::add(&c.per_shard[0].cross_shard_edges, 2);
        EngineCounters::bump(&c.per_shard[0].refreshes);
        let s = c.snapshot();
        assert_eq!(s.per_shard.len(), 2);
        assert_eq!(s.per_shard[0].shard, 0);
        assert_eq!(s.per_shard[1].deltas_applied, 5);
        assert_eq!(s.per_shard[1].sweeps_run, 3);
        assert_eq!(s.per_shard[0].cross_shard_edges, 2);
        assert_eq!(s.per_shard[0].refreshes, 1);
        let text = s.to_string();
        assert!(text.contains("shard   0"));
        assert!(text.contains("shard   1"));
        assert!(text.contains("cross-edges"));
        // A monolithic engine (one shard) keeps the display compact.
        let mono = EngineCounters::with_shards(1).snapshot();
        assert!(!mono.to_string().contains("shard   0"));
    }

    #[test]
    fn display_renders_all_sections() {
        let s = EngineStats {
            ops_ingested: 100,
            queries: 10,
            cache_hits: 5,
            cache_misses: 5,
            ..EngineStats::default()
        };
        let text = s.to_string();
        assert!(text.contains("ingest"));
        assert!(text.contains("factors"));
        assert!(text.contains("hit-rate"));
        assert!(text.contains("50.0%"));
        assert!(text.contains("ring"));
        assert!(text.contains("cow-clones"));
        assert!(text.contains("coupling"));
    }

    #[test]
    fn coupling_line_reports_solver_and_drift() {
        let mut s = EngineStats {
            repartitions: 2,
            corrections_built: 17,
            coupling_nnz: 345,
            correction_rank: 64,
            ..EngineStats::default()
        };
        s.solver = "woodbury".to_string();
        let text = s.to_string();
        assert!(text.contains("solver     woodbury"));
        assert!(text.contains("nnz      345"));
        assert!(text.contains("woodbury-rank   64"));
        assert!(text.contains("repartitions    2"));
        assert!(text.contains("corrections     17"));
        // Raw counter snapshots (no engine fill-in) degrade gracefully.
        let raw = EngineCounters::default().snapshot();
        assert!(raw.to_string().contains("solver            ?"));
    }

    #[test]
    fn ring_section_reports_sharing() {
        let c = EngineCounters::with_shards(4);
        EngineCounters::add(&c.cow_shards_cloned, 2);
        EngineCounters::add(&c.cow_shards_shared, 6);
        let mut s = c.snapshot();
        s.ring_depth = 3;
        s.resident_factor_bytes = 3 * 1024 * 1024 / 2;
        assert_eq!(s.cow_shards_cloned, 2);
        assert_eq!(s.cow_shards_shared, 6);
        assert!((s.cow_share_rate() - 0.75).abs() < 1e-12);
        let text = s.to_string();
        assert!(text.contains("depth        3"));
        assert!(text.contains("75.0%"));
        assert!(text.contains("1.5 MiB"));
        // No snapshots published yet: rate degrades to 0 instead of NaN.
        assert_eq!(EngineStats::default().cow_share_rate(), 0.0);
    }

    #[test]
    fn display_golden_render() {
        // Golden rendering of a fully-populated stats record: any format
        // drift in the ring / coupling / telemetry lines fails here first.
        let s = EngineStats {
            ops_ingested: 1000,
            ops_coalesced: 12,
            batches_applied: 16,
            refreshes: 1,
            bennett_rank_one_updates: 420,
            bennett_pivots: 9000,
            queries: 50,
            cache_hits: 20,
            cache_misses: 30,
            ingest_time: Duration::from_millis(125),
            refresh_time: Duration::from_millis(25),
            query_time: Duration::from_millis(80),
            cow_shards_cloned: 2,
            cow_shards_shared: 6,
            ring_depth: 3,
            resident_factor_bytes: 2048,
            repartitions: 1,
            corrections_built: 4,
            solver: "woodbury".to_string(),
            coupling_nnz: 88,
            correction_rank: 16,
            telemetry_enabled: true,
            spans_recorded: 321,
            journal_events: 12,
            journal_dropped: 2,
            query_solve_p50: Duration::from_micros(950),
            query_solve_p99: Duration::from_millis(4),
            per_shard: Vec::new(),
        };
        let text = s.to_string();
        let lines: Vec<&str> = text.lines().map(str::trim_end).collect();
        assert_eq!(
            lines,
            vec![
                "ingest   | ops       1000  coalesced       12  batches      16  time  125.000ms",
                "factors  | refreshes    1  rank-1        420  pivots       9000  refresh time   25.000ms",
                "queries  | total       50  hits         20  misses       30  hit-rate  40.0%  solve time   80.000ms",
                "ring     | depth        3  cow-clones      2  shared        6  share-rate  75.0%  resident ~2.0 KiB",
                "coupling | solver     woodbury  nnz       88  woodbury-rank   16  repartitions    1  corrections      4",
                "telemetry | on   spans       321  journal     12 (dropped    2)  q-solve p50 950.000µs  p99   4.000ms",
            ]
        );
    }

    #[test]
    fn byte_formatting_picks_binary_units() {
        assert_eq!(format_bytes(0), "0 B");
        assert_eq!(format_bytes(512), "512 B");
        assert_eq!(format_bytes(2048), "2.0 KiB");
        assert_eq!(format_bytes(5 * 1024 * 1024), "5.0 MiB");
        assert_eq!(format_bytes(3 * 1024 * 1024 * 1024), "3.0 GiB");
    }
}
