//! A small LRU cache for solve results.
//!
//! `HashMap` for lookup plus a `BTreeMap<tick, key>` recency index, giving
//! `O(log n)` touch and eviction without external dependencies.  One instance
//! sits behind each shard lock of the query service.

use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;

/// A least-recently-used cache with a fixed capacity.
#[derive(Debug)]
pub struct LruCache<K, V> {
    map: HashMap<K, (V, u64)>,
    recency: BTreeMap<u64, K>,
    tick: u64,
    capacity: usize,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries.
    ///
    /// # Panics
    /// Panics when `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        LruCache {
            map: HashMap::with_capacity(capacity),
            recency: BTreeMap::new(),
            tick: 0,
            capacity,
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns `true` when the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks up `key`, marking it most recently used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        self.tick += 1;
        let tick = self.tick;
        match self.map.get_mut(key) {
            Some((_, last)) => {
                self.recency.remove(last);
                self.recency.insert(tick, key.clone());
                *last = tick;
                self.map.get(key).map(|(v, _)| v)
            }
            None => None,
        }
    }

    /// Inserts (or replaces) an entry, evicting the least recently used one
    /// when at capacity. Returns the evicted key, if any, so callers can
    /// journal the eviction.
    pub fn insert(&mut self, key: K, value: V) -> Option<K> {
        self.tick += 1;
        let tick = self.tick;
        let mut victim = None;
        if let Some((_, last)) = self.map.remove(&key) {
            self.recency.remove(&last);
        } else if self.map.len() >= self.capacity {
            if let Some((_, evicted)) = self.recency.pop_first() {
                self.map.remove(&evicted);
                victim = Some(evicted);
            }
        }
        self.recency.insert(tick, key.clone());
        self.map.insert(key, (value, tick));
        victim
    }

    /// Removes `key`, returning its value when present.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let (value, tick) = self.map.remove(key)?;
        self.recency.remove(&tick);
        Some(value)
    }

    /// The cached keys, in unspecified order (recency is not touched).
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.map.keys()
    }

    /// Drops every entry for which `predicate` returns `false`.
    pub fn retain(&mut self, mut predicate: impl FnMut(&K) -> bool) {
        let recency = &mut self.recency;
        self.map.retain(|k, (_, tick)| {
            let keep = predicate(k);
            if !keep {
                recency.remove(tick);
            }
            keep
        });
    }

    /// Empties the cache.
    pub fn clear(&mut self) {
        self.map.clear();
        self.recency.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        assert_eq!(c.insert("a", 1), None);
        assert_eq!(c.insert("b", 2), None);
        assert_eq!(c.get(&"a"), Some(&1)); // touch a; b is now LRU
        assert_eq!(c.insert("c", 3), Some("b"));
        assert_eq!(c.get(&"b"), None);
        assert_eq!(c.get(&"a"), Some(&1));
        assert_eq!(c.get(&"c"), Some(&3));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn replace_does_not_grow() {
        let mut c = LruCache::new(2);
        assert_eq!(c.insert("a", 1), None);
        assert_eq!(c.insert("a", 10), None);
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(&"a"), Some(&10));
    }

    #[test]
    fn retain_and_clear() {
        let mut c = LruCache::new(8);
        for i in 0..6 {
            c.insert(i, i * 10);
        }
        c.retain(|&k| k % 2 == 0);
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(&4), Some(&40));
        assert_eq!(c.get(&3), None);
        // Eviction still works after retain.
        for i in 10..20 {
            c.insert(i, i);
        }
        assert_eq!(c.len(), 8);
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        LruCache::<u32, u32>::new(0);
    }
}
