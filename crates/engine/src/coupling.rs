//! Pluggable solvers for the cross-shard coupling of sharded snapshots.
//!
//! A sharded [`EngineSnapshot`] holds per-shard factors of
//! `B = blockdiag(A_ss)` plus the frozen cross-shard coupling `C`, and every
//! query must solve `(B + C) x = b` *exactly* (to the block tolerance, well
//! under the engine's 1e-9 equivalence bar).  How much that costs depends
//! entirely on how dense `C` is — which is why the strategy is pluggable:
//!
//! * [`CouplingSolver::Jacobi`] — the PR 3 baseline: fixed-point
//!   `x ← B⁻¹(b − C·x)`, one full block-solve pass per sweep, sweeps
//!   proportional to `1/log(1/ρ)` digits.
//! * [`CouplingSolver::GaussSeidel`] — same fixed point, but each shard's
//!   solve inside a sweep already uses the solutions of the shards updated
//!   before it, traversed in an order derived from the coupling's
//!   shard-to-shard dependency weights ([`CouplingPlan::gs_order`]); for the
//!   engine's M-matrices this contracts at least as fast as Jacobi and in
//!   practice roughly halves the sweep count.
//! * [`CouplingSolver::Woodbury`] — capture the `k` hottest coupling columns
//!   into a cached low-rank correction (`clude_lu::lowrank`) at
//!   snapshot-freeze time; a solve is then one block pass plus one `k×k`
//!   dense substitution, with sweeps only over the (cold) remainder columns
//!   — and none at all when the correction captured the whole coupling.
//!
//! All three strategies converge to the same solution: the splitting
//! `A = M − N` behind each of them is regular for the engine's column-wise
//! strictly diagonally dominant M-matrices (`I − d·W`, shifted Laplacians),
//! so the fixed point is the exact solve and the strategies differ only in
//! how fast they reach it.  The per-snapshot metadata each strategy needs —
//! the Gauss–Seidel traversal order and the Woodbury correction — is frozen
//! into a shared [`CouplingPlan`] that the copy-on-write snapshot ring
//! shares exactly like factor blocks.

use crate::store::{EngineSnapshot, ShardSnapshot};
use clude::DecomposedMatrix;
use clude_graph::NodePartition;
use clude_lu::{
    CorrectionScratch, LowRankCorrection, LuError, LuResult, PanelScratch, SolveScratch,
};
use clude_sparse::CsrMatrix;
use clude_telemetry::{Counter, EngineEvent, Stage};
use std::collections::BTreeSet;

/// Which strategy combines the per-shard block solves with the cross-shard
/// coupling at query time.  Selected per snapshot: the store stamps its
/// configured strategy onto every snapshot it publishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CouplingSolver {
    /// Block-Jacobi fixed point `x ← B⁻¹(b − C·x)` — the baseline.
    Jacobi,
    /// Block Gauss–Seidel: within one sweep each shard solve sees the
    /// just-updated solutions of the shards traversed before it, in the
    /// dependency-weight order cached in the snapshot's [`CouplingPlan`].
    GaussSeidel,
    /// Cached Woodbury correction over the `max_rank` hottest coupling
    /// columns; the cold remainder (if any) is iterated Gauss–Seidel-style
    /// through the corrected operator, which contracts far faster than the
    /// full coupling.
    Woodbury {
        /// Maximum number of coupling columns the cached correction may
        /// capture.  Each captured column costs one dense length-`n` vector
        /// of memory and one block solve whenever the correction is rebuilt
        /// (coupling changed, or a shard it depends on re-froze).
        max_rank: usize,
    },
}

impl CouplingSolver {
    /// Default capture budget of [`CouplingSolver::woodbury`].
    ///
    /// Sized to capture the *whole* coupling of typical partitioned streams
    /// (cross columns at the engine's benchmark scale number in the low
    /// hundreds), because a full capture is what makes solves direct — a
    /// rank-starved correction still answers exactly but has to iterate
    /// over its remainder, which can cost more per sweep than plain
    /// Gauss–Seidel.  Lower it when the dense `n × k` cached `Z` would not
    /// fit memory at your universe size.
    pub const DEFAULT_WOODBURY_RANK: usize = 512;

    /// The Woodbury strategy with the default capture budget.
    pub fn woodbury() -> Self {
        CouplingSolver::Woodbury {
            max_rank: Self::DEFAULT_WOODBURY_RANK,
        }
    }

    /// Short display name for stats, logs and CLI flags.
    pub fn name(&self) -> &'static str {
        match self {
            CouplingSolver::Jacobi => "jacobi",
            CouplingSolver::GaussSeidel => "gauss-seidel",
            CouplingSolver::Woodbury { .. } => "woodbury",
        }
    }
}

impl Default for CouplingSolver {
    /// Gauss–Seidel: never slower than Jacobi on the engine's matrices, and
    /// free of the Woodbury strategy's freeze-time rebuild cost.
    fn default() -> Self {
        CouplingSolver::GaussSeidel
    }
}

/// Stopping rule of the iterative coupling solves: a relative
/// iterate-change tolerance plus a hard sweep budget.
///
/// Because the engine's block splittings contract strictly, an iterate
/// change of `tol` bounds the remaining error by `tol·ρ/(1−ρ)`: under the
/// 1e-9 equivalence bar by three decades at ρ = 0.99 and still by one
/// decade at ρ = 0.999.  When the change stops shrinking while already
/// below twice `tol`, rounding noise dominates and the iterate is accepted
/// as converged (the f64 floor); anything that exhausts `max_sweeps`
/// instead fails loudly with [`LuError::ConvergenceFailure`] rather than
/// serving a drifted answer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveTolerance {
    /// Relative iterate-change tolerance.
    pub tol: f64,
    /// Hard sweep budget; a damping factor of 0.9997 still reaches the
    /// default `tol` within ~100k sweeps, and anything slower stagnates at
    /// the f64 floor first.
    pub max_sweeps: usize,
}

impl SolveTolerance {
    /// Floor-stagnation acceptance threshold, kept within 2× of `tol` so
    /// the error bound stays under the 1e-9 bar for every contraction rate
    /// reachable inside `max_sweeps`.
    fn stagnation(&self) -> f64 {
        2.0 * self.tol
    }

    fn accepted(&self, diff: f64, scale: f64, last_diff: f64) -> bool {
        // Deliberately *not* combined with an observed-contraction early
        // exit: the instantaneous ∞-norm ratio oscillates for nonsymmetric
        // couplings and any finite sample can under-estimate the rate.  The
        // `diff >= last_diff` guard keeps a transient non-monotone step
        // early in the iteration from exiting prematurely.
        diff <= self.tol * scale || (diff >= last_diff && diff <= self.stagnation() * scale)
    }
}

impl Default for SolveTolerance {
    fn default() -> Self {
        SolveTolerance {
            tol: 1e-13,
            max_sweeps: 100_000,
        }
    }
}

/// Everything the engine needs to know about coupled solves: the strategy,
/// its stopping rule, and when the sharded store should abandon its
/// partition.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CouplingConfig {
    /// The combination strategy stamped onto published snapshots.
    pub solver: CouplingSolver,
    /// Stopping rule of the iterative strategies.
    pub tolerance: SolveTolerance,
    /// Adaptive re-partitioning: when the live coupling's entry count
    /// crosses this budget, the sharded store re-runs the edge-locality
    /// partition on the current graph and rebuilds its shards (amortized —
    /// after a re-partition the trigger backs off to twice the surviving
    /// coupling size until it falls under the budget again).  `None`
    /// disables re-partitioning.
    pub repartition_budget: Option<usize>,
}

/// The entries of one captured coupling column in the engine's Woodbury
/// correction: the [`LowRankCorrection`] itself, the cold remainder of the
/// coupling, and the shards whose frozen factors the cached `Z = B⁻¹U`
/// depends on.
#[derive(Debug)]
struct PlanCorrection {
    lowrank: LowRankCorrection,
    /// The coupling minus the captured columns — what the fixed-point
    /// iteration still has to sweep over (empty: solves are direct).
    rest: CsrMatrix,
    /// Shards where a captured column has support.  A batch that re-froze
    /// only other shards leaves the cached correction valid.
    support: BTreeSet<usize>,
}

/// Frozen per-snapshot solver metadata, shared through the copy-on-write
/// snapshot ring exactly like factor blocks: consecutive snapshots are
/// [`Arc::ptr_eq`](std::sync::Arc::ptr_eq) on their plan whenever neither
/// the coupling nor a shard the cached correction depends on changed.
#[derive(Debug)]
pub struct CouplingPlan {
    /// Gauss–Seidel shard traversal order, least-dependent shard first.
    gs_order: Vec<usize>,
    /// Whether the shard dependency digraph is acyclic and `gs_order` is a
    /// topological order of it — block triangular form.  When set, one
    /// Gauss–Seidel sweep in `gs_order` is the *exact* solve (every coupling
    /// entry a shard reads was updated earlier in the same sweep), so the
    /// iterative arms return after a single sweep and the Woodbury
    /// correction is never built.
    triangular: bool,
    correction: Option<PlanCorrection>,
}

impl CouplingPlan {
    /// The trivial plan of a store without coupling (identity traversal, no
    /// correction) — what monolithic snapshots carry.
    pub(crate) fn trivial(n_shards: usize) -> Self {
        CouplingPlan {
            gs_order: (0..n_shards).collect(),
            // No coupling: vacuously triangular (never consulted — empty
            // couplings short-circuit before the iterative arms).
            triangular: true,
            correction: None,
        }
    }

    /// Builds the plan for one frozen (partition, factor blocks, coupling)
    /// triple: always derives the Gauss–Seidel order, and for the Woodbury
    /// strategy also factors the hottest coupling columns into the cached
    /// correction (one block solve per captured column).
    pub(crate) fn build<D: AsRef<DecomposedMatrix>>(
        partition: &NodePartition,
        blocks: &[D],
        coupling: &CsrMatrix,
        solver: CouplingSolver,
    ) -> LuResult<Self> {
        let k = partition.n_shards();
        let (gs_order, triangular) = if k <= 1 || coupling.nnz() == 0 {
            ((0..k).collect(), true)
        } else {
            let w = shard_dependency_weights(k, partition, coupling);
            // Triangularity is detected from the *actual* frozen coupling, so
            // it never depends on where the partition came from: a BTF
            // partition gets its one-sweep guarantee verified here, and any
            // partition whose cross-structure happens to be acyclic gets the
            // same direct solve for free.
            match topological_shard_order(k, &w) {
                Some(topo) => (topo, true),
                None => (greedy_order_from_weights(k, &w), false),
            }
        };
        let correction = match solver {
            // A triangular coupling never builds the correction: one
            // Gauss–Seidel sweep is already the exact direct solve, cheaper
            // than a block pass plus the dense k×k substitution.
            CouplingSolver::Woodbury { max_rank } if coupling.nnz() > 0 && !triangular => {
                build_correction(partition, blocks, coupling, max_rank)?
            }
            _ => None,
        };
        Ok(CouplingPlan {
            gs_order,
            triangular,
            correction,
        })
    }

    /// The Gauss–Seidel shard traversal order.
    pub fn gs_order(&self) -> &[usize] {
        &self.gs_order
    }

    /// Whether the cross-shard structure is block triangular under
    /// `gs_order` — when true, Gauss–Seidel solves are direct (one sweep,
    /// exact).
    pub fn is_triangular(&self) -> bool {
        self.triangular
    }

    /// Rank of the cached Woodbury correction (`None` when the plan carries
    /// no correction — empty coupling, non-Woodbury strategy, or the
    /// defensive singular-Schur fallback).
    pub fn correction_rank(&self) -> Option<usize> {
        self.correction.as_ref().map(|c| c.lowrank.rank())
    }

    /// Coupling entries the cached correction did *not* capture (0 when a
    /// correction exists and covers the whole coupling).
    pub fn correction_rest_nnz(&self) -> Option<usize> {
        self.correction.as_ref().map(|c| c.rest.nnz())
    }

    /// Whether the cached correction depends on shard `s`'s frozen factors.
    /// Re-freezing a shard outside this set keeps the plan shareable.
    pub(crate) fn depends_on_shard(&self, s: usize) -> bool {
        self.correction
            .as_ref()
            .is_some_and(|c| c.support.contains(&s))
    }

    /// Rough resident size in bytes (the dense `Z` of the correction
    /// dominates), for the engine's snapshot-ring memory accounting.
    pub fn approx_bytes(&self) -> usize {
        self.gs_order.len() * std::mem::size_of::<usize>()
            + self.correction.as_ref().map_or(0, |c| {
                c.lowrank.approx_bytes() + c.rest.nnz() * 16 + c.support.len() * 8
            })
    }
}

/// Reused buffers of one coupled solve: the gathered per-shard right-hand
/// side, the recovered per-shard solution, the triangular-solve scratch
/// underneath, and the Woodbury correction scratch.  Allocated once per
/// query; every sweep after the first reuses the grown capacity.
#[derive(Debug, Default)]
pub(crate) struct BlockScratch {
    local_rhs: Vec<f64>,
    local_x: Vec<f64>,
    lu: SolveScratch,
    correction: CorrectionScratch,
}

/// Runs every block's solve against `rhs` restricted to its nodes and
/// scatters the local solutions into `out` — one pass of `B⁻¹`.  All
/// intermediate vectors live in `scratch`, so one call allocates nothing
/// once the scratch has warmed up to the largest shard's order.
pub(crate) fn solve_blocks<D: AsRef<DecomposedMatrix>>(
    partition: &NodePartition,
    blocks: &[D],
    rhs: &[f64],
    out: &mut [f64],
    scratch: &mut BlockScratch,
) -> LuResult<()> {
    for (s, block) in blocks.iter().enumerate() {
        let nodes = partition.nodes_of(s);
        scratch.local_rhs.clear();
        scratch.local_rhs.extend(nodes.iter().map(|&g| rhs[g]));
        block
            .as_ref()
            .solve_into(&scratch.local_rhs, &mut scratch.lu, &mut scratch.local_x)?;
        for (l, &g) in nodes.iter().enumerate() {
            out[g] = scratch.local_x[l];
        }
    }
    Ok(())
}

/// Panel analogue of [`BlockScratch`]: the gathered per-shard right-hand
/// side panel, the recovered per-shard solution panel, the triangular panel
/// scratch underneath, and the Woodbury correction scratch.
#[derive(Debug, Default)]
pub(crate) struct PanelBlockScratch {
    local_rhs: Vec<f64>,
    local_x: Vec<f64>,
    lu: PanelScratch,
    correction: CorrectionScratch,
}

/// Panel variant of [`solve_blocks`]: one pass of `B⁻¹` over `n_rhs`
/// right-hand sides stacked column-major in `rhs`, each shard's factors
/// traversed **once** for the whole panel.  Per panel column the arithmetic
/// is exactly that of [`solve_blocks`], so every stripe of `out` is
/// bit-identical to a sequential block pass.
pub(crate) fn solve_blocks_many<D: AsRef<DecomposedMatrix>>(
    partition: &NodePartition,
    blocks: &[D],
    rhs: &[f64],
    n_rhs: usize,
    out: &mut [f64],
    scratch: &mut PanelBlockScratch,
) -> LuResult<()> {
    if n_rhs == 0 {
        return Ok(());
    }
    let n = rhs.len() / n_rhs;
    for (s, block) in blocks.iter().enumerate() {
        let nodes = partition.nodes_of(s);
        scratch.local_rhs.clear();
        for c in 0..n_rhs {
            let stripe = &rhs[c * n..(c + 1) * n];
            scratch.local_rhs.extend(nodes.iter().map(|&g| stripe[g]));
        }
        block.as_ref().solve_many_into(
            &scratch.local_rhs,
            n_rhs,
            &mut scratch.lu,
            &mut scratch.local_x,
        )?;
        let m = nodes.len();
        for c in 0..n_rhs {
            let local = &scratch.local_x[c * m..(c + 1) * m];
            let stripe = &mut out[c * n..(c + 1) * n];
            for (l, &g) in nodes.iter().enumerate() {
                stripe[g] = local[l];
            }
        }
    }
    Ok(())
}

/// Solves `A x = b` for a snapshot's full measure matrix
/// `A = blockdiag(A_ss) + C`, dispatching on the snapshot's strategy.
///
/// Fast paths first: a monolithic snapshot is one pair of substitutions
/// (bit-identical to the pre-sharding solve), and fully decoupled shards
/// need exactly one block pass.  Everything else goes through the
/// snapshot's [`CouplingSolver`]; a Woodbury snapshot whose plan carries no
/// correction (defensive fallback) degrades to Gauss–Seidel.
pub(crate) fn solve_system(snap: &EngineSnapshot, b: &[f64]) -> LuResult<Vec<f64>> {
    let n = snap.n_nodes();
    if b.len() != n {
        return Err(LuError::DimensionMismatch {
            expected: n,
            actual: b.len(),
        });
    }
    let shards = snap.shards();
    let coupling = snap.coupling();
    if shards.len() == 1 && coupling.nnz() == 0 {
        return shards[0].decomposed().solve(b);
    }
    let partition = snap.partition();
    let mut scratch = BlockScratch::default();
    if coupling.nnz() == 0 {
        let mut x = vec![0.0; n];
        solve_blocks(partition, shards, b, &mut x, &mut scratch)?;
        return Ok(x);
    }
    let tolerance = snap.tolerance();
    let telemetry = snap.telemetry();
    let result = match snap.solver() {
        CouplingSolver::Jacobi => {
            let _span = telemetry.span(Stage::CouplingJacobi);
            fixed_point(n, b, coupling, tolerance, |rhs, out| {
                solve_blocks(partition, shards, rhs, out, &mut scratch)
            })
        }
        CouplingSolver::GaussSeidel => {
            let _span = telemetry.span(Stage::CouplingGaussSeidel);
            gauss_seidel(snap, b, &mut scratch)
        }
        CouplingSolver::Woodbury { .. } => match &snap.coupling_plan().correction {
            Some(c) if c.rest.nnz() == 0 => {
                // The correction captured the whole coupling: one block pass
                // plus one k×k dense substitution is the exact solve.
                let _span = telemetry.span(Stage::CouplingWoodburyApply);
                let mut x = vec![0.0; n];
                solve_blocks(partition, shards, b, &mut x, &mut scratch)?;
                c.lowrank.apply_into(&mut x, &mut scratch.correction)?;
                Ok(x)
            }
            Some(c) => {
                let _span = telemetry.span(Stage::CouplingWoodburyApply);
                fixed_point(n, b, &c.rest, tolerance, |rhs, out| {
                    solve_blocks(partition, shards, rhs, out, &mut scratch)?;
                    c.lowrank.apply_into(out, &mut scratch.correction)
                })
            }
            None => {
                let _span = telemetry.span(Stage::CouplingGaussSeidel);
                gauss_seidel(snap, b, &mut scratch)
            }
        },
    };
    if let Err(LuError::ConvergenceFailure {
        iterations,
        last_diff,
    }) = &result
    {
        // Journalled, not just surfaced as an `Err`: a caller that retries or
        // falls back would otherwise leave no trace of the failed solve.
        telemetry.incr(Counter::ConvergenceFailures);
        telemetry.record_event(EngineEvent::ConvergenceFailure {
            sweeps: *iterations as u64,
            residual: *last_diff,
        });
    }
    result
}

/// Panel variant of [`solve_system`]: solves the snapshot's measure system
/// for `n_rhs` right-hand sides stacked column-major in `b`, one factor
/// traversal per block pass for the whole panel.
///
/// Every stripe of the result is **bit-identical** to a sequential
/// [`solve_system`] call on that stripe: the direct arms reuse the panel
/// kernels' per-column bit-identity, and the iterative arms run a joint
/// sweep loop in which each column carries its own convergence state and is
/// frozen the moment its sequential run would have returned — so per column
/// the sweep count, every intermediate iterate, and the final answer match
/// the single-RHS path exactly.  A convergence or pivot failure on any
/// column fails the whole panel (the batcher reports it to every member).
pub(crate) fn solve_systems(snap: &EngineSnapshot, b: &[f64], n_rhs: usize) -> LuResult<Vec<f64>> {
    let n = snap.n_nodes();
    if b.len() != n * n_rhs {
        return Err(LuError::DimensionMismatch {
            expected: n * n_rhs,
            actual: b.len(),
        });
    }
    if n_rhs == 0 {
        return Ok(Vec::new());
    }
    if n_rhs == 1 {
        return solve_system(snap, b);
    }
    let shards = snap.shards();
    let coupling = snap.coupling();
    if shards.len() == 1 && coupling.nnz() == 0 {
        let mut scratch = PanelScratch::new();
        let mut x = Vec::new();
        shards[0]
            .decomposed()
            .solve_many_into(b, n_rhs, &mut scratch, &mut x)?;
        return Ok(x);
    }
    let partition = snap.partition();
    let mut scratch = PanelBlockScratch::default();
    if coupling.nnz() == 0 {
        let mut x = vec![0.0; n * n_rhs];
        solve_blocks_many(partition, shards, b, n_rhs, &mut x, &mut scratch)?;
        return Ok(x);
    }
    let tolerance = snap.tolerance();
    let telemetry = snap.telemetry();
    let result = match snap.solver() {
        CouplingSolver::Jacobi => {
            let _span = telemetry.span(Stage::CouplingJacobi);
            fixed_point_many(n, b, n_rhs, coupling, tolerance, |rhs, out| {
                solve_blocks_many(partition, shards, rhs, n_rhs, out, &mut scratch)
            })
        }
        CouplingSolver::GaussSeidel => {
            let _span = telemetry.span(Stage::CouplingGaussSeidel);
            gauss_seidel_many(snap, b, n_rhs, &mut scratch)
        }
        CouplingSolver::Woodbury { .. } => match &snap.coupling_plan().correction {
            Some(c) if c.rest.nnz() == 0 => {
                let _span = telemetry.span(Stage::CouplingWoodburyApply);
                let mut x = vec![0.0; n * n_rhs];
                solve_blocks_many(partition, shards, b, n_rhs, &mut x, &mut scratch)?;
                for col in 0..n_rhs {
                    c.lowrank
                        .apply_into(&mut x[col * n..(col + 1) * n], &mut scratch.correction)?;
                }
                Ok(x)
            }
            Some(c) => {
                let _span = telemetry.span(Stage::CouplingWoodburyApply);
                fixed_point_many(n, b, n_rhs, &c.rest, tolerance, |rhs, out| {
                    solve_blocks_many(partition, shards, rhs, n_rhs, out, &mut scratch)?;
                    for col in 0..n_rhs {
                        c.lowrank.apply_into(
                            &mut out[col * n..(col + 1) * n],
                            &mut scratch.correction,
                        )?;
                    }
                    Ok(())
                })
            }
            None => {
                let _span = telemetry.span(Stage::CouplingGaussSeidel);
                gauss_seidel_many(snap, b, n_rhs, &mut scratch)
            }
        },
    };
    if let Err(LuError::ConvergenceFailure {
        iterations,
        last_diff,
    }) = &result
    {
        telemetry.incr(Counter::ConvergenceFailures);
        telemetry.record_event(EngineEvent::ConvergenceFailure {
            sweeps: *iterations as u64,
            residual: *last_diff,
        });
    }
    result
}

/// Fixed-point iteration `x ← M⁻¹(b − R·x)` with `apply_inverse` as `M⁻¹`
/// and `residual` as `R` — the shared skeleton of the Jacobi strategy
/// (`M = B`, `R = C`) and the Woodbury remainder iteration
/// (`M = B + C_hot`, `R = C_rest`).
fn fixed_point<F>(
    n: usize,
    b: &[f64],
    residual: &CsrMatrix,
    tolerance: SolveTolerance,
    mut apply_inverse: F,
) -> LuResult<Vec<f64>>
where
    F: FnMut(&[f64], &mut [f64]) -> LuResult<()>,
{
    let mut x = vec![0.0; n];
    let mut next = vec![0.0; n];
    let mut rhs = vec![0.0; n];
    let mut last_diff = f64::INFINITY;
    for _ in 0..tolerance.max_sweeps {
        // rhs = b − R·x, accumulated into the reused buffer; everything
        // below runs through reused buffers too, so the steady-state sweep
        // performs zero heap allocations.
        rhs.copy_from_slice(b);
        for (i, j, v) in residual.iter() {
            rhs[i] -= v * x[j];
        }
        apply_inverse(&rhs, &mut next)?;
        let (diff, scale) = diff_and_scale(&next, &x);
        std::mem::swap(&mut x, &mut next);
        if tolerance.accepted(diff, scale, last_diff) {
            return Ok(x);
        }
        last_diff = diff;
    }
    Err(LuError::ConvergenceFailure {
        iterations: tolerance.max_sweeps,
        last_diff,
    })
}

/// Panel variant of [`fixed_point`]: the columns of the panel iterate
/// jointly — one residual pass and one `apply_inverse` panel pass per sweep
/// — but each column keeps its own `last_diff` and is **frozen** (its `x`
/// stripe no longer written) the moment its own acceptance test passes.
/// Because the columns of a fixed-point iteration are arithmetically
/// independent, each column's iterate sequence while active is exactly its
/// sequential [`fixed_point`] sequence, so the converged stripes are
/// bit-identical to sequential solves.  Frozen columns still ride along in
/// the panel passes (the width is fixed); their results are discarded.
fn fixed_point_many<F>(
    n: usize,
    b: &[f64],
    n_rhs: usize,
    residual: &CsrMatrix,
    tolerance: SolveTolerance,
    mut apply_inverse: F,
) -> LuResult<Vec<f64>>
where
    F: FnMut(&[f64], &mut [f64]) -> LuResult<()>,
{
    let mut x = vec![0.0; n * n_rhs];
    let mut next = vec![0.0; n * n_rhs];
    let mut rhs = vec![0.0; n * n_rhs];
    let mut last_diff = vec![f64::INFINITY; n_rhs];
    let mut done = vec![false; n_rhs];
    let mut n_done = 0usize;
    for _ in 0..tolerance.max_sweeps {
        rhs.copy_from_slice(b);
        for (i, j, v) in residual.iter() {
            for c in 0..n_rhs {
                if !done[c] {
                    rhs[c * n + i] -= v * x[c * n + j];
                }
            }
        }
        apply_inverse(&rhs, &mut next)?;
        for c in 0..n_rhs {
            if done[c] {
                continue;
            }
            let stripe = c * n..(c + 1) * n;
            let (diff, scale) = diff_and_scale(&next[stripe.clone()], &x[stripe.clone()]);
            x[stripe.clone()].copy_from_slice(&next[stripe]);
            if tolerance.accepted(diff, scale, last_diff[c]) {
                done[c] = true;
                n_done += 1;
            } else {
                last_diff[c] = diff;
            }
        }
        if n_done == n_rhs {
            return Ok(x);
        }
    }
    let worst = last_diff
        .iter()
        .zip(done.iter())
        .filter(|&(_, &d)| !d)
        .map(|(&l, _)| l)
        .fold(0.0f64, f64::max);
    Err(LuError::ConvergenceFailure {
        iterations: tolerance.max_sweeps,
        last_diff: worst,
    })
}

/// Block Gauss–Seidel: one sweep updates the shards in the plan's
/// dependency order, and each shard's right-hand side reads the *current*
/// iterate — so the shards updated earlier in the sweep already contribute
/// their new solutions.  Same fixed point as Jacobi, roughly half the
/// sweeps on the engine's streams.
fn gauss_seidel(
    snap: &EngineSnapshot,
    b: &[f64],
    scratch: &mut BlockScratch,
) -> LuResult<Vec<f64>> {
    let partition = snap.partition();
    let shards = snap.shards();
    let coupling = snap.coupling();
    let tolerance = snap.tolerance();
    let plan = snap.coupling_plan();
    debug_assert_eq!(plan.gs_order.len(), shards.len());
    let n = b.len();
    let mut x = vec![0.0; n];
    let mut prev = vec![0.0; n];
    let mut last_diff = f64::INFINITY;
    for _ in 0..tolerance.max_sweeps {
        prev.copy_from_slice(&x);
        for &s in &plan.gs_order {
            let nodes = partition.nodes_of(s);
            scratch.local_rhs.clear();
            for &g in nodes {
                let (cols, vals) = coupling.row(g);
                let mut acc = b[g];
                for (&j, &v) in cols.iter().zip(vals.iter()) {
                    acc -= v * x[j];
                }
                scratch.local_rhs.push(acc);
            }
            shards[s].decomposed().solve_into(
                &scratch.local_rhs,
                &mut scratch.lu,
                &mut scratch.local_x,
            )?;
            for (l, &g) in nodes.iter().enumerate() {
                x[g] = scratch.local_x[l];
            }
        }
        if plan.triangular {
            // Block triangular coupling: every entry a shard read was
            // already final, so the first sweep IS the exact solve.
            return Ok(x);
        }
        let (diff, scale) = diff_and_scale(&x, &prev);
        if tolerance.accepted(diff, scale, last_diff) {
            return Ok(x);
        }
        last_diff = diff;
    }
    Err(LuError::ConvergenceFailure {
        iterations: tolerance.max_sweeps,
        last_diff,
    })
}

/// Panel variant of [`gauss_seidel`], with the same per-column freeze
/// discipline as [`fixed_point_many`]: per sweep each shard gathers the
/// coupled right-hand sides of every column against that column's *current*
/// iterate (shards earlier in the traversal already contributed their new
/// stripes), runs **one** panel solve over its factors, and scatters only
/// the still-active columns.  Per column the arithmetic matches the
/// sequential [`gauss_seidel`] exactly, so converged stripes are
/// bit-identical.
fn gauss_seidel_many(
    snap: &EngineSnapshot,
    b: &[f64],
    n_rhs: usize,
    scratch: &mut PanelBlockScratch,
) -> LuResult<Vec<f64>> {
    let partition = snap.partition();
    let shards = snap.shards();
    let coupling = snap.coupling();
    let tolerance = snap.tolerance();
    let plan = snap.coupling_plan();
    debug_assert_eq!(plan.gs_order.len(), shards.len());
    let n = snap.n_nodes();
    let mut x = vec![0.0; n * n_rhs];
    let mut prev = vec![0.0; n * n_rhs];
    let mut last_diff = vec![f64::INFINITY; n_rhs];
    let mut done = vec![false; n_rhs];
    let mut n_done = 0usize;
    for _ in 0..tolerance.max_sweeps {
        prev.copy_from_slice(&x);
        for &s in &plan.gs_order {
            let nodes = partition.nodes_of(s);
            scratch.local_rhs.clear();
            for c in 0..n_rhs {
                let xs = &x[c * n..(c + 1) * n];
                let bs = &b[c * n..(c + 1) * n];
                for &g in nodes {
                    let (cols, vals) = coupling.row(g);
                    let mut acc = bs[g];
                    for (&j, &v) in cols.iter().zip(vals.iter()) {
                        acc -= v * xs[j];
                    }
                    scratch.local_rhs.push(acc);
                }
            }
            shards[s].decomposed().solve_many_into(
                &scratch.local_rhs,
                n_rhs,
                &mut scratch.lu,
                &mut scratch.local_x,
            )?;
            let m = nodes.len();
            for c in 0..n_rhs {
                if done[c] {
                    continue;
                }
                let local = &scratch.local_x[c * m..(c + 1) * m];
                for (l, &g) in nodes.iter().enumerate() {
                    x[c * n + g] = local[l];
                }
            }
        }
        if plan.triangular {
            // Block triangular coupling: one sweep is exact for every column.
            return Ok(x);
        }
        for c in 0..n_rhs {
            if done[c] {
                continue;
            }
            let stripe = c * n..(c + 1) * n;
            let (diff, scale) = diff_and_scale(&x[stripe.clone()], &prev[stripe]);
            if tolerance.accepted(diff, scale, last_diff[c]) {
                done[c] = true;
                n_done += 1;
            } else {
                last_diff[c] = diff;
            }
        }
        if n_done == n_rhs {
            return Ok(x);
        }
    }
    let worst = last_diff
        .iter()
        .zip(done.iter())
        .filter(|&(_, &d)| !d)
        .map(|(&l, _)| l)
        .fold(0.0f64, f64::max);
    Err(LuError::ConvergenceFailure {
        iterations: tolerance.max_sweeps,
        last_diff: worst,
    })
}

/// ∞-norm iterate change and solution scale of one sweep.
fn diff_and_scale(new: &[f64], old: &[f64]) -> (f64, f64) {
    let mut diff = 0.0f64;
    let mut scale = 1.0f64;
    for (a, b) in new.iter().zip(old.iter()) {
        diff = diff.max((a - b).abs());
        scale = scale.max(a.abs());
    }
    (diff, scale)
}

/// Derives the Gauss–Seidel shard traversal order from the coupling's
/// shard-to-shard dependency weights: a topological order of the dependency
/// digraph when it is acyclic (the block-triangular case — one sweep in that
/// order is the exact solve), else the greedy least-pending-weight order of
/// [`greedy_order_from_weights`].  [`CouplingPlan::build`] inlines the same
/// derivation (it also needs the triangularity verdict); this standalone form
/// is kept for direct unit testing of the order.
#[cfg(test)]
fn gauss_seidel_order(partition: &NodePartition, coupling: &CsrMatrix) -> Vec<usize> {
    let k = partition.n_shards();
    if k <= 1 || coupling.nnz() == 0 {
        return (0..k).collect();
    }
    let w = shard_dependency_weights(k, partition, coupling);
    topological_shard_order(k, &w).unwrap_or_else(|| greedy_order_from_weights(k, &w))
}

/// The shard-to-shard dependency weights `w[s][t] = Σ |C[i,j]|` over `i ∈ s`,
/// `j ∈ t`, `s ≠ t`: how much shard `s`'s rows read shard `t`'s solution.
fn shard_dependency_weights(k: usize, partition: &NodePartition, coupling: &CsrMatrix) -> Vec<f64> {
    let mut w = vec![0.0f64; k * k];
    for (i, j, v) in coupling.iter() {
        let (s, t) = (partition.shard_of(i), partition.shard_of(j));
        if s != t {
            w[s * k + t] += v.abs();
        }
    }
    w
}

/// Kahn's algorithm over the shard dependency digraph (`s` depends on `t`
/// when `w[s][t] > 0`): `Some(order)` with dependencies first when the
/// digraph is acyclic — block triangular form — else `None`.  Among ready
/// shards the lowest id goes first, so the order is deterministic.
fn topological_shard_order(k: usize, w: &[f64]) -> Option<Vec<usize>> {
    let mut indegree = vec![0usize; k];
    for s in 0..k {
        for t in 0..k {
            if s != t && w[s * k + t] > 0.0 {
                indegree[s] += 1;
            }
        }
    }
    let mut order = Vec::with_capacity(k);
    let mut placed = vec![false; k];
    for _ in 0..k {
        let s = (0..k).find(|&s| !placed[s] && indegree[s] == 0)?;
        placed[s] = true;
        order.push(s);
        for r in 0..k {
            if !placed[r] && r != s && w[r * k + s] > 0.0 {
                indegree[r] -= 1;
            }
        }
    }
    Some(order)
}

/// The cyclic-coupling fallback order: greedily pick the shard with the
/// least remaining dependency weight on shards not yet updated this sweep,
/// so by the time a heavily-dependent shard solves, most of what it reads is
/// already current-iterate.  Ties break toward the lower shard id.
fn greedy_order_from_weights(k: usize, w: &[f64]) -> Vec<usize> {
    let mut remaining: Vec<usize> = (0..k).collect();
    let mut order = Vec::with_capacity(k);
    while !remaining.is_empty() {
        // Manual argmin instead of `min_by` + `partial_cmp().expect(…)`:
        // `<` keeps the first minimum on ties (lower shard id) and has no
        // panic surface even if a weight ever went non-finite.
        let mut pos = 0;
        let mut best = f64::INFINITY;
        for (p, &s) in remaining.iter().enumerate() {
            let pending: f64 = remaining
                .iter()
                .filter(|&&t| t != s)
                .map(|&t| w[s * k + t])
                .sum();
            if pending < best {
                best = pending;
                pos = p;
            }
        }
        order.push(remaining.remove(pos));
    }
    order
}

/// Factors the `max_rank` hottest coupling columns (by absolute column
/// weight) into the cached Woodbury correction: extracts the columns and the
/// cold remainder in one CSR pass, forms `Z = B⁻¹U`, and factorizes the
/// dense Schur complement.
///
/// The `Z` solves exploit the block structure: `B⁻¹` is block-diagonal, so a
/// captured column only needs the shards its support touches — every other
/// slice of its `Z` column is exactly zero.  A typical cross column touches
/// one or two shards, so a rebuild costs far less than `k` full block-solve
/// passes.
fn build_correction<D: AsRef<DecomposedMatrix>>(
    partition: &NodePartition,
    blocks: &[D],
    coupling: &CsrMatrix,
    max_rank: usize,
) -> LuResult<Option<PlanCorrection>> {
    let n = coupling.n_rows();
    let weights = coupling.col_abs_sums();
    let mut hot: Vec<usize> = (0..n).filter(|&j| weights[j] > 0.0).collect();
    // `total_cmp` orders every float (no `partial_cmp().expect(…)` panic
    // surface); weights are non-negative sums of absolute values, so it
    // agrees with the numeric order everywhere it matters.
    hot.sort_by(|&a, &b| weights[b].total_cmp(&weights[a]).then(a.cmp(&b)));
    hot.truncate(max_rank);
    if hot.is_empty() {
        return Ok(None);
    }
    let (columns, rest) = coupling
        .split_columns(&hot)
        // lint: allow(panic-surface) — `hot` is built from `(0..n)` filtered
        // and truncated above: in bounds, sorted, and duplicate-free, which
        // is exactly what `split_columns` validates.
        .expect("hot columns index the coupling");
    let mut z = vec![0.0; n * hot.len()];
    let mut scratch = BlockScratch::default();
    let mut support = BTreeSet::new();
    let mut col_shards = BTreeSet::new();
    for (i, column) in columns.iter().enumerate() {
        let zi = &mut z[i * n..(i + 1) * n];
        col_shards.clear();
        col_shards.extend(column.iter().map(|&(r, _)| partition.shard_of(r)));
        for &s in &col_shards {
            support.insert(s);
            let nodes = partition.nodes_of(s);
            scratch.local_rhs.clear();
            scratch.local_rhs.resize(nodes.len(), 0.0);
            for &(r, v) in column {
                if partition.shard_of(r) == s {
                    scratch.local_rhs[partition.local_of(r)] = v;
                }
            }
            blocks[s].as_ref().solve_into(
                &scratch.local_rhs,
                &mut scratch.lu,
                &mut scratch.local_x,
            )?;
            for (l, &g) in nodes.iter().enumerate() {
                zi[g] = scratch.local_x[l];
            }
        }
    }
    match LowRankCorrection::new(n, hot, z) {
        Ok(lowrank) => Ok(Some(PlanCorrection {
            lowrank,
            rest,
            support,
        })),
        // A singular Schur complement cannot arise for the engine's
        // M-matrices (`B + U·Vᵀ` stays an M-matrix); if numerics ever
        // disagree, degrade to sweeps instead of failing the snapshot.
        Err(LuError::SingularPivot { .. }) => Ok(None),
        Err(e) => Err(e),
    }
}

impl AsRef<DecomposedMatrix> for ShardSnapshot {
    fn as_ref(&self) -> &DecomposedMatrix {
        self.decomposed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clude_sparse::CooMatrix;

    #[test]
    fn solver_names_and_defaults() {
        assert_eq!(CouplingSolver::Jacobi.name(), "jacobi");
        assert_eq!(CouplingSolver::GaussSeidel.name(), "gauss-seidel");
        assert_eq!(CouplingSolver::woodbury().name(), "woodbury");
        assert_eq!(CouplingSolver::default(), CouplingSolver::GaussSeidel);
        let tol = SolveTolerance::default();
        assert_eq!(tol.tol, 1e-13);
        assert_eq!(tol.max_sweeps, 100_000);
        let cfg = CouplingConfig::default();
        assert_eq!(cfg.solver, CouplingSolver::GaussSeidel);
        assert_eq!(cfg.repartition_budget, None);
        assert!(matches!(
            CouplingSolver::woodbury(),
            CouplingSolver::Woodbury {
                max_rank: CouplingSolver::DEFAULT_WOODBURY_RANK
            }
        ));
    }

    #[test]
    fn tolerance_acceptance_rules() {
        let tol = SolveTolerance {
            tol: 1e-13,
            max_sweeps: 10,
        };
        // Plain convergence.
        assert!(tol.accepted(5e-14, 1.0, 1e-10));
        // Floor stagnation: not shrinking, but already within 2× tol.
        assert!(tol.accepted(1.5e-13, 1.0, 1.4e-13));
        // Still shrinking above tol: keep sweeping.
        assert!(!tol.accepted(1.5e-13, 1.0, 3e-13));
        // Large change: keep sweeping.
        assert!(!tol.accepted(1e-6, 1.0, 1e-5));
    }

    #[test]
    fn trivial_plan_is_identity_order_without_correction() {
        let plan = CouplingPlan::trivial(3);
        assert_eq!(plan.gs_order(), &[0, 1, 2]);
        assert_eq!(plan.correction_rank(), None);
        assert_eq!(plan.correction_rest_nnz(), None);
        assert!(!plan.depends_on_shard(0));
        assert!(plan.approx_bytes() > 0);
    }

    #[test]
    fn gs_order_puts_least_dependent_shards_first() {
        // 3 contiguous shards of 2 nodes.  Shard 2 depends heavily on shard
        // 0, shard 0 depends lightly on shard 1, shard 1 on nothing.
        let partition = NodePartition::contiguous(6, 3);
        let mut coo = CooMatrix::new(6, 6);
        coo.push(4, 0, -5.0).unwrap(); // shard 2 <- shard 0, heavy
        coo.push(5, 1, -4.0).unwrap(); // shard 2 <- shard 0, heavy
        coo.push(0, 2, -0.1).unwrap(); // shard 0 <- shard 1, light
        let coupling = CsrMatrix::from_coo(&coo);
        let order = gauss_seidel_order(&partition, &coupling);
        // Shard 1 has no dependencies -> first; shard 2's dependency on
        // shard 0 is the heaviest -> it must come after shard 0.
        assert_eq!(order[0], 1);
        assert_eq!(order, vec![1, 0, 2]);
        // No coupling: identity order.
        let empty = CsrMatrix::from_coo(&CooMatrix::new(6, 6));
        assert_eq!(gauss_seidel_order(&partition, &empty), vec![0, 1, 2]);
    }

    #[test]
    fn fixed_point_reports_convergence_failure() {
        // An "inverse" that never moves toward the fixed point: alternate
        // between two iterates so the diff never shrinks below tolerance.
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 1, 1.0).unwrap();
        let residual = CsrMatrix::from_coo(&coo);
        let tolerance = SolveTolerance {
            tol: 1e-13,
            max_sweeps: 7,
        };
        let mut flip = 1.0;
        let err = fixed_point(2, &[1.0, 1.0], &residual, tolerance, |_rhs, out| {
            flip = -flip;
            out[0] = flip;
            out[1] = -flip;
            Ok(())
        })
        .unwrap_err();
        assert!(matches!(
            err,
            LuError::ConvergenceFailure { iterations: 7, .. }
        ));
    }
}
