//! Write-ahead delta log: segment format, writer, and reader.
//!
//! One WAL *segment* covers the batches applied since a checkpoint.  Its
//! file name is `wal-<first>.log` where `first` is the snapshot id of the
//! first record it may hold (checkpoint snapshot + 1); a checkpoint rotates
//! to a fresh segment and the committed manifest record makes the old ones
//! garbage.
//!
//! ## On-disk layout
//!
//! ```text
//! segment   := header record*
//! header    := magic:u32le version:u32le                      (8 bytes)
//! record    := len:u32le crc:u32le payload[len]
//! payload   := snapshot_id:u64le delta                        (clude_graph::wire)
//! ```
//!
//! `crc` is CRC-32 (IEEE, reflected) over `payload`.  A record that is
//! short, fails its checksum, or does not decode marks the *torn tail*: it
//! and everything after it are dropped at recovery (and reported, never
//! silently).  A bad header is different — the file is not a WAL segment of
//! this version, and recovery fails loudly instead of guessing.

use clude_graph::{wire, GraphDelta, WireWriter};
use std::io;
use std::path::{Path, PathBuf};

use crate::error::{EngineError, EngineResult};
use crate::vfs::{Vfs, VfsFile};

/// `b"CLWL"` little-endian: CLude Wal Log.
pub(crate) const WAL_MAGIC: u32 = u32::from_le_bytes(*b"CLWL");
/// Bumped on any incompatible layout change; readers reject other versions.
pub(crate) const WAL_VERSION: u32 = 1;

/// CRC-32 (IEEE 802.3, reflected) lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `bytes` — the checksum guarding every WAL record,
/// manifest record and checkpoint payload.
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

pub(crate) fn io_err(op: &str, path: &Path, e: io::Error) -> EngineError {
    EngineError::Persistence(format!("{op} {}: {e}", path.display()))
}

/// File name of the segment whose first admissible record is `first_id`.
pub(crate) fn segment_name(first_id: u64) -> String {
    format!("wal-{first_id}.log")
}

/// Parses `wal-<first>.log` back into `first`, rejecting other names.
pub(crate) fn segment_first_id(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    let digits = name.strip_prefix("wal-")?.strip_suffix(".log")?;
    digits.parse().ok()
}

/// Serialises one record (frame + payload) for `snapshot_id`/`delta`.
pub(crate) fn encode_record(snapshot_id: u64, delta: &GraphDelta) -> Vec<u8> {
    let mut payload = WireWriter::new();
    payload.put_u64(snapshot_id);
    wire::encode_delta(&mut payload, delta);
    let payload = payload.into_bytes();
    let mut framed = WireWriter::new();
    framed.put_u32(payload.len() as u32);
    framed.put_u32(crc32(&payload));
    framed.put_bytes(&payload);
    framed.into_bytes()
}

/// Append side of one WAL segment.
///
/// `group_commit` is the sync window: every `group_commit`-th append issues
/// the durability barrier, so at most `group_commit - 1` trailing batches
/// ride on the page cache at any moment.  `1` means sync-per-batch.
pub(crate) struct WalWriter {
    file: Box<dyn VfsFile>,
    path: PathBuf,
    group_commit: usize,
    unsynced: usize,
}

impl WalWriter {
    /// Creates the segment at `path`, writing (and syncing) the header.
    pub(crate) fn create(vfs: &dyn Vfs, path: &Path, group_commit: usize) -> EngineResult<Self> {
        let mut file = vfs.create(path).map_err(|e| io_err("create", path, e))?;
        let mut header = WireWriter::new();
        header.put_u32(WAL_MAGIC);
        header.put_u32(WAL_VERSION);
        file.append(header.bytes())
            .map_err(|e| io_err("write header of", path, e))?;
        file.sync().map_err(|e| io_err("sync", path, e))?;
        Ok(WalWriter {
            file,
            path: path.to_path_buf(),
            group_commit: group_commit.max(1),
            unsynced: 0,
        })
    }

    /// Appends the record for `snapshot_id`, syncing when the group-commit
    /// window closes.
    pub(crate) fn append(&mut self, snapshot_id: u64, delta: &GraphDelta) -> EngineResult<()> {
        let record = encode_record(snapshot_id, delta);
        self.file
            .append(&record)
            .map_err(|e| io_err("append to", &self.path, e))?;
        self.unsynced += 1;
        if self.unsynced >= self.group_commit {
            self.sync()?;
        }
        Ok(())
    }

    /// Forces the durability barrier regardless of the group-commit window.
    pub(crate) fn sync(&mut self) -> EngineResult<()> {
        if self.unsynced > 0 {
            self.file
                .sync()
                .map_err(|e| io_err("sync", &self.path, e))?;
            self.unsynced = 0;
        }
        Ok(())
    }
}

/// One parsed segment: the records of its valid prefix, plus how the tail
/// looked.
#[derive(Debug)]
pub(crate) struct SegmentScan {
    /// `(snapshot_id, delta)` per valid record, in file order.
    pub(crate) records: Vec<(u64, GraphDelta)>,
    /// `true` when trailing bytes after the last valid record were dropped
    /// (torn or corrupt tail).
    pub(crate) torn: bool,
}

/// Parses segment `bytes`.
///
/// A short or absent header on a non-empty... any file shorter than the
/// 8-byte header is treated as a torn creation (no records, torn tail); a
/// *complete* header with the wrong magic or version is a loud error.
pub(crate) fn scan_segment(path: &Path, bytes: &[u8]) -> EngineResult<SegmentScan> {
    if bytes.len() < 8 {
        return Ok(SegmentScan {
            records: Vec::new(),
            torn: !bytes.is_empty(),
        });
    }
    let magic = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    let version = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    if magic != WAL_MAGIC {
        return Err(EngineError::Persistence(format!(
            "{} is not a WAL segment (bad magic {magic:#010x})",
            path.display()
        )));
    }
    if version != WAL_VERSION {
        return Err(EngineError::Persistence(format!(
            "{} has WAL format version {version}, this build reads only {WAL_VERSION}",
            path.display()
        )));
    }
    let mut records = Vec::new();
    let mut pos = 8usize;
    loop {
        let remaining = bytes.len() - pos;
        if remaining == 0 {
            return Ok(SegmentScan {
                records,
                torn: false,
            });
        }
        if remaining < 8 {
            break; // torn frame header
        }
        let len = u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]])
            as usize;
        let crc = u32::from_le_bytes([
            bytes[pos + 4],
            bytes[pos + 5],
            bytes[pos + 6],
            bytes[pos + 7],
        ]);
        if remaining - 8 < len {
            break; // torn payload
        }
        let payload = &bytes[pos + 8..pos + 8 + len];
        if crc32(payload) != crc {
            break; // corrupt payload (or torn frame that happened to parse)
        }
        let mut reader = clude_graph::WireReader::new(payload);
        let Ok(snapshot_id) = reader.get_u64() else {
            break;
        };
        let Ok(delta) = wire::decode_delta(&mut reader) else {
            break;
        };
        if !reader.is_exhausted() {
            break; // trailing junk inside a checksummed frame: corrupt
        }
        records.push((snapshot_id, delta));
        pos += 8 + len;
    }
    Ok(SegmentScan {
        records,
        torn: true,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::FailpointFs;

    fn delta(inserts: &[(usize, usize)]) -> GraphDelta {
        let mut d = GraphDelta::empty();
        for &(u, v) in inserts {
            d.added.push((u, v));
        }
        d
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn segment_names_round_trip() {
        assert_eq!(segment_name(42), "wal-42.log");
        assert_eq!(segment_first_id(Path::new("/x/wal-42.log")), Some(42));
        assert_eq!(segment_first_id(Path::new("/x/gen-42.ckpt")), None);
        assert_eq!(segment_first_id(Path::new("/x/wal-x.log")), None);
    }

    #[test]
    fn write_then_scan_round_trips() {
        let fs = FailpointFs::new();
        let path = Path::new("/w/wal-1.log");
        let mut w = WalWriter::create(&fs, path, 1).unwrap();
        w.append(1, &delta(&[(0, 1)])).unwrap();
        w.append(2, &delta(&[(1, 2), (2, 0)])).unwrap();
        let scan = scan_segment(path, &fs.read(path).unwrap()).unwrap();
        assert!(!scan.torn);
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.records[0].0, 1);
        assert_eq!(scan.records[1].1.added, vec![(1, 2), (2, 0)]);
    }

    #[test]
    fn torn_tail_is_dropped_not_fatal() {
        let fs = FailpointFs::new();
        let path = Path::new("/w/wal-1.log");
        let mut w = WalWriter::create(&fs, path, 1).unwrap();
        w.append(1, &delta(&[(0, 1)])).unwrap();
        w.append(2, &delta(&[(1, 2)])).unwrap();
        fs.corrupt(path, |b| {
            let cut = b.len() - 3;
            b.truncate(cut);
        });
        let scan = scan_segment(path, &fs.read(path).unwrap()).unwrap();
        assert!(scan.torn);
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.records[0].0, 1);
    }

    #[test]
    fn bit_flip_in_payload_is_detected_by_crc() {
        let fs = FailpointFs::new();
        let path = Path::new("/w/wal-1.log");
        let mut w = WalWriter::create(&fs, path, 1).unwrap();
        w.append(1, &delta(&[(0, 1)])).unwrap();
        fs.corrupt(path, |b| {
            let last = b.len() - 1;
            b[last] ^= 0x40;
        });
        let scan = scan_segment(path, &fs.read(path).unwrap()).unwrap();
        assert!(scan.torn);
        assert!(scan.records.is_empty());
    }

    #[test]
    fn wrong_version_fails_loudly() {
        let fs = FailpointFs::new();
        let path = Path::new("/w/wal-1.log");
        WalWriter::create(&fs, path, 1).unwrap();
        fs.corrupt(path, |b| b[4] = 99);
        let err = scan_segment(path, &fs.read(path).unwrap()).unwrap_err();
        assert!(err.to_string().contains("version 99"));
        // Bad magic likewise.
        fs.corrupt(path, |b| {
            b[4] = 1;
            b[0] = b'X';
        });
        let err = scan_segment(path, &fs.read(path).unwrap()).unwrap_err();
        assert!(err.to_string().contains("bad magic"));
    }

    #[test]
    fn group_commit_window_batches_syncs() {
        // Indirect check: with group_commit = 3 the writer stays consistent
        // and syncs on demand without error.
        let fs = FailpointFs::new();
        let path = Path::new("/w/wal-1.log");
        let mut w = WalWriter::create(&fs, path, 3).unwrap();
        for id in 1..=7 {
            w.append(id, &delta(&[(0, 1)])).unwrap();
        }
        w.sync().unwrap();
        let scan = scan_segment(path, &fs.read(path).unwrap()).unwrap();
        assert_eq!(scan.records.len(), 7);
    }

    #[test]
    fn golden_record_bytes_are_pinned() {
        // The exact bytes of a one-edge record at snapshot 3: freezing the
        // frame layout (len, crc, payload) and the wire layout of a delta.
        let bytes = encode_record(3, &delta(&[(1, 2)]));
        let expected: Vec<u8> = vec![
            0x28, 0x00, 0x00, 0x00, // payload length = 40
            0xD7, 0xC8, 0x0F, 0x34, // crc32(payload)
            0x03, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // snapshot id 3
            0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // 1 added edge
            0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // u = 1
            0x02, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // v = 2
            0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // 0 removed edges
        ];
        assert_eq!(bytes, expected);
        // And the pinned bytes decode back to the same record.
        let scan = {
            let mut file = Vec::new();
            file.extend_from_slice(&WAL_MAGIC.to_le_bytes());
            file.extend_from_slice(&WAL_VERSION.to_le_bytes());
            file.extend_from_slice(&expected);
            scan_segment(Path::new("/golden"), &file).unwrap()
        };
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.records[0].0, 3);
        assert_eq!(scan.records[0].1.added, vec![(1, 2)]);
        assert!(scan.records[0].1.removed.is_empty());
    }
}
