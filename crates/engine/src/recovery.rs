//! Recovery: newest valid checkpoint + WAL replay.
//!
//! Opening a durable engine walks this state machine:
//!
//! 1. **Manifest scan** — parse `MANIFEST`, truncating a torn tail (and
//!    repairing the file so later appends land after valid bytes).  No
//!    records → cold start.
//! 2. **Checkpoint restore** — walk manifest records newest → oldest; the
//!    first whose referenced generation files all validate (magic, version,
//!    checksum, decode) wins.  Checksum/decode failures fall back to the
//!    previous record; a magic/version mismatch aborts loudly (that spool
//!    was written by an incompatible build, silently regressing to an old
//!    generation would be worse than stopping).
//! 3. **WAL replay** — scan all segments, keep each one's valid prefix,
//!    order records by snapshot id and replay the contiguous run
//!    `S+1, S+2, …` on top of the restored store.  Torn/corrupt tails and
//!    post-gap records are dropped and *counted*, never silently absorbed.
//! 4. **Re-anchor** — the caller writes a fresh full checkpoint so the next
//!    crash replays only new work and stale files can be collected.

use clude_graph::GraphDelta;
use std::path::Path;

use crate::checkpoint::{
    assemble_store_state, parse_manifest, GenReadError, StoreState, MANIFEST_NAME,
};
use crate::error::{EngineError, EngineResult};
use crate::vfs::Vfs;
use crate::wal::{io_err, scan_segment, segment_first_id};

/// What [`crate::CludeEngine::open_durable`] found and did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Snapshot id of the checkpoint the store was restored from (`None` on
    /// cold start).
    pub checkpoint_snapshot: Option<u64>,
    /// Generation number of that checkpoint.
    pub checkpoint_gen: Option<u64>,
    /// WAL records replayed on top of the checkpoint.
    pub wal_records_replayed: u64,
    /// Lower bound on records dropped from torn/corrupt WAL tails (at least
    /// this many; bytes past the first invalid record are unparseable, so
    /// their record count is unknowable).
    pub wal_records_truncated: u64,
    /// The snapshot id the engine resumed at (`None` on cold start).
    pub recovered_snapshot: Option<u64>,
}

/// The loadable checkpoint image plus the highest committed generation
/// number (the bootstrap after recovery numbers its fresh generation above
/// it).
pub(crate) struct LoadedCheckpoint {
    pub(crate) state: StoreState,
    pub(crate) gen: u64,
    pub(crate) max_committed_gen: u64,
}

/// Restores the newest loadable checkpoint, or `None` when the spool has no
/// committed manifest record (cold start).
pub(crate) fn load_checkpoint(vfs: &dyn Vfs, dir: &Path) -> EngineResult<Option<LoadedCheckpoint>> {
    let path = dir.join(MANIFEST_NAME);
    if !vfs.exists(&path) {
        return Ok(None);
    }
    let bytes = vfs.read(&path).map_err(|e| io_err("read", &path, e))?;
    let (records, valid_len) = parse_manifest(&path, &bytes)?;
    if valid_len < bytes.len() {
        // Rewrite the valid prefix so future appends land after valid bytes,
        // not after a torn frame that would hide them from every reader.
        let mut file = vfs.create(&path).map_err(|e| io_err("repair", &path, e))?;
        file.append(&bytes[..valid_len])
            .map_err(|e| io_err("repair", &path, e))?;
        file.sync().map_err(|e| io_err("sync", &path, e))?;
    }
    if records.is_empty() {
        // A manifest header with no committed record: the very first
        // checkpoint crashed before its commit point.  Nothing was ever
        // durable, so this is a cold start.
        return Ok(None);
    }
    let max_committed_gen = records.iter().map(|r| r.gen).max().unwrap_or(0);
    let mut failures: Vec<String> = Vec::new();
    for record in records.iter().rev() {
        match assemble_store_state(vfs, dir, record) {
            Ok(state) => {
                return Ok(Some(LoadedCheckpoint {
                    state,
                    gen: record.gen,
                    max_committed_gen,
                }))
            }
            Err(GenReadError::Hard(e)) => return Err(e),
            Err(GenReadError::Soft(msg)) => {
                failures.push(format!("generation {}: {msg}", record.gen))
            }
        }
    }
    Err(EngineError::Persistence(format!(
        "no loadable checkpoint generation in {} ({})",
        dir.display(),
        failures.join("; ")
    )))
}

/// The replayable WAL suffix: the contiguous records after `after`, plus a
/// lower bound on what was dropped.
pub(crate) struct WalReplay {
    /// `(snapshot_id, delta)` in replay order, ids `after+1, after+2, …`.
    pub(crate) records: Vec<(u64, GraphDelta)>,
    /// Records dropped: one per torn segment tail, plus every parsed record
    /// made unreachable by a gap in the id sequence.
    pub(crate) dropped: u64,
}

/// Scans every WAL segment in `dir` and assembles the replayable suffix for
/// a checkpoint at snapshot `after`.
pub(crate) fn read_wal(vfs: &dyn Vfs, dir: &Path, after: u64) -> EngineResult<WalReplay> {
    let mut segments: Vec<(u64, std::path::PathBuf)> = vfs
        .list(dir)
        .map_err(|e| io_err("list", dir, e))?
        .into_iter()
        .filter_map(|p| segment_first_id(&p).map(|id| (id, p)))
        .collect();
    segments.sort();
    let mut parsed: Vec<(u64, GraphDelta)> = Vec::new();
    let mut dropped = 0u64;
    for (_, path) in &segments {
        let bytes = vfs.read(path).map_err(|e| io_err("read", path, e))?;
        let scan = scan_segment(path, &bytes)?;
        if scan.torn {
            dropped += 1;
        }
        parsed.extend(scan.records);
    }
    let mut records = Vec::new();
    let mut expected = after + 1;
    for (id, delta) in parsed {
        if id <= after {
            continue; // covered by the checkpoint
        }
        if id == expected {
            records.push((id, delta));
            expected += 1;
        } else {
            // A gap (a lost segment or torn middle) makes everything later
            // unreachable: replaying it would skip states.
            dropped += 1;
        }
    }
    Ok(WalReplay { records, dropped })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::FailpointFs;
    use crate::wal::WalWriter;
    use std::path::PathBuf;

    fn delta(u: usize, v: usize) -> GraphDelta {
        GraphDelta {
            added: vec![(u, v)],
            removed: Vec::new(),
        }
    }

    #[test]
    fn replay_spans_segments_and_skips_covered_ids() {
        let fs = FailpointFs::new();
        let dir = PathBuf::from("/spool");
        let mut w1 = WalWriter::create(&fs, &dir.join("wal-1.log"), 1).unwrap();
        for id in 1..=3 {
            w1.append(id, &delta(0, id as usize)).unwrap();
        }
        let mut w2 = WalWriter::create(&fs, &dir.join("wal-4.log"), 1).unwrap();
        for id in 4..=5 {
            w2.append(id, &delta(1, id as usize)).unwrap();
        }
        let replay = read_wal(&fs, &dir, 2).unwrap();
        assert_eq!(replay.dropped, 0);
        let ids: Vec<u64> = replay.records.iter().map(|r| r.0).collect();
        assert_eq!(ids, vec![3, 4, 5]);
    }

    #[test]
    fn gap_drops_unreachable_records() {
        let fs = FailpointFs::new();
        let dir = PathBuf::from("/spool");
        let mut w1 = WalWriter::create(&fs, &dir.join("wal-1.log"), 1).unwrap();
        w1.append(1, &delta(0, 1)).unwrap();
        // Segment wal-3.log exists but record 2 was never durable.
        let mut w2 = WalWriter::create(&fs, &dir.join("wal-3.log"), 1).unwrap();
        w2.append(3, &delta(0, 2)).unwrap();
        w2.append(4, &delta(0, 3)).unwrap();
        let replay = read_wal(&fs, &dir, 0).unwrap();
        let ids: Vec<u64> = replay.records.iter().map(|r| r.0).collect();
        assert_eq!(ids, vec![1]);
        assert_eq!(replay.dropped, 2);
    }

    #[test]
    fn missing_manifest_is_a_cold_start() {
        let fs = FailpointFs::new();
        assert!(load_checkpoint(&fs, Path::new("/spool")).unwrap().is_none());
    }
}
