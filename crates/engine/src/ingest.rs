//! Edge-delta ingestion and batch coalescing.
//!
//! The engine accepts single edge insertions/deletions and coalesces them
//! into [`GraphDelta`] batches before touching the factors: Bennett updates
//! amortise much better over a batch (one matrix delta, one sweep per
//! changed column) than per edge, and opposite operations on the same edge
//! cancel without ever reaching the numeric layer.
//!
//! A batch is cut when either bound of the [`BatchPolicy`] trips:
//!
//! * `max_ops` — the number of net pending changes, or
//! * `min_similarity` — the paper's snapshot-similarity threshold
//!   (Definition 6 restricted to edge sets): once the pending batch would
//!   drag the next snapshot's similarity to the current one below the
//!   threshold, the batch is applied so snapshots stay paper-plausibly
//!   close to each other.

use crate::error::{EngineError, EngineResult};
use clude_graph::{DiGraph, GraphDelta};
use clude_telemetry::{Stage, TelemetryRegistry};
use std::collections::BTreeSet;
use std::sync::Arc;

/// A single streamed edge operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeOp {
    /// Insert the directed edge `(from, to)`.
    Insert(usize, usize),
    /// Remove the directed edge `(from, to)`.
    Remove(usize, usize),
}

impl EdgeOp {
    /// The edge endpoints.
    pub fn edge(&self) -> (usize, usize) {
        match *self {
            EdgeOp::Insert(u, v) | EdgeOp::Remove(u, v) => (u, v),
        }
    }
}

/// When to cut a pending batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchPolicy {
    /// Apply the batch once this many net edge changes are pending.
    pub max_ops: usize,
    /// Apply the batch once the would-be next snapshot's edge-set similarity
    /// to the current snapshot drops below this threshold (`None` disables
    /// the similarity trigger).
    pub min_similarity: Option<f64>,
}

impl Default for BatchPolicy {
    /// 64 changes per batch, no similarity trigger.
    fn default() -> Self {
        BatchPolicy {
            max_ops: 64,
            min_similarity: None,
        }
    }
}

impl BatchPolicy {
    /// A policy flushing every `max_ops` changes.
    pub fn by_count(max_ops: usize) -> Self {
        assert!(max_ops > 0, "batch size must be positive");
        BatchPolicy {
            max_ops,
            min_similarity: None,
        }
    }

    /// A policy additionally flushing when similarity falls below `alpha`
    /// (the paper's clustering threshold, reused as a batch bound).
    pub fn by_similarity(max_ops: usize, alpha: f64) -> Self {
        assert!(max_ops > 0, "batch size must be positive");
        assert!(
            (0.0..=1.0).contains(&alpha),
            "similarity must lie in [0, 1]"
        );
        BatchPolicy {
            max_ops,
            min_similarity: Some(alpha),
        }
    }
}

/// What [`DeltaIngestor::offer`] decided about one edge operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IngestOutcome {
    /// The operation is pending in the current batch.
    Buffered,
    /// The operation was a no-op (inserting a present edge, removing an
    /// absent one) or cancelled a pending opposite operation.
    Coalesced,
    /// The operation completed a batch; apply this delta to advance.
    Flush(GraphDelta),
}

/// Accepts single edge operations and coalesces them into [`GraphDelta`]
/// batches.
///
/// The ingestor tracks the *current* snapshot's edge set through the graph
/// reference passed to [`offer`](DeltaIngestor::offer) and keeps its own
/// pending add/remove sets; the batch counter advances only when a batch is
/// cut.
///
/// The cancellation rules are the same as [`GraphDelta::merge`]'s, applied
/// incrementally: `merge` composes two finished deltas in one pass, while
/// the ingestor pays `O(log pending)` per streamed operation (and also
/// drops no-ops against the live graph, which `merge` cannot see).  A
/// change to the cancellation semantics must keep the two in agreement.
#[derive(Debug, Clone)]
pub struct DeltaIngestor {
    policy: BatchPolicy,
    pending_adds: BTreeSet<(usize, usize)>,
    pending_removes: BTreeSet<(usize, usize)>,
    batches_cut: u64,
    telemetry: Arc<TelemetryRegistry>,
}

impl DeltaIngestor {
    /// A fresh ingestor with the given batch policy.
    pub fn new(policy: BatchPolicy) -> Self {
        DeltaIngestor {
            policy,
            pending_adds: BTreeSet::new(),
            pending_removes: BTreeSet::new(),
            batches_cut: 0,
            telemetry: Arc::new(TelemetryRegistry::disabled()),
        }
    }

    /// Attaches a telemetry registry; [`offer`](DeltaIngestor::offer) then
    /// records an `ingest.merge` span per coalescing step.
    pub fn with_telemetry(mut self, telemetry: Arc<TelemetryRegistry>) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Number of net pending edge changes.
    pub fn pending_ops(&self) -> usize {
        self.pending_adds.len() + self.pending_removes.len()
    }

    /// Number of batches cut so far.
    pub fn batches_cut(&self) -> u64 {
        self.batches_cut
    }

    /// The batch policy in force.
    pub fn policy(&self) -> BatchPolicy {
        self.policy
    }

    /// Edge-set similarity between the current snapshot and the snapshot the
    /// pending batch would produce: `|E ∩ E'| / |E ∪ E'|`.
    pub fn pending_similarity(&self, graph: &DiGraph) -> f64 {
        let base = graph.n_edges();
        let common = base - self.pending_removes.len();
        let union = base + self.pending_adds.len();
        if union == 0 {
            1.0
        } else {
            common as f64 / union as f64
        }
    }

    /// Offers one edge operation against the current snapshot `graph`.
    ///
    /// Returns [`IngestOutcome::Flush`] with the coalesced batch when the
    /// operation trips the batch policy; the caller must then apply the
    /// delta and advance the snapshot before offering further operations.
    pub fn offer(&mut self, op: EdgeOp, graph: &DiGraph) -> EngineResult<IngestOutcome> {
        // An owned handle so the span outlives `&mut self` uses below.
        let telemetry = Arc::clone(&self.telemetry);
        let _span = telemetry.span(Stage::IngestMerge);
        let (u, v) = op.edge();
        let n = graph.n_nodes();
        if u >= n || v >= n {
            return Err(EngineError::NodeOutOfRange {
                node: u.max(v),
                n_nodes: n,
            });
        }
        // Short-circuit order matters: the opposite-set `remove` (the
        // cancellation) must always run first, and the pending-set `insert`
        // only when the edge state actually changes.
        let buffered = match op {
            EdgeOp::Insert(..) => {
                !self.pending_removes.remove(&(u, v))
                    && !graph.has_edge(u, v)
                    && self.pending_adds.insert((u, v))
            }
            EdgeOp::Remove(..) => {
                !self.pending_adds.remove(&(u, v))
                    && graph.has_edge(u, v)
                    && self.pending_removes.insert((u, v))
            }
        };
        if !buffered {
            return Ok(IngestOutcome::Coalesced);
        }
        let over_count = self.pending_ops() >= self.policy.max_ops;
        let under_similarity = self
            .policy
            .min_similarity
            .is_some_and(|alpha| self.pending_similarity(graph) < alpha);
        if over_count || under_similarity {
            return Ok(IngestOutcome::Flush(self.take_batch()));
        }
        Ok(IngestOutcome::Buffered)
    }

    /// Cuts the current batch unconditionally; `None` when nothing pends.
    pub fn flush(&mut self) -> Option<GraphDelta> {
        if self.pending_ops() == 0 {
            None
        } else {
            Some(self.take_batch())
        }
    }

    fn take_batch(&mut self) -> GraphDelta {
        self.batches_cut += 1;
        GraphDelta {
            added: std::mem::take(&mut self.pending_adds).into_iter().collect(),
            removed: std::mem::take(&mut self.pending_removes)
                .into_iter()
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> DiGraph {
        DiGraph::from_edges(5, vec![(0, 1), (1, 2), (2, 3)])
    }

    #[test]
    fn count_policy_cuts_batches() {
        let g = chain();
        let mut ing = DeltaIngestor::new(BatchPolicy::by_count(2));
        assert_eq!(
            ing.offer(EdgeOp::Insert(3, 4), &g).unwrap(),
            IngestOutcome::Buffered
        );
        match ing.offer(EdgeOp::Remove(0, 1), &g).unwrap() {
            IngestOutcome::Flush(d) => {
                assert_eq!(d.added, vec![(3, 4)]);
                assert_eq!(d.removed, vec![(0, 1)]);
            }
            other => panic!("expected flush, got {other:?}"),
        }
        assert_eq!(ing.pending_ops(), 0);
        assert_eq!(ing.batches_cut(), 1);
    }

    #[test]
    fn opposite_operations_cancel() {
        let g = chain();
        let mut ing = DeltaIngestor::new(BatchPolicy::by_count(10));
        assert_eq!(
            ing.offer(EdgeOp::Insert(3, 4), &g).unwrap(),
            IngestOutcome::Buffered
        );
        // Removing the just-buffered addition cancels it.
        assert_eq!(
            ing.offer(EdgeOp::Remove(3, 4), &g).unwrap(),
            IngestOutcome::Coalesced
        );
        assert_eq!(ing.pending_ops(), 0);
        // And the same the other way around for a present edge.
        assert_eq!(
            ing.offer(EdgeOp::Remove(1, 2), &g).unwrap(),
            IngestOutcome::Buffered
        );
        assert_eq!(
            ing.offer(EdgeOp::Insert(1, 2), &g).unwrap(),
            IngestOutcome::Coalesced
        );
        assert_eq!(ing.pending_ops(), 0);
        assert!(ing.flush().is_none());
    }

    #[test]
    fn noop_operations_are_coalesced() {
        let g = chain();
        let mut ing = DeltaIngestor::new(BatchPolicy::by_count(10));
        // Edge already present.
        assert_eq!(
            ing.offer(EdgeOp::Insert(0, 1), &g).unwrap(),
            IngestOutcome::Coalesced
        );
        // Edge absent.
        assert_eq!(
            ing.offer(EdgeOp::Remove(4, 0), &g).unwrap(),
            IngestOutcome::Coalesced
        );
        // Duplicate pending addition.
        assert_eq!(
            ing.offer(EdgeOp::Insert(3, 4), &g).unwrap(),
            IngestOutcome::Buffered
        );
        assert_eq!(
            ing.offer(EdgeOp::Insert(3, 4), &g).unwrap(),
            IngestOutcome::Coalesced
        );
        assert_eq!(ing.pending_ops(), 1);
    }

    #[test]
    fn similarity_policy_cuts_early() {
        let g = chain(); // 3 edges
        let mut ing = DeltaIngestor::new(BatchPolicy::by_similarity(100, 0.75));
        // One addition: similarity 3/4 = 0.75, not yet below threshold.
        assert_eq!(
            ing.offer(EdgeOp::Insert(3, 4), &g).unwrap(),
            IngestOutcome::Buffered
        );
        // Second addition: similarity 3/5 = 0.6 < 0.75 -> flush.
        match ing.offer(EdgeOp::Insert(4, 0), &g).unwrap() {
            IngestOutcome::Flush(d) => assert_eq!(d.added.len(), 2),
            other => panic!("expected flush, got {other:?}"),
        }
    }

    #[test]
    fn pending_similarity_counts_both_directions() {
        let g = chain(); // 3 edges
        let mut ing = DeltaIngestor::new(BatchPolicy::by_count(100));
        ing.offer(EdgeOp::Insert(3, 4), &g).unwrap();
        ing.offer(EdgeOp::Remove(0, 1), &g).unwrap();
        // common = 3 - 1 = 2, union = 3 + 1 = 4.
        assert!((ing.pending_similarity(&g) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn out_of_range_nodes_are_rejected() {
        let g = chain();
        let mut ing = DeltaIngestor::new(BatchPolicy::default());
        assert!(matches!(
            ing.offer(EdgeOp::Insert(0, 9), &g),
            Err(EngineError::NodeOutOfRange { node: 9, .. })
        ));
    }

    #[test]
    fn forced_flush_drains_pending() {
        let g = chain();
        let mut ing = DeltaIngestor::new(BatchPolicy::by_count(100));
        ing.offer(EdgeOp::Insert(3, 4), &g).unwrap();
        ing.offer(EdgeOp::Remove(2, 3), &g).unwrap();
        let d = ing.flush().expect("pending batch");
        assert_eq!(d.added, vec![(3, 4)]);
        assert_eq!(d.removed, vec![(2, 3)]);
        assert_eq!(ing.pending_ops(), 0);
        assert_eq!(ing.batches_cut(), 1);
    }
}
