//! Fixture tests: every pass proves it (a) catches a seeded violation,
//! (b) honors a reasoned waiver, (c) exempts `#[cfg(test)]` code, and
//! (d) is not fooled by `unwrap()` spelled inside strings or comments —
//! plus a meta-test asserting the real workspace lints clean.
//!
//! Fixtures are in-memory [`SourceFile`]s fed straight to [`run_passes`];
//! they live inside string literals, which the lexer of the *real* workspace
//! walk sees as opaque `Str` tokens — seeding a violation here cannot trip
//! the gate on this repository itself.

use clude_lint::diag::Severity;
use clude_lint::{run_passes, LintReport, SourceFile};

/// Lints a set of `(path, source)` fixtures.
fn lint(files: &[(&str, &str)]) -> LintReport {
    let files: Vec<SourceFile> = files
        .iter()
        .map(|(p, s)| SourceFile {
            path: (*p).to_string(),
            source: (*s).to_string(),
        })
        .collect();
    run_passes(&files)
}

/// The number of findings of one lint in the report.
fn count(report: &LintReport, lint: &str) -> usize {
    report.diagnostics.iter().filter(|d| d.lint == lint).count()
}

// ---------------------------------------------------------------- panic-surface

#[test]
fn panic_surface_catches_unwrap_in_hot_path_module() {
    let report = lint(&[(
        "crates/lu/src/bennett.rs",
        "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n",
    )]);
    assert_eq!(count(&report, "panic-surface"), 1);
    assert!(report.has_denials());
    assert_eq!(report.diagnostics[0].line, 2);
}

#[test]
fn panic_surface_catches_panic_macros() {
    let report = lint(&[(
        "crates/engine/src/store.rs",
        "pub fn f() {\n    panic!(\"boom\");\n}\npub fn g() {\n    todo!()\n}\n",
    )]);
    assert_eq!(count(&report, "panic-surface"), 2);
}

#[test]
fn panic_surface_ignores_modules_off_the_hot_path() {
    let report = lint(&[(
        "crates/graph/src/egs.rs",
        "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n",
    )]);
    assert_eq!(count(&report, "panic-surface"), 0);
}

#[test]
fn panic_surface_honors_a_reasoned_waiver() {
    let report = lint(&[(
        "crates/lu/src/bennett.rs",
        "pub fn f(x: Option<u32>) -> u32 {\n    \
         // lint: allow(panic-surface) — x is Some by the caller's loop invariant\n    \
         x.unwrap()\n}\n",
    )]);
    assert_eq!(count(&report, "panic-surface"), 0);
    assert_eq!(report.suppressed, 1);
    assert_eq!(report.waivers_used, 1);
}

#[test]
fn panic_surface_exempts_cfg_test_code() {
    let report = lint(&[(
        "crates/lu/src/bennett.rs",
        "pub fn live() {}\n\
         #[cfg(test)]\n\
         mod tests {\n    \
         #[test]\n    \
         fn t() {\n        Some(1).unwrap();\n    }\n\
         }\n",
    )]);
    assert_eq!(count(&report, "panic-surface"), 0);
}

#[test]
fn panic_surface_ignores_unwrap_in_strings_and_comments() {
    let report = lint(&[(
        "crates/lu/src/bennett.rs",
        "pub fn f() -> &'static str {\n    \
         // the caller used to x.unwrap() here; see the docs\n    \
         \"please don't .unwrap() this\"\n}\n",
    )]);
    assert_eq!(count(&report, "panic-surface"), 0);
}

// -------------------------------------------------------------- atomic-ordering

#[test]
fn atomic_ordering_catches_relaxed_and_seqcst() {
    let report = lint(&[(
        "crates/engine/src/counters.rs",
        "pub fn f(a: &std::sync::atomic::AtomicU64) -> u64 {\n    \
         a.fetch_add(1, std::sync::atomic::Ordering::SeqCst);\n    \
         a.load(std::sync::atomic::Ordering::Relaxed)\n}\n",
    )]);
    assert_eq!(count(&report, "atomic-ordering"), 2);
}

#[test]
fn atomic_ordering_leaves_acquire_release_alone() {
    let report = lint(&[(
        "crates/engine/src/counters.rs",
        "pub fn f(a: &std::sync::atomic::AtomicU64) -> u64 {\n    \
         a.store(1, std::sync::atomic::Ordering::Release);\n    \
         a.load(std::sync::atomic::Ordering::Acquire)\n}\n",
    )]);
    assert_eq!(count(&report, "atomic-ordering"), 0);
}

#[test]
fn atomic_ordering_is_not_fooled_by_cmp_ordering() {
    let report = lint(&[(
        "crates/engine/src/counters.rs",
        "pub fn f(a: u32, b: u32) -> std::cmp::Ordering {\n    \
         a.cmp(&b)\n}\n\
         pub fn g() -> std::cmp::Ordering {\n    \
         std::cmp::Ordering::Less\n}\n",
    )]);
    assert_eq!(count(&report, "atomic-ordering"), 0);
}

#[test]
fn atomic_ordering_flags_bare_imported_names_but_not_the_import() {
    let report = lint(&[(
        "crates/engine/src/counters.rs",
        "use std::sync::atomic::{AtomicU64, Ordering::Relaxed};\n\
         pub fn f(a: &AtomicU64) -> u64 {\n    \
         a.load(Relaxed)\n}\n",
    )]);
    assert_eq!(count(&report, "atomic-ordering"), 1);
    assert_eq!(report.diagnostics[0].line, 3);
}

#[test]
fn atomic_ordering_exempts_histogram_internals() {
    let report = lint(&[(
        "crates/telemetry/src/hist.rs",
        "pub fn f(a: &std::sync::atomic::AtomicU64) -> u64 {\n    \
         a.load(std::sync::atomic::Ordering::Relaxed)\n}\n",
    )]);
    assert_eq!(count(&report, "atomic-ordering"), 0);
}

#[test]
fn atomic_ordering_honors_a_reasoned_waiver() {
    let report = lint(&[(
        "crates/engine/src/counters.rs",
        "pub fn f(a: &std::sync::atomic::AtomicU64) -> u64 {\n    \
         // lint: allow(atomic-ordering) — independent monotonic tally, never ordered\n    \
         a.load(std::sync::atomic::Ordering::Relaxed)\n}\n",
    )]);
    assert_eq!(count(&report, "atomic-ordering"), 0);
    assert_eq!(report.waivers_used, 1);
}

// -------------------------------------------------------------- alloc-hot-path

#[test]
fn alloc_pass_is_opt_in_via_the_header() {
    let src = "pub fn f(n: usize) -> Vec<f64> {\n    vec![0.0; n]\n}\n";
    let silent = lint(&[("crates/lu/src/dense.rs", src)]);
    assert_eq!(count(&silent, "alloc-hot-path"), 0);

    let opted = format!("// lint: hot-path\n{src}");
    let loud = lint(&[("crates/lu/src/dense.rs", &opted)]);
    assert_eq!(count(&loud, "alloc-hot-path"), 1);
}

#[test]
fn alloc_pass_catches_every_constructor_shape() {
    let report = lint(&[(
        "crates/lu/src/dense.rs",
        "// lint: hot-path\n\
         pub fn f(n: usize, xs: &[f64]) {\n    \
         let a: Vec<f64> = Vec::new();\n    \
         let b = Vec::<f64>::with_capacity(n);\n    \
         let c = Box::new(4usize);\n    \
         let d = xs.to_vec();\n    \
         let e = xs.iter().copied().collect::<Vec<f64>>();\n    \
         let _ = (a, b, c, d, e);\n}\n",
    )]);
    assert_eq!(count(&report, "alloc-hot-path"), 5);
}

#[test]
fn alloc_pass_exempts_cfg_test_and_honors_waivers() {
    let report = lint(&[(
        "crates/lu/src/dense.rs",
        "// lint: hot-path\n\
         pub fn setup(n: usize) -> Vec<f64> {\n    \
         // lint: allow(alloc-hot-path) — constructor pre-sizing on the setup path\n    \
         vec![0.0; n]\n}\n\
         #[cfg(test)]\n\
         mod tests {\n    \
         fn t() {\n        let _ = vec![1];\n    }\n\
         }\n",
    )]);
    assert_eq!(count(&report, "alloc-hot-path"), 0);
    assert_eq!(report.suppressed, 1);
}

// ------------------------------------------------------------- lock-discipline

#[test]
fn lock_discipline_catches_a_second_lock_under_a_live_guard() {
    let report = lint(&[(
        "crates/graph/src/locks.rs",
        "pub fn f(&self) {\n    \
         let a = self.m.lock();\n    \
         let b = self.n.lock();\n    \
         let _ = (a, b);\n}\n",
    )]);
    assert_eq!(count(&report, "lock-discipline"), 1);
    assert_eq!(report.diagnostics[0].line, 3);
}

#[test]
fn lock_discipline_respects_drop_and_scope_release() {
    let report = lint(&[(
        "crates/graph/src/locks.rs",
        "pub fn dropped(&self) {\n    \
         let a = self.m.lock();\n    \
         drop(a);\n    \
         let b = self.n.lock();\n    \
         let _ = b;\n}\n\
         pub fn scoped(&self) {\n    \
         {\n        let a = self.m.lock();\n        let _ = a;\n    }\n    \
         let b = self.n.lock();\n    \
         let _ = b;\n}\n",
    )]);
    assert_eq!(count(&report, "lock-discipline"), 0);
}

#[test]
fn lock_discipline_sees_through_same_file_calls() {
    let report = lint(&[(
        "crates/graph/src/locks.rs",
        "fn helper(&self) {\n    \
         let g = self.n.write();\n    \
         let _ = g;\n}\n\
         pub fn f(&self) {\n    \
         let a = self.m.lock();\n    \
         self.helper();\n    \
         let _ = a;\n}\n",
    )]);
    assert_eq!(count(&report, "lock-discipline"), 1);
    assert_eq!(report.diagnostics[0].line, 7);
}

#[test]
fn lock_discipline_honors_the_documented_nesting_waiver() {
    let report = lint(&[(
        "crates/graph/src/locks.rs",
        "pub fn f(&self) {\n    \
         let a = self.m.lock();\n    \
         // lint: allow(lock-discipline) — documented order: ingest first, ring second\n    \
         let b = self.ring.write();\n    \
         let _ = (a, b);\n}\n",
    )]);
    assert_eq!(count(&report, "lock-discipline"), 0);
    assert_eq!(report.waivers_used, 1);
}

#[test]
fn lock_discipline_exempts_test_targets() {
    let report = lint(&[(
        "crates/graph/tests/locking.rs",
        "pub fn f(&self) {\n    \
         let a = self.m.lock();\n    \
         let b = self.n.lock();\n    \
         let _ = (a, b);\n}\n",
    )]);
    assert_eq!(count(&report, "lock-discipline"), 0);
}

// ---------------------------------------------------------- telemetry-coverage

#[test]
fn telemetry_coverage_flags_an_uninstrumented_variant() {
    let report = lint(&[
        (
            "crates/telemetry/src/stage.rs",
            "pub enum Stage {\n    IngestApply,\n    QuerySolve,\n}\n",
        ),
        (
            "crates/engine/src/engine.rs",
            "pub fn f(t: &T) {\n    t.span(Stage::IngestApply);\n}\n",
        ),
    ]);
    assert_eq!(count(&report, "telemetry-coverage"), 1);
    assert!(report.diagnostics[0].message.contains("Stage::QuerySolve"));
}

#[test]
fn telemetry_coverage_passes_when_every_variant_is_emitted() {
    let report = lint(&[
        (
            "crates/telemetry/src/stage.rs",
            "pub enum Stage {\n    IngestApply,\n    QuerySolve,\n}\n",
        ),
        (
            "crates/engine/src/engine.rs",
            "pub fn f(t: &T) {\n    t.span(Stage::IngestApply);\n    t.span(Stage::QuerySolve);\n}\n",
        ),
    ]);
    assert_eq!(count(&report, "telemetry-coverage"), 0);
}

#[test]
fn telemetry_coverage_does_not_count_test_only_sites() {
    let report = lint(&[
        (
            "crates/telemetry/src/stage.rs",
            "pub enum Stage {\n    IngestApply,\n}\n",
        ),
        (
            "crates/engine/src/engine.rs",
            "#[cfg(test)]\n\
             mod tests {\n    \
             fn t(t: &T) {\n        t.span(Stage::IngestApply);\n    }\n\
             }\n",
        ),
    ]);
    assert_eq!(count(&report, "telemetry-coverage"), 1);
}

// --------------------------------------------------------------- forbid-unsafe

#[test]
fn forbid_unsafe_requires_the_attribute_at_crate_roots() {
    let report = lint(&[
        ("crates/foo/src/lib.rs", "pub fn f() {}\n"),
        (
            "crates/bar/src/lib.rs",
            "#![forbid(unsafe_code)]\npub fn f() {}\n",
        ),
        ("crates/foo/src/util.rs", "pub fn g() {}\n"),
    ]);
    assert_eq!(count(&report, "forbid-unsafe"), 1);
    assert_eq!(report.diagnostics[0].file, "crates/foo/src/lib.rs");
}

// --------------------------------------------------------------- waiver hygiene

#[test]
fn waiver_without_a_reason_is_a_deny_finding() {
    let report = lint(&[(
        "crates/engine/src/counters.rs",
        "// lint: allow(atomic-ordering)\n\
         pub fn f(a: &std::sync::atomic::AtomicU64) -> u64 {\n    \
         a.load(std::sync::atomic::Ordering::Relaxed)\n}\n",
    )]);
    assert_eq!(count(&report, "waiver-syntax"), 1);
    assert!(report.has_denials());
}

#[test]
fn waiver_naming_an_unknown_lint_is_a_deny_finding() {
    let report = lint(&[(
        "crates/engine/src/counters.rs",
        "// lint: allow(made-up-pass) — this lint does not exist anywhere\n\
         pub fn f() {}\n",
    )]);
    assert_eq!(count(&report, "waiver-syntax"), 1);
    assert!(report.has_denials());
}

#[test]
fn waiver_that_suppresses_nothing_is_a_warn_finding() {
    let report = lint(&[(
        "crates/engine/src/counters.rs",
        "// lint: allow(panic-surface) — nothing here actually panics at all\n\
         pub fn f() {}\n",
    )]);
    assert_eq!(count(&report, "waiver-syntax"), 1);
    assert_eq!(report.diagnostics[0].severity, Severity::Warn);
    assert!(!report.has_denials());
}

// ------------------------------------------------------------------- meta-test

/// The real workspace must lint clean: zero findings of any severity, every
/// waiver used.  This is the same invariant the CI gate enforces.
#[test]
fn the_workspace_itself_lints_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    let report = clude_lint::lint_workspace(&root).expect("workspace walk");
    assert!(
        report.diagnostics.is_empty(),
        "workspace has lint findings:\n{}",
        report
            .diagnostics
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        report.files_scanned > 100,
        "walk looks truncated: {} files",
        report.files_scanned
    );
    assert!(report.waivers_used > 0, "expected waivers in the workspace");
}
