//! A minimal Rust lexer: just enough token structure for line-oriented
//! static analysis.
//!
//! The lexer understands the constructs that make naive text matching wrong —
//! line and (nested) block comments, string/raw-string/char/byte literals,
//! lifetimes vs. char literals, raw identifiers — and hands every pass a
//! token stream in which a `"unwrap()"` inside a string literal can never be
//! mistaken for a call.  It deliberately does *not* build an AST: the passes
//! work on token patterns plus brace depth, which is robust to code that does
//! not parse and keeps the crate dependency-free (no `syn` — the build
//! environment is offline).

/// The token classes the passes distinguish.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `unwrap`, `Ordering`, …).
    Ident,
    /// Raw identifier (`r#match`).
    RawIdent,
    /// Lifetime or loop label (`'a`, `'outer`).
    Lifetime,
    /// Numeric literal (`0`, `1e-9`, `0xFF`, `1_000u64`).
    Number,
    /// String (`"…"`), raw string (`r#"…"#`), or byte-string literal.
    Str,
    /// Char or byte-char literal (`'x'`, `b'\n'`).
    Char,
    /// Line comment, including doc comments (`//…`, `///…`, `//!…`).
    LineComment,
    /// Block comment, nested ok (`/* … /* … */ … */`).
    BlockComment,
    /// Any single punctuation character (`.`, `:`, `{`, `!`, …).
    Punct(char),
}

/// One lexed token: its class, source text, and 1-based starting line.
#[derive(Debug, Clone, Copy)]
pub struct Token<'a> {
    pub kind: TokenKind,
    pub text: &'a str,
    pub line: usize,
}

impl<'a> Token<'a> {
    /// True for an identifier with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }

    /// True for this punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }

    /// True for tokens the compiler would see (not comments).
    pub fn is_code(&self) -> bool {
        !matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

/// Lexes `src` into tokens.  Unterminated literals and comments are closed at
/// end of input rather than reported: the linter runs on code that `rustc`
/// already accepted, so recovery precision does not matter.
pub fn lex(src: &str) -> Vec<Token<'_>> {
    Lexer {
        src,
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: usize,
    out: Vec<Token<'a>>,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<Token<'a>> {
        while self.pos < self.bytes.len() {
            let start = self.pos;
            let line = self.line;
            let b = self.bytes[self.pos];
            match b {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b' ' | b'\t' | b'\r' => self.pos += 1,
                b'/' if self.peek(1) == Some(b'/') => {
                    self.take_line_comment();
                    self.push(TokenKind::LineComment, start, line);
                }
                b'/' if self.peek(1) == Some(b'*') => {
                    self.take_block_comment();
                    self.push(TokenKind::BlockComment, start, line);
                }
                b'"' => {
                    self.take_string();
                    self.push(TokenKind::Str, start, line);
                }
                b'\'' => self.take_char_or_lifetime(start, line),
                b'r' | b'b' => self.take_ident_or_prefixed_literal(start, line),
                _ if is_ident_start(b) => {
                    self.take_ident();
                    self.push(TokenKind::Ident, start, line);
                }
                _ if b.is_ascii_digit() => {
                    self.take_number();
                    self.push(TokenKind::Number, start, line);
                }
                _ => {
                    // Punctuation: one token per char (multi-byte UTF-8 chars
                    // can only appear inside literals/comments in valid Rust,
                    // but advance by full chars to stay on boundaries).
                    let ch_len = char_len(b);
                    self.pos += ch_len;
                    if ch_len == 1 {
                        self.out.push(Token {
                            kind: TokenKind::Punct(b as char),
                            text: &self.src[start..self.pos],
                            line,
                        });
                    }
                }
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn push(&mut self, kind: TokenKind, start: usize, line: usize) {
        self.out.push(Token {
            kind,
            text: &self.src[start..self.pos],
            line,
        });
    }

    fn take_line_comment(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
            self.pos += 1;
        }
    }

    fn take_block_comment(&mut self) {
        self.pos += 2;
        let mut depth = 1usize;
        while self.pos < self.bytes.len() && depth > 0 {
            match (self.bytes[self.pos], self.peek(1)) {
                (b'/', Some(b'*')) => {
                    depth += 1;
                    self.pos += 2;
                }
                (b'*', Some(b'/')) => {
                    depth -= 1;
                    self.pos += 2;
                }
                (b'\n', _) => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
    }

    /// Consumes a `"…"` string body (caller saw the opening quote).
    fn take_string(&mut self) {
        self.pos += 1;
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\\' => self.pos += 2,
                b'"' => {
                    self.pos += 1;
                    return;
                }
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
    }

    /// Consumes `r"…"` / `r#"…"#` (caller positioned at the first `#` or `"`
    /// after the `r`/`br` prefix).
    fn take_raw_string(&mut self) {
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.pos += 1;
        }
        self.pos += 1; // opening quote
        while self.pos < self.bytes.len() {
            if self.bytes[self.pos] == b'\n' {
                self.line += 1;
                self.pos += 1;
                continue;
            }
            if self.bytes[self.pos] == b'"' {
                let mut close = 0usize;
                while close < hashes && self.peek(1 + close) == Some(b'#') {
                    close += 1;
                }
                if close == hashes {
                    self.pos += 1 + hashes;
                    return;
                }
            }
            self.pos += 1;
        }
    }

    /// `'` starts either a char literal (`'x'`, `'\n'`) or a lifetime/label
    /// (`'a`, `'static`, `'outer:`).  Rule: a backslash or a closing quote
    /// right after one character means char literal; otherwise lifetime.
    fn take_char_or_lifetime(&mut self, start: usize, line: usize) {
        self.pos += 1;
        if self.peek(0) == Some(b'\\') {
            // Escaped char literal: skip the escape, then scan to the quote.
            self.pos += 2;
            while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\'' {
                self.pos += 1;
            }
            self.pos = (self.pos + 1).min(self.bytes.len());
            self.push(TokenKind::Char, start, line);
            return;
        }
        // One (possibly multi-byte) char, then check for the closing quote.
        if let Some(b) = self.peek(0) {
            self.pos += char_len(b);
        }
        if self.peek(0) == Some(b'\'') {
            self.pos += 1;
            self.push(TokenKind::Char, start, line);
        } else {
            // Lifetime: continue through the identifier.
            while self.pos < self.bytes.len() && is_ident_continue(self.bytes[self.pos]) {
                self.pos += 1;
            }
            self.push(TokenKind::Lifetime, start, line);
        }
    }

    /// `r` and `b` may prefix raw strings / byte literals, or just start an
    /// ordinary identifier (`rank`, `budget`).
    fn take_ident_or_prefixed_literal(&mut self, start: usize, line: usize) {
        let first = self.bytes[self.pos];
        // b'x' byte-char literal.
        if first == b'b' && self.peek(1) == Some(b'\'') {
            self.pos += 1;
            self.take_char_or_lifetime(start, line);
            // take_char_or_lifetime pushed a Char/Lifetime token; byte chars
            // are always closed so the kind is Char — nothing more to do.
            return;
        }
        // b"…" byte string.
        if first == b'b' && self.peek(1) == Some(b'"') {
            self.pos += 1;
            self.take_string();
            self.push(TokenKind::Str, start, line);
            return;
        }
        // br"…" / br#"…"# raw byte string.
        if first == b'b' && self.peek(1) == Some(b'r') && matches!(self.peek(2), Some(b'"' | b'#'))
        {
            self.pos += 2;
            self.take_raw_string();
            self.push(TokenKind::Str, start, line);
            return;
        }
        if first == b'r' {
            // r"…" or r#…: count hashes, then decide raw string vs raw ident.
            let mut i = 1;
            while self.peek(i) == Some(b'#') {
                i += 1;
            }
            if self.peek(i) == Some(b'"') {
                self.pos += 1;
                self.take_raw_string();
                self.push(TokenKind::Str, start, line);
                return;
            }
            if i == 2 && self.peek(1) == Some(b'#') {
                // `r#ident` raw identifier.
                self.pos += 2;
                self.take_ident();
                self.push(TokenKind::RawIdent, start, line);
                return;
            }
        }
        self.take_ident();
        self.push(TokenKind::Ident, start, line);
    }

    fn take_ident(&mut self) {
        while self.pos < self.bytes.len() && is_ident_continue(self.bytes[self.pos]) {
            self.pos += 1;
        }
    }

    /// Numbers: digits plus any alphanumeric suffix/exponent characters, and
    /// a decimal point only when followed by a digit (so `0..n` lexes as
    /// `0` `.` `.` `n`).
    fn take_number(&mut self) {
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            let decimal_point =
                b == b'.' && self.peek(1).map(|n| n.is_ascii_digit()).unwrap_or(false);
            // Exponent sign inside `1e-9`.
            let exponent_sign = (b == b'+' || b == b'-')
                && matches!(self.bytes.get(self.pos - 1), Some(b'e' | b'E'));
            if b.is_ascii_alphanumeric() || b == b'_' || decimal_point || exponent_sign {
                self.pos += 1;
            } else {
                break;
            }
        }
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

fn char_len(b: u8) -> usize {
    match b {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn strings_and_comments_hide_their_contents() {
        let toks = lex("let s = \"x.unwrap()\"; // unwrap() here too");
        assert!(!toks
            .iter()
            .any(|t| t.kind == TokenKind::Ident && t.text == "unwrap"));
        assert_eq!(toks.iter().filter(|t| t.kind == TokenKind::Str).count(), 1);
        assert_eq!(
            toks.iter()
                .filter(|t| t.kind == TokenKind::LineComment)
                .count(),
            1
        );
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = lex(r####"let s = r#"contains "quotes" and unwrap()"#;"####);
        assert!(!toks.iter().any(|t| t.is_ident("unwrap")));
        assert!(toks.iter().any(|t| t.kind == TokenKind::Str));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert_eq!(
            toks.iter()
                .filter(|t| t.kind == TokenKind::Lifetime)
                .count(),
            2
        );
        assert_eq!(toks.iter().filter(|t| t.kind == TokenKind::Char).count(), 1);
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let toks = lex("/* outer /* inner */ still comment */ fn f() {}");
        assert_eq!(toks[0].kind, TokenKind::BlockComment);
        assert!(toks.iter().any(|t| t.is_ident("fn")));
    }

    #[test]
    fn line_numbers_track_newlines_everywhere() {
        let src = "fn a() {}\n/* two\nlines */\n\"str\nend\"\nfn b() {}";
        let toks = lex(src);
        let b = toks.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b.line, 6);
    }

    #[test]
    fn ranges_do_not_eat_the_second_dot() {
        let k = kinds("for i in 0..n {}");
        assert!(k.contains(&TokenKind::Punct('.')));
        assert!(k.contains(&TokenKind::Number));
    }

    #[test]
    fn raw_identifiers_and_byte_literals() {
        let toks = lex("let r#match = b'x'; let s = b\"bytes\";");
        assert!(toks.iter().any(|t| t.kind == TokenKind::RawIdent));
        assert!(toks.iter().any(|t| t.kind == TokenKind::Char));
        assert!(toks.iter().any(|t| t.kind == TokenKind::Str));
    }
}
