//! Inline waiver syntax.
//!
//! A finding can be suppressed at the line level with a comment carrying a
//! mandatory written reason:
//!
//! ```text
//! // lint: allow(atomic-ordering) — independent monotonic counter, no
//! //       cross-field ordering is ever read back.
//! counter.fetch_add(1, Ordering::Relaxed);
//! ```
//!
//! The waiver covers the line it is written on (trailing-comment style) and
//! the next line that contains code (comment-above style).  A waiver without
//! a reason, with an unknown lint name, or that suppresses nothing is itself
//! a finding — waivers are part of the audited surface, not an escape hatch.
//!
//! The second directive, `// lint: hot-path`, is a file header that opts the
//! file into the allocation-free hot-path pass (see `passes::alloc_hot_path`).

use crate::diag::{Diagnostic, Severity};
use crate::lexer::{Token, TokenKind};

/// Lint names waivers may reference.
pub const KNOWN_LINTS: &[&str] = &[
    "panic-surface",
    "atomic-ordering",
    "alloc-hot-path",
    "lock-discipline",
    "telemetry-coverage",
    "forbid-unsafe",
];

/// Minimum reason length: long enough that `— ok` does not pass review.
const MIN_REASON_LEN: usize = 10;

/// A parsed `// lint: allow(<name>) — <reason>` comment.
#[derive(Debug, Clone)]
pub struct Waiver {
    pub lint: String,
    /// Line of the comment itself.
    pub line: usize,
    /// The line the waiver applies to in comment-above style (next line with
    /// code), when one exists.
    pub applies_to_next: Option<usize>,
    pub used: std::cell::Cell<bool>,
}

impl Waiver {
    /// Does this waiver cover a finding of `lint` at `line`?
    pub fn covers(&self, lint: &str, line: usize) -> bool {
        self.lint == lint && (line == self.line || Some(line) == self.applies_to_next)
    }
}

/// Everything extracted from a file's `lint:` comments.
#[derive(Debug, Default)]
pub struct FileDirectives {
    pub waivers: Vec<Waiver>,
    /// True when the file carries a `// lint: hot-path` header.
    pub hot_path: bool,
    /// Malformed directives (missing reason, unknown name, unparseable).
    pub errors: Vec<Diagnostic>,
}

/// Parses the waiver directives out of a file's token stream.
pub fn parse_directives(path: &str, tokens: &[Token<'_>]) -> FileDirectives {
    let mut out = FileDirectives::default();
    for (i, tok) in tokens.iter().enumerate() {
        if tok.kind != TokenKind::LineComment {
            continue;
        }
        let body = tok.text.trim_start_matches('/').trim();
        let Some(rest) = body.strip_prefix("lint:") else {
            continue;
        };
        let rest = rest.trim();
        if rest == "hot-path" {
            out.hot_path = true;
            continue;
        }
        match parse_allow(rest) {
            Ok((lint, reason)) => {
                if !KNOWN_LINTS.contains(&lint) {
                    out.errors.push(directive_error(
                        path,
                        tok.line,
                        format!(
                            "waiver names unknown lint `{lint}` (known: {})",
                            KNOWN_LINTS.join(", ")
                        ),
                    ));
                    continue;
                }
                if reason.len() < MIN_REASON_LEN {
                    out.errors.push(directive_error(
                        path,
                        tok.line,
                        format!(
                            "waiver for `{lint}` is missing its written reason \
                             (syntax: `// lint: allow({lint}) — <why this is sound>`)"
                        ),
                    ));
                    continue;
                }
                out.waivers.push(Waiver {
                    lint: lint.to_string(),
                    line: tok.line,
                    applies_to_next: next_code_line(tokens, i, tok.line),
                    used: std::cell::Cell::new(false),
                });
            }
            Err(msg) => out.errors.push(directive_error(path, tok.line, msg)),
        }
    }
    out
}

/// Splits `allow(<name>) <sep> <reason>` into name and reason.
fn parse_allow(rest: &str) -> Result<(&str, &str), String> {
    let Some(after) = rest.strip_prefix("allow(") else {
        return Err(format!(
            "unrecognized lint directive `{rest}` \
             (expected `allow(<lint>) — <reason>` or `hot-path`)"
        ));
    };
    let Some(close) = after.find(')') else {
        return Err("waiver is missing the closing `)` after the lint name".to_string());
    };
    let name = after[..close].trim();
    let reason = after[close + 1..]
        .trim_start_matches([' ', '\t'])
        .trim_start_matches(['—', '–', '-', ':'])
        .trim();
    Ok((name, reason))
}

/// The line of the next code token strictly after the comment's line
/// (continuation comment lines in between are skipped, so a two-line reason
/// still waives the statement below it).
fn next_code_line(tokens: &[Token<'_>], from: usize, comment_line: usize) -> Option<usize> {
    tokens[from + 1..]
        .iter()
        .find(|t| t.is_code() && t.line > comment_line)
        .map(|t| t.line)
}

fn directive_error(path: &str, line: usize, message: String) -> Diagnostic {
    Diagnostic {
        file: path.to_string(),
        line,
        lint: "waiver-syntax",
        message,
        severity: Severity::Deny,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn trailing_and_above_styles_both_cover() {
        let src = "\
// lint: allow(atomic-ordering) — counter is monotonic and independent\n\
x.fetch_add(1, Ordering::Relaxed);\n\
y.load(Ordering::Relaxed); // lint: allow(atomic-ordering) — snapshot read, staleness fine\n";
        let toks = lex(src);
        let d = parse_directives("f.rs", &toks);
        assert_eq!(d.waivers.len(), 2);
        assert!(d.errors.is_empty());
        assert!(d.waivers[0].covers("atomic-ordering", 2));
        assert!(d.waivers[1].covers("atomic-ordering", 3));
        assert!(!d.waivers[0].covers("panic-surface", 2));
    }

    #[test]
    fn missing_reason_is_a_deny_finding() {
        let toks = lex("// lint: allow(panic-surface)\nfoo();\n");
        let d = parse_directives("f.rs", &toks);
        assert!(d.waivers.is_empty());
        assert_eq!(d.errors.len(), 1);
        assert!(d.errors[0].message.contains("missing its written reason"));
    }

    #[test]
    fn unknown_lint_name_is_rejected() {
        let toks = lex("// lint: allow(made-up-lint) — because reasons exist\n");
        let d = parse_directives("f.rs", &toks);
        assert!(d.waivers.is_empty());
        assert!(d.errors[0].message.contains("unknown lint"));
    }

    #[test]
    fn hot_path_header_detected() {
        let toks = lex("// lint: hot-path\nfn f() {}\n");
        assert!(parse_directives("f.rs", &toks).hot_path);
    }

    #[test]
    fn waiver_inside_string_literal_is_not_a_waiver() {
        let toks = lex("let s = \"// lint: allow(panic-surface) — nope\";\n");
        let d = parse_directives("f.rs", &toks);
        assert!(d.waivers.is_empty() && d.errors.is_empty());
    }

    #[test]
    fn continuation_comment_lines_do_not_break_coverage() {
        let src = "\
// lint: allow(alloc-hot-path) — workspace constructor runs once at\n\
//       engine startup, never per pivot\n\
let v = vec![0.0; n];\n";
        let toks = lex(src);
        let d = parse_directives("f.rs", &toks);
        assert!(d.waivers[0].covers("alloc-hot-path", 3));
    }
}
