//! Per-file analysis context: lexed tokens, `#[cfg(test)]` spans, waivers.

use crate::lexer::{lex, Token};
use crate::waiver::{parse_directives, FileDirectives};

/// What kind of target a file belongs to — passes scope themselves by role
/// (e.g. panic-surface never fires inside integration tests or examples).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileRole {
    /// Library / binary source under a crate's `src/`.
    Lib,
    /// Integration tests (`tests/` directories).
    Test,
    /// Examples and benches: demo / harness code.
    Harness,
}

/// One source file plus everything the passes need to scan it.
#[derive(Debug)]
pub struct FileContext<'a> {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    pub role: FileRole,
    pub tokens: Vec<Token<'a>>,
    /// Line ranges (inclusive) covered by `#[cfg(test)]` / `#[test]` items.
    pub test_spans: Vec<(usize, usize)>,
    pub directives: FileDirectives,
}

impl<'a> FileContext<'a> {
    /// Lexes and annotates one file.
    pub fn new(path: String, role: FileRole, source: &'a str) -> Self {
        let tokens = lex(source);
        let test_spans = find_test_spans(&tokens);
        let directives = parse_directives(&path, &tokens);
        FileContext {
            path,
            role,
            tokens,
            test_spans,
            directives,
        }
    }

    /// True when `line` sits inside test-only code (or the whole file is a
    /// test target).
    pub fn is_test_line(&self, line: usize) -> bool {
        self.role == FileRole::Test
            || self
                .test_spans
                .iter()
                .any(|&(lo, hi)| line >= lo && line <= hi)
    }

    /// The indices of code tokens (comments stripped), for pattern scans.
    pub fn code_indices(&self) -> Vec<usize> {
        self.tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_code())
            .map(|(i, _)| i)
            .collect()
    }
}

/// Finds the line extents of items annotated `#[test]` or `#[cfg(test)]`
/// (including `#[cfg(all(test, …))]`; `#[cfg(not(test))]` and `#[cfg_attr]`
/// are *not* treated as test code).
fn find_test_spans(tokens: &[Token<'_>]) -> Vec<(usize, usize)> {
    let code: Vec<&Token<'_>> = tokens.iter().filter(|t| t.is_code()).collect();
    let mut spans = Vec::new();
    let mut i = 0;
    while i < code.len() {
        if !(code[i].is_punct('#') && i + 1 < code.len() && code[i + 1].is_punct('[')) {
            i += 1;
            continue;
        }
        let Some(attr_end) = matching_bracket(&code, i + 1) else {
            break;
        };
        if !attr_is_test(&code[i + 2..attr_end]) {
            i = attr_end + 1;
            continue;
        }
        // Skip any further attributes stacked on the same item.
        let mut j = attr_end + 1;
        while j + 1 < code.len() && code[j].is_punct('#') && code[j + 1].is_punct('[') {
            match matching_bracket(&code, j + 1) {
                Some(end) => j = end + 1,
                None => break,
            }
        }
        // The item extends to its closing brace, or to `;` for brace-less
        // items (`mod tests;`, `use …;`).
        let Some(item_end) = item_extent(&code, j) else {
            break;
        };
        spans.push((code[i].line, code[item_end].line));
        i = item_end + 1;
    }
    spans
}

/// Given `open` pointing at `[`, returns the index of the matching `]`.
fn matching_bracket(code: &[&Token<'_>], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (k, tok) in code.iter().enumerate().skip(open) {
        if tok.is_punct('[') {
            depth += 1;
        } else if tok.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// Is the attribute body (tokens between `[` and `]`) a test marker?
fn attr_is_test(body: &[&Token<'_>]) -> bool {
    let Some(first) = body.first() else {
        return false;
    };
    if first.is_ident("test") && body.len() == 1 {
        return true;
    }
    if !first.is_ident("cfg") {
        return false;
    }
    let mut saw_test = false;
    for tok in body {
        if tok.is_ident("not") {
            return false;
        }
        if tok.is_ident("test") {
            saw_test = true;
        }
    }
    saw_test
}

/// From `start`, the index of the token closing the item: the matching `}`
/// of its first top-level brace, or a `;` seen before any brace opens.
fn item_extent(code: &[&Token<'_>], start: usize) -> Option<usize> {
    let mut k = start;
    // Find the body `{` (skipping over parenthesized/ bracketed groups where
    // braces cannot open an item body — e.g. generic bounds hold no braces).
    let mut brace_depth = 0usize;
    while k < code.len() {
        let tok = code[k];
        if brace_depth == 0 && tok.is_punct(';') {
            return Some(k);
        }
        if tok.is_punct('{') {
            brace_depth += 1;
        } else if tok.is_punct('}') {
            brace_depth = brace_depth.saturating_sub(1);
            if brace_depth == 0 {
                return Some(k);
            }
        }
        k += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(src: &str) -> FileContext<'_> {
        FileContext::new("f.rs".into(), FileRole::Lib, src)
    }

    #[test]
    fn cfg_test_module_span_covers_its_body() {
        let src = "\
fn live() { x.unwrap(); }\n\
#[cfg(test)]\n\
mod tests {\n\
    #[test]\n\
    fn t() { y.unwrap(); }\n\
}\n\
fn after() {}\n";
        let c = ctx(src);
        assert!(!c.is_test_line(1));
        assert!(c.is_test_line(2));
        assert!(c.is_test_line(5));
        assert!(c.is_test_line(6));
        assert!(!c.is_test_line(7));
    }

    #[test]
    fn test_attribute_on_a_single_fn() {
        let src = "#[test]\nfn t() {\n    a.unwrap();\n}\nfn live() {}\n";
        let c = ctx(src);
        assert!(c.is_test_line(3));
        assert!(!c.is_test_line(5));
    }

    #[test]
    fn cfg_not_test_is_live_code() {
        let src = "#[cfg(not(test))]\nfn live() { a.unwrap(); }\n";
        assert!(!ctx(src).is_test_line(2));
    }

    #[test]
    fn cfg_all_with_test_counts() {
        let src = "#[cfg(all(test, feature = \"x\"))]\nmod t { fn f() {} }\n";
        assert!(ctx(src).is_test_line(2));
    }

    #[test]
    fn stacked_attributes_extend_to_the_item() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nmod t {\n    fn f() {}\n}\n";
        let c = ctx(src);
        assert!(c.is_test_line(4));
    }

    #[test]
    fn test_role_marks_every_line() {
        let c = FileContext::new("tests/x.rs".into(), FileRole::Test, "fn f() {}\n");
        assert!(c.is_test_line(1));
    }
}
