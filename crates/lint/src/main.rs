//! `clude-lint` CLI: walk the workspace, run every pass, report, gate.
//!
//! ```text
//! cargo run --release -p clude-lint                   # human output
//! cargo run --release -p clude-lint -- --format json  # CI artifact
//! cargo run --release -p clude-lint -- --out report.json --format json
//! ```
//!
//! Exits `1` while any deny-severity finding is live, `2` on usage or I/O
//! errors.

// The CLI's job is to print; the workspace-wide print lints target library
// crates.
#![allow(clippy::print_stdout, clippy::print_stderr)]
#![forbid(unsafe_code)]

use clude_lint::diag::Severity;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    json: bool,
    out: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    // Default root: the workspace this binary was built in (the manifest dir
    // is `crates/lint`, two levels below the workspace root).
    let mut args = Args {
        root: PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."),
        json: false,
        out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => match it.next().as_deref() {
                Some("json") => args.json = true,
                Some("human") => args.json = false,
                other => return Err(format!("--format expects json|human, got {other:?}")),
            },
            "--root" => match it.next() {
                Some(p) => args.root = PathBuf::from(p),
                None => return Err("--root expects a path".to_string()),
            },
            "--out" => match it.next() {
                Some(p) => args.out = Some(PathBuf::from(p)),
                None => return Err("--out expects a path".to_string()),
            },
            "--help" | "-h" => {
                return Err(
                    "usage: clude-lint [--root PATH] [--format json|human] [--out FILE]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let report = match clude_lint::lint_workspace(&args.root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("clude-lint: failed to walk {}: {e}", args.root.display());
            return ExitCode::from(2);
        }
    };

    let rendered = if args.json {
        report.to_json()
    } else {
        let mut lines: Vec<String> = report.diagnostics.iter().map(|d| d.to_string()).collect();
        let denials = report
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Deny)
            .count();
        lines.push(format!(
            "clude-lint: {} files, {} finding(s) ({} deny), {} suppressed by {} waiver(s)",
            report.files_scanned,
            report.diagnostics.len(),
            denials,
            report.suppressed,
            report.waivers_used,
        ));
        lines.join("\n")
    };
    println!("{rendered}");

    if let Some(out) = &args.out {
        if let Err(e) = std::fs::write(out, format!("{}\n", report.to_json())) {
            eprintln!("clude-lint: failed to write {}: {e}", out.display());
            return ExitCode::from(2);
        }
    }

    if report.has_denials() {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
