//! `panic-surface`: the hot path must not be able to panic.
//!
//! `unwrap` / `expect` / `panic!` / `todo!` / `unimplemented!` are banned
//! outside `#[cfg(test)]` code in the engine's hot-path modules — the
//! allocation-free Bennett/solve chains and the serving-path modules where a
//! panic would poison the ingest mutex or a cache shard and take the whole
//! engine down with it.  Recoverable failures belong in `LuError` /
//! `EngineError`; the rare genuinely-impossible case takes a waiver whose
//! reason states the invariant that makes it impossible.

use crate::diag::{Diagnostic, Severity};
use crate::source::{FileContext, FileRole};

/// Modules under the panic ban (workspace-relative paths).  Files opted into
/// the hot-path allocation pass via `// lint: hot-path` are covered too.
pub const HOT_PATH_MODULES: &[&str] = &[
    "crates/lu/src/bennett.rs",
    "crates/lu/src/solve.rs",
    "crates/lu/src/lowrank.rs",
    "crates/engine/src/store.rs",
    "crates/engine/src/sharded.rs",
    "crates/engine/src/coupling.rs",
    "crates/engine/src/query.rs",
    "crates/telemetry/src/hist.rs",
];

const PANIC_MACROS: &[&str] = &["panic", "todo", "unimplemented"];

/// Scans one file; no-op unless the file is on the hot path.
pub fn run(ctx: &FileContext<'_>, out: &mut Vec<Diagnostic>) {
    if ctx.role != FileRole::Lib {
        return;
    }
    if !(HOT_PATH_MODULES.contains(&ctx.path.as_str()) || ctx.directives.hot_path) {
        return;
    }
    let code = ctx.code_indices();
    for (k, &i) in code.iter().enumerate() {
        let tok = &ctx.tokens[i];
        if ctx.is_test_line(tok.line) {
            continue;
        }
        // `.unwrap(` / `.expect(` method calls.
        if (tok.is_ident("unwrap") || tok.is_ident("expect"))
            && k > 0
            && ctx.tokens[code[k - 1]].is_punct('.')
            && k + 1 < code.len()
            && ctx.tokens[code[k + 1]].is_punct('(')
        {
            out.push(finding(
                ctx,
                tok.line,
                format!(
                    ".{}() can panic on the hot path — propagate a LuError/EngineError \
                     instead, or waiver with the invariant that rules the failure out",
                    tok.text
                ),
            ));
        }
        // `panic!(` / `todo!(` / `unimplemented!(` macro invocations.
        if PANIC_MACROS.iter().any(|m| tok.is_ident(m))
            && k + 1 < code.len()
            && ctx.tokens[code[k + 1]].is_punct('!')
        {
            out.push(finding(
                ctx,
                tok.line,
                format!(
                    "{}! aborts the hot path — return an error variant instead",
                    tok.text
                ),
            ));
        }
    }
}

fn finding(ctx: &FileContext<'_>, line: usize, message: String) -> Diagnostic {
    Diagnostic {
        file: ctx.path.clone(),
        line,
        lint: "panic-surface",
        message,
        severity: Severity::Deny,
    }
}
