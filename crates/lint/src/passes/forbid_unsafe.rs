//! `forbid-unsafe`: every first-party crate root keeps `unsafe` banned.
//!
//! The workspace's soundness story is that there is no `unsafe` anywhere in
//! first-party code — `#![forbid(unsafe_code)]` at each crate root makes the
//! compiler enforce it and makes the declaration un-`allow`-able downstream.
//! This pass checks the attribute has not been dropped from any crate root
//! (`crates/*/src/lib.rs` plus the umbrella `src/lib.rs`).

use crate::diag::{Diagnostic, Severity};
use crate::source::FileContext;

/// Checks each crate root in the file set for the forbid attribute.
pub fn run(files: &[FileContext<'_>], out: &mut Vec<Diagnostic>) {
    for ctx in files {
        if !is_crate_root(&ctx.path) {
            continue;
        }
        if !declares_forbid_unsafe(ctx) {
            out.push(Diagnostic {
                file: ctx.path.clone(),
                line: 1,
                lint: "forbid-unsafe",
                message: "crate root is missing `#![forbid(unsafe_code)]` — every \
                          first-party crate declares it so unsafe cannot creep in"
                    .to_string(),
                severity: Severity::Deny,
            });
        }
    }
}

fn is_crate_root(path: &str) -> bool {
    path == "src/lib.rs" || (path.starts_with("crates/") && path.ends_with("/src/lib.rs"))
}

fn declares_forbid_unsafe(ctx: &FileContext<'_>) -> bool {
    let code = ctx.code_indices();
    code.windows(6).any(|w| {
        ctx.tokens[w[0]].is_punct('#')
            && ctx.tokens[w[1]].is_punct('!')
            && ctx.tokens[w[2]].is_punct('[')
            && ctx.tokens[w[3]].is_ident("forbid")
            && ctx.tokens[w[4]].is_punct('(')
            && ctx.tokens[w[5]].is_ident("unsafe_code")
    })
}
