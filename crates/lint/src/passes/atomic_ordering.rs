//! `atomic-ordering`: every relaxed (or needlessly sequentially-consistent)
//! atomic access must justify itself.
//!
//! `Ordering::Relaxed` is correct for independent monotonic counters and
//! wrong nearly everywhere else; `Ordering::SeqCst` is usually a sign that
//! the author did not know which fence they needed.  Outside the telemetry
//! histogram internals (`crates/telemetry/src/hist.rs`, whose whole design
//! is relaxed per-bucket counters merged at read time), each use of either
//! ordering must carry a waiver stating why the weaker/total order is sound.
//! `Acquire`/`Release`/`AcqRel` express intent and pass unchallenged.

use crate::diag::{Diagnostic, Severity};
use crate::lexer::Token;
use crate::source::{FileContext, FileRole};

/// Files whose internals are exempt: the lock-free histogram is *made of*
/// relaxed counters and documents the memory-order argument once, at the
/// type level.
const EXEMPT_FILES: &[&str] = &["crates/telemetry/src/hist.rs"];

const AUDITED: &[&str] = &["Relaxed", "SeqCst"];

/// Scans one file for audited atomic orderings.
pub fn run(ctx: &FileContext<'_>, out: &mut Vec<Diagnostic>) {
    if ctx.role != FileRole::Lib || EXEMPT_FILES.contains(&ctx.path.as_str()) {
        return;
    }
    let code = ctx.code_indices();
    // Does the file `use …::Ordering::Relaxed` (bare-name call sites)?
    let mut imported_bare = false;
    let mut k = 0;
    while k < code.len() {
        let tok = &ctx.tokens[code[k]];
        // Skip whole `use …;` statements: the import is not the access —
        // flagging both would double-count every bare-name site.  But note
        // which audited names the import brings into scope.
        if tok.is_ident("use") {
            let mut j = k + 1;
            while j < code.len() && !ctx.tokens[code[j]].is_punct(';') {
                let t = &ctx.tokens[code[j]];
                if AUDITED.iter().any(|a| t.is_ident(a)) && is_ordering_path(ctx, &code, j) {
                    imported_bare = true;
                }
                j += 1;
            }
            k = j + 1;
            continue;
        }
        let audited = AUDITED.iter().any(|a| tok.is_ident(a));
        if audited && !ctx.is_test_line(tok.line) {
            let qualified = is_ordering_path(ctx, &code, k);
            let bare = imported_bare && !preceded_by_path_sep(ctx, &code, k);
            if qualified || bare {
                out.push(Diagnostic {
                    file: ctx.path.clone(),
                    line: tok.line,
                    lint: "atomic-ordering",
                    message: format!(
                        "Ordering::{} outside the telemetry histogram internals — waiver it \
                         with the reason the {} is sound here \
                         (`// lint: allow(atomic-ordering) — <why>`)",
                        tok.text,
                        if tok.text == "Relaxed" {
                            "relaxed ordering"
                        } else {
                            "sequentially-consistent fence"
                        },
                    ),
                    severity: Severity::Deny,
                });
            }
        }
        k += 1;
    }
}

/// Is the token at code index `k` the tail of an `…Ordering::X` path?
/// (Guards against `std::cmp::Ordering::Less`-style false positives by
/// construction: `Less`/`Equal`/`Greater` are not audited names.)
fn is_ordering_path(ctx: &FileContext<'_>, code: &[usize], k: usize) -> bool {
    if k < 3 {
        return false;
    }
    let prev = |off: usize| -> &Token<'_> { &ctx.tokens[code[k - off]] };
    prev(1).is_punct(':') && prev(2).is_punct(':') && prev(3).is_ident("Ordering")
}

fn preceded_by_path_sep(ctx: &FileContext<'_>, code: &[usize], k: usize) -> bool {
    k >= 1 && ctx.tokens[code[k - 1]].is_punct(':')
}
