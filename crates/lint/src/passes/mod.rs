//! The lint passes.
//!
//! Per-file passes scan one [`FileContext`]; workspace passes see every file
//! at once (coverage-style invariants).  All passes emit *raw* findings —
//! waiver suppression happens centrally in [`crate::run_passes`], so each
//! pass stays a pure token scan.

pub mod alloc_hot_path;
pub mod atomic_ordering;
pub mod forbid_unsafe;
pub mod lock_discipline;
pub mod panic_surface;
pub mod telemetry_coverage;

use crate::diag::Diagnostic;
use crate::source::FileContext;

/// Runs every per-file pass over one file.
pub fn run_file_passes(ctx: &FileContext<'_>, out: &mut Vec<Diagnostic>) {
    panic_surface::run(ctx, out);
    atomic_ordering::run(ctx, out);
    alloc_hot_path::run(ctx, out);
    lock_discipline::run(ctx, out);
}

/// Runs every workspace pass over the full file set.
pub fn run_workspace_passes(files: &[FileContext<'_>], out: &mut Vec<Diagnostic>) {
    telemetry_coverage::run(files, out);
    forbid_unsafe::run(files, out);
}
