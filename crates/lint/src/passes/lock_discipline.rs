//! `lock-discipline`: no second lock while a guard is live.
//!
//! The engine's deadlock-freedom argument is that no thread ever holds two
//! locks — with one documented exception: the ingest `Mutex` → snapshot-ring
//! `RwLock` order in `engine.rs` (the ring write happens at the end of a
//! batch, while the ingest state is necessarily still held).  This pass
//! machine-checks the rule at the token level:
//!
//! * a `let`-bound `.lock()` / `.read()` / `.write()` (zero-argument calls —
//!   the std lock API shape) starts a *live guard* that ends at its scope's
//!   closing brace or an explicit `drop(guard)`;
//! * while a guard is live, any further acquisition is a finding — including
//!   acquisitions reached through a call to another function *in the same
//!   file* (`self.helper(…)` / `helper(…)`), computed as a transitive
//!   closure over the file's call graph;
//! * the legal nesting carries a waiver naming the lock order it follows.
//!
//! Guards created as temporaries (`x.lock().unwrap().field`) die at the end
//! of their statement and are deliberately not tracked: the pass hunts
//! *held-across-acquisition* guards, not borrow lifetimes.

use crate::diag::{Diagnostic, Severity};
use crate::source::{FileContext, FileRole};
use std::collections::{HashMap, HashSet};

const ACQUIRE_METHODS: &[&str] = &["lock", "read", "write"];

/// Scans one file for nested lock acquisitions.
pub fn run(ctx: &FileContext<'_>, out: &mut Vec<Diagnostic>) {
    if ctx.role != FileRole::Lib {
        return;
    }
    let code = ctx.code_indices();
    let fns = split_functions(ctx, &code);
    if fns.is_empty() {
        return;
    }
    // Phase 1: which functions (transitively, within this file) acquire?
    let mut acquires: HashMap<&str, bool> = HashMap::new();
    let mut calls: HashMap<&str, Vec<&str>> = HashMap::new();
    let names: HashSet<&str> = fns.iter().map(|f| f.name).collect();
    for f in &fns {
        let summary = scan_body(ctx, &code, f, &names, None);
        acquires.insert(f.name, summary.direct_acquire);
        calls.insert(f.name, summary.callees);
    }
    // Fixpoint: propagate acquisition through same-file calls.
    loop {
        let mut changed = false;
        for f in &fns {
            if acquires[f.name] {
                continue;
            }
            if calls[f.name].iter().any(|c| acquires[*c]) {
                acquires.insert(f.name, true);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    // Phase 2: re-scan each body, flagging acquisitions under a live guard.
    for f in &fns {
        scan_body(ctx, &code, f, &names, Some((&acquires, out)));
    }
}

/// A function body: name plus the code-index range of its `{ … }`.
struct FnBody<'a> {
    name: &'a str,
    body_start: usize,
    body_end: usize,
}

/// Splits the token stream into `fn` bodies (nested fns are scanned as part
/// of their parent — depth-tracking keeps their guards scoped correctly).
fn split_functions<'a>(ctx: &'a FileContext<'_>, code: &[usize]) -> Vec<FnBody<'a>> {
    let mut out = Vec::new();
    let mut k = 0;
    while k < code.len() {
        if ctx.tokens[code[k]].is_ident("fn") && k + 1 < code.len() {
            let name_tok = &ctx.tokens[code[k + 1]];
            if name_tok.kind == crate::lexer::TokenKind::Ident {
                // Find the body `{` (or `;` for trait method declarations).
                let mut j = k + 2;
                let mut body = None;
                while j < code.len() {
                    let t = &ctx.tokens[code[j]];
                    if t.is_punct('{') {
                        body = Some(j);
                        break;
                    }
                    if t.is_punct(';') {
                        break;
                    }
                    j += 1;
                }
                if let Some(open) = body {
                    if let Some(close) = matching_brace(ctx, code, open) {
                        out.push(FnBody {
                            name: name_tok.text,
                            body_start: open,
                            body_end: close,
                        });
                        // Continue *inside* the body: nested fns get their own
                        // entries too (their names join the call graph).
                        k = open + 1;
                        continue;
                    }
                }
            }
        }
        k += 1;
    }
    out
}

fn matching_brace(ctx: &FileContext<'_>, code: &[usize], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (k, &i) in code.iter().enumerate().skip(open) {
        let t = &ctx.tokens[i];
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

struct BodySummary<'a> {
    direct_acquire: bool,
    callees: Vec<&'a str>,
}

struct Guard<'a> {
    name: &'a str,
    depth: usize,
    line: usize,
}

/// One linear walk over a function body.  In summary mode (`flag` is `None`)
/// it records acquisitions and same-file callees; in flag mode it tracks
/// live guards and reports nested acquisitions.
fn scan_body<'a>(
    ctx: &'a FileContext<'_>,
    code: &[usize],
    f: &FnBody<'a>,
    fn_names: &HashSet<&str>,
    mut flag: Option<(&HashMap<&str, bool>, &mut Vec<Diagnostic>)>,
) -> BodySummary<'a> {
    let mut summary = BodySummary {
        direct_acquire: false,
        callees: Vec::new(),
    };
    let mut depth = 0usize;
    let mut guards: Vec<Guard<'a>> = Vec::new();
    // Pending `let` bindings whose initializer we are still inside.
    struct PendingLet<'a> {
        name: &'a str,
        depth: usize,
        line: usize,
        acquired: bool,
    }
    let mut lets: Vec<PendingLet<'a>> = Vec::new();

    let mut k = f.body_start;
    while k <= f.body_end {
        let tok = &ctx.tokens[code[k]];
        let in_test = ctx.is_test_line(tok.line);
        if tok.is_punct('{') {
            depth += 1;
        } else if tok.is_punct('}') {
            depth = depth.saturating_sub(1);
            guards.retain(|g| g.depth <= depth);
            lets.retain(|l| l.depth <= depth);
        } else if tok.is_punct(';') {
            if let Some(top) = lets.last() {
                if top.depth == depth {
                    let done = lets.pop().expect("top was just inspected");
                    if done.acquired {
                        guards.push(Guard {
                            name: done.name,
                            depth: done.depth,
                            line: done.line,
                        });
                    }
                }
            }
        } else if tok.is_ident("let")
            && !(k >= 1
                && (ctx.tokens[code[k - 1]].is_ident("if")
                    || ctx.tokens[code[k - 1]].is_ident("while")))
        {
            // `let [mut] name … = …;` — remember the binding until its `;`.
            // `if let` / `while let` scrutinee temporaries die with the
            // construct and are deliberately not tracked as guards.
            let mut j = k + 1;
            if j <= f.body_end && ctx.tokens[code[j]].is_ident("mut") {
                j += 1;
            }
            if j <= f.body_end {
                let name_tok = &ctx.tokens[code[j]];
                if name_tok.kind == crate::lexer::TokenKind::Ident {
                    lets.push(PendingLet {
                        name: name_tok.text,
                        depth,
                        line: name_tok.line,
                        acquired: false,
                    });
                }
            }
        } else if is_acquisition(ctx, code, k, f.body_end) {
            summary.direct_acquire = true;
            if !in_test {
                if let Some((_, out)) = flag.as_mut() {
                    if let Some(holder) = guards.last() {
                        out.push(nested_finding(
                            ctx,
                            ctx.tokens[code[k]].line,
                            &format!(
                                ".{}() acquired while guard `{}` (line {}) is still live",
                                tok.text, holder.name, holder.line
                            ),
                        ));
                    }
                }
            }
            if let Some(top) = lets.last_mut() {
                if top.depth == depth {
                    top.acquired = true;
                }
            }
        } else if tok.is_ident("drop")
            && k + 2 <= f.body_end
            && ctx.tokens[code[k + 1]].is_punct('(')
        {
            let dropped = ctx.tokens[code[k + 2]].text;
            guards.retain(|g| g.name != dropped);
        } else if let Some((acquires, _)) = flag.as_ref() {
            // Flag-mode: calls to same-file functions that (transitively)
            // acquire, while a guard is live.
            if !in_test && !guards.is_empty() {
                if let Some(callee) = call_target(ctx, code, k, f.body_end, fn_names) {
                    if callee != f.name && *acquires.get(callee).unwrap_or(&false) {
                        let holder = guards.last().expect("guards is non-empty");
                        let line = ctx.tokens[code[k]].line;
                        let msg = format!(
                            "call to `{}` (which acquires a lock) while guard `{}` \
                             (line {}) is still live",
                            callee, holder.name, holder.line
                        );
                        if let Some((_, out)) = flag.as_mut() {
                            out.push(nested_finding(ctx, line, &msg));
                        }
                    }
                }
            }
        } else if call_target(ctx, code, k, f.body_end, fn_names).is_some() {
            // Summary mode: record the callee.
            if let Some(callee) = call_target(ctx, code, k, f.body_end, fn_names) {
                summary.callees.push(callee);
            }
        }
        k += 1;
    }
    summary
}

/// `.lock()` / `.read()` / `.write()` with an empty argument list — the
/// std `Mutex`/`RwLock` acquisition shape (io `write(buf)` has arguments).
fn is_acquisition(ctx: &FileContext<'_>, code: &[usize], k: usize, end: usize) -> bool {
    let tok = &ctx.tokens[code[k]];
    ACQUIRE_METHODS.iter().any(|m| tok.is_ident(m))
        && k >= 1
        && ctx.tokens[code[k - 1]].is_punct('.')
        && k + 2 <= end
        && ctx.tokens[code[k + 1]].is_punct('(')
        && ctx.tokens[code[k + 2]].is_punct(')')
}

/// Matches `name(` and `self.name(` call shapes where `name` is a function
/// defined in this file.  Deeper receiver chains (`state.ingestor.offer(…)`)
/// are method calls on *other* types that happen to share a name — skipped.
fn call_target<'a>(
    ctx: &'a FileContext<'_>,
    code: &[usize],
    k: usize,
    end: usize,
    fn_names: &HashSet<&str>,
) -> Option<&'a str> {
    let tok = &ctx.tokens[code[k]];
    if tok.kind != crate::lexer::TokenKind::Ident || !fn_names.contains(tok.text) {
        return None;
    }
    if !(k < end && ctx.tokens[code[k + 1]].is_punct('(')) {
        return None;
    }
    if k >= 1 && ctx.tokens[code[k - 1]].is_punct('.') {
        // Method call: only `self.name(` counts as a same-file call.
        return (k >= 2 && ctx.tokens[code[k - 2]].is_ident("self")).then_some(tok.text);
    }
    if k >= 1 && ctx.tokens[code[k - 1]].is_punct(':') {
        // Path-qualified (`Type::name(`): resolution is ambiguous at token
        // level — skipped rather than guessed.
        return None;
    }
    Some(tok.text)
}

fn nested_finding(ctx: &FileContext<'_>, line: usize, detail: &str) -> Diagnostic {
    Diagnostic {
        file: ctx.path.clone(),
        line,
        lint: "lock-discipline",
        message: format!(
            "{detail} — drop the first guard before acquiring, or waiver with the \
             documented lock order this nesting follows"
        ),
        severity: Severity::Deny,
    }
}
