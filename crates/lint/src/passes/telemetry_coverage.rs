//! `telemetry-coverage`: observability cannot silently rot.
//!
//! Every `Stage` variant declared in `crates/telemetry/src/stage.rs` and
//! every `EventKind` declared in `crates/telemetry/src/journal.rs` must be
//! emitted from at least one *non-test* instrumentation site in
//! `crates/engine` — a stage timed nowhere or an event never recorded is a
//! dashboard series that quietly flatlines.  Sites count whether they spell
//! `Stage::X`, `EventKind::X`, or the journal's payload enum
//! `EngineEvent::X` (kinds map 1:1 onto payload variants).

use crate::diag::{Diagnostic, Severity};
use crate::source::FileContext;
use std::collections::HashSet;

const STAGE_DECL: &str = "crates/telemetry/src/stage.rs";
const KIND_DECL: &str = "crates/telemetry/src/journal.rs";

/// Runs the coverage check over the whole file set.  A no-op when the
/// telemetry declarations are not among the inputs (single-file fixture
/// runs).
pub fn run(files: &[FileContext<'_>], out: &mut Vec<Diagnostic>) {
    let checks = [
        (STAGE_DECL, "Stage", &["Stage"][..]),
        (KIND_DECL, "EventKind", &["EventKind", "EngineEvent"][..]),
    ];
    for (decl_file, enum_name, site_paths) in checks {
        let Some(decl) = files.iter().find(|f| f.path == decl_file) else {
            continue;
        };
        let variants = enum_variants(decl, enum_name);
        let mut seen: HashSet<&str> = HashSet::new();
        for file in files
            .iter()
            .filter(|f| f.path.starts_with("crates/engine/"))
        {
            collect_sites(file, site_paths, &variants, &mut seen);
        }
        for (name, line) in &variants {
            if !seen.contains(name.as_str()) {
                out.push(Diagnostic {
                    file: decl.path.clone(),
                    line: *line,
                    lint: "telemetry-coverage",
                    message: format!(
                        "{enum_name}::{name} is declared but never instrumented in \
                         crates/engine — add the {} site or remove the variant",
                        if enum_name == "Stage" {
                            "span"
                        } else {
                            "record_event"
                        },
                    ),
                    severity: Severity::Deny,
                });
            }
        }
    }
}

/// Extracts the unit-variant names (and declaration lines) of `enum <name>`.
/// Variant payloads (`X { … }` / `X(…)`) are skipped over.
fn enum_variants(ctx: &FileContext<'_>, name: &str) -> Vec<(String, usize)> {
    let code = ctx.code_indices();
    let mut out = Vec::new();
    let mut k = 0;
    while k < code.len() {
        if ctx.tokens[code[k]].is_ident("enum")
            && k + 1 < code.len()
            && ctx.tokens[code[k + 1]].is_ident(name)
        {
            // Move to the opening brace.
            let mut j = k + 2;
            while j < code.len() && !ctx.tokens[code[j]].is_punct('{') {
                j += 1;
            }
            let mut depth = 0usize;
            let mut expect_variant = true;
            while j < code.len() {
                let t = &ctx.tokens[code[j]];
                if depth == 1 && t.is_punct('#') {
                    // Attribute on a variant: skip the `[ … ]` group without
                    // consuming the variant-expected state.
                    let mut attr_depth = 0usize;
                    j += 1;
                    while j < code.len() {
                        let a = &ctx.tokens[code[j]];
                        if a.is_punct('[') {
                            attr_depth += 1;
                        } else if a.is_punct(']') {
                            attr_depth -= 1;
                            if attr_depth == 0 {
                                break;
                            }
                        }
                        j += 1;
                    }
                } else if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
                    depth += 1;
                    // Entering a payload: the next ident is a field, not a
                    // variant.
                    if depth > 1 {
                        expect_variant = false;
                    }
                } else if t.is_punct('}') || t.is_punct(')') || t.is_punct(']') {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return out;
                    }
                } else if depth == 1 {
                    if t.is_punct(',') {
                        expect_variant = true;
                    } else if expect_variant && t.kind == crate::lexer::TokenKind::Ident {
                        out.push((t.text.to_string(), t.line));
                        expect_variant = false;
                    }
                }
                j += 1;
            }
            return out;
        }
        k += 1;
    }
    out
}

/// Collects `Path::Variant` uses from non-test code.
fn collect_sites<'a>(
    ctx: &'a FileContext<'_>,
    site_paths: &[&str],
    variants: &[(String, usize)],
    seen: &mut HashSet<&'a str>,
) {
    let code = ctx.code_indices();
    for k in 3..code.len() {
        let tok = &ctx.tokens[code[k]];
        if tok.kind != crate::lexer::TokenKind::Ident || ctx.is_test_line(tok.line) {
            continue;
        }
        if !variants.iter().any(|(v, _)| v == tok.text) {
            continue;
        }
        let prev1 = &ctx.tokens[code[k - 1]];
        let prev2 = &ctx.tokens[code[k - 2]];
        let prev3 = &ctx.tokens[code[k - 3]];
        if prev1.is_punct(':')
            && prev2.is_punct(':')
            && site_paths.iter().any(|p| prev3.is_ident(p))
        {
            seen.insert(tok.text);
        }
    }
}
