//! `alloc-hot-path`: keep the zero-allocation guarantees machine-checked.
//!
//! PR 2 made the Bennett sweep allocation-free and PR 4 did the same for the
//! query solve chain; both wins live one careless `vec![…]` away from
//! silently regressing.  A file opts in with a `// lint: hot-path` header,
//! after which heap-allocating constructors (`vec![`, `Vec::new`, `to_vec`,
//! `collect::<Vec`, `Box::new`) are deny findings outside `#[cfg(test)]`.
//! Setup-time allocations (workspace constructors, one-time buffers) stay
//! legal via waivers whose reason names the setup path.

use crate::diag::{Diagnostic, Severity};
use crate::source::FileContext;

/// Does the path starting at code index `k` (an ident like `Vec`/`Box`) call
/// one of `methods`, as `T::m` or through a turbofish (`T::<A>::m`)?
fn path_calls(ctx: &FileContext<'_>, code: &[usize], k: usize, methods: &[&str]) -> bool {
    let tok = |j: usize| code.get(j).map(|&i| &ctx.tokens[i]);
    let mut j = k + 1;
    if !(tok(j).is_some_and(|t| t.is_punct(':')) && tok(j + 1).is_some_and(|t| t.is_punct(':'))) {
        return false;
    }
    j += 2;
    // Skip a turbofish generic-argument group between the `::` pairs.
    if tok(j).is_some_and(|t| t.is_punct('<')) {
        let mut depth = 0usize;
        while let Some(t) = tok(j) {
            if t.is_punct('<') {
                depth += 1;
            } else if t.is_punct('>') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j += 1;
        }
        j += 1;
        if !(tok(j).is_some_and(|t| t.is_punct(':')) && tok(j + 1).is_some_and(|t| t.is_punct(':')))
        {
            return false;
        }
        j += 2;
    }
    tok(j).is_some_and(|t| methods.iter().any(|m| t.is_ident(m)))
}

/// Scans one opted-in file for heap allocations.
pub fn run(ctx: &FileContext<'_>, out: &mut Vec<Diagnostic>) {
    if !ctx.directives.hot_path {
        return;
    }
    let code = ctx.code_indices();
    for (k, &i) in code.iter().enumerate() {
        let tok = &ctx.tokens[i];
        if ctx.is_test_line(tok.line) {
            continue;
        }
        let next = |off: usize| code.get(k + off).map(|&j| &ctx.tokens[j]);
        let prev = |off: usize| k.checked_sub(off).map(|p| &ctx.tokens[code[p]]);

        let hit: Option<&str> = if tok.is_ident("vec") && next(1).is_some_and(|t| t.is_punct('!')) {
            Some("vec![…] allocates")
        } else if tok.is_ident("Vec") && path_calls(ctx, &code, k, &["new", "with_capacity"]) {
            Some("Vec construction allocates")
        } else if tok.is_ident("Box") && path_calls(ctx, &code, k, &["new"]) {
            Some("Box::new allocates")
        } else if tok.is_ident("to_vec") && prev(1).is_some_and(|t| t.is_punct('.')) {
            Some(".to_vec() copies into a fresh allocation")
        } else if tok.is_ident("collect")
            && next(1).is_some_and(|t| t.is_punct(':'))
            && next(2).is_some_and(|t| t.is_punct(':'))
            && next(3).is_some_and(|t| t.is_punct('<'))
            && next(4).is_some_and(|t| t.is_ident("Vec"))
        {
            Some("collect::<Vec<_>> allocates")
        } else {
            None
        };

        if let Some(what) = hit {
            out.push(Diagnostic {
                file: ctx.path.clone(),
                line: tok.line,
                lint: "alloc-hot-path",
                message: format!(
                    "{what} in a `// lint: hot-path` module — reuse a workspace/scratch \
                     buffer, or waiver with the reason this runs on the setup path only"
                ),
                severity: Severity::Deny,
            });
        }
    }
}
