//! # clude-lint
//!
//! A workspace-aware static-analysis pass that machine-checks the engine's
//! concurrency, panic-surface, and hot-path invariants — the conventions
//! that previously lived only in comments and reviewer memory:
//!
//! | lint | invariant |
//! |------|-----------|
//! | `panic-surface` | no `unwrap`/`expect`/`panic!`/`todo!`/`unimplemented!` outside `#[cfg(test)]` in hot-path modules |
//! | `atomic-ordering` | every `Ordering::Relaxed`/`SeqCst` outside the telemetry histogram carries a justified waiver |
//! | `alloc-hot-path` | no heap allocation in `// lint: hot-path` modules (PR 2/4 zero-allocation guarantees) |
//! | `lock-discipline` | no second `.lock()`/`.read()`/`.write()` while a guard is live; the ingest-`Mutex` → ring-`RwLock` order is the single waivered nesting |
//! | `telemetry-coverage` | every `Stage` and `EventKind` variant is instrumented somewhere in `crates/engine` |
//! | `forbid-unsafe` | every first-party crate root declares `#![forbid(unsafe_code)]` |
//!
//! Findings are suppressed line-by-line with a reasoned waiver
//! (`// lint: allow(<name>) — <reason>`, see [`waiver`]); a waiver without a
//! reason — or one that suppresses nothing — is itself a finding.  The crate
//! is dependency-free (hand-rolled lexer, no `syn`): the build environment is
//! offline, and token-level checks are exactly the granularity these
//! invariants need.
//!
//! Run as `cargo run -p clude-lint` (human output) or
//! `cargo run -p clude-lint -- --format json` (CI artifact); the process
//! exits nonzero while any deny-severity finding is live.

#![forbid(unsafe_code)]

pub mod diag;
pub mod lexer;
pub mod passes;
pub mod source;
pub mod waiver;

use diag::{Diagnostic, Severity};
use source::{FileContext, FileRole};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// An in-memory source file handed to [`run_passes`] — the unit of both the
/// real workspace walk and the fixture tests.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    pub source: String,
}

/// The outcome of a lint run.
#[derive(Debug)]
pub struct LintReport {
    /// Live findings (waiver-suppressed ones excluded), sorted by location.
    pub diagnostics: Vec<Diagnostic>,
    pub files_scanned: usize,
    /// Findings suppressed by a waiver.
    pub suppressed: usize,
    /// Waivers that suppressed at least one finding.
    pub waivers_used: usize,
}

impl LintReport {
    /// True when the run should gate (any deny-severity finding).
    pub fn has_denials(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Deny)
    }

    /// Renders the machine-readable report.
    pub fn to_json(&self) -> String {
        let body: Vec<String> = self.diagnostics.iter().map(|d| d.to_json()).collect();
        format!(
            "{{\"files_scanned\":{},\"suppressed\":{},\"waivers_used\":{},\
             \"deny_count\":{},\"diagnostics\":[{}]}}",
            self.files_scanned,
            self.suppressed,
            self.waivers_used,
            self.diagnostics
                .iter()
                .filter(|d| d.severity == Severity::Deny)
                .count(),
            body.join(",")
        )
    }
}

/// Walks the workspace at `root` and lints every first-party `.rs` file.
///
/// First-party means `src/`, `crates/`, `examples/`, and `tests/`;
/// `vendor/` (offline stand-ins for external dependencies) and `target/`
/// are never walked.
pub fn lint_workspace(root: &Path) -> io::Result<LintReport> {
    let mut files = Vec::new();
    for top in ["src", "crates", "examples", "tests"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs_files(&dir, root, &mut files)?;
        }
    }
    files.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(run_passes(&files))
}

fn collect_rs_files(dir: &Path, root: &Path, out: &mut Vec<SourceFile>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "vendor" {
                continue;
            }
            collect_rs_files(&path, root, out)?;
        } else if name.ends_with(".rs") {
            let rel = relative_path(&path, root);
            out.push(SourceFile {
                path: rel,
                source: fs::read_to_string(&path)?,
            });
        }
    }
    Ok(())
}

fn relative_path(path: &Path, root: &Path) -> String {
    let rel: PathBuf = path.strip_prefix(root).unwrap_or(path).to_path_buf();
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

/// What target kind a workspace-relative path belongs to.
fn role_of(path: &str) -> FileRole {
    let in_tests = path.starts_with("tests/") || path.contains("/tests/");
    let in_examples = path.starts_with("examples/") || path.contains("/examples/");
    let in_benches = path.contains("/benches/");
    if in_tests {
        FileRole::Test
    } else if in_examples || in_benches {
        FileRole::Harness
    } else {
        FileRole::Lib
    }
}

/// Lints a set of in-memory files: the core entry point shared by the CLI
/// and the fixture tests.
pub fn run_passes(files: &[SourceFile]) -> LintReport {
    let contexts: Vec<FileContext<'_>> = files
        .iter()
        .map(|f| FileContext::new(f.path.clone(), role_of(&f.path), &f.source))
        .collect();

    let mut raw = Vec::new();
    for ctx in &contexts {
        passes::run_file_passes(ctx, &mut raw);
    }
    passes::run_workspace_passes(&contexts, &mut raw);

    // Waiver suppression: a finding covered by a same-lint waiver on its
    // line (or the line above) is dropped and the waiver marked used.
    let mut diagnostics = Vec::new();
    let mut suppressed = 0usize;
    for d in raw {
        let ctx = contexts.iter().find(|c| c.path == d.file);
        let waived = ctx.is_some_and(|c| {
            c.directives.waivers.iter().any(|w| {
                let hit = w.covers(d.lint, d.line);
                if hit {
                    w.used.set(true);
                }
                hit
            })
        });
        if waived {
            suppressed += 1;
        } else {
            diagnostics.push(d);
        }
    }

    // Waiver hygiene: malformed directives are deny findings; waivers that
    // suppressed nothing are warn findings (stale waivers hide real ones).
    let mut waivers_used = 0usize;
    for ctx in &contexts {
        diagnostics.extend(ctx.directives.errors.iter().cloned());
        for w in &ctx.directives.waivers {
            if w.used.get() {
                waivers_used += 1;
            } else {
                diagnostics.push(Diagnostic {
                    file: ctx.path.clone(),
                    line: w.line,
                    lint: "waiver-syntax",
                    message: format!(
                        "waiver for `{}` suppresses nothing — remove it (stale waivers \
                         mask real findings)",
                        w.lint
                    ),
                    severity: Severity::Warn,
                });
            }
        }
    }

    diagnostics.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    LintReport {
        diagnostics,
        files_scanned: contexts.len(),
        suppressed,
        waivers_used,
    }
}
