//! Diagnostics: what a pass reports and how it is rendered.

use std::fmt;

/// How severe a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory: printed, never fails the build (e.g. an unused waiver).
    Warn,
    /// Gate: `clude-lint` exits nonzero while any deny finding is live.
    Deny,
}

impl Severity {
    /// The lowercase label used in both output formats.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        }
    }
}

/// One finding, anchored to a file and line.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Workspace-relative path (`crates/lu/src/bennett.rs`).
    pub file: String,
    /// 1-based line of the offending token.
    pub line: usize,
    /// The pass that produced it (`panic-surface`, `atomic-ordering`, …).
    pub lint: &'static str,
    /// Human explanation, including how to waive when that is legitimate.
    pub message: String,
    pub severity: Severity,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}:{}: [{}] {}",
            self.severity.label(),
            self.file,
            self.line,
            self.lint,
            self.message
        )
    }
}

/// Escapes a string for embedding in the hand-rolled JSON report (the crate
/// is dependency-free, so no serde).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl Diagnostic {
    /// Renders the finding as one JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"file\":\"{}\",\"line\":{},\"lint\":\"{}\",\"severity\":\"{}\",\"message\":\"{}\"}}",
            json_escape(&self.file),
            self.line,
            json_escape(self.lint),
            self.severity.label(),
            json_escape(&self.message)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping_handles_quotes_and_newlines() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn display_is_grep_friendly() {
        let d = Diagnostic {
            file: "crates/x/src/lib.rs".into(),
            line: 7,
            lint: "panic-surface",
            message: "unwrap() in hot path".into(),
            severity: Severity::Deny,
        };
        assert_eq!(
            d.to_string(),
            "deny: crates/x/src/lib.rs:7: [panic-surface] unwrap() in hot path"
        );
    }
}
