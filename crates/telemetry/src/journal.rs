//! The bounded structured event journal.
//!
//! Rare, high-information engine events — repartitions, quality-triggered
//! refreshes, Woodbury plan rebuilds, convergence failures, cache evictions
//! — used to be silent: folded into an aggregate counter at best, dropped at
//! worst. The journal keeps the last `capacity` of them as typed values in a
//! fixed-size ring, with a global sequence number so an operator can tell
//! how much history was shed. Events fire a handful of times per replay, so
//! a mutex (not atomics) guards the ring; per-kind counts are additionally
//! kept in relaxed atomics for the Prometheus exposition.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Mutex;

/// Which fill-reducing ordering the structural layer selected for a shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OrderingMethod {
    /// The paper's Markowitz diagonal-pivot ordering won (smaller predicted
    /// `|s̃p(A^O)|`, or ties — Markowitz is the incumbent).
    Markowitz,
    /// The quotient-graph minimum-degree ordering over `A + Aᵀ` won.
    Amd,
}

impl OrderingMethod {
    /// The snake_case label used in exposition.
    pub const fn name(self) -> &'static str {
        match self {
            OrderingMethod::Markowitz => "markowitz",
            OrderingMethod::Amd => "amd",
        }
    }
}

/// Why a pattern-frozen refactorization was abandoned for the slow path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FallbackReason {
    /// The batch would have written an entry outside the frozen symbolic
    /// pattern (structural change slipped past classification).
    Structure,
    /// A pivot degraded beyond the refactor tolerance, or went singular —
    /// the frozen pivot order is no longer numerically trustworthy.
    Pivot,
}

impl FallbackReason {
    /// The snake_case label used in exposition.
    pub const fn name(self) -> &'static str {
        match self {
            FallbackReason::Structure => "structure",
            FallbackReason::Pivot => "pivot",
        }
    }
}

/// A structured engine event worth keeping verbatim.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EngineEvent {
    /// The sharded store re-ran partitioning because the live coupling
    /// outgrew its budget.
    Repartitioned {
        /// Coupling nnz that tripped the budget.
        coupling_nnz_before: u64,
        /// Coupling nnz under the fresh partition.
        coupling_nnz_after: u64,
    },
    /// A shard abandoned Bennett updates and refactorized from scratch.
    RefreshTriggered {
        /// Which shard refreshed (0 for the monolithic store).
        shard: u32,
        /// Whether a numeric failure (rather than the quality budget)
        /// forced the refresh.
        numeric: bool,
        /// The quality loss that tripped the refresh decision (0 when
        /// `numeric`).
        quality_loss: f64,
    },
    /// A snapshot freeze rebuilt the cached Woodbury correction.
    WoodburyPlanRebuilt {
        /// Rank of the rebuilt correction (captured coupling columns).
        rank: u32,
        /// True when the captured column set was unchanged — the rebuild
        /// happened only because a support shard re-froze its factors.
        reused: bool,
    },
    /// An iterative coupling solve exhausted its sweep budget.
    ConvergenceFailure {
        /// Sweeps performed before giving up.
        sweeps: u64,
        /// The last iterate change when the solve was abandoned.
        residual: f64,
    },
    /// The query LRU evicted an entry to make room.
    CacheEvicted {
        /// Snapshot id of the evicted entry.
        snapshot: u64,
    },
    /// A ring rollover bulk-invalidated every cached result older than the
    /// retention horizon (the eviction analogue for whole snapshots).
    CacheInvalidated {
        /// Oldest snapshot id still retained after the invalidation.
        oldest_retained: u64,
        /// Number of cache entries dropped by this invalidation.
        dropped: u64,
    },
    /// The durability layer wrote a checkpoint generation and chained it
    /// into the manifest.
    CheckpointWritten {
        /// Factor blocks serialized into this generation (changed shards
        /// only, unless the checkpoint was a full one).
        blocks: u64,
        /// Bytes of the generation file, manifest record included.
        bytes: u64,
        /// True when the generation reused at least one earlier generation's
        /// block (an incremental checkpoint, not a full one).
        incremental: bool,
    },
    /// Recovery found a torn or corrupt WAL tail and truncated it (the
    /// dropped records were never durable — the batches they logged never
    /// acknowledged as applied snapshots to a synced reader).
    WalTruncated {
        /// Records dropped with the torn tail.
        records_dropped: u64,
    },
    /// A (re)factorization picked its fill-reducing ordering by predicted
    /// symbolic size (Markowitz vs AMD).
    OrderingSelected {
        /// Which shard was ordered (0 for the monolithic store).
        shard: u32,
        /// The winning ordering method.
        method: OrderingMethod,
        /// The winner's predicted `|s̃p(A^O)|` (factor nnz plus fill).
        fill: u64,
    },
    /// A value-only batch was routed to the pattern-frozen refactor but had
    /// to fall back (to Bennett sweeps or a full refresh).
    RefactorFallback {
        /// Which shard fell back.
        shard: u32,
        /// Why the frozen-pattern pass was abandoned.
        reason: FallbackReason,
    },
}

/// The event's kind, used for per-kind counts and exposition labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// [`EngineEvent::Repartitioned`]
    Repartitioned,
    /// [`EngineEvent::RefreshTriggered`]
    RefreshTriggered,
    /// [`EngineEvent::WoodburyPlanRebuilt`]
    WoodburyPlanRebuilt,
    /// [`EngineEvent::ConvergenceFailure`]
    ConvergenceFailure,
    /// [`EngineEvent::CacheEvicted`]
    CacheEvicted,
    /// [`EngineEvent::CacheInvalidated`]
    CacheInvalidated,
    /// [`EngineEvent::CheckpointWritten`]
    CheckpointWritten,
    /// [`EngineEvent::WalTruncated`]
    WalTruncated,
    /// [`EngineEvent::OrderingSelected`]
    OrderingSelected,
    /// [`EngineEvent::RefactorFallback`]
    RefactorFallback,
}

impl EventKind {
    /// Every kind, in exposition order.
    pub const ALL: [EventKind; 10] = [
        EventKind::Repartitioned,
        EventKind::RefreshTriggered,
        EventKind::WoodburyPlanRebuilt,
        EventKind::ConvergenceFailure,
        EventKind::CacheEvicted,
        EventKind::CacheInvalidated,
        EventKind::CheckpointWritten,
        EventKind::WalTruncated,
        EventKind::OrderingSelected,
        EventKind::RefactorFallback,
    ];

    /// The snake_case label used in exposition.
    pub const fn name(self) -> &'static str {
        match self {
            EventKind::Repartitioned => "repartitioned",
            EventKind::RefreshTriggered => "refresh_triggered",
            EventKind::WoodburyPlanRebuilt => "woodbury_plan_rebuilt",
            EventKind::ConvergenceFailure => "convergence_failure",
            EventKind::CacheEvicted => "cache_evicted",
            EventKind::CacheInvalidated => "cache_invalidated",
            EventKind::CheckpointWritten => "checkpoint_written",
            EventKind::WalTruncated => "wal_truncated",
            EventKind::OrderingSelected => "ordering_selected",
            EventKind::RefactorFallback => "refactor_fallback",
        }
    }
}

impl EngineEvent {
    /// This event's [`EventKind`].
    pub const fn kind(&self) -> EventKind {
        match self {
            EngineEvent::Repartitioned { .. } => EventKind::Repartitioned,
            EngineEvent::RefreshTriggered { .. } => EventKind::RefreshTriggered,
            EngineEvent::WoodburyPlanRebuilt { .. } => EventKind::WoodburyPlanRebuilt,
            EngineEvent::ConvergenceFailure { .. } => EventKind::ConvergenceFailure,
            EngineEvent::CacheEvicted { .. } => EventKind::CacheEvicted,
            EngineEvent::CacheInvalidated { .. } => EventKind::CacheInvalidated,
            EngineEvent::CheckpointWritten { .. } => EventKind::CheckpointWritten,
            EngineEvent::WalTruncated { .. } => EventKind::WalTruncated,
            EngineEvent::OrderingSelected { .. } => EventKind::OrderingSelected,
            EngineEvent::RefactorFallback { .. } => EventKind::RefactorFallback,
        }
    }
}

/// One retained journal entry: the event plus its global sequence number
/// (0-based; `seq` increments for every recorded event, including ones the
/// ring has since shed).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JournalEntry {
    /// Global 0-based sequence number of the event.
    pub seq: u64,
    /// The event payload.
    pub event: EngineEvent,
}

/// A fixed-capacity ring of [`JournalEntry`]s plus per-kind counts.
#[derive(Debug)]
pub struct EventJournal {
    ring: Mutex<VecDeque<JournalEntry>>,
    capacity: usize,
    recorded: AtomicU64,
    by_kind: [AtomicU64; EventKind::ALL.len()],
}

impl EventJournal {
    /// An empty journal retaining the last `capacity` events (`capacity`
    /// 0 keeps counts only).
    pub fn new(capacity: usize) -> Self {
        EventJournal {
            ring: Mutex::new(VecDeque::with_capacity(capacity)),
            capacity,
            recorded: AtomicU64::new(0),
            by_kind: [const { AtomicU64::new(0) }; EventKind::ALL.len()],
        }
    }

    /// Appends an event, shedding the oldest entry when full.
    pub fn record(&self, event: EngineEvent) {
        // lint: allow(atomic-ordering) — sequence/per-kind tallies are
        // observability counters; the ring itself is mutex-guarded.
        let seq = self.recorded.fetch_add(1, Relaxed);
        // lint: allow(atomic-ordering) — per-kind tally for the Prometheus
        // exposition only; consistency with the ring is not promised.
        self.by_kind[event.kind() as usize].fetch_add(1, Relaxed);
        if self.capacity == 0 {
            return;
        }
        let mut ring = self.ring.lock().expect("journal lock poisoned");
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(JournalEntry { seq, event });
    }

    /// The retained entries, oldest first.
    pub fn entries(&self) -> Vec<JournalEntry> {
        self.ring
            .lock()
            .expect("journal lock poisoned")
            .iter()
            .copied()
            .collect()
    }

    /// Total events ever recorded (retained or shed).
    pub fn recorded(&self) -> u64 {
        // lint: allow(atomic-ordering) — monotonic tally read for stats
        // exposition; no ordering with the mutex-guarded ring is needed.
        self.recorded.load(Relaxed)
    }

    /// Events shed from the ring because it was full.
    pub fn dropped(&self) -> u64 {
        let retained = self.ring.lock().expect("journal lock poisoned").len() as u64;
        self.recorded() - retained
    }

    /// Total events of one kind ever recorded.
    pub fn count_of(&self, kind: EventKind) -> u64 {
        // lint: allow(atomic-ordering) — monotonic tally read for stats
        // exposition; no ordering with the mutex-guarded ring is needed.
        self.by_kind[kind as usize].load(Relaxed)
    }

    /// Maximum entries the ring retains.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_the_newest_entries() {
        let j = EventJournal::new(3);
        for snapshot in 0..5u64 {
            j.record(EngineEvent::CacheEvicted { snapshot });
        }
        let entries = j.entries();
        assert_eq!(entries.len(), 3);
        assert_eq!(entries[0].seq, 2);
        assert_eq!(entries[2].seq, 4);
        assert_eq!(j.recorded(), 5);
        assert_eq!(j.dropped(), 2);
        assert_eq!(j.count_of(EventKind::CacheEvicted), 5);
        assert_eq!(j.count_of(EventKind::Repartitioned), 0);
    }

    #[test]
    fn zero_capacity_counts_without_retaining() {
        let j = EventJournal::new(0);
        j.record(EngineEvent::ConvergenceFailure {
            sweeps: 100_000,
            residual: 3e-9,
        });
        assert!(j.entries().is_empty());
        assert_eq!(j.recorded(), 1);
        assert_eq!(j.count_of(EventKind::ConvergenceFailure), 1);
    }

    #[test]
    fn kinds_have_unique_names() {
        let names: std::collections::BTreeSet<_> =
            EventKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), EventKind::ALL.len());
    }
}
