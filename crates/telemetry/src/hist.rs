//! Lock-free log-bucketed duration histograms.
//!
//! HDR-style layout: values are bucketed by their power of two, and every
//! power of two is subdivided into [`LogHistogram::SUB_BUCKETS`] linear
//! sub-buckets, so the relative width of any bucket is at most
//! `1 / SUB_BUCKETS` (6.25 %). Values below `SUB_BUCKETS` get exact
//! single-value buckets. Recording is one relaxed `fetch_add` per atomic —
//! no locks, no allocation — so a histogram can sit behind an `Arc` shared
//! by every reader and writer thread, like the sparse substrate's probe
//! counters.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::time::Duration;

/// log2 of the sub-bucket count per power of two.
const SUB_BITS: u32 = 4;
/// Linear sub-buckets per power of two.
const SUB: u64 = 1 << SUB_BITS;
/// Total buckets: `SUB` exact low buckets, then `SUB` sub-buckets for each
/// of the 60 remaining exponent bands of a `u64` (see [`bucket_index`]) —
/// the maximum index is `(59 + 1) * 16 + 15 = 975`.
const N_BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUB as usize;

/// The bucket index holding `v`.
///
/// `v < 16` maps to the exact bucket `v`; otherwise the bucket is
/// `(exp + 1) * 16 + mantissa` where `exp = msb(v) - 4` and `mantissa` is
/// the 4 bits below the most significant bit.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros();
        let exp = msb - SUB_BITS;
        let mantissa = (v >> exp) - SUB;
        (((exp + 1) as u64 * SUB) + mantissa) as usize
    }
}

/// The inclusive `(low, high)` value range of bucket `index`.
#[inline]
fn bucket_bounds(index: usize) -> (u64, u64) {
    if index < SUB as usize {
        (index as u64, index as u64)
    } else {
        let exp = (index as u64 / SUB) - 1;
        let mantissa = index as u64 % SUB;
        let low = (SUB + mantissa) << exp;
        let width = 1u64 << exp;
        (low, low + (width - 1))
    }
}

/// Shared quantile walk: the `rank`-th smallest sample (1-based,
/// `rank = max(1, ceil(q·n))`) lies in the first bucket whose cumulative
/// count reaches `rank`, so any representative of that bucket is within one
/// bucket width of the exact order statistic. We return the bucket's high
/// bound clamped to the recorded maximum.
fn quantile_walk(count: u64, max: u64, q: f64, bucket: impl Fn(usize) -> u64) -> u64 {
    if count == 0 {
        return 0;
    }
    let q = q.clamp(0.0, 1.0);
    let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
    let mut cumulative = 0u64;
    for index in 0..N_BUCKETS {
        cumulative += bucket(index);
        if cumulative >= rank {
            return bucket_bounds(index).1.min(max);
        }
    }
    max
}

/// A lock-free log-bucketed histogram of `u64` samples (engine stages record
/// durations in nanoseconds).
///
/// All recording and reading goes through relaxed atomics; `&LogHistogram`
/// is freely shareable across threads. Quantile estimates are within one
/// bucket of the exact order statistic — at most 6.25 % relative error
/// (exact below 16) — which the crate's property tests pin down.
pub struct LogHistogram {
    buckets: [AtomicU64; N_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for LogHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogHistogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .field("max", &self.max())
            .finish_non_exhaustive()
    }
}

impl LogHistogram {
    /// Linear sub-buckets per power of two; `1 / SUB_BUCKETS` bounds the
    /// relative bucket width.
    pub const SUB_BUCKETS: u64 = SUB;

    /// An empty histogram (usable in statics and const array repeats).
    pub const fn new() -> Self {
        LogHistogram {
            buckets: [const { AtomicU64::new(0) }; N_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// The bucket index a value falls into (exposed for error-bound tests).
    pub fn bucket_of(value: u64) -> usize {
        bucket_index(value)
    }

    /// The inclusive `(low, high)` range of values sharing bucket `index`.
    pub fn bucket_bounds(index: usize) -> (u64, u64) {
        bucket_bounds(index)
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        self.sum.fetch_add(value, Relaxed);
        self.max.fetch_max(value, Relaxed);
    }

    /// Records a duration as nanoseconds (saturating past `u64::MAX` ns).
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Relaxed)
    }

    /// Sum of all recorded samples (wraps only past `u64::MAX` total ns,
    /// ≈ 584 years).
    pub fn sum(&self) -> u64 {
        self.sum.load(Relaxed)
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Relaxed)
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Mean sample value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// The estimated `q`-quantile (`q` in `[0, 1]`): within one bucket of
    /// the exact sorted `⌈q·n⌉`-th sample, clamped to the recorded maximum.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        quantile_walk(self.count(), self.max(), q, |i| {
            self.buckets[i].load(Relaxed)
        })
    }

    /// [`Self::value_at_quantile`] as a [`Duration`] of nanoseconds.
    pub fn duration_at_quantile(&self, q: f64) -> Duration {
        Duration::from_nanos(self.value_at_quantile(q))
    }

    /// The recorded maximum as a [`Duration`] of nanoseconds.
    pub fn max_duration(&self) -> Duration {
        Duration::from_nanos(self.max())
    }

    /// Folds every sample of `other` into `self`. The result is
    /// indistinguishable from having recorded both sample streams into one
    /// histogram (property-tested).
    pub fn merge_from(&self, other: &LogHistogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Relaxed);
            if n > 0 {
                mine.fetch_add(n, Relaxed);
            }
        }
        self.count.fetch_add(other.count(), Relaxed);
        self.sum.fetch_add(other.sum(), Relaxed);
        self.max.fetch_max(other.max(), Relaxed);
    }

    /// A point-in-time copy of the full bucket state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self.buckets.iter().map(|b| b.load(Relaxed)).collect(),
            count: self.count(),
            sum: self.sum(),
            max: self.max(),
        }
    }
}

/// An owned, comparable copy of a [`LogHistogram`]'s state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl HistogramSnapshot {
    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The estimated `q`-quantile; same guarantee as
    /// [`LogHistogram::value_at_quantile`].
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        quantile_walk(self.count, self.max, q, |i| self.buckets[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_have_exact_buckets() {
        for v in 0..16u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_bounds(v as usize), (v, v));
        }
    }

    #[test]
    fn bounds_partition_the_u64_range() {
        // Every bucket's high bound is one below the next bucket's low bound,
        // starting at 0 and ending at u64::MAX.
        assert_eq!(bucket_bounds(0).0, 0);
        for i in 0..N_BUCKETS - 1 {
            let (_, high) = bucket_bounds(i);
            let (next_low, _) = bucket_bounds(i + 1);
            assert_eq!(high + 1, next_low, "gap between buckets {i} and {}", i + 1);
        }
        assert_eq!(bucket_bounds(N_BUCKETS - 1).1, u64::MAX);
    }

    #[test]
    fn index_and_bounds_roundtrip() {
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        for _ in 0..10_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let i = bucket_index(x);
            let (low, high) = bucket_bounds(i);
            assert!(
                low <= x && x <= high,
                "{x} outside bucket {i}: [{low}, {high}]"
            );
        }
        for v in [0, 1, 15, 16, 17, 31, 32, 1023, 1024, u64::MAX - 1, u64::MAX] {
            let (low, high) = bucket_bounds(bucket_index(v));
            assert!(low <= v && v <= high);
        }
    }

    #[test]
    fn relative_bucket_width_is_bounded() {
        for i in 16..N_BUCKETS {
            let (low, high) = bucket_bounds(i);
            let width = (high - low) as u128 + 1;
            assert!(
                width * SUB as u128 <= low as u128 + width,
                "bucket {i} too wide: [{low}, {high}]"
            );
        }
    }

    #[test]
    fn quantiles_on_a_known_set() {
        let h = LogHistogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 5050);
        assert_eq!(h.max(), 100);
        // p50 -> 50th smallest = 50, bucket [48, 51].
        let p50 = h.value_at_quantile(0.5);
        assert!((48..=51).contains(&p50), "p50 = {p50}");
        // p99 -> 99th smallest = 99, bucket [96, 99] (clamped to max 100).
        let p99 = h.value_at_quantile(0.99);
        assert!((96..=100).contains(&p99), "p99 = {p99}");
        assert_eq!(h.value_at_quantile(1.0), 100);
        // q = 0 still targets the first sample.
        assert_eq!(h.value_at_quantile(0.0), 1);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LogHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.value_at_quantile(0.5), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn merge_matches_concatenated_recording() {
        let a = LogHistogram::new();
        let b = LogHistogram::new();
        let both = LogHistogram::new();
        for v in [3u64, 17, 170, 1_000_000, 5] {
            a.record(v);
            both.record(v);
        }
        for v in [9u64, 88, 7_777_777] {
            b.record(v);
            both.record(v);
        }
        a.merge_from(&b);
        assert_eq!(a.snapshot(), both.snapshot());
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(LogHistogram::new());
        std::thread::scope(|scope| {
            for t in 0..4 {
                let h = std::sync::Arc::clone(&h);
                scope.spawn(move || {
                    for i in 0..1000u64 {
                        h.record(t * 1000 + i);
                    }
                });
            }
        });
        assert_eq!(h.count(), 4000);
        assert_eq!(h.max(), 3999);
    }

    #[test]
    fn durations_record_as_nanoseconds() {
        let h = LogHistogram::new();
        h.record_duration(Duration::from_micros(3));
        assert_eq!(h.max(), 3000);
        assert_eq!(h.max_duration(), Duration::from_nanos(3000));
        assert!(h.duration_at_quantile(0.5) >= Duration::from_nanos(2816));
    }
}
