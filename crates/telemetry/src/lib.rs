//! Telemetry for the streaming engine: timed spans, lock-free histograms,
//! counters/gauges, and a bounded structured event journal.
//!
//! The engine's hot paths (Bennett sweeps, coupling solves, snapshot freezes,
//! cached query solves) run concurrently on reader and writer threads, so the
//! recording side of this crate is built entirely from relaxed atomics: a
//! [`LogHistogram`] is an array of `AtomicU64` buckets that any number of
//! threads may record into through a shared reference, exactly like the
//! structural probe counters the sparse substrate already carries. Rare,
//! high-information events (repartitions, refresh trips, convergence
//! failures) instead go through a mutex-guarded ring, the [`EventJournal`] —
//! they happen a handful of times per replay, so contention is irrelevant and
//! the typed payload is worth the lock.
//!
//! Everything hangs off a [`TelemetryRegistry`]:
//!
//! * [`Stage`] is the static registry of instrumented stages
//!   (`ingest.merge`, `shard.sweep`, `coupling.gauss_seidel`, ...); each
//!   stage owns one duration histogram.
//! * [`TelemetryRegistry::span`] returns a RAII [`Span`] that records the
//!   elapsed time into the stage's histogram on drop; [`Timer`] is the
//!   two-phase variant for code that cannot hold a borrow across the timed
//!   region. With [`TelemetryConfig::disabled`] neither reads the clock —
//!   a span is then a single branch on a `bool`.
//! * [`Counter`] and [`Gauge`] name the monotonic counters and sampled
//!   gauges (coupling nnz, resident factor bytes, ring depth).
//! * [`TelemetryRegistry::render_prometheus`] and
//!   [`TelemetryRegistry::render_json`] expose the whole registry in the
//!   Prometheus text format (summary-style, seconds) and as a JSON document.
//!
//! The crate has **no dependencies**: the build environment is hermetic, so
//! like the vendored `rand`/`proptest` it implements the small surface it
//! needs from scratch.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hist;
mod journal;
mod registry;
mod stage;

pub use hist::{HistogramSnapshot, LogHistogram};
pub use journal::{
    EngineEvent, EventJournal, EventKind, FallbackReason, JournalEntry, OrderingMethod,
};
pub use registry::{
    validate_prometheus, Counter, Gauge, Span, TelemetryConfig, TelemetryRegistry, Timer,
};
pub use stage::Stage;
