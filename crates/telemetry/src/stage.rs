//! The static registry of instrumented engine stages.

/// An instrumented stage of the engine's pipeline.
///
/// Each stage owns one duration histogram in the
/// [`TelemetryRegistry`](crate::TelemetryRegistry). The set is static: a
/// stage is an enum variant, not a string, so recording a span is an array
/// index instead of a hash lookup, and the exposition can enumerate every
/// series without bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Coalescing one edge operation into the pending batch
    /// (`DeltaIngestor::offer`).
    IngestMerge,
    /// Applying one cut batch to the factor store (`advance`), end to end.
    IngestApply,
    /// One Bennett sweep of a shard's factors over its routed entries.
    ShardSweep,
    /// A full re-ordering + refactorization of one shard (quality trip or
    /// numeric failure).
    ShardRefresh,
    /// A Jacobi fixed-point coupling solve (whole iteration, all sweeps).
    CouplingJacobi,
    /// A Gauss–Seidel coupling solve (whole iteration, all sweeps).
    CouplingGaussSeidel,
    /// Building the cached Woodbury correction at snapshot-freeze time.
    CouplingWoodburyBuild,
    /// Applying the cached Woodbury correction on the query path
    /// (block pass + dense `k×k` substitution + remainder sweeps).
    CouplingWoodburyApply,
    /// Deep-cloning a shard's factor block into a shared snapshot handle
    /// (`OrderedFactors::publish`).
    SnapshotFreeze,
    /// A cache-missing measure query solved against a snapshot.
    QuerySolve,
    /// A measure query answered from the LRU cache.
    QueryCacheHit,
    /// One batched panel solve by the query batcher's leader: all coalesced
    /// right-hand sides against one snapshot in a single factor traversal.
    QueryBatchSolve,
    /// A measure query answered from a bounded-staleness cache entry (an
    /// older snapshot's exact result served under the staleness budget).
    QueryStaleHit,
    /// Appending (and group-committing) one delta batch's record to the
    /// write-ahead log, before the batch reaches the factor store.
    WalAppend,
    /// Writing one incremental checkpoint: changed factor blocks, frozen
    /// coupling, partition map, and the manifest record chaining it.
    CheckpointWrite,
    /// Replaying one logged delta batch through the factor store during
    /// recovery (newest valid checkpoint + WAL replay).
    RecoveryReplay,
    /// One pattern-frozen refactorization of a shard: value-only batch redone
    /// down the frozen symbolic pattern in a single pass (the KLU
    /// `refactor` idea), instead of per-entry Bennett sweeps.
    ShardRefactor,
}

impl Stage {
    /// Every stage, in exposition order.
    pub const ALL: [Stage; 17] = [
        Stage::IngestMerge,
        Stage::IngestApply,
        Stage::ShardSweep,
        Stage::ShardRefresh,
        Stage::CouplingJacobi,
        Stage::CouplingGaussSeidel,
        Stage::CouplingWoodburyBuild,
        Stage::CouplingWoodburyApply,
        Stage::SnapshotFreeze,
        Stage::QuerySolve,
        Stage::QueryCacheHit,
        Stage::QueryBatchSolve,
        Stage::QueryStaleHit,
        Stage::WalAppend,
        Stage::CheckpointWrite,
        Stage::RecoveryReplay,
        Stage::ShardRefactor,
    ];

    /// Number of stages (size of the per-stage histogram array).
    pub const COUNT: usize = Self::ALL.len();

    /// The stage's dense index into per-stage arrays.
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// The dotted human-readable stage name (`"shard.sweep"`).
    pub const fn name(self) -> &'static str {
        match self {
            Stage::IngestMerge => "ingest.merge",
            Stage::IngestApply => "ingest.apply",
            Stage::ShardSweep => "shard.sweep",
            Stage::ShardRefresh => "shard.refresh",
            Stage::CouplingJacobi => "coupling.jacobi",
            Stage::CouplingGaussSeidel => "coupling.gauss_seidel",
            Stage::CouplingWoodburyBuild => "coupling.woodbury_build",
            Stage::CouplingWoodburyApply => "coupling.woodbury_apply",
            Stage::SnapshotFreeze => "snapshot.freeze",
            Stage::QuerySolve => "query.solve",
            Stage::QueryCacheHit => "query.cache_hit",
            Stage::QueryBatchSolve => "query.batch_solve",
            Stage::QueryStaleHit => "query.stale_hit",
            Stage::WalAppend => "wal.append",
            Stage::CheckpointWrite => "checkpoint.write",
            Stage::RecoveryReplay => "recovery.replay",
            Stage::ShardRefactor => "shard.refactor",
        }
    }

    /// The Prometheus metric family base name (`"clude_shard_sweep"`).
    pub const fn metric(self) -> &'static str {
        match self {
            Stage::IngestMerge => "clude_ingest_merge",
            Stage::IngestApply => "clude_ingest_apply",
            Stage::ShardSweep => "clude_shard_sweep",
            Stage::ShardRefresh => "clude_shard_refresh",
            Stage::CouplingJacobi => "clude_coupling_jacobi",
            Stage::CouplingGaussSeidel => "clude_coupling_gauss_seidel",
            Stage::CouplingWoodburyBuild => "clude_coupling_woodbury_build",
            Stage::CouplingWoodburyApply => "clude_coupling_woodbury_apply",
            Stage::SnapshotFreeze => "clude_snapshot_freeze",
            Stage::QuerySolve => "clude_query_solve",
            Stage::QueryCacheHit => "clude_query_cache_hit",
            Stage::QueryBatchSolve => "clude_query_batch_solve",
            Stage::QueryStaleHit => "clude_query_stale_hit",
            Stage::WalAppend => "clude_wal_append",
            Stage::CheckpointWrite => "clude_checkpoint_write",
            Stage::RecoveryReplay => "clude_recovery_replay",
            Stage::ShardRefactor => "clude_shard_refactor",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_match_all_order() {
        for (i, stage) in Stage::ALL.iter().enumerate() {
            assert_eq!(stage.index(), i);
        }
        assert_eq!(Stage::COUNT, Stage::ALL.len());
    }

    #[test]
    fn names_and_metrics_are_unique() {
        let names: std::collections::BTreeSet<_> = Stage::ALL.iter().map(|s| s.name()).collect();
        let metrics: std::collections::BTreeSet<_> =
            Stage::ALL.iter().map(|s| s.metric()).collect();
        assert_eq!(names.len(), Stage::COUNT);
        assert_eq!(metrics.len(), Stage::COUNT);
        for s in Stage::ALL {
            assert!(s.metric().starts_with("clude_"));
            assert!(s.name().contains('.'));
        }
    }
}
