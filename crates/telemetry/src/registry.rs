//! The registry tying stages, counters, gauges and the journal together,
//! plus the Prometheus / JSON exposition.

use crate::hist::LogHistogram;
use crate::journal::{EngineEvent, EventJournal, EventKind};
use crate::stage::Stage;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::time::{Duration, Instant};

/// How a [`TelemetryRegistry`] behaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// When false, spans never read the clock, histograms and counters are
    /// never touched, and events are discarded — recording is a single
    /// branch.
    pub enabled: bool,
    /// Entries the event journal retains (counts are kept regardless).
    pub journal_capacity: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            enabled: true,
            journal_capacity: 256,
        }
    }
}

impl TelemetryConfig {
    /// A configuration that compiles all recording down to near-no-ops.
    pub const fn disabled() -> Self {
        TelemetryConfig {
            enabled: false,
            journal_capacity: 0,
        }
    }
}

/// A monotonic event counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Counter {
    /// Edge operations offered to the ingestor.
    OpsIngested,
    /// Batches applied to the factor store.
    BatchesApplied,
    /// Measure queries served (hits + misses).
    QueriesServed,
    /// Queries answered from the LRU cache.
    CacheHits,
    /// LRU entries evicted to make room.
    CacheEvictions,
    /// Coupling solves abandoned after exhausting their sweep budget.
    ConvergenceFailures,
}

impl Counter {
    /// Every counter, in exposition order.
    pub const ALL: [Counter; 6] = [
        Counter::OpsIngested,
        Counter::BatchesApplied,
        Counter::QueriesServed,
        Counter::CacheHits,
        Counter::CacheEvictions,
        Counter::ConvergenceFailures,
    ];

    /// Short snake_case name (JSON key).
    pub const fn name(self) -> &'static str {
        match self {
            Counter::OpsIngested => "ops_ingested",
            Counter::BatchesApplied => "batches_applied",
            Counter::QueriesServed => "queries_served",
            Counter::CacheHits => "cache_hits",
            Counter::CacheEvictions => "cache_evictions",
            Counter::ConvergenceFailures => "convergence_failures",
        }
    }

    /// Full Prometheus series name.
    pub const fn metric(self) -> &'static str {
        match self {
            Counter::OpsIngested => "clude_ops_ingested_total",
            Counter::BatchesApplied => "clude_batches_applied_total",
            Counter::QueriesServed => "clude_queries_served_total",
            Counter::CacheHits => "clude_cache_hits_total",
            Counter::CacheEvictions => "clude_cache_evictions_total",
            Counter::ConvergenceFailures => "clude_convergence_failures_total",
        }
    }
}

/// A sampled gauge (last written value wins).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Gauge {
    /// Entries in the live cross-shard coupling store.
    CouplingNnz,
    /// Approximate factor bytes resident across the snapshot ring
    /// (shared handles counted once).
    ResidentFactorBytes,
    /// Snapshots currently retained in the ring.
    RingDepth,
    /// Rank of the newest snapshot's cached Woodbury correction.
    CorrectionRank,
}

impl Gauge {
    /// Every gauge, in exposition order.
    pub const ALL: [Gauge; 4] = [
        Gauge::CouplingNnz,
        Gauge::ResidentFactorBytes,
        Gauge::RingDepth,
        Gauge::CorrectionRank,
    ];

    /// Short snake_case name (JSON key).
    pub const fn name(self) -> &'static str {
        match self {
            Gauge::CouplingNnz => "coupling_nnz",
            Gauge::ResidentFactorBytes => "resident_factor_bytes",
            Gauge::RingDepth => "ring_depth",
            Gauge::CorrectionRank => "correction_rank",
        }
    }

    /// Full Prometheus series name.
    pub const fn metric(self) -> &'static str {
        match self {
            Gauge::CouplingNnz => "clude_coupling_nnz",
            Gauge::ResidentFactorBytes => "clude_resident_factor_bytes",
            Gauge::RingDepth => "clude_ring_depth",
            Gauge::CorrectionRank => "clude_correction_rank",
        }
    }
}

/// The engine-wide telemetry sink: one duration histogram per [`Stage`],
/// the counters and gauges, and the event journal.
///
/// All recording goes through `&self` with relaxed atomics (the journal's
/// rare events take a mutex), so one registry sits behind an `Arc` shared by
/// the ingest thread, the shard sweep threads, and every query reader.
#[derive(Debug)]
pub struct TelemetryRegistry {
    config: TelemetryConfig,
    stages: [LogHistogram; Stage::COUNT],
    counters: [AtomicU64; Counter::ALL.len()],
    gauges: [AtomicU64; Gauge::ALL.len()],
    journal: EventJournal,
}

impl Default for TelemetryRegistry {
    fn default() -> Self {
        Self::new(TelemetryConfig::default())
    }
}

impl TelemetryRegistry {
    /// A registry with the given behavior.
    pub fn new(config: TelemetryConfig) -> Self {
        TelemetryRegistry {
            config,
            stages: [const { LogHistogram::new() }; Stage::COUNT],
            counters: [const { AtomicU64::new(0) }; Counter::ALL.len()],
            gauges: [const { AtomicU64::new(0) }; Gauge::ALL.len()],
            journal: EventJournal::new(config.journal_capacity),
        }
    }

    /// A registry that records nothing (see [`TelemetryConfig::disabled`]).
    pub fn disabled() -> Self {
        Self::new(TelemetryConfig::disabled())
    }

    /// Whether recording is live.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.config.enabled
    }

    /// The configuration this registry was built with.
    pub fn config(&self) -> TelemetryConfig {
        self.config
    }

    /// Starts a RAII span that records its elapsed time into `stage`'s
    /// histogram when dropped. Disabled registries hand out inert spans
    /// that never read the clock.
    #[inline]
    #[must_use = "a span records on drop; dropping it immediately measures nothing"]
    pub fn span(&self, stage: Stage) -> Span<'_> {
        Span {
            registry: self,
            stage,
            start: if self.config.enabled {
                Some(Instant::now())
            } else {
                None
            },
        }
    }

    /// Records an already-measured duration into `stage`'s histogram.
    #[inline]
    pub fn observe(&self, stage: Stage, elapsed: Duration) {
        if self.config.enabled {
            self.stages[stage.index()].record_duration(elapsed);
        }
    }

    /// Records a raw nanosecond sample into `stage`'s histogram.
    #[inline]
    pub fn observe_ns(&self, stage: Stage, nanos: u64) {
        if self.config.enabled {
            self.stages[stage.index()].record(nanos);
        }
    }

    /// The histogram backing `stage` (records even when the registry is
    /// disabled — use [`Self::observe`] for gated recording).
    pub fn stage_histogram(&self, stage: Stage) -> &LogHistogram {
        &self.stages[stage.index()]
    }

    /// Increments `counter` by one.
    #[inline]
    pub fn incr(&self, counter: Counter) {
        self.add(counter, 1);
    }

    /// Increments `counter` by `n`.
    #[inline]
    pub fn add(&self, counter: Counter, n: u64) {
        if self.config.enabled {
            // lint: allow(atomic-ordering) — counters are independent
            // monotonic tallies for exposition; they synchronise nothing.
            self.counters[counter as usize].fetch_add(n, Relaxed);
        }
    }

    /// The current value of `counter`.
    pub fn counter(&self, counter: Counter) -> u64 {
        // lint: allow(atomic-ordering) — exposition read of an independent
        // tally; cross-counter consistency is not promised.
        self.counters[counter as usize].load(Relaxed)
    }

    /// Sets `gauge` to `value`.
    #[inline]
    pub fn set_gauge(&self, gauge: Gauge, value: u64) {
        if self.config.enabled {
            // lint: allow(atomic-ordering) — last-writer-wins gauge for
            // exposition; readers tolerate any interleaving.
            self.gauges[gauge as usize].store(value, Relaxed);
        }
    }

    /// The last value written to `gauge`.
    pub fn gauge(&self, gauge: Gauge) -> u64 {
        // lint: allow(atomic-ordering) — exposition read of a last-writer-
        // wins gauge; no ordering with other telemetry state is needed.
        self.gauges[gauge as usize].load(Relaxed)
    }

    /// Appends a structured event to the journal.
    #[inline]
    pub fn record_event(&self, event: EngineEvent) {
        if self.config.enabled {
            self.journal.record(event);
        }
    }

    /// The structured event journal.
    pub fn journal(&self) -> &EventJournal {
        &self.journal
    }

    /// Total span observations recorded across all stages.
    pub fn spans_recorded(&self) -> u64 {
        Stage::ALL
            .iter()
            .map(|s| self.stages[s.index()].count())
            .sum()
    }

    /// Renders every series in the Prometheus text exposition format.
    ///
    /// Stage histograms render as summary families in seconds
    /// (`clude_<stage>_duration_seconds{quantile="..."}` plus `_sum` /
    /// `_count`), counters as `_total` series, gauges plainly, and journal
    /// per-kind counts as `clude_journal_events_total{event="..."}`.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::with_capacity(4096);
        for stage in Stage::ALL {
            let h = &self.stages[stage.index()];
            let family = format!("{}_duration_seconds", stage.metric());
            out.push_str(&format!(
                "# HELP {family} Latency of engine stage {}.\n",
                stage.name()
            ));
            out.push_str(&format!("# TYPE {family} summary\n"));
            for (label, q) in [("0.5", 0.5), ("0.9", 0.9), ("0.99", 0.99)] {
                out.push_str(&format!(
                    "{family}{{quantile=\"{label}\"}} {}\n",
                    secs(h.value_at_quantile(q))
                ));
            }
            out.push_str(&format!("{family}{{quantile=\"1\"}} {}\n", secs(h.max())));
            out.push_str(&format!("{family}_sum {}\n", secs(h.sum())));
            out.push_str(&format!("{family}_count {}\n", h.count()));
        }
        for counter in Counter::ALL {
            let metric = counter.metric();
            out.push_str(&format!(
                "# HELP {metric} Engine counter {}.\n",
                counter.name()
            ));
            out.push_str(&format!("# TYPE {metric} counter\n"));
            out.push_str(&format!("{metric} {}\n", self.counter(counter)));
        }
        for gauge in Gauge::ALL {
            let metric = gauge.metric();
            out.push_str(&format!("# HELP {metric} Engine gauge {}.\n", gauge.name()));
            out.push_str(&format!("# TYPE {metric} gauge\n"));
            out.push_str(&format!("{metric} {}\n", self.gauge(gauge)));
        }
        out.push_str("# HELP clude_journal_events_total Structured journal events by kind.\n");
        out.push_str("# TYPE clude_journal_events_total counter\n");
        for kind in EventKind::ALL {
            out.push_str(&format!(
                "clude_journal_events_total{{event=\"{}\"}} {}\n",
                kind.name(),
                self.journal.count_of(kind)
            ));
        }
        out.push_str(
            "# HELP clude_journal_events_dropped_total Journal events shed by the ring.\n",
        );
        out.push_str("# TYPE clude_journal_events_dropped_total counter\n");
        out.push_str(&format!(
            "clude_journal_events_dropped_total {}\n",
            self.journal.dropped()
        ));
        out
    }

    /// Renders the full registry state as a JSON document (stage quantiles
    /// in nanoseconds, journal entries with typed payloads).
    pub fn render_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n");
        out.push_str(&format!("  \"enabled\": {},\n", self.config.enabled));
        out.push_str("  \"stages\": {\n");
        for (i, stage) in Stage::ALL.iter().enumerate() {
            let h = &self.stages[stage.index()];
            out.push_str(&format!(
                "    \"{}\": {{\"count\": {}, \"sum_ns\": {}, \"max_ns\": {}, \
                 \"p50_ns\": {}, \"p90_ns\": {}, \"p99_ns\": {}}}{}\n",
                stage.name(),
                h.count(),
                h.sum(),
                h.max(),
                h.value_at_quantile(0.5),
                h.value_at_quantile(0.9),
                h.value_at_quantile(0.99),
                comma(i, Stage::COUNT)
            ));
        }
        out.push_str("  },\n  \"counters\": {");
        for (i, counter) in Counter::ALL.iter().enumerate() {
            out.push_str(&format!(
                "\"{}\": {}{}",
                counter.name(),
                self.counter(*counter),
                comma(i, Counter::ALL.len())
            ));
        }
        out.push_str("},\n  \"gauges\": {");
        for (i, gauge) in Gauge::ALL.iter().enumerate() {
            out.push_str(&format!(
                "\"{}\": {}{}",
                gauge.name(),
                self.gauge(*gauge),
                comma(i, Gauge::ALL.len())
            ));
        }
        out.push_str("},\n  \"journal\": {\n");
        out.push_str(&format!(
            "    \"recorded\": {}, \"dropped\": {},\n",
            self.journal.recorded(),
            self.journal.dropped()
        ));
        let entries = self.journal.entries();
        out.push_str("    \"events\": [\n");
        for (i, entry) in entries.iter().enumerate() {
            out.push_str(&format!(
                "      {}{}\n",
                event_json(entry.seq, &entry.event),
                comma(i, entries.len())
            ));
        }
        out.push_str("    ]\n  }\n}\n");
        out
    }
}

/// Nanoseconds rendered as fixed-point seconds.
fn secs(nanos: u64) -> String {
    format!("{:.9}", nanos as f64 * 1e-9)
}

fn comma(i: usize, len: usize) -> &'static str {
    if i + 1 < len {
        ","
    } else {
        ""
    }
}

/// A JSON number for `v`, with non-finite values mapped to `null`.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        // `{:e}` keeps tiny residuals readable; JSON accepts the exponent.
        format!("{v:e}")
    } else {
        "null".to_string()
    }
}

fn event_json(seq: u64, event: &EngineEvent) -> String {
    let kind = event.kind().name();
    match event {
        EngineEvent::Repartitioned {
            coupling_nnz_before,
            coupling_nnz_after,
        } => format!(
            "{{\"seq\": {seq}, \"kind\": \"{kind}\", \"coupling_nnz_before\": {coupling_nnz_before}, \
             \"coupling_nnz_after\": {coupling_nnz_after}}}"
        ),
        EngineEvent::RefreshTriggered {
            shard,
            numeric,
            quality_loss,
        } => format!(
            "{{\"seq\": {seq}, \"kind\": \"{kind}\", \"shard\": {shard}, \"numeric\": {numeric}, \
             \"quality_loss\": {}}}",
            json_f64(*quality_loss)
        ),
        EngineEvent::WoodburyPlanRebuilt { rank, reused } => format!(
            "{{\"seq\": {seq}, \"kind\": \"{kind}\", \"rank\": {rank}, \"reused\": {reused}}}"
        ),
        EngineEvent::ConvergenceFailure { sweeps, residual } => format!(
            "{{\"seq\": {seq}, \"kind\": \"{kind}\", \"sweeps\": {sweeps}, \"residual\": {}}}",
            json_f64(*residual)
        ),
        EngineEvent::CacheEvicted { snapshot } => {
            format!("{{\"seq\": {seq}, \"kind\": \"{kind}\", \"snapshot\": {snapshot}}}")
        }
        EngineEvent::CacheInvalidated {
            oldest_retained,
            dropped,
        } => format!(
            "{{\"seq\": {seq}, \"kind\": \"{kind}\", \"oldest_retained\": {oldest_retained}, \
             \"dropped\": {dropped}}}"
        ),
        EngineEvent::CheckpointWritten {
            blocks,
            bytes,
            incremental,
        } => format!(
            "{{\"seq\": {seq}, \"kind\": \"{kind}\", \"blocks\": {blocks}, \"bytes\": {bytes}, \
             \"incremental\": {incremental}}}"
        ),
        EngineEvent::WalTruncated { records_dropped } => format!(
            "{{\"seq\": {seq}, \"kind\": \"{kind}\", \"records_dropped\": {records_dropped}}}"
        ),
        EngineEvent::OrderingSelected {
            shard,
            method,
            fill,
        } => format!(
            "{{\"seq\": {seq}, \"kind\": \"{kind}\", \"shard\": {shard}, \"method\": \"{}\", \
             \"fill\": {fill}}}",
            method.name()
        ),
        EngineEvent::RefactorFallback { shard, reason } => format!(
            "{{\"seq\": {seq}, \"kind\": \"{kind}\", \"shard\": {shard}, \"reason\": \"{}\"}}",
            reason.name()
        ),
    }
}

/// Checks that `text` is well-formed Prometheus text exposition: every line
/// is a `# HELP` / `# TYPE` comment or a `name[{labels}] value` sample with
/// a legal metric name and a parseable float value.
///
/// Used by the CI smoke step and the integration tests; returns the first
/// offending line on failure.
pub fn validate_prometheus(text: &str) -> Result<(), String> {
    fn valid_name(name: &str) -> bool {
        !name.is_empty()
            && name
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
            && name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    }
    for (lineno, line) in text.lines().enumerate() {
        let err = |what: &str| Err(format!("line {}: {what}: {line:?}", lineno + 1));
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let rest = comment.trim_start();
            if !(rest.starts_with("HELP ") || rest.starts_with("TYPE ")) {
                return err("comment is neither HELP nor TYPE");
            }
            continue;
        }
        // `name{labels} value` or `name value`.
        let (name_and_labels, value) = match line.rsplit_once(' ') {
            Some(parts) => parts,
            None => return err("sample line has no value"),
        };
        let name = match name_and_labels.split_once('{') {
            Some((name, labels)) => {
                if !labels.ends_with('}') {
                    return err("unterminated label set");
                }
                let body = &labels[..labels.len() - 1];
                for pair in body.split(',') {
                    match pair.split_once('=') {
                        Some((k, v)) if valid_name(k) && v.starts_with('"') && v.ends_with('"') => {
                        }
                        _ => return err("malformed label pair"),
                    }
                }
                name
            }
            None => name_and_labels,
        };
        if !valid_name(name) {
            return err("illegal metric name");
        }
        if value.trim().parse::<f64>().is_err() {
            return err("unparseable sample value");
        }
    }
    Ok(())
}

/// A RAII guard recording the elapsed time into a stage histogram on drop.
///
/// Obtained from [`TelemetryRegistry::span`]; when the registry is disabled
/// the guard holds no start time and its drop is a branch on `None`.
#[derive(Debug)]
#[must_use = "a span records on drop; dropping it immediately measures nothing"]
pub struct Span<'a> {
    registry: &'a TelemetryRegistry,
    stage: Stage,
    start: Option<Instant>,
}

impl Span<'_> {
    /// Ends the span now (equivalent to dropping it).
    pub fn stop(self) {}

    /// Abandons the span without recording a sample — for probes that turn
    /// out not to match their stage (e.g. a cache probe that misses).
    pub fn cancel(mut self) {
        self.start = None;
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.registry.observe(self.stage, start.elapsed());
        }
    }
}

/// A two-phase timer for code that cannot hold a `&TelemetryRegistry`
/// borrow (or does not know the stage) across the timed region.
#[derive(Debug, Clone, Copy)]
#[must_use = "a timer only records when finished"]
pub struct Timer {
    start: Option<Instant>,
}

impl Timer {
    /// Reads the clock if `registry` is enabled.
    #[inline]
    pub fn start(registry: &TelemetryRegistry) -> Self {
        Timer {
            start: if registry.enabled() {
                Some(Instant::now())
            } else {
                None
            },
        }
    }

    /// A timer that will never record.
    pub const fn disabled() -> Self {
        Timer { start: None }
    }

    /// Elapsed time since [`Timer::start`], if the clock was read.
    pub fn elapsed(&self) -> Option<Duration> {
        self.start.map(|s| s.elapsed())
    }

    /// Records the elapsed time into `stage`'s histogram.
    #[inline]
    pub fn finish(self, registry: &TelemetryRegistry, stage: Stage) {
        if let Some(start) = self.start {
            registry.observe(stage, start.elapsed());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_into_their_stage() {
        let reg = TelemetryRegistry::default();
        {
            let _span = reg.span(Stage::ShardSweep);
            std::hint::black_box(42);
        }
        reg.span(Stage::QuerySolve).stop();
        assert_eq!(reg.stage_histogram(Stage::ShardSweep).count(), 1);
        assert_eq!(reg.stage_histogram(Stage::QuerySolve).count(), 1);
        assert_eq!(reg.spans_recorded(), 2);
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let reg = TelemetryRegistry::disabled();
        assert!(!reg.enabled());
        reg.span(Stage::ShardSweep).stop();
        reg.observe(Stage::QuerySolve, Duration::from_millis(5));
        reg.incr(Counter::QueriesServed);
        reg.set_gauge(Gauge::RingDepth, 7);
        reg.record_event(EngineEvent::CacheEvicted { snapshot: 1 });
        let t = Timer::start(&reg);
        assert!(t.elapsed().is_none());
        t.finish(&reg, Stage::QuerySolve);
        assert_eq!(reg.spans_recorded(), 0);
        assert_eq!(reg.counter(Counter::QueriesServed), 0);
        assert_eq!(reg.gauge(Gauge::RingDepth), 0);
        assert_eq!(reg.journal().recorded(), 0);
    }

    #[test]
    fn counters_and_gauges_roundtrip() {
        let reg = TelemetryRegistry::default();
        reg.incr(Counter::CacheHits);
        reg.add(Counter::CacheHits, 4);
        reg.set_gauge(Gauge::CouplingNnz, 123);
        reg.set_gauge(Gauge::CouplingNnz, 99);
        assert_eq!(reg.counter(Counter::CacheHits), 5);
        assert_eq!(reg.gauge(Gauge::CouplingNnz), 99);
    }

    #[test]
    fn prometheus_exposition_is_wellformed_and_complete() {
        let reg = TelemetryRegistry::default();
        reg.observe(Stage::ShardSweep, Duration::from_micros(120));
        reg.observe(Stage::QuerySolve, Duration::from_micros(250));
        reg.incr(Counter::BatchesApplied);
        reg.set_gauge(Gauge::RingDepth, 3);
        reg.record_event(EngineEvent::WoodburyPlanRebuilt {
            rank: 64,
            reused: false,
        });
        let text = reg.render_prometheus();
        validate_prometheus(&text).expect("exposition must parse");
        assert!(text.contains("clude_shard_sweep_duration_seconds_count 1"));
        assert!(text.contains("clude_query_solve_duration_seconds{quantile=\"0.99\"}"));
        assert!(text.contains("clude_batches_applied_total 1"));
        assert!(text.contains("clude_ring_depth 3"));
        assert!(text.contains("clude_journal_events_total{event=\"woodbury_plan_rebuilt\"} 1"));
    }

    #[test]
    fn validator_rejects_malformed_lines() {
        assert!(validate_prometheus("clude_ok 1\n").is_ok());
        assert!(validate_prometheus("no-dashes-allowed 1\n").is_err());
        assert!(validate_prometheus("clude_ok notanumber\n").is_err());
        assert!(validate_prometheus("# BOGUS comment\n").is_err());
        assert!(validate_prometheus("clude_ok{unterminated=\"x\" 1\n").is_err());
    }

    #[test]
    fn json_snapshot_has_all_sections() {
        let reg = TelemetryRegistry::default();
        reg.observe(Stage::IngestMerge, Duration::from_nanos(800));
        reg.record_event(EngineEvent::ConvergenceFailure {
            sweeps: 100_000,
            residual: 4.2e-10,
        });
        reg.record_event(EngineEvent::RefreshTriggered {
            shard: 2,
            numeric: false,
            quality_loss: 0.31,
        });
        let json = reg.render_json();
        for needle in [
            "\"enabled\": true",
            "\"ingest.merge\"",
            "\"counters\"",
            "\"gauges\"",
            "\"kind\": \"convergence_failure\"",
            "\"shard\": 2",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        // Balanced braces as a cheap well-formedness check.
        let open = json.matches('{').count();
        let close = json.matches('}').count();
        assert_eq!(open, close);
    }
}
