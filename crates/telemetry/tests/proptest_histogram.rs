//! Property tests pinning down the histogram's accuracy contract:
//! quantile estimates stay within one bucket of the exact order statistic,
//! and merging histograms is indistinguishable from recording the
//! concatenated sample stream.

use clude_telemetry::LogHistogram;
use proptest::prelude::*;

/// Sample sets spanning the exact low buckets, the microsecond range, and
/// multi-second outliers, so every indexing regime is exercised.
fn samples(max_len: usize) -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(
        (0u64..4_000_000_000, 0u32..3).prop_map(|(v, scale)| match scale {
            0 => v % 64,        // exact single-value buckets
            1 => v % 1_000_000, // sub-millisecond durations
            _ => v,             // up to ~4s in nanoseconds
        }),
        1..max_len,
    )
}

/// The exact `q`-quantile under the histogram's rank convention: the
/// `max(1, ceil(q·n))`-th smallest sample.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as f64;
    let rank = ((q * n).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn quantiles_stay_within_one_bucket_of_exact(values in samples(400)) {
        let h = LogHistogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.max(), *sorted.last().unwrap());
        prop_assert_eq!(h.sum(), values.iter().sum::<u64>());
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            let exact = exact_quantile(&sorted, q);
            let estimate = h.value_at_quantile(q);
            // The estimate must land in the bucket holding the exact order
            // statistic: off by at most one bucket width, i.e. ≤ 1/16
            // relative error (exact below 16).
            let (low, high) = LogHistogram::bucket_bounds(LogHistogram::bucket_of(exact));
            prop_assert!(
                low <= estimate && estimate <= high,
                "q={} exact={} (bucket [{}, {}]) estimate={}",
                q, exact, low, high, estimate
            );
        }
    }

    #[test]
    fn merge_equals_concatenated_recording(a in samples(150), b in samples(150)) {
        let ha = LogHistogram::new();
        let hb = LogHistogram::new();
        let concat = LogHistogram::new();
        for &v in &a {
            ha.record(v);
            concat.record(v);
        }
        for &v in &b {
            hb.record(v);
            concat.record(v);
        }
        ha.merge_from(&hb);
        prop_assert_eq!(ha.snapshot(), concat.snapshot());
        // Including the derived statistics the exposition reads.
        for q in [0.5, 0.9, 0.99] {
            prop_assert_eq!(ha.value_at_quantile(q), concat.value_at_quantile(q));
        }
        prop_assert_eq!(ha.max(), concat.max());
        prop_assert_eq!(ha.sum(), concat.sum());
        prop_assert_eq!(ha.count(), concat.count());
    }
}
