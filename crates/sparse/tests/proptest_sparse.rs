//! Property-based tests for the sparse substrate: CSR arithmetic, pattern
//! algebra and the dynamic adjacency-list matrix.

use clude_sparse::{AdjacencyMatrix, CooMatrix, CsrMatrix, SparsityPattern};
use proptest::prelude::*;

fn csr(n: usize, max_entries: usize) -> impl Strategy<Value = CsrMatrix> {
    proptest::collection::vec((0..n, 0..n, -5.0f64..5.0), 0..max_entries).prop_map(move |entries| {
        let mut coo = CooMatrix::new(n, n);
        for (i, j, v) in entries {
            coo.push(i, j, v).unwrap();
        }
        CsrMatrix::from_coo(&coo)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn transpose_is_involutive_and_preserves_values(a in csr(9, 40)) {
        let t = a.transpose();
        prop_assert_eq!(t.transpose(), a.clone());
        for (i, j, v) in a.iter() {
            prop_assert_eq!(t.get(j, i), v);
        }
    }

    #[test]
    fn mul_vec_agrees_with_dense(a in csr(8, 30), x in proptest::collection::vec(-3.0f64..3.0, 8)) {
        let sparse = a.mul_vec(&x).unwrap();
        let dense = a.to_dense().mul_vec(&x).unwrap();
        for (s, d) in sparse.iter().zip(dense.iter()) {
            prop_assert!((s - d).abs() < 1e-12);
        }
        // Transposed product agrees with the transpose's product.
        let t1 = a.mul_vec_transposed(&x).unwrap();
        let t2 = a.transpose().mul_vec(&x).unwrap();
        for (s, d) in t1.iter().zip(t2.iter()) {
            prop_assert!((s - d).abs() < 1e-12);
        }
    }

    #[test]
    fn add_scaled_is_linear(a in csr(8, 30), b in csr(8, 30), x in proptest::collection::vec(-2.0f64..2.0, 8)) {
        let combo = a.add_scaled(2.0, &b, -0.5).unwrap();
        let lhs = combo.mul_vec(&x).unwrap();
        let av = a.mul_vec(&x).unwrap();
        let bv = b.mul_vec(&x).unwrap();
        for i in 0..8 {
            prop_assert!((lhs[i] - (2.0 * av[i] - 0.5 * bv[i])).abs() < 1e-10);
        }
    }

    #[test]
    fn delta_roundtrip_rebuilds_target(a in csr(8, 25), b in csr(8, 25)) {
        let delta = a.delta_to(&b, 0.0).unwrap();
        // Applying the delta entrywise to `a` yields `b` (up to stored zeros).
        let mut coo = CooMatrix::new(8, 8);
        for (i, j, v) in a.iter() {
            coo.push(i, j, v).unwrap();
        }
        for &(i, j, old, new) in &delta {
            coo.push(i, j, new - old).unwrap();
        }
        let rebuilt = CsrMatrix::from_coo(&coo);
        prop_assert!(rebuilt.max_abs_diff(&b).unwrap() < 1e-12);
    }

    #[test]
    fn pattern_union_and_intersection_sizes_are_consistent(a in csr(10, 35), b in csr(10, 35)) {
        let pa = a.pattern();
        let pb = b.pattern();
        let union = pa.union(&pb).unwrap();
        let inter = pa.intersection(&pb).unwrap();
        // Inclusion–exclusion on set sizes.
        prop_assert_eq!(union.nnz() + inter.nnz(), pa.nnz() + pb.nnz());
        prop_assert_eq!(inter.nnz(), pa.intersection_size(&pb).unwrap());
    }

    #[test]
    fn adjacency_matrix_roundtrips_csr(a in csr(9, 40)) {
        let adj = AdjacencyMatrix::from_csr(&a);
        prop_assert_eq!(adj.to_csr(), a.clone());
        prop_assert_eq!(adj.pattern(), a.pattern());
        prop_assert_eq!(adj.nnz(), a.nnz());
    }

    #[test]
    fn adjacency_restructure_preserves_retained_values(a in csr(9, 40), extra in proptest::collection::vec((0usize..9, 0usize..9), 0..10)) {
        let mut target = a.pattern();
        for (i, j) in extra {
            target.insert(i, j);
        }
        let mut adj = AdjacencyMatrix::from_csr(&a);
        adj.restructure_to(&target);
        prop_assert_eq!(adj.pattern(), target);
        for (i, j, v) in a.iter() {
            prop_assert_eq!(adj.peek(i, j), v);
        }
    }

    #[test]
    fn mes_reflects_containment(entries in proptest::collection::vec((0usize..7, 0usize..7), 1..20)) {
        let p = SparsityPattern::from_entries(7, 7, entries).unwrap();
        let empty = SparsityPattern::empty(7, 7);
        // Similarity with itself is 1, with the empty pattern it is 0.
        prop_assert!((p.mes(&p).unwrap() - 1.0).abs() < 1e-12);
        if p.nnz() > 0 {
            prop_assert_eq!(p.mes(&empty).unwrap(), 0.0);
        }
    }
}
