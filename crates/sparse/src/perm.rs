//! Permutations and matrix orderings.
//!
//! The paper (Definition 2) defines an *ordering* `O = (P, Q)` as a pair of
//! permutation matrices and reorders a matrix as `A^O = P A Q`.  We represent
//! a permutation matrix by the map from *new* index to *old* index: entry
//! `(i, j)` of the reordered matrix is entry `(P.new_to_old(i),
//! Q.new_to_old(j))` of the original.  With this convention, applying an
//! ordering to a right-hand side and recovering the solution (`b' = P b`,
//! `x = Q x'`) are both `O(n)` gather operations, as §2.2 of the paper notes.

use crate::error::{SparseError, SparseResult};

/// A permutation of `0..n`, stored as a "new index → old index" map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation {
    new_to_old: Vec<usize>,
}

impl Permutation {
    /// The identity permutation of length `n`.
    pub fn identity(n: usize) -> Self {
        Permutation {
            new_to_old: (0..n).collect(),
        }
    }

    /// Builds a permutation from a "new index → old index" vector, validating
    /// that it is a bijection on `0..n`.
    pub fn from_new_to_old(new_to_old: Vec<usize>) -> SparseResult<Self> {
        let n = new_to_old.len();
        let mut seen = vec![false; n];
        for &old in &new_to_old {
            if old >= n {
                return Err(SparseError::InvalidPermutation {
                    len: n,
                    reason: "index out of range",
                });
            }
            if seen[old] {
                return Err(SparseError::InvalidPermutation {
                    len: n,
                    reason: "repeated index",
                });
            }
            seen[old] = true;
        }
        Ok(Permutation { new_to_old })
    }

    /// Builds a permutation from an "old index → new index" vector.
    pub fn from_old_to_new(old_to_new: Vec<usize>) -> SparseResult<Self> {
        let p = Permutation::from_new_to_old(old_to_new)?;
        Ok(p.inverse())
    }

    /// Length of the permutation.
    pub fn len(&self) -> usize {
        self.new_to_old.len()
    }

    /// Returns `true` when the permutation is empty.
    pub fn is_empty(&self) -> bool {
        self.new_to_old.is_empty()
    }

    /// Returns `true` when this is the identity permutation.
    pub fn is_identity(&self) -> bool {
        self.new_to_old.iter().enumerate().all(|(i, &o)| i == o)
    }

    /// Maps a new index to the old index it takes its content from.
    #[inline]
    pub fn new_to_old(&self, new_index: usize) -> usize {
        self.new_to_old[new_index]
    }

    /// The full "new → old" map as a slice.
    pub fn as_new_to_old(&self) -> &[usize] {
        &self.new_to_old
    }

    /// The full "old → new" map as an owned vector.
    pub fn old_to_new(&self) -> Vec<usize> {
        let mut inv = vec![0; self.new_to_old.len()];
        for (new, &old) in self.new_to_old.iter().enumerate() {
            inv[old] = new;
        }
        inv
    }

    /// The inverse permutation.
    pub fn inverse(&self) -> Permutation {
        Permutation {
            new_to_old: self.old_to_new(),
        }
    }

    /// Gathers a vector: `out[new] = x[new_to_old(new)]`.
    ///
    /// This computes `P x` when `self` is used as a row permutation.
    pub fn apply_vec(&self, x: &[f64]) -> SparseResult<Vec<f64>> {
        let mut out = Vec::new();
        self.apply_vec_into(x, &mut out)?;
        Ok(out)
    }

    /// Allocation-free variant of [`Permutation::apply_vec`]: gathers into
    /// `out`, reusing its capacity (the previous content is discarded).
    pub fn apply_vec_into(&self, x: &[f64], out: &mut Vec<f64>) -> SparseResult<()> {
        if x.len() != self.len() {
            return Err(SparseError::ShapeMismatch {
                left: (self.len(), 1),
                right: (x.len(), 1),
            });
        }
        out.clear();
        out.extend(self.new_to_old.iter().map(|&old| x[old]));
        Ok(())
    }

    /// Scatters a vector: `out[new_to_old(new)] = x[new]`, i.e. the inverse
    /// gather.  With the column permutation `Q` of an ordering this computes
    /// `x = Q x'` (recovering the solution of the original system).
    pub fn apply_inverse_vec(&self, x: &[f64]) -> SparseResult<Vec<f64>> {
        let mut out = Vec::new();
        self.apply_inverse_vec_into(x, &mut out)?;
        Ok(out)
    }

    /// Allocation-free variant of [`Permutation::apply_inverse_vec`]:
    /// scatters into `out`, reusing its capacity (the previous content is
    /// discarded).
    pub fn apply_inverse_vec_into(&self, x: &[f64], out: &mut Vec<f64>) -> SparseResult<()> {
        if x.len() != self.len() {
            return Err(SparseError::ShapeMismatch {
                left: (self.len(), 1),
                right: (x.len(), 1),
            });
        }
        out.clear();
        out.resize(x.len(), 0.0);
        for (new, &old) in self.new_to_old.iter().enumerate() {
            out[old] = x[new];
        }
        Ok(())
    }

    /// Composition `self ∘ other`: first apply `other`, then `self`.
    pub fn compose(&self, other: &Permutation) -> SparseResult<Permutation> {
        if self.len() != other.len() {
            return Err(SparseError::ShapeMismatch {
                left: (self.len(), 1),
                right: (other.len(), 1),
            });
        }
        let new_to_old = (0..self.len())
            .map(|i| other.new_to_old(self.new_to_old(i)))
            .collect();
        Ok(Permutation { new_to_old })
    }
}

/// A matrix ordering `O = (P, Q)` as in Definition 2 of the paper.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ordering {
    row: Permutation,
    col: Permutation,
}

impl Ordering {
    /// Creates an ordering from row and column permutations.
    pub fn new(row: Permutation, col: Permutation) -> Self {
        Ordering { row, col }
    }

    /// The identity ordering of order `n` (no reordering).
    pub fn identity(n: usize) -> Self {
        Ordering {
            row: Permutation::identity(n),
            col: Permutation::identity(n),
        }
    }

    /// A symmetric ordering `P A Pᵀ` described by a single permutation, as
    /// produced by minimum-degree on symmetric matrices.
    pub fn symmetric(p: Permutation) -> Self {
        Ordering {
            col: p.clone(),
            row: p,
        }
    }

    /// The row permutation `P`.
    pub fn row(&self) -> &Permutation {
        &self.row
    }

    /// The column permutation `Q`.
    pub fn col(&self) -> &Permutation {
        &self.col
    }

    /// Returns `true` when both permutations are the identity.
    pub fn is_identity(&self) -> bool {
        self.row.is_identity() && self.col.is_identity()
    }

    /// Returns `true` if the ordering is symmetric (`P = Q`), which is what
    /// the LUDEM-QC machinery requires.
    pub fn is_symmetric(&self) -> bool {
        self.row == self.col
    }

    /// Transforms a right-hand side: `b' = P b`.
    pub fn permute_rhs(&self, b: &[f64]) -> SparseResult<Vec<f64>> {
        self.row.apply_vec(b)
    }

    /// Allocation-free variant of [`Ordering::permute_rhs`]: gathers `P b`
    /// into `out`, reusing its capacity.
    pub fn permute_rhs_into(&self, b: &[f64], out: &mut Vec<f64>) -> SparseResult<()> {
        self.row.apply_vec_into(b, out)
    }

    /// Recovers the solution of the original system from the solution of the
    /// reordered system: `x = Q x'`.
    pub fn recover_solution(&self, x_prime: &[f64]) -> SparseResult<Vec<f64>> {
        self.col.apply_inverse_vec(x_prime)
    }

    /// Allocation-free variant of [`Ordering::recover_solution`]: scatters
    /// `Q x'` into `out`, reusing its capacity.
    pub fn recover_solution_into(&self, x_prime: &[f64], out: &mut Vec<f64>) -> SparseResult<()> {
        self.col.apply_inverse_vec_into(x_prime, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_identity() {
        let p = Permutation::identity(4);
        assert!(p.is_identity());
        assert_eq!(p.len(), 4);
        assert!(!p.is_empty());
        assert_eq!(
            p.apply_vec(&[1.0, 2.0, 3.0, 4.0]).unwrap(),
            vec![1.0, 2.0, 3.0, 4.0]
        );
    }

    #[test]
    fn from_new_to_old_validates() {
        assert!(Permutation::from_new_to_old(vec![0, 2, 1]).is_ok());
        assert!(Permutation::from_new_to_old(vec![0, 0, 1]).is_err());
        assert!(Permutation::from_new_to_old(vec![0, 3, 1]).is_err());
    }

    #[test]
    fn inverse_composes_to_identity() {
        let p = Permutation::from_new_to_old(vec![2, 0, 3, 1]).unwrap();
        let inv = p.inverse();
        assert!(p.compose(&inv).unwrap().is_identity() || inv.compose(&p).unwrap().is_identity());
        assert_eq!(p.old_to_new()[2], 0);
    }

    #[test]
    fn from_old_to_new_is_inverse_of_from_new_to_old() {
        let v = vec![2, 0, 3, 1];
        let a = Permutation::from_new_to_old(v.clone()).unwrap();
        let b = Permutation::from_old_to_new(v).unwrap();
        assert_eq!(a, b.inverse());
    }

    #[test]
    fn apply_and_unapply_roundtrip() {
        let p = Permutation::from_new_to_old(vec![2, 0, 1]).unwrap();
        let x = vec![10.0, 20.0, 30.0];
        let y = p.apply_vec(&x).unwrap();
        assert_eq!(y, vec![30.0, 10.0, 20.0]);
        let back = p.apply_inverse_vec(&y).unwrap();
        assert_eq!(back, x);
        assert!(p.apply_vec(&[1.0]).is_err());
        assert!(p.apply_inverse_vec(&[1.0]).is_err());
    }

    #[test]
    fn compose_applies_right_then_left() {
        // q reverses, p rotates.
        let q = Permutation::from_new_to_old(vec![2, 1, 0]).unwrap();
        let p = Permutation::from_new_to_old(vec![1, 2, 0]).unwrap();
        let pq = p.compose(&q).unwrap();
        let x = vec![1.0, 2.0, 3.0];
        let expected = p.apply_vec(&q.apply_vec(&x).unwrap()).unwrap();
        assert_eq!(pq.apply_vec(&x).unwrap(), expected);
        assert!(p.compose(&Permutation::identity(4)).is_err());
    }

    #[test]
    fn ordering_roundtrip_solution_recovery() {
        // If x' solves the reordered system, x = Q x' must solve the original.
        // Here we only check the vector plumbing: Q x' scatters back.
        let q = Permutation::from_new_to_old(vec![1, 2, 0]).unwrap();
        let o = Ordering::new(Permutation::identity(3), q.clone());
        let x_prime = vec![7.0, 8.0, 9.0];
        let x = o.recover_solution(&x_prime).unwrap();
        // x' was indexed by new columns; x[old] = x'[new] where old = q(new).
        assert_eq!(x, vec![9.0, 7.0, 8.0]);
        assert!(!o.is_symmetric());
    }

    #[test]
    fn symmetric_ordering_shares_permutation() {
        let p = Permutation::from_new_to_old(vec![1, 0]).unwrap();
        let o = Ordering::symmetric(p.clone());
        assert!(o.is_symmetric());
        assert_eq!(o.row(), &p);
        assert_eq!(o.col(), &p);
        assert!(!o.is_identity());
        assert!(Ordering::identity(2).is_identity());
    }

    #[test]
    fn permute_rhs_uses_row_permutation() {
        let p = Permutation::from_new_to_old(vec![1, 0]).unwrap();
        let o = Ordering::new(p, Permutation::identity(2));
        assert_eq!(o.permute_rhs(&[3.0, 4.0]).unwrap(), vec![4.0, 3.0]);
    }
}
