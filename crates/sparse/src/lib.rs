//! # clude-sparse
//!
//! Sparse matrix substrate for the CLUDE (EDBT 2014) reproduction.
//!
//! The paper operates on matrices derived from evolving graph snapshots; this
//! crate provides everything those matrices need *below* the LU engine:
//!
//! * [`coo::CooMatrix`] — triplet assembly format,
//! * [`csr::CsrMatrix`] — the immutable computational format,
//! * [`pattern::SparsityPattern`] — `sp(A)` with the paper's `mes` similarity
//!   (Definition 6) and the `A_∩` / `A_∪` bounding constructions,
//! * [`perm::Permutation`] / [`perm::Ordering`] — matrix orderings `O = (P, Q)`
//!   (Definition 2),
//! * [`adjacency::AdjacencyMatrix`] — the dynamic adjacency-list storage of
//!   the paper's Figure 4, with structural-operation accounting,
//! * [`dense::DenseMatrix`] — dense reference algorithms used as test oracles,
//! * [`vector`] — dense vector helpers.
//!
//! Everything is `f64`-valued and indices are `usize`.

#![forbid(unsafe_code)]
// Indexed loops mirror the paper's matrix notation throughout this crate.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]

pub mod adjacency;
pub mod coo;
pub mod csr;
pub mod dense;
pub mod error;
pub mod pattern;
pub mod perm;
pub mod vector;

pub use adjacency::{AdjacencyMatrix, StructuralStats};
pub use coo::CooMatrix;
pub use csr::CsrMatrix;
pub use dense::DenseMatrix;
pub use error::{SparseError, SparseResult};
pub use pattern::SparsityPattern;
pub use perm::{Ordering, Permutation};
