//! Sparsity patterns (`sp(A)` in the paper).
//!
//! A [`SparsityPattern`] is the set of index pairs `(i, j)` at which a matrix
//! holds a structurally non-zero value (Definition 1 of the paper).  It is the
//! object on which the paper's similarity measure (`mes`, Definition 6), the
//! bounding matrices `A_∩` / `A_∪` (Definition 7) and the symbolic machinery
//! of the LU engine operate.
//!
//! The pattern is stored row-major with sorted column indices per row, which
//! is the layout the symbolic elimination in `clude-lu` consumes directly.

use crate::error::{SparseError, SparseResult};

/// The set of structurally non-zero positions of a sparse matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparsityPattern {
    n_rows: usize,
    n_cols: usize,
    /// For each row, the sorted list of column indices with a non-zero.
    rows: Vec<Vec<usize>>,
}

impl SparsityPattern {
    /// Creates an empty pattern of the given shape.
    pub fn empty(n_rows: usize, n_cols: usize) -> Self {
        SparsityPattern {
            n_rows,
            n_cols,
            rows: vec![Vec::new(); n_rows],
        }
    }

    /// Creates a pattern with non-zeros on the main diagonal only.
    pub fn identity(n: usize) -> Self {
        SparsityPattern {
            n_rows: n,
            n_cols: n,
            rows: (0..n).map(|i| vec![i]).collect(),
        }
    }

    /// Builds a pattern from an iterator of `(row, col)` pairs.
    ///
    /// Duplicates are tolerated and collapsed.  Returns an error if any index
    /// is out of bounds.
    pub fn from_entries<I>(n_rows: usize, n_cols: usize, entries: I) -> SparseResult<Self>
    where
        I: IntoIterator<Item = (usize, usize)>,
    {
        let mut rows: Vec<Vec<usize>> = vec![Vec::new(); n_rows];
        for (r, c) in entries {
            if r >= n_rows || c >= n_cols {
                return Err(SparseError::IndexOutOfBounds {
                    row: r,
                    col: c,
                    n_rows,
                    n_cols,
                });
            }
            rows[r].push(c);
        }
        for row in &mut rows {
            row.sort_unstable();
            row.dedup();
        }
        Ok(SparsityPattern {
            n_rows,
            n_cols,
            rows,
        })
    }

    /// Builds a pattern directly from per-row sorted column lists.
    ///
    /// The caller must guarantee each row is sorted, deduplicated and in
    /// bounds; this is checked with debug assertions only.
    pub fn from_sorted_rows(n_cols: usize, rows: Vec<Vec<usize>>) -> Self {
        #[cfg(debug_assertions)]
        for row in &rows {
            debug_assert!(row.windows(2).all(|w| w[0] < w[1]), "rows must be sorted");
            debug_assert!(row.iter().all(|&c| c < n_cols), "column out of bounds");
        }
        SparsityPattern {
            n_rows: rows.len(),
            n_cols,
            rows,
        }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Number of structural non-zeros, i.e. `|sp(A)|`.
    pub fn nnz(&self) -> usize {
        self.rows.iter().map(Vec::len).sum()
    }

    /// Returns `true` when position `(i, j)` is in the pattern.
    pub fn contains(&self, i: usize, j: usize) -> bool {
        i < self.n_rows && self.rows[i].binary_search(&j).is_ok()
    }

    /// Inserts `(i, j)`; returns `true` if it was newly added.
    ///
    /// # Panics
    /// Panics when the index is out of bounds.
    pub fn insert(&mut self, i: usize, j: usize) -> bool {
        assert!(i < self.n_rows && j < self.n_cols, "index out of bounds");
        match self.rows[i].binary_search(&j) {
            Ok(_) => false,
            Err(pos) => {
                self.rows[i].insert(pos, j);
                true
            }
        }
    }

    /// The sorted column indices of row `i`.
    pub fn row(&self, i: usize) -> &[usize] {
        &self.rows[i]
    }

    /// Iterates over all `(row, col)` pairs in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.rows
            .iter()
            .enumerate()
            .flat_map(|(r, cols)| cols.iter().map(move |&c| (r, c)))
    }

    /// Set union of two patterns of the same shape (the pattern of `A_∪`).
    pub fn union(&self, other: &SparsityPattern) -> SparseResult<SparsityPattern> {
        self.check_shape(other)?;
        let rows = self
            .rows
            .iter()
            .zip(other.rows.iter())
            .map(|(a, b)| merge_union(a, b))
            .collect();
        Ok(SparsityPattern {
            n_rows: self.n_rows,
            n_cols: self.n_cols,
            rows,
        })
    }

    /// Set intersection of two patterns of the same shape (the pattern of `A_∩`).
    pub fn intersection(&self, other: &SparsityPattern) -> SparseResult<SparsityPattern> {
        self.check_shape(other)?;
        let rows = self
            .rows
            .iter()
            .zip(other.rows.iter())
            .map(|(a, b)| merge_intersection(a, b))
            .collect();
        Ok(SparsityPattern {
            n_rows: self.n_rows,
            n_cols: self.n_cols,
            rows,
        })
    }

    /// Number of positions present in both patterns, `|sp(A) ∩ sp(B)|`,
    /// computed without materialising the intersection.
    pub fn intersection_size(&self, other: &SparsityPattern) -> SparseResult<usize> {
        self.check_shape(other)?;
        Ok(self
            .rows
            .iter()
            .zip(other.rows.iter())
            .map(|(a, b)| count_intersection(a, b))
            .sum())
    }

    /// Returns `true` if every entry of `self` also appears in `other`.
    pub fn is_subset_of(&self, other: &SparsityPattern) -> bool {
        if self.n_rows != other.n_rows || self.n_cols != other.n_cols {
            return false;
        }
        self.rows
            .iter()
            .zip(other.rows.iter())
            .all(|(a, b)| count_intersection(a, b) == a.len())
    }

    /// The *matrix edit similarity* of Definition 6:
    ///
    /// `mes(A, B) = 2 |sp(A) ∩ sp(B)| / (|sp(A)| + |sp(B)|)`.
    ///
    /// Two empty patterns are defined to have similarity 1.
    pub fn mes(&self, other: &SparsityPattern) -> SparseResult<f64> {
        let inter = self.intersection_size(other)?;
        let denom = self.nnz() + other.nnz();
        if denom == 0 {
            return Ok(1.0);
        }
        Ok(2.0 * inter as f64 / denom as f64)
    }

    /// Returns `true` when the pattern is structurally symmetric
    /// (`(i, j)` present iff `(j, i)` present).  Requires a square shape.
    pub fn is_symmetric(&self) -> bool {
        if self.n_rows != self.n_cols {
            return false;
        }
        self.iter().all(|(i, j)| self.contains(j, i))
    }

    /// Transposed pattern.
    pub fn transpose(&self) -> SparsityPattern {
        let mut rows: Vec<Vec<usize>> = vec![Vec::new(); self.n_cols];
        for (i, j) in self.iter() {
            rows[j].push(i);
        }
        // Row-major iteration pushes rows in increasing i, so each list is
        // already sorted.
        SparsityPattern {
            n_rows: self.n_cols,
            n_cols: self.n_rows,
            rows,
        }
    }

    fn check_shape(&self, other: &SparsityPattern) -> SparseResult<()> {
        if self.n_rows != other.n_rows || self.n_cols != other.n_cols {
            return Err(SparseError::ShapeMismatch {
                left: (self.n_rows, self.n_cols),
                right: (other.n_rows, other.n_cols),
            });
        }
        Ok(())
    }
}

fn merge_union(a: &[usize], b: &[usize]) -> Vec<usize> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut ia, mut ib) = (0, 0);
    while ia < a.len() && ib < b.len() {
        match a[ia].cmp(&b[ib]) {
            std::cmp::Ordering::Less => {
                out.push(a[ia]);
                ia += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[ib]);
                ib += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[ia]);
                ia += 1;
                ib += 1;
            }
        }
    }
    out.extend_from_slice(&a[ia..]);
    out.extend_from_slice(&b[ib..]);
    out
}

fn merge_intersection(a: &[usize], b: &[usize]) -> Vec<usize> {
    let mut out = Vec::new();
    let (mut ia, mut ib) = (0, 0);
    while ia < a.len() && ib < b.len() {
        match a[ia].cmp(&b[ib]) {
            std::cmp::Ordering::Less => ia += 1,
            std::cmp::Ordering::Greater => ib += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[ia]);
                ia += 1;
                ib += 1;
            }
        }
    }
    out
}

fn count_intersection(a: &[usize], b: &[usize]) -> usize {
    let mut count = 0;
    let (mut ia, mut ib) = (0, 0);
    while ia < a.len() && ib < b.len() {
        match a[ia].cmp(&b[ib]) {
            std::cmp::Ordering::Less => ia += 1,
            std::cmp::Ordering::Greater => ib += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                ia += 1;
                ib += 1;
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pat(entries: &[(usize, usize)]) -> SparsityPattern {
        SparsityPattern::from_entries(4, 4, entries.iter().copied()).unwrap()
    }

    #[test]
    fn empty_pattern_has_no_entries() {
        let p = SparsityPattern::empty(3, 5);
        assert_eq!(p.nnz(), 0);
        assert_eq!(p.n_rows(), 3);
        assert_eq!(p.n_cols(), 5);
        assert!(!p.contains(0, 0));
    }

    #[test]
    fn identity_pattern() {
        let p = SparsityPattern::identity(3);
        assert_eq!(p.nnz(), 3);
        assert!(p.contains(0, 0) && p.contains(1, 1) && p.contains(2, 2));
        assert!(!p.contains(0, 1));
        assert!(p.is_symmetric());
    }

    #[test]
    fn from_entries_dedups_and_sorts() {
        let p = pat(&[(0, 3), (0, 1), (0, 3), (2, 2)]);
        assert_eq!(p.nnz(), 3);
        assert_eq!(p.row(0), &[1, 3]);
        assert_eq!(p.row(2), &[2]);
    }

    #[test]
    fn from_entries_rejects_out_of_bounds() {
        let err = SparsityPattern::from_entries(2, 2, vec![(0, 5)]).unwrap_err();
        assert!(matches!(err, SparseError::IndexOutOfBounds { .. }));
    }

    #[test]
    fn insert_reports_novelty() {
        let mut p = SparsityPattern::empty(2, 2);
        assert!(p.insert(0, 1));
        assert!(!p.insert(0, 1));
        assert!(p.contains(0, 1));
        assert_eq!(p.nnz(), 1);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn insert_panics_out_of_bounds() {
        let mut p = SparsityPattern::empty(2, 2);
        p.insert(5, 0);
    }

    #[test]
    fn union_and_intersection() {
        let a = pat(&[(0, 0), (0, 1), (1, 2)]);
        let b = pat(&[(0, 1), (1, 2), (3, 3)]);
        let u = a.union(&b).unwrap();
        let i = a.intersection(&b).unwrap();
        assert_eq!(u.nnz(), 4);
        assert_eq!(i.nnz(), 2);
        assert!(u.contains(3, 3) && u.contains(0, 0));
        assert!(i.contains(0, 1) && i.contains(1, 2));
        assert!(!i.contains(0, 0));
        assert_eq!(a.intersection_size(&b).unwrap(), 2);
    }

    #[test]
    fn union_shape_mismatch_errors() {
        let a = SparsityPattern::empty(2, 2);
        let b = SparsityPattern::empty(3, 3);
        assert!(matches!(
            a.union(&b).unwrap_err(),
            SparseError::ShapeMismatch { .. }
        ));
    }

    #[test]
    fn subset_relation() {
        let a = pat(&[(0, 0), (1, 2)]);
        let b = pat(&[(0, 0), (1, 2), (3, 3)]);
        assert!(a.is_subset_of(&b));
        assert!(!b.is_subset_of(&a));
        assert!(a.is_subset_of(&a));
    }

    #[test]
    fn mes_matches_definition() {
        // |sp(A)| = 3, |sp(B)| = 3, intersection = 2 -> mes = 2*2/6
        let a = pat(&[(0, 0), (0, 1), (1, 2)]);
        let b = pat(&[(0, 1), (1, 2), (3, 3)]);
        let m = a.mes(&b).unwrap();
        assert!((m - 4.0 / 6.0).abs() < 1e-12);
        // Identical patterns have similarity 1.
        assert!((a.mes(&a).unwrap() - 1.0).abs() < 1e-12);
        // Disjoint patterns have similarity 0.
        let c = pat(&[(2, 0)]);
        assert_eq!(a.mes(&c).unwrap(), 0.0);
    }

    #[test]
    fn mes_of_empty_patterns_is_one() {
        let a = SparsityPattern::empty(3, 3);
        assert_eq!(a.mes(&a).unwrap(), 1.0);
    }

    #[test]
    fn symmetry_detection() {
        let s = pat(&[(0, 1), (1, 0), (2, 2)]);
        assert!(s.is_symmetric());
        let ns = pat(&[(0, 1)]);
        assert!(!ns.is_symmetric());
        let rect = SparsityPattern::empty(2, 3);
        assert!(!rect.is_symmetric());
    }

    #[test]
    fn transpose_roundtrip() {
        let a = pat(&[(0, 1), (1, 3), (2, 0), (3, 3)]);
        let t = a.transpose();
        assert_eq!(t.nnz(), a.nnz());
        for (i, j) in a.iter() {
            assert!(t.contains(j, i));
        }
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn iter_is_row_major_sorted() {
        let a = pat(&[(1, 2), (0, 3), (0, 1), (1, 0)]);
        let collected: Vec<_> = a.iter().collect();
        assert_eq!(collected, vec![(0, 1), (0, 3), (1, 0), (1, 2)]);
    }
}
