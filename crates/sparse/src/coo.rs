//! Coordinate (triplet) format sparse matrices.
//!
//! [`CooMatrix`] is the assembly format: entries are pushed in any order and
//! converted to [`crate::csr::CsrMatrix`] for computation.  Duplicate entries
//! are summed during conversion, which makes incremental graph-to-matrix
//! assembly straightforward.

use crate::error::{SparseError, SparseResult};

/// A sparse matrix stored as a list of `(row, col, value)` triplets.
#[derive(Debug, Clone, PartialEq)]
pub struct CooMatrix {
    n_rows: usize,
    n_cols: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl CooMatrix {
    /// Creates an empty triplet matrix of the given shape.
    pub fn new(n_rows: usize, n_cols: usize) -> Self {
        CooMatrix {
            n_rows,
            n_cols,
            entries: Vec::new(),
        }
    }

    /// Creates an empty triplet matrix with a pre-allocated entry capacity.
    pub fn with_capacity(n_rows: usize, n_cols: usize, capacity: usize) -> Self {
        CooMatrix {
            n_rows,
            n_cols,
            entries: Vec::with_capacity(capacity),
        }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Number of stored triplets (duplicates counted separately).
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Appends a triplet.  Zero values are kept: callers that want to encode
    /// an explicit structural zero (e.g. a vacated position in a delta) may do
    /// so; [`crate::csr::CsrMatrix::from_coo`] keeps explicit zeros out of the
    /// numeric pattern only when asked to prune.
    pub fn push(&mut self, row: usize, col: usize, value: f64) -> SparseResult<()> {
        if row >= self.n_rows || col >= self.n_cols {
            return Err(SparseError::IndexOutOfBounds {
                row,
                col,
                n_rows: self.n_rows,
                n_cols: self.n_cols,
            });
        }
        self.entries.push((row, col, value));
        Ok(())
    }

    /// Iterates over the stored triplets.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.entries.iter().copied()
    }

    /// Builds an identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = CooMatrix::with_capacity(n, n, n);
        for i in 0..n {
            m.entries.push((i, i, 1.0));
        }
        m
    }

    /// Consumes the matrix and returns the triplets.
    pub fn into_entries(self) -> Vec<(usize, usize, f64)> {
        self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_iterate() {
        let mut m = CooMatrix::new(3, 3);
        m.push(0, 1, 2.0).unwrap();
        m.push(2, 2, -1.5).unwrap();
        assert_eq!(m.nnz(), 2);
        let v: Vec<_> = m.iter().collect();
        assert_eq!(v, vec![(0, 1, 2.0), (2, 2, -1.5)]);
    }

    #[test]
    fn push_out_of_bounds_errors() {
        let mut m = CooMatrix::new(2, 2);
        assert!(m.push(2, 0, 1.0).is_err());
        assert!(m.push(0, 2, 1.0).is_err());
        assert_eq!(m.nnz(), 0);
    }

    #[test]
    fn identity_has_n_entries() {
        let m = CooMatrix::identity(4);
        assert_eq!(m.nnz(), 4);
        assert!(m.iter().all(|(i, j, v)| i == j && v == 1.0));
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let m = CooMatrix::with_capacity(5, 6, 100);
        assert_eq!(m.n_rows(), 5);
        assert_eq!(m.n_cols(), 6);
        assert_eq!(m.nnz(), 0);
    }

    #[test]
    fn into_entries_returns_pushed_triplets() {
        let mut m = CooMatrix::new(2, 2);
        m.push(0, 0, 1.0).unwrap();
        m.push(1, 1, 2.0).unwrap();
        assert_eq!(m.into_entries(), vec![(0, 0, 1.0), (1, 1, 2.0)]);
    }
}
