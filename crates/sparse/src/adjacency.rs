//! Dynamic adjacency-list sparse matrices (paper Figure 4).
//!
//! The paper stores a matrix and its LU factors as adjacency lists: one list
//! of `(column, value)` nodes per row and one list of `(row, value)` nodes per
//! column.  When an incremental algorithm (Bennett) creates a fill-in that is
//! not yet present, the lists must be *structurally* modified, and the paper
//! reports that roughly 70 % of the incremental algorithm's time goes into
//! such structural maintenance.  [`AdjacencyMatrix`] reproduces this data
//! structure and counts every structural operation so the reproduction can
//! report the same cost breakdown.

use crate::csr::CsrMatrix;
use crate::pattern::SparsityPattern;

/// Counters describing how much structural work a dynamic matrix has done.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StructuralStats {
    /// Number of list nodes inserted (new structural non-zeros).
    pub inserts: usize,
    /// Number of list nodes removed.
    pub removals: usize,
    /// Number of list traversal steps performed while searching positions.
    pub probes: usize,
}

impl StructuralStats {
    /// Total number of structural list modifications.
    pub fn modifications(&self) -> usize {
        self.inserts + self.removals
    }
}

/// A mutable sparse matrix stored as row-wise and column-wise adjacency lists.
#[derive(Debug, Clone)]
pub struct AdjacencyMatrix {
    n_rows: usize,
    n_cols: usize,
    /// Per row: sorted list of (column, value).
    rows: Vec<Vec<(usize, f64)>>,
    /// Per column: sorted list of row indices (structure only; values live in
    /// `rows`).  Kept so column scans, as required by Crout's method and by
    /// Markowitz counts, do not need a full matrix sweep.
    cols: Vec<Vec<usize>>,
    stats: StructuralStats,
}

impl AdjacencyMatrix {
    /// Creates an empty dynamic matrix.
    pub fn zeros(n_rows: usize, n_cols: usize) -> Self {
        AdjacencyMatrix {
            n_rows,
            n_cols,
            rows: vec![Vec::new(); n_rows],
            cols: vec![Vec::new(); n_cols],
            stats: StructuralStats::default(),
        }
    }

    /// Builds a dynamic matrix from a CSR matrix.
    pub fn from_csr(csr: &CsrMatrix) -> Self {
        let mut m = AdjacencyMatrix::zeros(csr.n_rows(), csr.n_cols());
        for (i, j, v) in csr.iter() {
            m.rows[i].push((j, v));
            m.cols[j].push(i);
        }
        // CSR iteration is row-major sorted, so rows are sorted; columns were
        // pushed with increasing row index, so they are sorted too.
        m
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.rows.iter().map(Vec::len).sum()
    }

    /// Structural operation counters accumulated so far.
    pub fn stats(&self) -> StructuralStats {
        self.stats
    }

    /// Resets the structural counters.
    pub fn reset_stats(&mut self) {
        self.stats = StructuralStats::default();
    }

    /// Reads the value at `(i, j)`; absent positions read as `0.0`.
    pub fn get(&mut self, i: usize, j: usize) -> f64 {
        let row = &self.rows[i];
        match row.binary_search_by_key(&j, |&(c, _)| c) {
            Ok(pos) => {
                self.stats.probes += 1;
                row[pos].1
            }
            Err(_) => {
                self.stats.probes += 1;
                0.0
            }
        }
    }

    /// Reads the value at `(i, j)` without touching the probe counters.
    pub fn peek(&self, i: usize, j: usize) -> f64 {
        match self.rows[i].binary_search_by_key(&j, |&(c, _)| c) {
            Ok(pos) => self.rows[i][pos].1,
            Err(_) => 0.0,
        }
    }

    /// Returns `true` when `(i, j)` is structurally present.
    pub fn contains(&self, i: usize, j: usize) -> bool {
        self.rows[i].binary_search_by_key(&j, |&(c, _)| c).is_ok()
    }

    /// Sets `(i, j)` to `value`, inserting a node if the position is absent.
    /// Returns `true` when a structural insert happened.
    pub fn set(&mut self, i: usize, j: usize, value: f64) -> bool {
        assert!(i < self.n_rows && j < self.n_cols, "index out of bounds");
        match self.rows[i].binary_search_by_key(&j, |&(c, _)| c) {
            Ok(pos) => {
                self.stats.probes += 1;
                self.rows[i][pos].1 = value;
                false
            }
            Err(pos) => {
                self.stats.probes += 1;
                self.stats.inserts += 1;
                self.rows[i].insert(pos, (j, value));
                let cpos = self.cols[j].binary_search(&i).unwrap_err();
                self.cols[j].insert(cpos, i);
                true
            }
        }
    }

    /// Adds `delta` to `(i, j)`, inserting the position when absent.
    pub fn add_to(&mut self, i: usize, j: usize, delta: f64) {
        let current = self.peek(i, j);
        self.set(i, j, current + delta);
    }

    /// Structurally removes `(i, j)`; returns `true` when something was
    /// removed.
    pub fn remove(&mut self, i: usize, j: usize) -> bool {
        match self.rows[i].binary_search_by_key(&j, |&(c, _)| c) {
            Ok(pos) => {
                self.rows[i].remove(pos);
                if let Ok(cpos) = self.cols[j].binary_search(&i) {
                    self.cols[j].remove(cpos);
                }
                self.stats.removals += 1;
                true
            }
            Err(_) => false,
        }
    }

    /// Sorted `(column, value)` entries of row `i`.
    pub fn row(&self, i: usize) -> &[(usize, f64)] {
        &self.rows[i]
    }

    /// Sorted row indices with a structural entry in column `j`.
    pub fn col_rows(&self, j: usize) -> &[usize] {
        &self.cols[j]
    }

    /// The current sparsity pattern.
    pub fn pattern(&self) -> SparsityPattern {
        let rows = self
            .rows
            .iter()
            .map(|r| r.iter().map(|&(c, _)| c).collect())
            .collect();
        SparsityPattern::from_sorted_rows(self.n_cols, rows)
    }

    /// Converts to CSR (dropping the structural counters).
    pub fn to_csr(&self) -> CsrMatrix {
        let mut row_ptr = Vec::with_capacity(self.n_rows + 1);
        let mut col_idx = Vec::with_capacity(self.nnz());
        let mut values = Vec::with_capacity(self.nnz());
        row_ptr.push(0);
        for row in &self.rows {
            for &(c, v) in row {
                col_idx.push(c);
                values.push(v);
            }
            row_ptr.push(col_idx.len());
        }
        CsrMatrix::from_raw_parts(self.n_rows, self.n_cols, row_ptr, col_idx, values)
    }

    /// Rebuilds the matrix so its structure exactly matches `pattern`,
    /// retaining values at retained positions and zero-filling new positions.
    /// Every inserted or removed node is counted in the structural stats —
    /// this is the "restructuring" cost that dominates a straightforwardly
    /// incremental implementation (paper §4, discussion before CLUDE).
    pub fn restructure_to(&mut self, pattern: &SparsityPattern) {
        assert_eq!(pattern.n_rows(), self.n_rows);
        assert_eq!(pattern.n_cols(), self.n_cols);
        let mut new_rows: Vec<Vec<(usize, f64)>> = Vec::with_capacity(self.n_rows);
        let mut new_cols: Vec<Vec<usize>> = vec![Vec::new(); self.n_cols];
        for i in 0..self.n_rows {
            let old = &self.rows[i];
            let target = pattern.row(i);
            let mut merged = Vec::with_capacity(target.len());
            let mut oi = 0;
            for &j in target {
                // Advance through old entries, counting removals for entries
                // that are not retained.
                while oi < old.len() && old[oi].0 < j {
                    self.stats.removals += 1;
                    oi += 1;
                }
                self.stats.probes += 1;
                if oi < old.len() && old[oi].0 == j {
                    merged.push((j, old[oi].1));
                    oi += 1;
                } else {
                    self.stats.inserts += 1;
                    merged.push((j, 0.0));
                }
                new_cols[j].push(i);
            }
            while oi < old.len() {
                self.stats.removals += 1;
                oi += 1;
            }
            new_rows.push(merged);
        }
        self.rows = new_rows;
        self.cols = new_cols;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    fn sample_csr() -> CsrMatrix {
        let mut coo = CooMatrix::new(3, 3);
        for &(i, j, v) in &[(0, 0, 1.0), (0, 2, 2.0), (1, 1, 3.0), (2, 0, 4.0)] {
            coo.push(i, j, v).unwrap();
        }
        CsrMatrix::from_coo(&coo)
    }

    #[test]
    fn from_csr_preserves_entries() {
        let csr = sample_csr();
        let mut adj = AdjacencyMatrix::from_csr(&csr);
        assert_eq!(adj.nnz(), 4);
        assert_eq!(adj.get(0, 2), 2.0);
        assert_eq!(adj.get(1, 0), 0.0);
        assert_eq!(adj.to_csr(), csr);
    }

    #[test]
    fn set_inserts_and_updates() {
        let mut adj = AdjacencyMatrix::zeros(2, 2);
        assert!(adj.set(0, 1, 5.0));
        assert!(!adj.set(0, 1, 6.0));
        assert_eq!(adj.peek(0, 1), 6.0);
        assert_eq!(adj.stats().inserts, 1);
        assert!(adj.contains(0, 1));
        assert!(!adj.contains(1, 0));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn set_out_of_bounds_panics() {
        let mut adj = AdjacencyMatrix::zeros(2, 2);
        adj.set(5, 0, 1.0);
    }

    #[test]
    fn add_to_accumulates() {
        let mut adj = AdjacencyMatrix::zeros(2, 2);
        adj.add_to(1, 1, 2.0);
        adj.add_to(1, 1, 3.0);
        assert_eq!(adj.peek(1, 1), 5.0);
        assert_eq!(adj.stats().inserts, 1);
    }

    #[test]
    fn remove_deletes_structure() {
        let mut adj = AdjacencyMatrix::from_csr(&sample_csr());
        assert!(adj.remove(0, 2));
        assert!(!adj.remove(0, 2));
        assert!(!adj.contains(0, 2));
        assert_eq!(adj.stats().removals, 1);
        assert_eq!(adj.col_rows(2), &[] as &[usize]);
    }

    #[test]
    fn column_lists_track_rows() {
        let adj = AdjacencyMatrix::from_csr(&sample_csr());
        assert_eq!(adj.col_rows(0), &[0, 2]);
        assert_eq!(adj.col_rows(1), &[1]);
    }

    #[test]
    fn pattern_matches_csr_pattern() {
        let csr = sample_csr();
        let adj = AdjacencyMatrix::from_csr(&csr);
        assert_eq!(adj.pattern(), csr.pattern());
    }

    #[test]
    fn restructure_counts_inserts_and_removals() {
        let csr = sample_csr();
        let mut adj = AdjacencyMatrix::from_csr(&csr);
        // Target pattern: keep (0,0), (1,1); drop (0,2),(2,0); add (2,2),(1,2).
        let target =
            SparsityPattern::from_entries(3, 3, vec![(0, 0), (1, 1), (1, 2), (2, 2)]).unwrap();
        adj.restructure_to(&target);
        assert_eq!(adj.pattern(), target);
        // Retained values survive, new positions are zero.
        assert_eq!(adj.peek(0, 0), 1.0);
        assert_eq!(adj.peek(1, 1), 3.0);
        assert_eq!(adj.peek(2, 2), 0.0);
        let stats = adj.stats();
        assert_eq!(stats.inserts, 2);
        assert_eq!(stats.removals, 2);
        assert!(stats.modifications() == 4);
    }

    #[test]
    fn reset_stats_clears_counters() {
        let mut adj = AdjacencyMatrix::zeros(2, 2);
        adj.set(0, 0, 1.0);
        assert_ne!(adj.stats(), StructuralStats::default());
        adj.reset_stats();
        assert_eq!(adj.stats(), StructuralStats::default());
    }
}
