//! Dynamic adjacency-list sparse matrices (paper Figure 4).
//!
//! The paper stores a matrix and its LU factors as adjacency lists: one list
//! of `(column, value)` nodes per row and one list of `(row, value)` nodes per
//! column.  When an incremental algorithm (Bennett) creates a fill-in that is
//! not yet present, the lists must be *structurally* modified, and the paper
//! reports that roughly 70 % of the incremental algorithm's time goes into
//! such structural maintenance.  [`AdjacencyMatrix`] reproduces this data
//! structure and counts every structural operation so the reproduction can
//! report the same cost breakdown.
//!
//! The layout is indexed for the Bennett hot path: each row keeps its column
//! indices and values in two parallel sorted arrays (so a row's structure is
//! a plain `&[usize]` slice), and each column keeps a sorted array of row
//! indices with an O(1) fast path for appends at the tail.  Column and row
//! scans return borrowed subslices — no per-call allocation.

use crate::csr::CsrMatrix;
use crate::pattern::SparsityPattern;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Counters describing how much structural work a dynamic matrix has done.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StructuralStats {
    /// Number of list nodes inserted (new structural non-zeros).
    pub inserts: usize,
    /// Number of list nodes removed.
    pub removals: usize,
    /// Number of list traversal steps performed while searching positions.
    pub probes: usize,
}

impl StructuralStats {
    /// Total number of structural list modifications.
    pub fn modifications(&self) -> usize {
        self.inserts + self.removals
    }
}

/// The traversal cost of one binary search over a sorted list of `len`
/// entries: the number of elements examined, `⌊log₂ len⌋ + 1` (an empty list
/// still costs one step — the probe that finds it empty).
#[inline]
fn search_steps(len: usize) -> usize {
    (usize::BITS - len.max(1).leading_zeros()) as usize
}

/// A mutable sparse matrix stored as row-wise and column-wise adjacency lists.
#[derive(Debug)]
pub struct AdjacencyMatrix {
    n_rows: usize,
    n_cols: usize,
    /// Per row: sorted column indices, parallel to `row_vals`.
    row_cols: Vec<Vec<usize>>,
    /// Per row: the values at `row_cols`' positions.
    row_vals: Vec<Vec<f64>>,
    /// Per column: sorted list of row indices (structure only; values live in
    /// the row arrays).  Kept so column scans, as required by Crout's method
    /// and by Markowitz counts, do not need a full matrix sweep.
    cols: Vec<Vec<usize>>,
    /// Structural inserts/removals only happen through `&mut self`.
    inserts: usize,
    removals: usize,
    /// Probes also accumulate through `&self` lookups (`get`, `peek`,
    /// `contains`, the slice scans), and snapshots are queried from many
    /// threads concurrently, so this counter is a relaxed atomic.
    probes: AtomicUsize,
}

impl Clone for AdjacencyMatrix {
    fn clone(&self) -> Self {
        AdjacencyMatrix {
            n_rows: self.n_rows,
            n_cols: self.n_cols,
            row_cols: self.row_cols.clone(),
            row_vals: self.row_vals.clone(),
            cols: self.cols.clone(),
            inserts: self.inserts,
            removals: self.removals,
            // lint: allow(atomic-ordering) — probe counter is a standalone
            // diagnostic tally; the clone needs no ordering with other memory.
            probes: AtomicUsize::new(self.probes.load(Ordering::Relaxed)),
        }
    }
}

impl AdjacencyMatrix {
    /// Creates an empty dynamic matrix.
    pub fn zeros(n_rows: usize, n_cols: usize) -> Self {
        AdjacencyMatrix {
            n_rows,
            n_cols,
            row_cols: vec![Vec::new(); n_rows],
            row_vals: vec![Vec::new(); n_rows],
            cols: vec![Vec::new(); n_cols],
            inserts: 0,
            removals: 0,
            probes: AtomicUsize::new(0),
        }
    }

    /// Builds a dynamic matrix from a CSR matrix.
    pub fn from_csr(csr: &CsrMatrix) -> Self {
        let mut m = AdjacencyMatrix::zeros(csr.n_rows(), csr.n_cols());
        for (i, j, v) in csr.iter() {
            m.row_cols[i].push(j);
            m.row_vals[i].push(v);
            m.cols[j].push(i);
        }
        // CSR iteration is row-major sorted, so rows are sorted; columns were
        // pushed with increasing row index, so they are sorted too.
        m
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.row_cols.iter().map(Vec::len).sum()
    }

    /// Structural operation counters accumulated so far.
    pub fn stats(&self) -> StructuralStats {
        StructuralStats {
            inserts: self.inserts,
            removals: self.removals,
            // lint: allow(atomic-ordering) — standalone diagnostic tally
            // read for stats; no cross-counter consistency is promised.
            probes: self.probes.load(Ordering::Relaxed),
        }
    }

    /// Resets the structural counters.
    pub fn reset_stats(&mut self) {
        self.inserts = 0;
        self.removals = 0;
        *self.probes.get_mut() = 0;
    }

    #[inline]
    fn count_probes(&self, steps: usize) {
        // lint: allow(atomic-ordering) — hot-path probe accounting must not
        // introduce fences; the tally synchronises nothing.
        self.probes.fetch_add(steps, Ordering::Relaxed);
    }

    /// Binary-searches row `i` for column `j`, accounting the search steps.
    #[inline]
    fn probe_row(&self, i: usize, j: usize) -> Result<usize, usize> {
        let row = &self.row_cols[i];
        self.count_probes(search_steps(row.len()));
        row.binary_search(&j)
    }

    /// Inserts `i` into the sorted row list of column `j`, with an O(1) fast
    /// path for appends past the current tail (the common case when fill-ins
    /// arrive in ascending row order).
    fn col_index_insert(&mut self, i: usize, j: usize) {
        let steps = match self.cols[j].last() {
            Some(&last) if last >= i => {
                let col = &mut self.cols[j];
                let steps = search_steps(col.len());
                let pos = col.binary_search(&i).unwrap_err();
                col.insert(pos, i);
                steps
            }
            _ => {
                self.cols[j].push(i);
                1
            }
        };
        self.count_probes(steps);
    }

    /// Inserts `(i, j) = value` at row position `pos` (from a failed row
    /// search), maintaining the column index and the insert counter.
    fn insert_at(&mut self, i: usize, j: usize, pos: usize, value: f64) {
        self.inserts += 1;
        self.row_cols[i].insert(pos, j);
        self.row_vals[i].insert(pos, value);
        self.col_index_insert(i, j);
    }

    /// Reads the value at `(i, j)`; absent positions read as `0.0`.
    ///
    /// Like every lookup, this accounts its search steps in the probe
    /// counter (the paper's structural-cost model bills all list
    /// traversals); [`AdjacencyMatrix::peek`] is an alias.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.peek(i, j)
    }

    /// Alias of [`AdjacencyMatrix::get`], kept for callers of the historical
    /// non-counting read; probe accounting now covers reads too.
    pub fn peek(&self, i: usize, j: usize) -> f64 {
        match self.probe_row(i, j) {
            Ok(pos) => self.row_vals[i][pos],
            Err(_) => 0.0,
        }
    }

    /// Returns `true` when `(i, j)` is structurally present.
    pub fn contains(&self, i: usize, j: usize) -> bool {
        self.probe_row(i, j).is_ok()
    }

    /// Sets `(i, j)` to `value`, inserting a node if the position is absent.
    /// Returns `true` when a structural insert happened.
    pub fn set(&mut self, i: usize, j: usize, value: f64) -> bool {
        assert!(i < self.n_rows && j < self.n_cols, "index out of bounds");
        match self.probe_row(i, j) {
            Ok(pos) => {
                self.row_vals[i][pos] = value;
                false
            }
            Err(pos) => {
                self.insert_at(i, j, pos, value);
                true
            }
        }
    }

    /// Sets `(i, j)` to `value` with a single search, but skips the
    /// structural insert when the position is absent and `value` is exactly
    /// zero.  This is the Bennett write path for dynamic factors: the lists
    /// only grow when a genuine fill-in appears.  Returns `true` when a
    /// structural insert happened.
    pub fn set_or_drop_zero(&mut self, i: usize, j: usize, value: f64) -> bool {
        assert!(i < self.n_rows && j < self.n_cols, "index out of bounds");
        match self.probe_row(i, j) {
            Ok(pos) => {
                self.row_vals[i][pos] = value;
                false
            }
            Err(_) if value == 0.0 => false,
            Err(pos) => {
                self.insert_at(i, j, pos, value);
                true
            }
        }
    }

    /// Adds `delta` to `(i, j)` with a single search, inserting the position
    /// when absent.
    pub fn add_to(&mut self, i: usize, j: usize, delta: f64) {
        assert!(i < self.n_rows && j < self.n_cols, "index out of bounds");
        match self.probe_row(i, j) {
            Ok(pos) => {
                self.row_vals[i][pos] += delta;
            }
            Err(pos) => {
                self.insert_at(i, j, pos, delta);
            }
        }
    }

    /// Structurally removes `(i, j)`; returns `true` when something was
    /// removed.
    pub fn remove(&mut self, i: usize, j: usize) -> bool {
        match self.probe_row(i, j) {
            Ok(pos) => {
                self.row_cols[i].remove(pos);
                self.row_vals[i].remove(pos);
                let steps = search_steps(self.cols[j].len());
                self.count_probes(steps);
                if let Ok(cpos) = self.cols[j].binary_search(&i) {
                    self.cols[j].remove(cpos);
                }
                self.removals += 1;
                true
            }
            Err(_) => false,
        }
    }

    /// Sorted `(columns, values)` parallel slices of row `i`.
    pub fn row(&self, i: usize) -> (&[usize], &[f64]) {
        (&self.row_cols[i], &self.row_vals[i])
    }

    /// Sorted columns of row `i` together with a *mutable* view of its
    /// values.  Rewriting values through this slice is a purely numeric
    /// operation: the structure (and with it `nnz` and the structural
    /// counters) cannot change, which is exactly the contract a
    /// pattern-frozen refactorization needs.
    pub fn row_mut(&mut self, i: usize) -> (&[usize], &mut [f64]) {
        (&self.row_cols[i], &mut self.row_vals[i])
    }

    /// Sorted column indices of row `i`.
    pub fn row_cols(&self, i: usize) -> &[usize] {
        &self.row_cols[i]
    }

    /// Values of row `i`, parallel to [`AdjacencyMatrix::row_cols`].
    pub fn row_vals(&self, i: usize) -> &[f64] {
        &self.row_vals[i]
    }

    /// The columns of row `i` strictly greater than `j`, as a borrowed sorted
    /// slice (one accounted binary search, no allocation).
    pub fn row_cols_after(&self, i: usize, j: usize) -> &[usize] {
        let row = &self.row_cols[i];
        self.count_probes(search_steps(row.len()));
        &row[row.partition_point(|&c| c <= j)..]
    }

    /// Sorted row indices with a structural entry in column `j`.
    pub fn col_rows(&self, j: usize) -> &[usize] {
        &self.cols[j]
    }

    /// The rows of column `j` strictly greater than `i`, as a borrowed sorted
    /// slice (one accounted binary search, no allocation).
    pub fn col_rows_after(&self, j: usize, i: usize) -> &[usize] {
        let col = &self.cols[j];
        self.count_probes(search_steps(col.len()));
        &col[col.partition_point(|&r| r <= i)..]
    }

    /// The current sparsity pattern.
    pub fn pattern(&self) -> SparsityPattern {
        let rows = self.row_cols.to_vec();
        SparsityPattern::from_sorted_rows(self.n_cols, rows)
    }

    /// Converts to CSR (dropping the structural counters).
    pub fn to_csr(&self) -> CsrMatrix {
        let mut row_ptr = Vec::with_capacity(self.n_rows + 1);
        let mut col_idx = Vec::with_capacity(self.nnz());
        let mut values = Vec::with_capacity(self.nnz());
        row_ptr.push(0);
        for i in 0..self.n_rows {
            col_idx.extend_from_slice(&self.row_cols[i]);
            values.extend_from_slice(&self.row_vals[i]);
            row_ptr.push(col_idx.len());
        }
        CsrMatrix::from_raw_parts(self.n_rows, self.n_cols, row_ptr, col_idx, values)
    }

    /// Rebuilds the matrix so its structure exactly matches `pattern`,
    /// retaining values at retained positions and zero-filling new positions.
    /// Every inserted or removed node is counted in the structural stats —
    /// this is the "restructuring" cost that dominates a straightforwardly
    /// incremental implementation (paper §4, discussion before CLUDE).
    pub fn restructure_to(&mut self, pattern: &SparsityPattern) {
        assert_eq!(pattern.n_rows(), self.n_rows);
        assert_eq!(pattern.n_cols(), self.n_cols);
        let mut stats = self.stats();
        let mut new_row_cols: Vec<Vec<usize>> = Vec::with_capacity(self.n_rows);
        let mut new_row_vals: Vec<Vec<f64>> = Vec::with_capacity(self.n_rows);
        let mut new_cols: Vec<Vec<usize>> = vec![Vec::new(); self.n_cols];
        for i in 0..self.n_rows {
            let old_cols = &self.row_cols[i];
            let old_vals = &self.row_vals[i];
            let target = pattern.row(i);
            let mut merged_cols = Vec::with_capacity(target.len());
            let mut merged_vals = Vec::with_capacity(target.len());
            let mut oi = 0;
            for &j in target {
                // Advance through old entries, counting removals for entries
                // that are not retained.
                while oi < old_cols.len() && old_cols[oi] < j {
                    stats.removals += 1;
                    stats.probes += 1;
                    oi += 1;
                }
                stats.probes += 1;
                merged_cols.push(j);
                if oi < old_cols.len() && old_cols[oi] == j {
                    merged_vals.push(old_vals[oi]);
                    oi += 1;
                } else {
                    stats.inserts += 1;
                    merged_vals.push(0.0);
                }
                new_cols[j].push(i);
            }
            while oi < old_cols.len() {
                stats.removals += 1;
                stats.probes += 1;
                oi += 1;
            }
            new_row_cols.push(merged_cols);
            new_row_vals.push(merged_vals);
        }
        self.row_cols = new_row_cols;
        self.row_vals = new_row_vals;
        self.cols = new_cols;
        self.inserts = stats.inserts;
        self.removals = stats.removals;
        *self.probes.get_mut() = stats.probes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    fn sample_csr() -> CsrMatrix {
        let mut coo = CooMatrix::new(3, 3);
        for &(i, j, v) in &[(0, 0, 1.0), (0, 2, 2.0), (1, 1, 3.0), (2, 0, 4.0)] {
            coo.push(i, j, v).unwrap();
        }
        CsrMatrix::from_coo(&coo)
    }

    #[test]
    fn from_csr_preserves_entries() {
        let csr = sample_csr();
        let adj = AdjacencyMatrix::from_csr(&csr);
        assert_eq!(adj.nnz(), 4);
        assert_eq!(adj.get(0, 2), 2.0);
        assert_eq!(adj.get(1, 0), 0.0);
        assert_eq!(adj.to_csr(), csr);
    }

    #[test]
    fn set_inserts_and_updates() {
        let mut adj = AdjacencyMatrix::zeros(2, 2);
        assert!(adj.set(0, 1, 5.0));
        assert!(!adj.set(0, 1, 6.0));
        assert_eq!(adj.peek(0, 1), 6.0);
        assert_eq!(adj.stats().inserts, 1);
        assert!(adj.contains(0, 1));
        assert!(!adj.contains(1, 0));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn set_out_of_bounds_panics() {
        let mut adj = AdjacencyMatrix::zeros(2, 2);
        adj.set(5, 0, 1.0);
    }

    #[test]
    fn add_to_accumulates() {
        let mut adj = AdjacencyMatrix::zeros(2, 2);
        adj.add_to(1, 1, 2.0);
        adj.add_to(1, 1, 3.0);
        assert_eq!(adj.peek(1, 1), 5.0);
        assert_eq!(adj.stats().inserts, 1);
    }

    #[test]
    fn add_to_uses_one_search_per_call() {
        let mut adj = AdjacencyMatrix::zeros(4, 4);
        adj.set(1, 2, 1.0);
        let before = adj.stats().probes;
        adj.add_to(1, 2, 1.0);
        // Row 1 has one entry: a single binary search costs one step.
        assert_eq!(adj.stats().probes - before, search_steps(1));
    }

    #[test]
    fn set_or_drop_zero_skips_absent_zero_writes() {
        let mut adj = AdjacencyMatrix::zeros(3, 3);
        assert!(!adj.set_or_drop_zero(0, 1, 0.0));
        assert_eq!(adj.stats().inserts, 0);
        assert!(adj.set_or_drop_zero(0, 1, 2.0));
        // Present positions accept exact zeros (cancellation keeps the slot).
        assert!(!adj.set_or_drop_zero(0, 1, 0.0));
        assert!(adj.contains(0, 1));
        assert_eq!(adj.stats().inserts, 1);
    }

    #[test]
    fn readonly_lookups_count_search_steps() {
        let adj = AdjacencyMatrix::from_csr(&sample_csr());
        let before = adj.stats().probes;
        // Row 0 has 2 entries: a search costs floor(log2(2)) + 1 = 2 steps.
        adj.peek(0, 2);
        assert_eq!(adj.stats().probes - before, 2);
        adj.contains(0, 1);
        assert_eq!(adj.stats().probes - before, 4);
        // An empty row still costs one step.
        let empty = AdjacencyMatrix::zeros(2, 2);
        empty.get(0, 0);
        assert_eq!(empty.stats().probes, 1);
    }

    #[test]
    fn remove_deletes_structure() {
        let mut adj = AdjacencyMatrix::from_csr(&sample_csr());
        assert!(adj.remove(0, 2));
        assert!(!adj.remove(0, 2));
        assert!(!adj.contains(0, 2));
        assert_eq!(adj.stats().removals, 1);
        assert_eq!(adj.col_rows(2), &[] as &[usize]);
    }

    #[test]
    fn column_lists_track_rows() {
        let adj = AdjacencyMatrix::from_csr(&sample_csr());
        assert_eq!(adj.col_rows(0), &[0, 2]);
        assert_eq!(adj.col_rows(1), &[1]);
    }

    #[test]
    fn out_of_order_column_inserts_stay_sorted() {
        let mut adj = AdjacencyMatrix::zeros(5, 5);
        adj.set(4, 1, 1.0);
        adj.set(0, 1, 2.0);
        adj.set(2, 1, 3.0);
        assert_eq!(adj.col_rows(1), &[0, 2, 4]);
    }

    #[test]
    fn slice_scans_return_strict_suffixes() {
        let adj = AdjacencyMatrix::from_csr(&sample_csr());
        assert_eq!(adj.col_rows_after(0, 0), &[2]);
        assert_eq!(adj.col_rows_after(0, 2), &[] as &[usize]);
        assert_eq!(adj.row_cols_after(0, 0), &[2]);
        assert_eq!(adj.row_cols_after(0, 2), &[] as &[usize]);
    }

    #[test]
    fn pattern_matches_csr_pattern() {
        let csr = sample_csr();
        let adj = AdjacencyMatrix::from_csr(&csr);
        assert_eq!(adj.pattern(), csr.pattern());
    }

    #[test]
    fn restructure_counts_inserts_and_removals() {
        let csr = sample_csr();
        let mut adj = AdjacencyMatrix::from_csr(&csr);
        // Target pattern: keep (0,0), (1,1); drop (0,2),(2,0); add (2,2),(1,2).
        let target =
            SparsityPattern::from_entries(3, 3, vec![(0, 0), (1, 1), (1, 2), (2, 2)]).unwrap();
        adj.restructure_to(&target);
        assert_eq!(adj.pattern(), target);
        // Retained values survive, new positions are zero.
        assert_eq!(adj.peek(0, 0), 1.0);
        assert_eq!(adj.peek(1, 1), 3.0);
        assert_eq!(adj.peek(2, 2), 0.0);
        let stats = adj.stats();
        assert_eq!(stats.inserts, 2);
        assert_eq!(stats.removals, 2);
        assert!(stats.modifications() == 4);
    }

    #[test]
    fn reset_stats_clears_counters() {
        let mut adj = AdjacencyMatrix::zeros(2, 2);
        adj.set(0, 0, 1.0);
        assert_ne!(adj.stats(), StructuralStats::default());
        adj.reset_stats();
        assert_eq!(adj.stats(), StructuralStats::default());
    }
}
